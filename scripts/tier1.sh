#!/usr/bin/env bash
# Tier-1 gate: the whole workspace must build in release mode and every
# test must pass. Run from anywhere; the script cds to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release
cargo test -q
# Robustness gates: the estimation pipeline must stay panic-free on
# input-dependent paths, and the DSE sweep must survive injected faults
# with bit-identical surviving points.
cargo clippy -p flexcl-core -p flexcl-interp -- -D warnings -W clippy::unwrap_used
cargo test -q -p flexcl-core --test fault_injection
# Sweep-throughput smoke and scaling gate: a model-only vadd sweep over
# the fine grid (≥10⁵ points) must complete, its BENCH_dse.json must
# carry the full schema (chunk size, steal count, repetitions, host
# cores, finite positive configs-per-second), and threads=8 throughput
# must beat threads=1 — the --check skips the scaling comparison with a
# notice when the measuring host has a single core, where a parallel
# speedup is physically impossible.
BENCH_SMOKE="$(mktemp -t bench_dse_smoke.XXXXXX.json)"
trap 'rm -f "$BENCH_SMOKE"' EXIT
cargo run --release -q -p flexcl-bench --bin dse -- \
  --bench-only --grid fine --kernels vadd --reps 3 --out "$BENCH_SMOKE"
cargo run --release -q -p flexcl-bench --bin dse -- \
  --check "$BENCH_SMOKE" --require-scaling
# Accuracy smoke: model-vs-sim triage over one wavefront kernel (nw has
# memory-silent groups, exercising the heaviest-group floor and the
# stratified profile). Fails if the kernel's mean |error| drifts past 10%
# (steady-state ≈ 4%); --check validates the BENCH_accuracy.json schema.
BENCH_ACC="$(mktemp -t bench_accuracy_smoke.XXXXXX.json)"
trap 'rm -f "$BENCH_SMOKE" "$BENCH_ACC"' EXIT
cargo run --release -q -p flexcl-bench --bin triage -- \
  --kernels nw --out "$BENCH_ACC" --max-mean-err 10 --no-csv
cargo run --release -q -p flexcl-bench --bin triage -- --check "$BENCH_ACC"
# New-axis accuracy smoke: jacobi2d's triage sweep includes the
# coarsening/temporal-blocking probes (DESIGN.md §15), so this gates the
# new axes' model-vs-sim error within the same bound and requires the
# blocked probes to actually win in the simulator (steady-state mean
# ≈ 0.8%). The identity half of the contract (cf=1/tb=1 bit-identical
# to the pre-axis model) and the enlarged-grid determinism run in
# `cargo test` above (identity_golden, new_axes, chunk_determinism).
BENCH_AXES="$(mktemp -t bench_axes_smoke.XXXXXX.json)"
AXES_OUT="$(mktemp -t bench_axes_smoke_out.XXXXXX.txt)"
trap 'rm -f "$BENCH_SMOKE" "$BENCH_ACC" "$BENCH_AXES" "$AXES_OUT"' EXIT
cargo run --release -q -p flexcl-bench --bin triage -- \
  --kernels jacobi2d --out "$BENCH_AXES" --max-mean-err 10 --no-csv \
  > "$AXES_OUT"
grep -q 'polybench/jacobi2d.*, win' "$AXES_OUT"
cargo run --release -q -p flexcl-bench --bin triage -- --check "$BENCH_AXES"
# Serving smoke: the estimation server must answer a good request with a
# typed ok, a malformed frame with a typed rejection (not a crash), and
# a past-deadline request with a typed deadline error — then shut down
# cleanly and report its counters. jsonl transport, no network needed.
# A trailing {"metrics":"json"} introspection frame must report counters
# exactly matching the three smoke responses above (introspection itself
# is not counted as traffic), every data-plane response must carry a
# server-assigned request_id, and the request must leave a single rooted
# trace tree in the --trace-out sink.
SERVE_CACHE="$(mktemp -d -t serve_smoke_cache.XXXXXX)"
SERVE_OUT="$(mktemp -t serve_smoke_out.XXXXXX.jsonl)"
SERVE_TRACE="$(mktemp -t serve_smoke_trace.XXXXXX.jsonl)"
BENCH_SERVE="$(mktemp -t bench_serve_smoke.XXXXXX.json)"
BENCH_OBS="$(mktemp -t bench_obs_smoke.XXXXXX.json)"
trap 'rm -f "$BENCH_SMOKE" "$BENCH_ACC" "$SERVE_OUT" "$SERVE_TRACE" "$BENCH_SERVE" "$BENCH_OBS"; rm -rf "$SERVE_CACHE"' EXIT
printf '%s\n' \
  '{"id":"good","src":"__kernel void vadd(__global float* a, __global float* b, __global float* c) { int i = get_global_id(0); c[i] = a[i] + b[i]; }","global":4096}' \
  '{"id":"bad"' \
  '{"id":"late","src":"__kernel void vadd(__global float* a, __global float* b, __global float* c) { int i = get_global_id(0); c[i] = a[i] + b[i]; }","global":4096,"deadline_ms":0}' \
  '{"metrics":"json"}' \
  | cargo run --release -q -p flexcl-serve --bin serve -- --stdin --cache-dir "$SERVE_CACHE" --trace-out "$SERVE_TRACE" > "$SERVE_OUT"
grep -q '"id":"good".*"status":"ok"' "$SERVE_OUT"
grep -q '"status":"error","kind":"malformed"' "$SERVE_OUT"
grep -q '"id":"late".*"kind":"deadline"' "$SERVE_OUT"
grep -q '"id":"good".*"request_id":"' "$SERVE_OUT"
grep -q '"serve.received":3' "$SERVE_OUT"
grep -q '"serve.completed":1' "$SERVE_OUT"
grep -q '"serve.malformed":1' "$SERVE_OUT"
grep -q '"serve.deadline_expired":1' "$SERVE_OUT"
grep -q '"serve.cache_misses":1' "$SERVE_OUT"
grep -q '"name":"serve.request"' "$SERVE_TRACE"
grep -q '"name":"dse.sweep"' "$SERVE_TRACE"
# one root per data-plane frame (good, bad, late) — and nothing orphaned
test "$(grep -c '"parent":0' "$SERVE_TRACE")" -eq 3
test "$(grep -c '"parent":0.*"name":"serve.request"' "$SERVE_TRACE")" -eq 3
# Epoll transport smoke: a real TCP round-trip through the event loop —
# an ok response over length-prefixed framing, a malformed frame
# answered in band, idle connections reaped, and SO_REUSEPORT listener
# sharding — plus the coalescing gate (identical in-flight requests must
# actually share one sweep). Both run as integration tests.
cargo test -q -p flexcl-serve --test epoll_transport
cargo test -q -p flexcl-serve --test coalescing
# Serving throughput + overload + coalesce gate: steady cache-warm
# traffic must sustain ≥5k req/s (2× the pre-event-loop 2.5k baseline),
# the steady row must show real persistent-cache hits, the coalesce row
# must show identical in-flight requests sharing sweeps, and the
# overload phase (2× more concurrent clients than queue slots, sustained
# 16 requests/client with retry_after_ms back-off honored) must show
# admission control actually working: nonzero shed, degraded and
# deadline counters while requests still complete. Schema checked the
# same way as the other BENCH files.
cargo run --release -q -p flexcl-bench --bin serve_bench -- \
  --steady-requests 4000 --out "$BENCH_SERVE"
cargo run --release -q -p flexcl-bench --bin serve_bench -- \
  --check "$BENCH_SERVE" --require-overload --require-coalesce \
  --require-warm-hits --min-rps 5000
# Observability overhead gate: paired off/on fine-grid sweeps must show
# ≤5% traced overhead (quietest pair), the derived compiled-in-but-
# disabled cost must stay ≤1%, and the serve row must show live p50/p99
# with tracing on. Schema-checked like the other BENCH files.
cargo run --release -q -p flexcl-bench --bin obs_bench -- \
  --reps 3 --serve-requests 1000 --out "$BENCH_OBS"
cargo run --release -q -p flexcl-bench --bin obs_bench -- \
  --check "$BENCH_OBS" --max-overhead-pct 5 --max-disabled-pct 1
