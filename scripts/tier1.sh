#!/usr/bin/env bash
# Tier-1 gate: the whole workspace must build in release mode and every
# test must pass. Run from anywhere; the script cds to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release
cargo test -q
# Robustness gates: the estimation pipeline must stay panic-free on
# input-dependent paths, and the DSE sweep must survive injected faults
# with bit-identical surviving points.
cargo clippy -p flexcl-core -p flexcl-interp -- -D warnings -W clippy::unwrap_used
cargo test -q -p flexcl-core --test fault_injection
