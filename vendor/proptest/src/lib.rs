//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of proptest the workspace actually uses:
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, strategies for integer ranges, tuples,
//! [`Just`], `collection::vec`, `sample::select`, `any::<T>()`, the
//! `prop_oneof!` union macro, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` test macros. Generation is deterministic (seeded
//! from the test name), and there is no shrinking — a failing case
//! panics with the `Debug` rendering of the sampled inputs so it can be
//! reproduced by rerunning the test.

use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

/// Deterministic generator used to drive sampling (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds the generator from an arbitrary byte string (the test name),
    /// so every `proptest!` test gets a stable, reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::from_seed(h)
    }

    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Unbiased uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            if x >= threshold {
                return x % bound;
            }
        }
    }
}

/// A value generator (stand-in for `proptest::strategy::Strategy`).
///
/// Unlike upstream there is no value tree or shrinking: a strategy is
/// just a cloneable sampler.
pub trait Strategy: Clone + 'static {
    type Value: Debug + 'static;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        U: Debug + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        BoxedStrategy::new(move |rng| f(self.sample(rng)))
    }

    fn prop_flat_map<R, F>(self, f: F) -> BoxedStrategy<R::Value>
    where
        R: Strategy,
        F: Fn(Self::Value) -> R + 'static,
    {
        BoxedStrategy::new(move |rng| f(self.sample(rng)).sample(rng))
    }

    /// Builds recursive structures of bounded depth. `desired_size` and
    /// `expected_branch_size` are accepted for API compatibility but only
    /// `depth` bounds generation here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let leaf = self.clone().boxed();
        let mut cur = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            let l = leaf.clone();
            // Recurse three times out of four so trees reach interesting
            // depths while every level can still terminate at a leaf.
            cur = BoxedStrategy::new(move |rng| {
                if rng.below(4) < 3 {
                    deeper.sample(rng)
                } else {
                    l.sample(rng)
                }
            });
        }
        cur
    }

    fn boxed(self) -> BoxedStrategy<Self::Value> {
        BoxedStrategy::new(move |rng| self.sample(rng))
    }
}

/// A type-erased strategy (stand-in for `proptest::strategy::BoxedStrategy`).
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> BoxedStrategy<V> {
    fn new(f: impl Fn(&mut TestRng) -> V + 'static) -> Self {
        BoxedStrategy(Rc::new(f))
    }
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V: Debug + 'static> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug + 'static> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
}

/// String patterns as strategies, mirroring proptest's regex support for
/// the two shapes this workspace uses: `\PC*` (any printable string) and
/// `[class]*` (repetition over a character class, with `a-z` ranges and
/// backslash escapes). Anything else is treated as a literal string.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let Some(inner) = self.strip_suffix('*') else {
            return (*self).to_string();
        };
        let pool: Vec<char> = if inner == "\\PC" {
            let mut p: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
            p.extend(['é', 'λ', '中', '✓']);
            p
        } else if let Some(body) = inner
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
        {
            parse_char_class(body)
        } else {
            inner.chars().collect()
        };
        assert!(!pool.is_empty(), "string pattern {self:?} has an empty pool");
        let len = rng.below(64) as usize;
        (0..len)
            .map(|_| pool[rng.below(pool.len() as u64) as usize])
            .collect()
    }
}

fn parse_char_class(body: &str) -> Vec<char> {
    // Resolve escapes into (char, was_escaped) tokens, then expand x-y ranges.
    let mut toks: Vec<(char, bool)> = Vec::new();
    let mut it = body.chars();
    while let Some(c) = it.next() {
        if c == '\\' {
            if let Some(n) = it.next() {
                let m = match n {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                };
                toks.push((m, true));
            }
        } else {
            toks.push((c, false));
        }
    }
    let mut pool = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if i + 2 < toks.len() && toks[i + 1] == ('-', false) {
            for c in toks[i].0..=toks[i + 2].0 {
                pool.push(c);
            }
            i += 3;
        } else {
            pool.push(toks[i].0);
            i += 1;
        }
    }
    pool
}

/// Uniform union over same-valued strategies (backs `prop_oneof!`).
pub fn union<V: Debug + 'static>(arms: Vec<BoxedStrategy<V>>) -> BoxedStrategy<V> {
    assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
    BoxedStrategy::new(move |rng| {
        let i = rng.below(arms.len() as u64) as usize;
        arms[i].sample(rng)
    })
}

/// `proptest::collection` stand-in.
pub mod collection {
    use super::*;

    /// Vector of `len in size_range` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size_range: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
    where
        S::Value: Debug,
    {
        BoxedStrategy::new(move |rng| {
            let len = if size_range.start < size_range.end {
                size_range.start + rng.below((size_range.end - size_range.start) as u64) as usize
            } else {
                size_range.start
            };
            (0..len).map(|_| elem.sample(rng)).collect()
        })
    }
}

/// `proptest::sample` stand-in.
pub mod sample {
    use super::*;

    /// Uniformly selects one of the given values.
    pub fn select<T: Clone + Debug + 'static>(options: Vec<T>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        BoxedStrategy::new(move |rng| options[rng.below(options.len() as u64) as usize].clone())
    }
}

/// Types with a canonical whole-domain strategy (stand-in for `Arbitrary`).
pub trait Arbitrary: Sized + Debug + 'static {
    fn arbitrary() -> BoxedStrategy<Self>;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<Self> {
                BoxedStrategy::new(|rng| rng.next_u64() as $t)
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<Self> {
        BoxedStrategy::new(|rng| rng.next_u64() & 1 == 1)
    }
}

/// Whole-domain strategy for `T` (stand-in for `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

/// Runner configuration (stand-in for `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, union, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Fallible assertion: aborts the current case with a message instead of
/// panicking, so the runner can attach the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fallible equality assertion; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if l != r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if l != r {
            return ::std::result::Result::Err(format!(
                "{}: {:?} != {:?}",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Declares property tests. Each case samples the bound strategies with a
/// per-test deterministic RNG and runs the body; `prop_assert*` failures
/// panic with the case index and the sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident ($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let inputs = ($($crate::Strategy::sample(&($strat), &mut rng),)+);
                    let desc = format!("{:?}", inputs);
                    let ($($pat,)+) = inputs;
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\ninput: {}",
                            case + 1,
                            config.cases,
                            msg,
                            desc
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = (0u32..10, 0u32..10).prop_map(|(a, b)| a + b);
        let mut rng = TestRng::for_test("compose");
        for _ in 0..100 {
            assert!(strat.sample(&mut rng) < 19);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..100).prop_map(Tree::Leaf).prop_recursive(4, 32, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::for_test("recursive");
        let mut seen_node = false;
        for _ in 0..200 {
            let t = strat.sample(&mut rng);
            assert!(depth(&t) <= 4);
            seen_node |= matches!(t, Tree::Node(..));
        }
        assert!(seen_node, "recursion never fired");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_harness_runs(x in 0u32..100, v in prop::collection::vec(0u8..4, 1..6)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len(), "lengths trivially match at x={}", x);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_select_cover_arms(c in prop_oneof![Just(1u8), Just(2u8)],
                                       s in prop::sample::select(vec![10i32, 20, 30])) {
            prop_assert!(c == 1 || c == 2);
            prop_assert!([10, 20, 30].contains(&s));
        }
    }
}
