//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the small API surface the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and
//! the `criterion_group!` / `criterion_main!` macros. Instead of
//! criterion's statistical machinery it runs a short warm-up, then times
//! batches until a fixed measurement window elapses and prints the mean
//! time per iteration. Good enough for relative before/after numbers;
//! not a precision instrument.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_secs(2);

/// Benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        // Warm up until the window elapses, then measure.
        let start = Instant::now();
        while start.elapsed() < WARMUP {
            b.reset();
            f(&mut b);
        }
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        let start = Instant::now();
        while start.elapsed() < MEASURE {
            b.reset();
            f(&mut b);
            iters += b.iters;
            elapsed += b.elapsed;
        }
        if iters == 0 {
            println!("{id:40} (no iterations recorded)");
        } else {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            println!("{id:40} {:>12.1} ns/iter ({iters} iters)", ns);
        }
        self
    }

    pub fn final_summary(&mut self) {}
}

/// Per-benchmark timing handle (stand-in for `criterion::Bencher`).
#[derive(Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn reset(&mut self) {
        self.iters = 0;
        self.elapsed = Duration::ZERO;
    }

    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        const BATCH: u64 = 16;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }
}

/// Declares a benchmark group runner (stand-in for `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point (stand-in for `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher::default();
        b.iter(|| black_box(1 + 1));
        assert!(b.iters > 0);
    }
}
