//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the exact API surface the workspace uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, and `Rng::gen_bool`. The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic per seed, statistically solid for
//! the synthesis-variance sampling and workload generation this repo
//! does. Streams differ from upstream `rand`'s ChaCha-based `StdRng`;
//! nothing in the workspace depends on the exact values, only on seeded
//! determinism.

use std::ops::Range;

/// Seedable generators (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// RNG namespace mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic xoshiro256++ generator (stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform integer in [0, bound) via Lemire-style rejection.
    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            if x >= threshold {
                return x % bound;
            }
        }
    }
}

/// Types `gen_range` can sample uniformly (stand-in for `SampleUniform`).
pub trait SampleUniform: Copy {
    /// Uniform sample in `[lo, hi)`.
    fn sample(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
        lo + (rng.next_f64() as f32) * (hi - lo)
    }
}

/// The sampling trait (stand-in for `rand::Rng`).
pub trait Rng {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T;
    /// Bernoulli sample with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.85f64..1.25);
            assert!((0.85..1.25).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v = rng.next_f64();
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}
