//! Cross-platform what-if analysis (§4.2 robustness).
//!
//! The same OpenCL kernel, the same design point, two FPGAs: the Virtex-7
//! evaluation board and the UltraScale KU060 robustness board. FlexCL's
//! platform profile carries the latency tables, resource capacities and
//! DRAM timings, so re-targeting is a one-line change — this is the
//! "performance comparison across architectures" use the introduction
//! motivates.
//!
//! Run with: `cargo run -p flexcl-bench --example cross_platform --release`

use flexcl_core::{CommMode, FlexCl, OptimizationConfig, Platform, Workload};
use flexcl_interp::KernelArg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A transcendental-heavy kernel: platform latency tables matter.
    let src = "
        __kernel void activation(__global float* x, __global float* y) {
            int i = get_global_id(0);
            float v = x[i];
            y[i] = 1.0f / (1.0f + exp(-v)) + 0.1f * sqrt(fabs(v));
        }";

    let n: u64 = 4096;
    let workload = || Workload {
        args: vec![
            KernelArg::FloatBuf(vec![0.5; n as usize]),
            KernelArg::FloatBuf(vec![0.0; n as usize]),
        ],
        global: (n, 1),
    };
    let config = OptimizationConfig {
        work_item_pipeline: true,
        comm_mode: CommMode::Pipeline,
        num_cus: 2,
        ..OptimizationConfig::baseline((64, 1))
    };

    println!("kernel `activation`, config: {config}\n");
    let mut rows = Vec::new();
    for platform in [Platform::virtex7_adm7v3(), Platform::ku060_nas120a()] {
        let flexcl = FlexCl::new(platform);
        let w = workload();
        let est = flexcl.estimate_source(src, "activation", &w, &config)?;
        println!("{}:", flexcl.platform().name);
        println!(
            "  II={}, depth={} cycles, L_mem/wi={:.2}",
            est.ii_comp, est.depth, est.l_mem_wi
        );
        println!(
            "  predicted: {:.0} cycles = {:.1} us\n",
            est.cycles,
            est.seconds(flexcl.platform().frequency_mhz) * 1e6
        );
        rows.push((flexcl.platform().name.clone(), est.cycles));
    }
    let ratio = rows[0].1 / rows[1].1;
    println!(
        "the UltraScale part finishes this kernel {ratio:.2}x faster — known\n\
         before buying either board."
    );
    Ok(())
}
