//! Quickstart: estimate an OpenCL kernel's FPGA performance in one page.
//!
//! This walks the full FlexCL pipeline on the paper's running example — a
//! kernel with an inter-work-item dependency (Figure 3) — and shows what
//! the model reports: the work-item initiation interval `II`, the pipeline
//! depth `D`, the per-work-item memory latency, and total kernel cycles
//! under both communication modes.
//!
//! Run with: `cargo run -p flexcl-bench --example quickstart --release`

use flexcl_core::{CommMode, FlexCl, OptimizationConfig, Platform, Workload};
use flexcl_interp::KernelArg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Figure-3 style kernel: work-item i+1 reads what work-item i
    // wrote, so the work-item pipeline carries a recurrence.
    let src = "
        __kernel void add(__global float* a, __global float* b) {
            int i = get_global_id(0);
            b[i + 1] = b[i] + a[i];
        }";

    let flexcl = FlexCl::new(Platform::virtex7_adm7v3());
    let n = 4096;
    let workload = Workload {
        args: vec![
            KernelArg::FloatBuf(vec![1.0; n]),
            KernelArg::FloatBuf(vec![0.0; n + 1]),
        ],
        global: (n as u64, 1),
    };

    println!("kernel `add` on {}:", flexcl.platform().name);

    // One analysis serves every configuration with the same work-group size.
    let analysis = flexcl.analyze_source(src, "add", &workload, (64, 1))?;
    println!("  inter-work-item recurrences : {}", analysis.recurrences.len());
    println!("  RecMII                      : {}", analysis.rec_mii());
    println!("  L_mem per work-item         : {:.2} cycles", analysis.l_mem_wi());

    for (label, config) in [
        ("unoptimized (no pipeline)", OptimizationConfig::baseline((64, 1))),
        (
            "work-item pipeline",
            OptimizationConfig {
                work_item_pipeline: true,
                ..OptimizationConfig::baseline((64, 1))
            },
        ),
        (
            "pipeline + overlapped memory",
            OptimizationConfig {
                work_item_pipeline: true,
                comm_mode: CommMode::Pipeline,
                ..OptimizationConfig::baseline((64, 1))
            },
        ),
    ] {
        let est = flexcl.estimate_source(src, "add", &workload, &config)?;
        println!(
            "  {label:<30}: {:>9.0} cycles  (II={}, D={}, {:.1} us at 200 MHz)",
            est.cycles,
            est.ii_comp,
            est.depth,
            est.seconds(200.0) * 1e6
        );
    }

    println!(
        "\nThe recurrence keeps II at {} even with pipelining — FlexCL surfaces\n\
         exactly why this kernel will not reach II = 1 on the FPGA.",
        analysis.rec_mii()
    );
    Ok(())
}
