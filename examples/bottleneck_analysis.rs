//! Bottleneck analysis and code-restructuring hints.
//!
//! The paper positions FlexCL not just as a predictor but as a diagnostic:
//! "help to identify the performance bottlenecks on FPGAs [and] give code
//! restructuring hints". This example compares two versions of the same
//! computation — a strided gather and a coalesced streaming version — and
//! shows how the model's components (II vs L_mem, pattern mix) pinpoint
//! the problem before anything is synthesized.
//!
//! Run with:
//! `cargo run -p flexcl-bench --example bottleneck_analysis --release`

use flexcl_core::{CommMode, FlexCl, OptimizationConfig, Platform, Workload};
use flexcl_interp::KernelArg;

const STRIDED: &str = "
    __kernel void gather(__global float* in, __global float* out, int stride) {
        int i = get_global_id(0);
        out[i] = in[i * stride] * 2.0f;
    }";

const COALESCED: &str = "
    __kernel void stream(__global float* in, __global float* out, int stride) {
        int i = get_global_id(0);
        out[i] = in[i] * 2.0f;
    }";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flexcl = FlexCl::new(Platform::virtex7_adm7v3());
    let n: u64 = 4096;
    let stride = 16i64;

    let config = OptimizationConfig {
        work_item_pipeline: true,
        comm_mode: CommMode::Pipeline,
        ..OptimizationConfig::baseline((64, 1))
    };

    println!("config: {config}\n");
    for (label, src, name) in
        [("strided gather (in[i*16])", STRIDED, "gather"), ("coalesced stream (in[i])", COALESCED, "stream")]
    {
        let workload = Workload {
            args: vec![
                KernelArg::FloatBuf(vec![1.0; (n * stride as u64) as usize]),
                KernelArg::FloatBuf(vec![0.0; n as usize]),
                KernelArg::Int(stride),
            ],
            global: (n, 1),
        };
        let analysis = flexcl.analyze_source(src, name, &workload, config.work_group)?;
        let est = flexcl_core::estimate(&analysis, &config)?;

        println!("{label}:");
        println!(
            "  transactions/work-item: {:.3}   L_mem/wi: {:.2} cycles   II_comp: {}",
            analysis.global_accesses_per_wi,
            analysis.l_mem_wi(),
            est.ii_comp
        );
        let dominant = if est.ii_wi > f64::from(est.ii_comp) + 0.5 {
            "MEMORY-BOUND: the work-item interval is set by global memory, \
             not computation.\n  hint: make accesses consecutive so the \
             512-bit burst engine can coalesce them"
        } else {
            "compute-bound: memory keeps up with the pipeline"
        };
        println!("  verdict: {dominant}");
        println!("  predicted total: {:.0} cycles\n", est.cycles);

        // The pattern mix explains *why*: strided access defeats both
        // coalescing and the row buffers.
        let misses: f64 = analysis
            .pattern_counts
            .iter()
            .filter(|(p, _)| !p.hit)
            .map(|(_, n)| n)
            .sum();
        let hits: f64 = analysis
            .pattern_counts
            .iter()
            .filter(|(p, _)| p.hit)
            .map(|(_, n)| n)
            .sum();
        println!(
            "  row-buffer behaviour: {:.2} hit vs {:.2} miss transactions per work-item\n",
            hits, misses
        );
    }
    Ok(())
}
