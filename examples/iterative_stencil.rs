//! Iterative stencil pipelines — the workload family the paper's follow-up
//! (Wang et al., DAC'17 [17]) synthesizes with the same OpenCL model.
//!
//! Time-stepped stencils launch the same kernel many times with the
//! buffers swapped. FlexCL prices one launch; the host loop then gives the
//! full run, and the model answers the question that matters for such
//! codes: how much of the per-launch cost is fixed overhead (launch +
//! dispatch) versus streaming — i.e. whether fusing time steps into one
//! kernel would pay off.
//!
//! Run with:
//! `cargo run -p flexcl-bench --example iterative_stencil --release`

use flexcl_core::{CommMode, FlexCl, OptimizationConfig, Platform, Workload};
use flexcl_interp::{run, KernelArg, NdRange, RunOptions};

const STENCIL: &str = "
    __kernel void jacobi(__global float* in, __global float* out, int w, int h) {
        int x = get_global_id(0);
        int y = get_global_id(1);
        int i = y * w + x;
        if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
            out[i] = 0.25f * (in[i - 1] + in[i + 1] + in[i - w] + in[i + w]);
        } else {
            out[i] = in[i];
        }
    }";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (w, h) = (64u64, 64u64);
    let steps = 50u32;
    let platform = Platform::virtex7_adm7v3();
    let flexcl = FlexCl::new(platform.clone());

    let workload = Workload {
        args: vec![
            KernelArg::FloatBuf(vec![1.0; (w * h) as usize]),
            KernelArg::FloatBuf(vec![0.0; (w * h) as usize]),
            KernelArg::Int(w as i64),
            KernelArg::Int(h as i64),
        ],
        global: (w, h),
    };
    let config = OptimizationConfig {
        work_item_pipeline: true,
        comm_mode: CommMode::Pipeline,
        num_cus: 2,
        ..OptimizationConfig::baseline((16, 8))
    };

    let est = flexcl.estimate_source(STENCIL, "jacobi", &workload, &config)?;
    let per_launch = est.cycles;
    let overhead = f64::from(platform.launch_overhead);
    let total = per_launch * f64::from(steps);

    println!("{w}x{h} Jacobi stencil, {steps} time steps, config {config}");
    println!("  one launch : {per_launch:.0} cycles ({:.0} of it fixed overhead)", overhead);
    println!(
        "  full run   : {total:.0} cycles = {:.2} ms at {} MHz",
        platform.cycles_to_seconds(total) * 1e3,
        platform.frequency_mhz
    );
    let overhead_share = overhead * f64::from(steps) / total;
    println!(
        "  launch overhead share: {:.1}% — {}",
        overhead_share * 100.0,
        if overhead_share > 0.2 {
            "worth fusing several time steps into one kernel"
        } else {
            "streaming dominates; host-looped launches are fine"
        }
    );

    // Cross-check the functional result with the reference interpreter:
    // run two steps with swapped buffers and verify the halo stays fixed.
    let program = flexcl_frontend::parse_and_check(STENCIL)?;
    let func = flexcl_ir::lower_kernel(&program.kernels[0])?;
    let mut bufs = workload.args.clone();
    for step in 0..2 {
        let nd = NdRange { global: [w, h, 1], local: [16, 8, 1] };
        run(&func, &mut bufs, nd, RunOptions::default())?;
        // Swap in/out for the next step.
        bufs.swap(0, 1);
        let _ = step;
    }
    let KernelArg::FloatBuf(field) = &bufs[0] else { unreachable!() };
    assert_eq!(field[0], 1.0, "boundary preserved");
    println!("  functional check (2 interpreted steps): boundary preserved ✓");
    Ok(())
}
