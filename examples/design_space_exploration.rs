//! Design-space exploration: rank hundreds of optimization configurations
//! of a stencil kernel in seconds (§4.3 of the paper).
//!
//! The paper's motivating workflow: instead of synthesizing each candidate
//! (hours per design point), FlexCL evaluates the whole space analytically
//! and hands back a ranked list; the designer synthesizes only the winner.
//!
//! Run with:
//! `cargo run -p flexcl-bench --example design_space_exploration --release`

use flexcl_core::{FlexCl, Platform, Workload};
use flexcl_interp::KernelArg;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-D Jacobi stencil — the classic FPGA offload candidate.
    let src = "
        __kernel void jacobi(__global float* in, __global float* out, int w, int h) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            int i = y * w + x;
            if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
                out[i] = 0.2f * (in[i] + in[i - 1] + in[i + 1] + in[i - w] + in[i + w]);
            }
        }";

    let (w, h) = (64u64, 64u64);
    let workload = Workload {
        args: vec![
            KernelArg::FloatBuf(vec![1.0; (w * h) as usize]),
            KernelArg::FloatBuf(vec![0.0; (w * h) as usize]),
            KernelArg::Int(w as i64),
            KernelArg::Int(h as i64),
        ],
        global: (w, h),
    };

    let flexcl = FlexCl::new(Platform::virtex7_adm7v3());
    let t0 = Instant::now();
    let result = flexcl.explore_source(src, "jacobi", &workload)?;
    let elapsed = t0.elapsed();

    let mut ranked: Vec<_> =
        result.points.iter().filter(|p| p.estimate.feasible).collect();
    ranked.sort_by(|a, b| a.estimate.cycles.total_cmp(&b.estimate.cycles));

    println!(
        "explored {} configurations ({} feasible) in {:.2} s",
        result.points.len(),
        result.feasible_count(),
        elapsed.as_secs_f64()
    );
    println!("\ntop 5 configurations:");
    for (rank, p) in ranked.iter().take(5).enumerate() {
        println!(
            "  #{:<2} {:<44} {:>9.0} cycles",
            rank + 1,
            p.config.to_string(),
            p.estimate.cycles
        );
    }
    println!("\nbottom 3 (what you avoid synthesizing):");
    for p in ranked.iter().rev().take(3) {
        println!(
            "      {:<44} {:>9.0} cycles",
            p.config.to_string(),
            p.estimate.cycles
        );
    }
    if let Some(speedup) = result.speedup_over_baseline() {
        println!("\nbest configuration beats the unoptimized baseline by {speedup:.0}x");
    }
    println!(
        "at ~0.7 h of synthesis per design point, the same sweep through the\n\
         toolchain would take ~{:.0} hours",
        result.points.len() as f64 * 0.7
    );
    Ok(())
}
