//! Corpus-wide analysis health: every one of the 60 benchmark kernels must
//! flow through the complete FlexCL analysis and produce sane model inputs.
//!
//! This is the guard that keeps the kernel corpus and the analysis pipeline
//! compatible as either evolves: a kernel whose profile produces no memory
//! trace, an II of zero, or a negative latency would silently corrupt every
//! experiment built on top.

use flexcl_bench::compile;
use flexcl_core::{estimate, KernelAnalysis, OptimizationConfig, Platform};
use flexcl_kernels::Scale;
use flexcl_sched::ResourceBudget;

fn default_wg(global: (u64, u64), reqd: Option<(u32, u32, u32)>) -> (u32, u32) {
    match reqd {
        Some((x, y, _)) => (x, y),
        None if global.1 > 1 => (8, 8),
        None => (64, 1),
    }
}

#[test]
fn every_corpus_kernel_analyzes_sanely() {
    let platform = Platform::virtex7_adm7v3();
    for spec in flexcl_kernels::all() {
        let func = compile(&spec);
        let workload = spec.workload(Scale::Test, 2024);
        let wg = default_wg(workload.global, func.reqd_work_group_size);
        let analysis = KernelAnalysis::analyze(&func, &platform, &workload, wg)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.full_name()));

        let name = spec.full_name();
        // Memory model inputs.
        assert!(analysis.l_mem_wi() >= 0.0, "{name}: negative memory latency");
        assert!(
            analysis.l_mem_wi_phased() <= analysis.l_mem_wi() * 1.5 + 1.0,
            "{name}: phased order should not be drastically worse"
        );
        assert!(
            analysis.global_accesses_per_wi >= 0.0,
            "{name}: negative access count"
        );
        // Computation model inputs.
        let budget = ResourceBudget::unconstrained();
        let d = analysis.work_item_latency(&budget).expect("latency");
        assert!(d >= 1.0, "{name}: work-item latency {d}");
        let (ii, depth) = analysis.pipeline_params(&budget).expect("pipeline params");
        assert!(ii >= 1, "{name}: II {ii}");
        assert!(depth >= 1, "{name}: depth {depth}");
        assert!(
            f64::from(depth) + 1e-9 >= f64::from(ii),
            "{name}: depth {depth} < II {ii}"
        );
        assert!(analysis.rec_mii() >= 1, "{name}");
        assert!(
            (1.0..=2.0).contains(&analysis.channel_contention),
            "{name}: contention {}",
            analysis.channel_contention
        );
    }
}

#[test]
fn every_corpus_kernel_estimates_feasibly_at_baseline() {
    let platform = Platform::virtex7_adm7v3();
    for spec in flexcl_kernels::all() {
        let func = compile(&spec);
        let workload = spec.workload(Scale::Test, 2024);
        let wg = default_wg(workload.global, func.reqd_work_group_size);
        let analysis = KernelAnalysis::analyze(&func, &platform, &workload, wg)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.full_name()));
        let baseline = OptimizationConfig::baseline(wg);
        let est = estimate(&analysis, &baseline).expect("estimate");
        assert!(est.feasible, "{}: baseline must fit the device", spec.full_name());
        assert!(
            est.cycles.is_finite() && est.cycles > 0.0,
            "{}: cycles {}",
            spec.full_name(),
            est.cycles
        );
        // Pipelining never predicts slower than the serial baseline.
        let piped = OptimizationConfig { work_item_pipeline: true, ..baseline };
        let est_p = estimate(&analysis, &piped).expect("estimate");
        assert!(
            est_p.cycles <= est.cycles * 1.01,
            "{}: pipelined {} vs serial {}",
            spec.full_name(),
            est_p.cycles,
            est.cycles
        );
    }
}

#[test]
fn barrier_kernels_are_identified() {
    // Exactly the local-memory kernels of the corpus use barriers.
    let with_barrier: Vec<String> = flexcl_kernels::all()
        .iter()
        .filter(|s| compile(s).has_barrier())
        .map(|s| s.full_name())
        .collect();
    assert!(with_barrier.contains(&"dwt2d/fdwt".to_string()));
    assert!(with_barrier.contains(&"lud/diagonal".to_string()));
    assert!(
        with_barrier.len() <= 4,
        "unexpected barrier kernels: {with_barrier:?}"
    );
}
