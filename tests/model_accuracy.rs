//! Cross-crate accuracy integration tests: the paper's headline claims at
//! test scale, on a representative slice of the corpus.

use flexcl_bench::{find_spec, sweep_kernel};
use flexcl_core::Platform;
use flexcl_kernels::Scale;

/// A representative slice: streaming, stencil, reduction, irregular,
/// local-memory and math-heavy kernels.
const SLICE: &[&str] = &[
    "nn/nn",
    "srad/extract",
    "pathfinder/dynproc",
    "kmeans/center",
    "polybench/gemm",
    "polybench/jacobi2d",
];

#[test]
fn flexcl_mean_error_is_low_across_kernel_classes() {
    let platform = Platform::virtex7_adm7v3();
    let mut errors = Vec::new();
    for name in SLICE {
        let sweep = sweep_kernel(&find_spec(name), &platform, Scale::Test);
        let err = sweep.flexcl_error_pct();
        assert!(
            err < 30.0,
            "{name}: FlexCL mean error {err:.1}% exceeds the acceptance band"
        );
        errors.push(err);
    }
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(mean < 20.0, "corpus-slice mean error {mean:.1}%");
}

#[test]
fn flexcl_beats_the_sdaccel_baseline() {
    let platform = Platform::virtex7_adm7v3();
    for name in ["nn/nn", "polybench/gemm"] {
        let sweep = sweep_kernel(&find_spec(name), &platform, Scale::Test);
        assert!(
            sweep.sdaccel_error_pct() > 2.0 * sweep.flexcl_error_pct(),
            "{name}: SDAccel {:.1}% vs FlexCL {:.1}% — the gap should be large",
            sweep.sdaccel_error_pct(),
            sweep.flexcl_error_pct()
        );
    }
}

#[test]
fn sdaccel_fails_on_a_realistic_fraction() {
    let platform = Platform::virtex7_adm7v3();
    let sweep = sweep_kernel(&find_spec("srad/extract"), &platform, Scale::Test);
    let rate = sweep.sdaccel_failure_rate();
    assert!(
        (0.2..=0.6).contains(&rate),
        "failure rate {rate:.2} outside the paper's ~42% band"
    );
}

#[test]
fn barrier_kernels_stay_in_barrier_mode() {
    // lud/diagonal uses local memory + barrier: its design space must not
    // contain pipeline-communication points.
    let spec = find_spec("lud/diagonal");
    let func = flexcl_bench::compile(&spec);
    let workload = spec.workload(Scale::Test, 9);
    let limits = flexcl_core::limits_for(&func, &workload);
    assert!(limits.has_barrier);
    let space = flexcl_core::enumerate(&limits);
    assert!(!space.is_empty());
    assert!(space
        .iter()
        .all(|c| c.comm_mode == flexcl_core::CommMode::Barrier));
}

#[test]
fn model_ranks_configurations_usefully() {
    // Spearman-style sanity: among feasible configs, the model's top decile
    // should overlap the true top quartile heavily.
    let platform = Platform::virtex7_adm7v3();
    let sweep = sweep_kernel(&find_spec("polybench/atax"), &platform, Scale::Test);
    let mut by_model: Vec<_> = sweep.records.iter().collect();
    by_model.sort_by(|a, b| a.flexcl_cycles.total_cmp(&b.flexcl_cycles));
    let mut by_system: Vec<_> = sweep.records.iter().collect();
    by_system.sort_by(|a, b| a.system_cycles.total_cmp(&b.system_cycles));

    let top_decile = by_model.len() / 10;
    let top_quartile = by_system.len() / 4;
    let true_top: std::collections::HashSet<_> = by_system[..top_quartile]
        .iter()
        .map(|r| format!("{}", r.config))
        .collect();
    let hits = by_model[..top_decile]
        .iter()
        .filter(|r| true_top.contains(&format!("{}", r.config)))
        .count();
    let overlap = hits as f64 / top_decile.max(1) as f64;
    assert!(
        overlap >= 0.8,
        "only {overlap:.2} of the model's top decile is in the true top quartile"
    );
}
