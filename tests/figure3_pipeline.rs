//! Experiment E6 — the paper's Figure 3: work-item pipelining of a kernel
//! with an inter-work-item data dependency.
//!
//! Figure 3 shows `add.cl` where work-item `i+1` consumes work-item `i`'s
//! store; the recurrence forces `II = MII = 2` with pipeline depth 6 in
//! the paper's toy latency setting. This test reproduces the *mechanism*
//! end-to-end on the real pipeline (frontend → IR → recurrence analysis →
//! SMS → model): the scheduler-level reproduction of the exact II = 2 /
//! D = 6 numbers lives in `flexcl-sched`'s unit tests with the paper's
//! latencies.

use flexcl_core::{estimate, KernelAnalysis, OptimizationConfig, Platform, Workload};
use flexcl_interp::KernelArg;

const DEPENDENT: &str = "
    __kernel void add(__global float* a, __global float* b) {
        int i = get_global_id(0);
        b[i + 1] = b[i] + a[i];
    }";

const INDEPENDENT: &str = "
    __kernel void add(__global float* a, __global float* b) {
        int i = get_global_id(0);
        b[i] = b[i] + a[i];
    }";

fn analyze(src: &str) -> KernelAnalysis {
    let program = flexcl_frontend::parse_and_check(src).expect("frontend");
    let func = flexcl_ir::lower_kernel(&program.kernels[0]).expect("lowering");
    let workload = Workload {
        args: vec![
            KernelArg::FloatBuf(vec![1.0; 1024]),
            KernelArg::FloatBuf(vec![0.0; 1025]),
        ],
        global: (1024, 1),
    };
    KernelAnalysis::analyze(&func, &Platform::virtex7_adm7v3(), &workload, (64, 1))
        .expect("analysis")
}

#[test]
fn dependent_kernel_has_distance_one_recurrence() {
    let analysis = analyze(DEPENDENT);
    assert_eq!(analysis.recurrences.len(), 1);
    assert_eq!(analysis.recurrences[0].distance, 1);
    assert!(analysis.rec_mii() > 1, "RecMII = {}", analysis.rec_mii());
}

#[test]
fn independent_kernel_reaches_ii_one() {
    let analysis = analyze(INDEPENDENT);
    assert!(analysis.recurrences.is_empty());
    assert_eq!(analysis.rec_mii(), 1);
    let cfg = OptimizationConfig {
        work_item_pipeline: true,
        ..OptimizationConfig::baseline((64, 1))
    };
    let est = estimate(&analysis, &cfg).expect("estimate");
    assert_eq!(est.ii_comp, 1, "no recurrence, ample resources: II = 1");
}

#[test]
fn recurrence_gates_the_pipelined_ii() {
    let dep = analyze(DEPENDENT);
    let cfg = OptimizationConfig {
        work_item_pipeline: true,
        ..OptimizationConfig::baseline((64, 1))
    };
    let est = estimate(&dep, &cfg).expect("estimate");
    assert_eq!(
        est.ii_comp,
        dep.rec_mii(),
        "the recurrence is the binding constraint"
    );
    assert!(est.depth > est.ii_comp, "pipeline deeper than its interval");
}

#[test]
fn pipelining_gains_less_under_recurrence() {
    // Work-item pipelining speeds up the independent kernel far more than
    // the dependent one — Figure 3's point: II is what pipelining buys,
    // and the recurrence caps it.
    let base = OptimizationConfig::baseline((64, 1));
    let piped = OptimizationConfig { work_item_pipeline: true, ..base };

    let dep = analyze(DEPENDENT);
    let ind = analyze(INDEPENDENT);
    let gain_dep = estimate(&dep, &base).expect("estimate").cycles / estimate(&dep, &piped).expect("estimate").cycles;
    let gain_ind = estimate(&ind, &base).expect("estimate").cycles / estimate(&ind, &piped).expect("estimate").cycles;
    assert!(
        gain_ind > gain_dep * 1.2,
        "independent gain {gain_ind:.2} vs dependent gain {gain_dep:.2}"
    );
}

#[test]
fn paper_figure3_numbers_at_paper_latencies() {
    // Direct reproduction of the II = 2, D = 6 example with the paper's
    // toy latencies, through the same scheduler the model uses.
    use flexcl_sched::{sms, ResourceBudget, ResourceClass, SchedGraph};
    let mut g = SchedGraph::new();
    let load = g.add_node(1, ResourceClass::LocalRead);
    let add = g.add_node(1, ResourceClass::Fabric);
    let store = g.add_node(0, ResourceClass::LocalWrite);
    let tail0 = g.add_node(2, ResourceClass::Fabric);
    let tail1 = g.add_node(2, ResourceClass::Fabric);
    g.add_edge(load, add);
    g.add_edge(add, store);
    g.add_edge_with_distance(store, load, 1);
    g.add_edge(add, tail0);
    g.add_edge(tail0, tail1);
    let s = sms::schedule(&g, &ResourceBudget::unconstrained(), 0);
    assert_eq!((s.ii, s.depth), (2, 6), "Figure 3: II_comp^wi = 2, D_comp^PE = 6");
}
