//! End-to-end pipeline integration: every stage assembled by hand, with
//! the intermediate artifacts checked along the way — frontend → IR →
//! interpreter/profiler → kernel analysis → model → System Run.

use flexcl_core::{estimate, CommMode, KernelAnalysis, OptimizationConfig, Platform, Workload};
use flexcl_interp::{run, KernelArg, NdRange, RunOptions};
use flexcl_ir::TripCount;
use flexcl_sim::{system_run, SimOptions};

const SRC: &str = "
    __kernel void smooth(__global float* in, __global float* out, int n, int radius) {
        int i = get_global_id(0);
        float acc = 0.0f;
        int count = 0;
        for (int d = -radius; d <= radius; d++) {
            int j = i + d;
            if (j >= 0 && j < n) {
                acc += in[j];
                count = count + 1;
            }
        }
        out[i] = acc / (float)count;
    }";

#[test]
fn every_stage_produces_consistent_artifacts() {
    // Stage 1: frontend.
    let program = flexcl_frontend::parse_and_check(SRC).expect("frontend");
    let kernel = program.kernel("smooth").expect("kernel exists");
    assert_eq!(kernel.params.len(), 4);

    // Stage 2: IR.
    let func = flexcl_ir::lower_kernel(kernel).expect("lowering");
    assert_eq!(func.validate(), Ok(()));
    assert_eq!(func.loops.len(), 1);
    // `for (d = -radius; ...)` has a dynamic bound: needs profiling.
    assert_eq!(func.loops[0].trip, TripCount::Profiled);

    // Stage 3: functional execution + profiling.
    let n = 1024u64;
    let radius = 3i64;
    let mut args = vec![
        KernelArg::FloatBuf(vec![2.0; n as usize]),
        KernelArg::FloatBuf(vec![0.0; n as usize]),
        KernelArg::Int(n as i64),
        KernelArg::Int(radius),
    ];
    let profile = run(
        &func,
        &mut args,
        NdRange::new_1d(n, 64),
        RunOptions::default(),
    )
    .expect("execution");
    // A smooth of a constant signal is the constant.
    let KernelArg::FloatBuf(out) = &args[1] else { panic!() };
    assert!(out.iter().all(|v| (*v - 2.0).abs() < 1e-9), "functional result");
    // The profiled trip count is 2·radius + 1.
    let trip = profile.trip_count(&func, flexcl_ir::LoopId(0));
    assert!((trip - 7.0).abs() < 1e-9, "trip {trip}");

    // Stage 4: analysis.
    let workload = Workload { args, global: (n, 1) };
    let platform = Platform::virtex7_adm7v3();
    let analysis =
        KernelAnalysis::analyze(&func, &platform, &workload, (64, 1)).expect("analysis");
    assert!(analysis.l_mem_wi() > 0.0);
    assert!(analysis.global_accesses_per_wi > 0.0);

    // Stage 5: model vs ground truth on a few configurations.
    for config in [
        OptimizationConfig::baseline((64, 1)),
        OptimizationConfig {
            work_item_pipeline: true,
            ..OptimizationConfig::baseline((64, 1))
        },
        OptimizationConfig {
            work_item_pipeline: true,
            comm_mode: CommMode::Pipeline,
            num_cus: 2,
            ..OptimizationConfig::baseline((64, 1))
        },
    ] {
        let est = estimate(&analysis, &config).expect("estimate");
        assert!(est.feasible);
        let sys = system_run(&func, &platform, &workload, &config, SimOptions::default())
            .expect("system run");
        let err = (est.cycles - sys.cycles).abs() / sys.cycles;
        assert!(
            err < 0.35,
            "config {config}: model {:.0} vs system {:.0} ({:.1}% off)",
            est.cycles,
            sys.cycles,
            err * 100.0
        );
    }
}

#[test]
fn exploration_is_fast_and_complete() {
    let program = flexcl_frontend::parse_and_check(SRC).expect("frontend");
    let func = flexcl_ir::lower_kernel(program.kernel("smooth").expect("k")).expect("lower");
    let workload = Workload {
        args: vec![
            KernelArg::FloatBuf(vec![1.0; 1024]),
            KernelArg::FloatBuf(vec![0.0; 1024]),
            KernelArg::Int(1024),
            KernelArg::Int(3),
        ],
        global: (1024, 1),
    };
    let start = std::time::Instant::now();
    let result = flexcl_core::explore(&func, &Platform::virtex7_adm7v3(), &workload)
        .expect("explore");
    assert!(result.points.len() > 100);
    assert!(
        start.elapsed().as_secs() < 30,
        "exploration must run in seconds, took {:?}",
        start.elapsed()
    );
    let best = result.best().expect("best point");
    assert!(best.config.work_item_pipeline, "best config pipelines: {}", best.config);
}
