//! Reproducibility: every stochastic component is seeded, so the whole
//! reproduction — workload generation, profiling, model, System Run —
//! must be bit-identical across runs.

use flexcl_bench::find_spec;
use flexcl_core::{
    estimate, explore, explore_with, DseOptions, KernelAnalysis, OptimizationConfig, Platform,
};
use flexcl_kernels::Scale;
use flexcl_sim::{system_run, SimOptions};

#[test]
fn workloads_are_deterministic() {
    let spec = find_spec("kmeans/center");
    let a = spec.workload(Scale::Test, 99);
    let spec = find_spec("kmeans/center");
    let b = spec.workload(Scale::Test, 99);
    assert_eq!(a.args, b.args);
}

#[test]
fn estimates_are_deterministic() {
    let spec = find_spec("polybench/atax");
    let func = flexcl_bench::compile(&spec);
    let workload = spec.workload(Scale::Test, 5);
    let platform = Platform::virtex7_adm7v3();
    let config = OptimizationConfig {
        work_item_pipeline: true,
        ..OptimizationConfig::baseline((64, 1))
    };
    let e1 = {
        let a = KernelAnalysis::analyze(&func, &platform, &workload, (64, 1)).expect("a");
        estimate(&a, &config).expect("estimate").cycles
    };
    let e2 = {
        let a = KernelAnalysis::analyze(&func, &platform, &workload, (64, 1)).expect("a");
        estimate(&a, &config).expect("estimate").cycles
    };
    assert_eq!(e1, e2);
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let spec = find_spec("polybench/atax");
    let func = flexcl_bench::compile(&spec);
    let workload = spec.workload(Scale::Test, 5);
    let platform = Platform::virtex7_adm7v3();
    let serial = explore(&func, &platform, &workload).expect("serial sweep");
    let parallel = explore_with(&func, &platform, &workload, DseOptions::parallel(4))
        .expect("parallel sweep");
    assert_eq!(serial.points.len(), parallel.points.len());
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.estimate, b.estimate, "{}", a.config);
    }
}

#[test]
fn cached_parallel_pruned_sweep_is_bit_identical_to_uncached_serial() {
    // The full optimization stack at once — worker threads, bound-based
    // pruning off (so the explored sets coincide), the process-wide
    // analysis cache, and the per-family schedule caches — merged back
    // together must reproduce the plain serial uncached sweep exactly:
    // same points in the same order with bit-identical estimates, same
    // diagnostics.
    let spec = find_spec("polybench/atax");
    let func = flexcl_bench::compile(&spec);
    let workload = spec.workload(Scale::Test, 5);
    let platform = Platform::virtex7_adm7v3();
    let uncached = explore_with(
        &func,
        &platform,
        &workload,
        DseOptions { reuse_analysis: false, ..DseOptions::default() },
    )
    .expect("serial uncached sweep");
    // Run twice so the second parallel sweep is served from a hot
    // analysis cache in every family.
    for pass in 0..2 {
        let cached = explore_with(
            &func,
            &platform,
            &workload,
            DseOptions { threads: 4, reuse_analysis: true, ..DseOptions::default() },
        )
        .expect("parallel cached sweep");
        assert_eq!(uncached.points.len(), cached.points.len(), "pass {pass}");
        for (a, b) in uncached.points.iter().zip(&cached.points) {
            assert_eq!(a.config, b.config, "pass {pass}");
            assert_eq!(a.estimate, b.estimate, "pass {pass}: {}", a.config);
        }
        assert_eq!(uncached.diagnostics, cached.diagnostics, "pass {pass}");
        if pass == 1 {
            assert!(
                cached.stats.analysis_cache_hits > 0,
                "second sweep must hit the analysis cache: {:?}",
                cached.stats
            );
        }
        assert!(
            cached.stats.sched_cache_hits > cached.stats.sched_cache_misses,
            "budget memoization must collapse most schedules: {:?}",
            cached.stats
        );
    }
}

#[test]
fn pruned_sweep_matches_exhaustive_best_on_polybench() {
    let spec = find_spec("polybench/atax");
    let func = flexcl_bench::compile(&spec);
    let workload = spec.workload(Scale::Test, 5);
    let platform = Platform::virtex7_adm7v3();
    let full = explore(&func, &platform, &workload).expect("exhaustive sweep");
    let pruned = explore_with(
        &func,
        &platform,
        &workload,
        DseOptions { prune: true, threads: 2, ..DseOptions::default() },
    )
    .expect("pruned sweep");
    let fb = full.best().expect("exhaustive best");
    let pb = pruned.best().expect("pruned best");
    assert_eq!(fb.config, pb.config);
    assert_eq!(fb.estimate.cycles, pb.estimate.cycles);
}

#[test]
fn system_runs_are_deterministic_and_seed_sensitive() {
    let spec = find_spec("nn/nn");
    let func = flexcl_bench::compile(&spec);
    let workload = spec.workload(Scale::Test, 5);
    let platform = Platform::virtex7_adm7v3();
    let config = OptimizationConfig {
        work_item_pipeline: true,
        ..OptimizationConfig::baseline((64, 1))
    };
    let r1 = system_run(&func, &platform, &workload, &config, SimOptions::default())
        .expect("run");
    let r2 = system_run(&func, &platform, &workload, &config, SimOptions::default())
        .expect("run");
    assert_eq!(r1, r2, "same seed, same bitstream, same measurement");

    let r3 = system_run(
        &func,
        &platform,
        &workload,
        &config,
        SimOptions { seed: 777, ..SimOptions::default() },
    )
    .expect("run");
    assert_ne!(
        r1.cycles, r3.cycles,
        "a different synthesis seed must perturb the measurement"
    );
}

#[test]
fn different_configs_get_different_synthesis_variance() {
    // The perturbation is keyed by configuration (like real synthesis):
    // two distinct configs must not share identical realized latencies by
    // construction.
    let spec = find_spec("srad/extract");
    let func = flexcl_bench::compile(&spec);
    let workload = spec.workload(Scale::Test, 5);
    let platform = Platform::virtex7_adm7v3();
    let a = system_run(
        &func,
        &platform,
        &workload,
        &OptimizationConfig {
            work_item_pipeline: true,
            ..OptimizationConfig::baseline((64, 1))
        },
        SimOptions::default(),
    )
    .expect("run");
    let b = system_run(
        &func,
        &platform,
        &workload,
        &OptimizationConfig {
            work_item_pipeline: true,
            ..OptimizationConfig::baseline((128, 1))
        },
        SimOptions::default(),
    )
    .expect("run");
    assert_ne!((a.ii, a.depth, a.cycles), (b.ii, b.depth, b.cycles));
}
