//! Data-flow-graph extraction.
//!
//! The schedulers in `flexcl-sched` operate on a generic dependence graph;
//! this module derives that graph from IR: def-use edges plus memory
//! ordering edges (store→load, store→store, load→store on the same root).
//! Private scalar slots participate like any other memory, which is exactly
//! what carries sequential dependencies of mutable variables.

use crate::function::{Function, InstId, MemRoot, Op, Value};
use std::collections::HashMap;

/// A dependence edge between two instructions of the same block (or of a
/// flattened instruction sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DepEdge {
    /// Producer instruction.
    pub from: InstId,
    /// Consumer instruction.
    pub to: InstId,
    /// Edge kind.
    pub kind: DepKind,
}

/// Kinds of dependence edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// True data dependence (def → use).
    Data,
    /// Memory ordering: the consumer must not be reordered before the
    /// producer (RAW/WAR/WAW through the same root object).
    Memory,
    /// Barrier ordering: everything before a barrier precedes everything
    /// after it.
    Barrier,
}

/// Builds dependence edges over an ordered instruction sequence.
///
/// The sequence is usually the instruction list of one basic block, but the
/// same routine serves flattened multi-block sequences when modeling merged
/// CDFG nodes.
///
/// Memory disambiguation: two accesses conflict when they touch the same
/// [`MemRoot`] and their indices are not provably different constants. This
/// is conservative but exact for the common `a[i]` patterns after constant
/// folding at lowering.
pub fn build_deps(func: &Function, seq: &[InstId]) -> Vec<DepEdge> {
    let mut edges = Vec::new();
    let in_seq: HashMap<InstId, usize> =
        seq.iter().enumerate().map(|(i, id)| (*id, i)).collect();

    // Def-use edges.
    for &id in seq {
        let inst = func.inst(id);
        for arg in &inst.args {
            if let Value::Inst(dep) = arg {
                if in_seq.contains_key(dep) {
                    edges.push(DepEdge { from: *dep, to: id, kind: DepKind::Data });
                }
            }
        }
    }

    // Memory ordering: scan pairs grouped by root.
    let mut by_root: HashMap<MemRoot, Vec<InstId>> = HashMap::new();
    let mut barriers: Vec<InstId> = Vec::new();
    for &id in seq {
        let inst = func.inst(id);
        match &inst.op {
            Op::Load { root, .. } | Op::Store { root, .. } => {
                by_root.entry(*root).or_default().push(id)
            }
            Op::Barrier => barriers.push(id),
            _ => {}
        }
    }
    for accesses in by_root.values() {
        for (i, &a) in accesses.iter().enumerate() {
            for &b in &accesses[i + 1..] {
                let (ia, ib) = (func.inst(a), func.inst(b));
                let both_loads =
                    matches!(ia.op, Op::Load { .. }) && matches!(ib.op, Op::Load { .. });
                if both_loads {
                    continue;
                }
                if indices_provably_disjoint(ia, ib) {
                    continue;
                }
                // Order by position in the sequence.
                let (first, second) = if in_seq[&a] < in_seq[&b] { (a, b) } else { (b, a) };
                edges.push(DepEdge { from: first, to: second, kind: DepKind::Memory });
            }
        }
    }

    // Barrier edges: barrier depends on all prior memory ops; all later
    // memory ops depend on the barrier. To keep the edge count linear we
    // chain through the barrier only.
    for &bar in &barriers {
        let bar_pos = in_seq[&bar];
        for &id in seq {
            let inst = func.inst(id);
            if !inst.op.is_memory() {
                continue;
            }
            let pos = in_seq[&id];
            if pos < bar_pos {
                edges.push(DepEdge { from: id, to: bar, kind: DepKind::Barrier });
            } else if pos > bar_pos {
                edges.push(DepEdge { from: bar, to: id, kind: DepKind::Barrier });
            }
        }
    }

    edges.sort_by_key(|e| (e.from, e.to));
    edges.dedup();
    edges
}

/// True when the two accesses use distinct constant indices.
fn indices_provably_disjoint(a: &crate::function::Inst, b: &crate::function::Inst) -> bool {
    let idx = |inst: &crate::function::Inst| inst.args.first().and_then(Value::as_const_int);
    match (idx(a), idx(b)) {
        (Some(x), Some(y)) => x != y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_kernel;
    use flexcl_frontend::parse_and_check;

    fn lower(src: &str) -> Function {
        let p = parse_and_check(src).expect("frontend");
        lower_kernel(&p.kernels[0]).expect("lowering")
    }

    fn all_insts(f: &Function) -> Vec<InstId> {
        f.insts.iter().map(|i| i.id).collect()
    }

    #[test]
    fn def_use_edges_exist() {
        let f = lower(
            "__kernel void k(__global int* a) {
                int i = get_global_id(0);
                a[i] = i + 1;
            }",
        );
        let edges = build_deps(&f, &all_insts(&f));
        assert!(edges.iter().any(|e| e.kind == DepKind::Data));
        // Every data edge goes forward in the arena (SSA construction order).
        for e in edges.iter().filter(|e| e.kind == DepKind::Data) {
            assert!(e.from < e.to, "{e:?}");
        }
    }

    #[test]
    fn store_load_same_root_ordered() {
        let f = lower(
            "__kernel void k(__global int* a, int n) {
                a[n] = 1;
                int x = a[n + 1];
                a[0] = x;
            }",
        );
        let edges = build_deps(&f, &all_insts(&f));
        // The store to a[n] and load of a[n+1] cannot be disambiguated
        // (indices are not constants), so a Memory edge must exist.
        assert!(edges.iter().any(|e| e.kind == DepKind::Memory));
    }

    #[test]
    fn constant_indices_disambiguate() {
        let f = lower(
            "__kernel void k(__global int* a) {
                __local int t[8];
                t[0] = 1;
                t[1] = 2;
                a[0] = t[0] + t[1];
            }",
        );
        let edges = build_deps(&f, &all_insts(&f));
        // Store t[0] and store t[1] are provably disjoint: no WAW edge
        // between them (they do have data edges to the loads).
        let store_ids: Vec<InstId> = f
            .insts
            .iter()
            .filter(|i| {
                matches!(&i.op, Op::Store { root: MemRoot::Alloca(_), .. })
                    && i.args[0].as_const_int().is_some()
            })
            .map(|i| i.id)
            .collect();
        assert!(store_ids.len() >= 2);
        let waw = edges.iter().any(|e| {
            e.kind == DepKind::Memory
                && store_ids.contains(&e.from)
                && store_ids.contains(&e.to)
        });
        assert!(!waw, "disjoint constant stores must not be ordered");
    }

    #[test]
    fn barrier_orders_memory() {
        let f = lower(
            "__kernel void k(__global int* a, __local int* t) {
                int l = get_local_id(0);
                t[l] = a[l];
                barrier(CLK_LOCAL_MEM_FENCE);
                a[l] = t[l];
            }",
        );
        let edges = build_deps(&f, &all_insts(&f));
        let bar = f.insts.iter().find(|i| matches!(i.op, Op::Barrier)).expect("barrier").id;
        assert!(edges.iter().any(|e| e.kind == DepKind::Barrier && e.to == bar));
        assert!(edges.iter().any(|e| e.kind == DepKind::Barrier && e.from == bar));
    }
}
