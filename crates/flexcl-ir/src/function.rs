//! Core IR data structures.
//!
//! The IR is a conventional CFG of basic blocks over an instruction arena.
//! It deliberately mirrors the observables FlexCL extracts from LLVM IR:
//! per-operation opcodes (for the latency database), explicit loads/stores
//! with address-space and *root object* information (for port counting and
//! memory-trace generation), and structured loop regions with trip counts
//! (for the CDFG of §3.2 of the paper).
//!
//! Mutable scalars are lowered to single-element private allocas accessed
//! through zero-latency loads/stores, so all data dependencies — including
//! loop-carried ones — flow through explicit instructions.

use flexcl_frontend::ast::{BinOp, UnOp};
use flexcl_frontend::builtins::{MathOp, WorkItemFn};
use flexcl_frontend::types::{AddressSpace, Type};
use std::fmt;

/// Index of an instruction in a function's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

/// Index of a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Index of a structured loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loop{}", self.0)
    }
}

/// A compile-time literal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Literal {
    /// Integer constant (covers bools: 0/1).
    Int(i64),
    /// Floating constant.
    Float(f64),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => write!(f, "{v:?}"),
        }
    }
}

/// An SSA-style value reference: a literal, an instruction result, or a
/// kernel parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A literal constant.
    Literal(Literal),
    /// The result of an instruction.
    Inst(InstId),
    /// The `n`-th kernel parameter.
    Param(u32),
}

impl Value {
    /// Integer-literal shorthand.
    pub fn int(v: i64) -> Value {
        Value::Literal(Literal::Int(v))
    }

    /// Float-literal shorthand.
    pub fn float(v: f64) -> Value {
        Value::Literal(Literal::Float(v))
    }

    /// Returns the literal integer if this is one.
    pub fn as_const_int(&self) -> Option<i64> {
        match self {
            Value::Literal(Literal::Int(v)) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Literal(l) => write!(f, "{l}"),
            Value::Inst(id) => write!(f, "{id}"),
            Value::Param(i) => write!(f, "$p{i}"),
        }
    }
}

/// The root object a memory access refers to.
///
/// Pointer arithmetic is folded into indices at lowering time, so every
/// load/store can be attributed to a kernel parameter or to a local alloca.
/// This is what makes the memory-trace and dependence analyses tractable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemRoot {
    /// A pointer kernel parameter (index into the parameter list).
    Param(u32),
    /// A `__local` or `__private` array (or scalar slot) alloca.
    Alloca(InstId),
}

impl fmt::Display for MemRoot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemRoot::Param(i) => write!(f, "$p{i}"),
            MemRoot::Alloca(id) => write!(f, "{id}"),
        }
    }
}

/// Instruction opcodes.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Binary arithmetic/logic/comparison; `args = [lhs, rhs]`.
    Bin(BinOp),
    /// Unary operation; `args = [operand]`.
    Un(UnOp),
    /// `args = [cond, then, else]`.
    Select,
    /// Numeric conversion to the instruction's result type; `args = [x]`.
    Convert,
    /// OpenCL math builtin; `args` per [`MathOp::arity`].
    Math(MathOp),
    /// Work-item geometry query; `args = [dim]` (constant).
    WorkItem(WorkItemFn),
    /// Storage allocation. Result is an address handle; `elems` is the number
    /// of elements of the instruction's result type.
    Alloca {
        /// Address space of the storage (`Local` or `Private`).
        space: AddressSpace,
        /// Number of elements.
        elems: u64,
    },
    /// Memory read; `args = [index]` (element units from the root).
    Load {
        /// Address space accessed.
        space: AddressSpace,
        /// Root object.
        root: MemRoot,
    },
    /// Memory write; `args = [index, value]`.
    Store {
        /// Address space accessed.
        space: AddressSpace,
        /// Root object.
        root: MemRoot,
    },
    /// Extract vector lane `lane`; `args = [vector]`.
    Extract(u8),
    /// Insert scalar into lane `lane`; `args = [vector, scalar]`.
    Insert(u8),
    /// Broadcast a scalar to all lanes; `args = [scalar]`.
    Splat,
    /// Work-group barrier.
    Barrier,
}

impl Op {
    /// Whether this opcode reads or writes memory.
    pub fn is_memory(&self) -> bool {
        matches!(self, Op::Load { .. } | Op::Store { .. })
    }

    /// The address space touched, if this is a memory access.
    pub fn mem_space(&self) -> Option<AddressSpace> {
        match self {
            Op::Load { space, .. } | Op::Store { space, .. } => Some(*space),
            _ => None,
        }
    }

    /// The root object touched, if this is a memory access.
    pub fn mem_root(&self) -> Option<MemRoot> {
        match self {
            Op::Load { root, .. } | Op::Store { root, .. } => Some(*root),
            _ => None,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Bin(b) => write!(f, "bin.{b}"),
            Op::Un(u) => write!(f, "un.{u}"),
            Op::Select => write!(f, "select"),
            Op::Convert => write!(f, "convert"),
            Op::Math(m) => write!(f, "math.{m}"),
            Op::WorkItem(w) => write!(f, "{w}"),
            Op::Alloca { space, elems } => write!(f, "alloca.{space} x{elems}"),
            Op::Load { space, root } => write!(f, "load.{space} {root}"),
            Op::Store { space, root } => write!(f, "store.{space} {root}"),
            Op::Extract(l) => write!(f, "extract.{l}"),
            Op::Insert(l) => write!(f, "insert.{l}"),
            Op::Splat => write!(f, "splat"),
            Op::Barrier => write!(f, "barrier"),
        }
    }
}

/// An instruction: opcode, result type and operands.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// This instruction's id (its index in [`Function::insts`]).
    pub id: InstId,
    /// Opcode.
    pub op: Op,
    /// Result type (`Type::Void` for stores/barriers).
    pub ty: Type,
    /// Operands.
    pub args: Vec<Value>,
}

/// How a basic block ends.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Br(BlockId),
    /// Conditional jump; `true` edge first.
    CondBr(Value, BlockId, BlockId),
    /// Kernel return.
    Ret,
}

impl Terminator {
    /// Successor blocks in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br(b) => vec![*b],
            Terminator::CondBr(_, t, f) => vec![*t, *f],
            Terminator::Ret => vec![],
        }
    }
}

/// A basic block: a list of instruction ids plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// This block's id.
    pub id: BlockId,
    /// Instructions in program order.
    pub insts: Vec<InstId>,
    /// Block terminator.
    pub term: Terminator,
}

/// Trip-count knowledge about a loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TripCount {
    /// Statically known iteration count.
    Static(u64),
    /// Unknown statically; must be measured by dynamic profiling
    /// (the `flexcl-interp` crate fills in the average).
    Profiled,
}

/// Structured-control-flow region tree produced by lowering.
///
/// Because kernels are lowered from a structured AST the region tree is
/// built for free; it plays the role of the simplified CDFG of §3.2 where
/// "basic blocks with complex control dependencies such as loops" are merged
/// into single nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum Region {
    /// A single basic block.
    Block(BlockId),
    /// Regions executed in sequence.
    Seq(Vec<Region>),
    /// Two-way branch; `cond_block` computes the condition.
    If {
        /// Block computing the condition.
        cond_block: BlockId,
        /// Taken region.
        then_region: Box<Region>,
        /// Not-taken region.
        else_region: Box<Region>,
    },
    /// A natural loop.
    Loop {
        /// Loop identity (indexes [`Function::loops`]).
        id: LoopId,
        /// Header block (condition check).
        header: BlockId,
        /// Loop body region.
        body: Box<Region>,
        /// Latch block (step computation).
        latch: Option<BlockId>,
    },
}

impl Region {
    /// Iterates over all block ids mentioned in the region tree.
    pub fn blocks(&self) -> Vec<BlockId> {
        let mut out = Vec::new();
        self.collect_blocks(&mut out);
        out
    }

    fn collect_blocks(&self, out: &mut Vec<BlockId>) {
        match self {
            Region::Block(b) => out.push(*b),
            Region::Seq(rs) => rs.iter().for_each(|r| r.collect_blocks(out)),
            Region::If { cond_block, then_region, else_region } => {
                out.push(*cond_block);
                then_region.collect_blocks(out);
                else_region.collect_blocks(out);
            }
            Region::Loop { header, body, latch, .. } => {
                out.push(*header);
                body.collect_blocks(out);
                if let Some(l) = latch {
                    out.push(*l);
                }
            }
        }
    }
}

/// Metadata about one structured loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopMeta {
    /// Loop identity.
    pub id: LoopId,
    /// Static trip-count knowledge.
    pub trip: TripCount,
    /// `#pragma unroll` factor (`0` = full unroll) if present in the source.
    pub unroll: Option<u32>,
    /// Whether `#pragma pipeline` requested loop pipelining.
    pub pipeline: bool,
    /// Header block.
    pub header: BlockId,
}

/// A kernel parameter as seen by the IR.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamInfo {
    /// Source name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
}

/// A lowered kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Kernel name.
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<ParamInfo>,
    /// Instruction arena; `insts[i].id == InstId(i)`.
    pub insts: Vec<Inst>,
    /// Basic blocks; `blocks[i].id == BlockId(i)`.
    pub blocks: Vec<Block>,
    /// Entry block (always `BlockId(0)`).
    pub entry: BlockId,
    /// Structured region tree covering all blocks.
    pub region: Region,
    /// Loop metadata, indexed by [`LoopId`].
    pub loops: Vec<LoopMeta>,
    /// Required work-group size from the source attribute, if any.
    pub reqd_work_group_size: Option<(u32, u32, u32)>,
    /// Whether the source requested work-item pipelining.
    pub pipeline_workitems: bool,
}

impl Function {
    /// Returns an instruction by id.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.0 as usize]
    }

    /// Returns a block by id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Iterates over all instructions of a block.
    pub fn block_insts(&self, id: BlockId) -> impl Iterator<Item = &Inst> + '_ {
        self.block(id).insts.iter().map(|i| self.inst(*i))
    }

    /// Whether the kernel contains a barrier anywhere.
    pub fn has_barrier(&self) -> bool {
        self.insts.iter().any(|i| matches!(i.op, Op::Barrier))
    }

    /// All global-memory accesses (loads and stores), in arena order.
    pub fn global_accesses(&self) -> Vec<InstId> {
        self.insts
            .iter()
            .filter(|i| i.op.mem_space() == Some(AddressSpace::Global))
            .map(|i| i.id)
            .collect()
    }

    /// Counts loads and stores to `space` in the whole function.
    pub fn count_accesses(&self, space: AddressSpace) -> (usize, usize) {
        let mut loads = 0;
        let mut stores = 0;
        for i in &self.insts {
            match &i.op {
                Op::Load { space: s, .. } if *s == space => loads += 1,
                Op::Store { space: s, .. } if *s == space => stores += 1,
                _ => {}
            }
        }
        (loads, stores)
    }

    /// Total `__local` bytes allocated by the kernel (per work-group).
    pub fn local_bytes(&self) -> u64 {
        self.insts
            .iter()
            .filter_map(|i| match &i.op {
                Op::Alloca { space: AddressSpace::Local, elems } => {
                    Some(elems * i.ty.bytes().unwrap_or(4))
                }
                _ => None,
            })
            .sum()
    }

    /// Basic structural validation: operand references resolve, blocks are
    /// correctly numbered, region tree covers every block exactly once.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (i, inst) in self.insts.iter().enumerate() {
            if inst.id.0 as usize != i {
                return Err(format!("instruction {i} has mismatched id {}", inst.id));
            }
            for a in &inst.args {
                if let Value::Inst(dep) = a {
                    if dep.0 as usize >= self.insts.len() {
                        return Err(format!("{} references unknown {dep}", inst.id));
                    }
                }
                if let Value::Param(p) = a {
                    if *p as usize >= self.params.len() {
                        return Err(format!("{} references unknown param {p}", inst.id));
                    }
                }
            }
        }
        for (i, block) in self.blocks.iter().enumerate() {
            if block.id.0 as usize != i {
                return Err(format!("block {i} has mismatched id {}", block.id));
            }
            for s in block.term.successors() {
                if s.0 as usize >= self.blocks.len() {
                    return Err(format!("{} jumps to unknown {s}", block.id));
                }
            }
        }
        let mut seen = vec![false; self.blocks.len()];
        for b in self.region.blocks() {
            let idx = b.0 as usize;
            if idx >= seen.len() {
                return Err(format!("region references unknown {b}"));
            }
            if seen[idx] {
                return Err(format!("region mentions {b} twice"));
            }
            seen[idx] = true;
        }
        if let Some(missing) = seen.iter().position(|s| !s) {
            return Err(format!("region tree does not cover bb{missing}"));
        }
        Ok(())
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel @{}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", p.name, p.ty)?;
        }
        writeln!(f, ")")?;
        for b in &self.blocks {
            writeln!(f, "{}:", b.id)?;
            for id in &b.insts {
                let inst = self.inst(*id);
                write!(f, "  {} = {}", inst.id, inst.op)?;
                for a in &inst.args {
                    write!(f, " {a}")?;
                }
                writeln!(f, " : {}", inst.ty)?;
            }
            match &b.term {
                Terminator::Br(t) => writeln!(f, "  br {t}")?,
                Terminator::CondBr(c, t, e) => writeln!(f, "  br {c} ? {t} : {e}")?,
                Terminator::Ret => writeln!(f, "  ret")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Br(BlockId(1)).successors(), vec![BlockId(1)]);
        assert_eq!(
            Terminator::CondBr(Value::int(1), BlockId(1), BlockId(2)).successors(),
            vec![BlockId(1), BlockId(2)]
        );
        assert!(Terminator::Ret.successors().is_empty());
    }

    #[test]
    fn value_const_int() {
        assert_eq!(Value::int(7).as_const_int(), Some(7));
        assert_eq!(Value::float(7.0).as_const_int(), None);
        assert_eq!(Value::Param(0).as_const_int(), None);
    }

    #[test]
    fn op_memory_helpers() {
        let load = Op::Load { space: AddressSpace::Global, root: MemRoot::Param(0) };
        assert!(load.is_memory());
        assert_eq!(load.mem_space(), Some(AddressSpace::Global));
        assert_eq!(load.mem_root(), Some(MemRoot::Param(0)));
        assert!(!Op::Barrier.is_memory());
    }

    #[test]
    fn function_display_is_readable() {
        use flexcl_frontend::parse_and_check;
        let p = parse_and_check(
            "__kernel void k(__global int* a) { a[get_global_id(0)] = 1; }",
        )
        .expect("frontend");
        let func = crate::lower::lower_kernel(&p.kernels[0]).expect("lowering");
        let text = func.to_string();
        assert!(text.contains("kernel @k"));
        assert!(text.contains("store.__global $p0"));
        assert!(text.contains("get_global_id"));
        assert!(text.contains("ret"));
    }

    #[test]
    fn region_block_collection() {
        let r = Region::Seq(vec![
            Region::Block(BlockId(0)),
            Region::If {
                cond_block: BlockId(1),
                then_region: Box::new(Region::Block(BlockId(2))),
                else_region: Box::new(Region::Block(BlockId(3))),
            },
            Region::Block(BlockId(4)),
        ]);
        assert_eq!(
            r.blocks(),
            vec![BlockId(0), BlockId(1), BlockId(2), BlockId(3), BlockId(4)]
        );
    }
}
