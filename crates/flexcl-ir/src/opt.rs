//! IR cleanup passes: constant folding, local common-subexpression
//! elimination, and dead-code elimination.
//!
//! Clang runs the equivalent passes before FlexCL sees LLVM IR; without
//! them, the lowering's bookkeeping (index arithmetic with literal zeros,
//! repeated address computations) would be charged as real datapath
//! operations and bias every latency estimate upward. The passes are
//! deliberately conservative: they never touch memory operations, barriers
//! or anything with side effects.

use crate::function::{Block, Function, Inst, InstId, Literal, Op, Terminator, Value};
use flexcl_frontend::ast::{BinOp, UnOp};
use std::collections::HashMap;

/// Runs the standard pass pipeline to a fixpoint (bounded).
///
/// Returns the number of instructions removed.
pub fn optimize(func: &mut Function) -> usize {
    let before = live_count(func);
    for _ in 0..4 {
        let changed = constant_fold(func) | local_cse(func);
        dead_code_elim(func);
        if !changed {
            break;
        }
    }
    before - live_count(func)
}

fn live_count(func: &Function) -> usize {
    func.blocks.iter().map(|b| b.insts.len()).sum()
}

/// Whether an instruction has effects beyond its result value.
fn has_side_effects(inst: &Inst) -> bool {
    matches!(inst.op, Op::Store { .. } | Op::Barrier | Op::Alloca { .. })
}

/// Whether an instruction's value may change between executions (loads,
/// work-item queries are fixed per work-item but loads may see new data).
fn is_pure(inst: &Inst) -> bool {
    !matches!(
        inst.op,
        Op::Store { .. } | Op::Barrier | Op::Alloca { .. } | Op::Load { .. }
    )
}

// ---------------------------------------------------------------- folding

/// Folds operations whose operands are literals. Returns true on change.
pub fn constant_fold(func: &mut Function) -> bool {
    let mut changed = false;
    // Replacement map: instruction result → literal value.
    let mut folded: HashMap<InstId, Value> = HashMap::new();

    for idx in 0..func.insts.len() {
        // Substitute operands already known to be literals.
        let mut inst = func.insts[idx].clone();
        for a in &mut inst.args {
            if let Value::Inst(id) = a {
                if let Some(v) = folded.get(id) {
                    *a = *v;
                    changed = true;
                }
            }
        }
        if let Some(lit) = fold_inst(&inst) {
            folded.insert(inst.id, lit);
        }
        func.insts[idx] = inst;
    }
    changed
}

/// Evaluates a pure instruction over literal operands.
fn fold_inst(inst: &Inst) -> Option<Value> {
    if !is_pure(inst) {
        return None;
    }
    let lit = |v: &Value| match v {
        Value::Literal(l) => Some(*l),
        _ => None,
    };
    match &inst.op {
        Op::Bin(op) => {
            let a = lit(inst.args.first()?)?;
            let b = lit(inst.args.get(1)?)?;
            let folded = fold_bin(*op, a, b, inst.ty.is_float())?;
            Some(truncate_to(&inst.ty, folded))
        }
        Op::Un(op) => {
            let a = lit(inst.args.first()?)?;
            Some(match (op, a) {
                (UnOp::Neg, Literal::Int(v)) => truncate_to(&inst.ty, Value::int(v.wrapping_neg())),
                (UnOp::Neg, Literal::Float(v)) => Value::float(-v),
                (UnOp::Not, Literal::Int(v)) => Value::int(i64::from(v == 0)),
                (UnOp::Not, Literal::Float(v)) => Value::int(i64::from(v == 0.0)),
                (UnOp::BitNot, Literal::Int(v)) => truncate_to(&inst.ty, Value::int(!v)),
                (UnOp::BitNot, Literal::Float(_)) => return None,
            })
        }
        Op::Select => {
            let c = lit(inst.args.first()?)?;
            let taken = match c {
                Literal::Int(v) => v != 0,
                Literal::Float(v) => v != 0.0,
            };
            let pick = if taken { inst.args.get(1)? } else { inst.args.get(2)? };
            lit(pick).map(Value::Literal)
        }
        Op::Convert => {
            let a = lit(inst.args.first()?)?;
            Some(if inst.ty.is_float() {
                match a {
                    Literal::Int(v) => Value::float(v as f64),
                    Literal::Float(v) => Value::float(v),
                }
            } else {
                match a {
                    Literal::Int(v) => Value::int(v),
                    Literal::Float(v) => Value::int(v as i64),
                }
            })
        }
        _ => None,
    }
}

/// Wraps a folded integer to the width and signedness of `ty`, mirroring
/// the interpreter's storage semantics exactly (the property tests compare
/// the two paths bit-for-bit).
fn truncate_to(ty: &flexcl_frontend::types::Type, v: Value) -> Value {
    use flexcl_frontend::types::Scalar;
    let Value::Literal(Literal::Int(x)) = v else { return v };
    let s = ty.element_scalar().unwrap_or(Scalar::I64);
    let t = match s {
        Scalar::Bool => i64::from(x != 0),
        Scalar::I8 => x as i8 as i64,
        Scalar::U8 => x as u8 as i64,
        Scalar::I16 => x as i16 as i64,
        Scalar::U16 => x as u16 as i64,
        Scalar::I32 => x as i32 as i64,
        Scalar::U32 => x as u32 as i64,
        _ => x,
    };
    Value::int(t)
}

fn fold_bin(op: BinOp, a: Literal, b: Literal, float_result: bool) -> Option<Value> {
    use Literal::*;
    // Algebraic identities with one literal are handled by callers via
    // full-literal folding only; keep this total on literal pairs.
    let as_f = |l: Literal| match l {
        Int(v) => v as f64,
        Float(v) => v,
    };
    let both_int = matches!((a, b), (Int(_), Int(_)));
    if both_int && !float_result {
        let (Int(x), Int(y)) = (a, b) else { unreachable!() };
        let v = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    return None;
                }
                x.wrapping_div(y)
            }
            BinOp::Rem => {
                if y == 0 {
                    return None;
                }
                x.wrapping_rem(y)
            }
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32 & 63),
            BinOp::Shr => x.wrapping_shr(y as u32 & 63),
            BinOp::Lt => i64::from(x < y),
            BinOp::Gt => i64::from(x > y),
            BinOp::Le => i64::from(x <= y),
            BinOp::Ge => i64::from(x >= y),
            BinOp::Eq => i64::from(x == y),
            BinOp::Ne => i64::from(x != y),
            BinOp::LogAnd => i64::from(x != 0 && y != 0),
            BinOp::LogOr => i64::from(x != 0 || y != 0),
        };
        return Some(Value::int(v));
    }
    let (x, y) = (as_f(a), as_f(b));
    let v = match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::Lt => return Some(Value::int(i64::from(x < y))),
        BinOp::Gt => return Some(Value::int(i64::from(x > y))),
        BinOp::Le => return Some(Value::int(i64::from(x <= y))),
        BinOp::Ge => return Some(Value::int(i64::from(x >= y))),
        BinOp::Eq => return Some(Value::int(i64::from(x == y))),
        BinOp::Ne => return Some(Value::int(i64::from(x != y))),
        _ => return None,
    };
    Some(if float_result { Value::float(v) } else { Value::int(v as i64) })
}

// -------------------------------------------------------------------- CSE

/// Local (per-block) common-subexpression elimination over pure ops and
/// over loads whose memory version has not changed.
///
/// Loads participate with a per-root version that bumps on every store to
/// the same root and on barriers: two loads of the same address at the
/// same version are redundant, exactly as HLS merges them. Returns true on
/// change.
pub fn local_cse(func: &mut Function) -> bool {
    let mut changed = false;
    let mut replace: HashMap<InstId, InstId> = HashMap::new();

    for b in 0..func.blocks.len() {
        let mut seen: HashMap<String, InstId> = HashMap::new();
        let mut versions: HashMap<crate::function::MemRoot, u64> = HashMap::new();
        let mut epoch: u64 = 0;
        for &iid in &func.blocks[b].insts {
            let inst = &func.insts[iid.0 as usize];
            match &inst.op {
                Op::Store { root, .. } => {
                    *versions.entry(*root).or_insert(0) += 1;
                    continue;
                }
                Op::Barrier => {
                    epoch += 1;
                    versions.clear();
                    continue;
                }
                _ => {}
            }
            let key = if let Op::Load { root, .. } = &inst.op {
                let v = versions.get(root).copied().unwrap_or(0);
                format!("{:?}|{}|{:?}|v{}e{}", inst.op, inst.ty, inst.args, v, epoch)
            } else if is_pure(inst) && !inst.args.is_empty() {
                format!("{:?}|{}|{:?}", inst.op, inst.ty, inst.args)
            } else {
                continue;
            };
            match seen.get(&key) {
                Some(prev) => {
                    replace.insert(iid, *prev);
                    changed = true;
                }
                None => {
                    seen.insert(key, iid);
                }
            }
        }
    }
    if replace.is_empty() {
        return false;
    }
    // Rewrite uses (chase chains defensively).
    let resolve = |mut id: InstId| {
        let mut hops = 0;
        while let Some(next) = replace.get(&id) {
            id = *next;
            hops += 1;
            if hops > replace.len() {
                break;
            }
        }
        id
    };
    for inst in &mut func.insts {
        for a in &mut inst.args {
            if let Value::Inst(id) = a {
                let r = resolve(*id);
                if r != *id {
                    *a = Value::Inst(r);
                }
            }
        }
    }
    for block in &mut func.blocks {
        if let Terminator::CondBr(Value::Inst(id), t, f) = block.term.clone() {
            let r = resolve(id);
            if r != id {
                block.term = Terminator::CondBr(Value::Inst(r), t, f);
            }
        }
    }
    changed
}

// -------------------------------------------------------------------- DCE

/// Removes pure instructions whose results are never used. The arena keeps
/// the instruction slots (ids are stable); only block membership changes.
pub fn dead_code_elim(func: &mut Function) -> bool {
    let mut used = vec![false; func.insts.len()];
    for inst in &func.insts {
        for a in &inst.args {
            if let Value::Inst(id) = a {
                used[id.0 as usize] = true;
            }
        }
    }
    for block in &func.blocks {
        if let Terminator::CondBr(Value::Inst(id), _, _) = &block.term {
            used[id.0 as usize] = true;
        }
    }
    // Iterate: removing a dead op may free its operands.
    let mut changed_any = false;
    loop {
        let mut removed = false;
        for block in &mut func.blocks {
            block.insts.retain(|iid| {
                let inst = &func.insts[iid.0 as usize];
                let keep = has_side_effects(inst) || used[iid.0 as usize];
                if !keep {
                    removed = true;
                }
                keep
            });
        }
        if !removed {
            break;
        }
        changed_any = true;
        // Recompute uses from surviving instructions.
        used.iter_mut().for_each(|u| *u = false);
        let live: Vec<InstId> =
            func.blocks.iter().flat_map(|b| b.insts.iter().copied()).collect();
        for iid in live {
            for a in &func.insts[iid.0 as usize].args.clone() {
                if let Value::Inst(id) = a {
                    used[id.0 as usize] = true;
                }
            }
        }
        for block in &func.blocks {
            if let Terminator::CondBr(Value::Inst(id), _, _) = &block.term {
                used[id.0 as usize] = true;
            }
        }
    }
    changed_any
}

/// Access to blocks for tests.
pub fn block_live_insts(func: &Function) -> Vec<&Block> {
    func.blocks.iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_kernel;
    use flexcl_frontend::parse_and_check;

    fn lowered(src: &str) -> Function {
        let p = parse_and_check(src).expect("frontend");
        lower_kernel(&p.kernels[0]).expect("lowering")
    }

    fn optimized(src: &str) -> (Function, usize) {
        let mut f = lowered(src);
        let removed = optimize(&mut f);
        (f, removed)
    }

    #[test]
    fn folds_constant_arithmetic() {
        let (f, removed) = optimized(
            "__kernel void k(__global int* a) {
                int x = 3 * 4 + 2;
                a[get_global_id(0)] = x;
            }",
        );
        assert!(removed > 0);
        // The store's value operand must have become the literal 14 after
        // slot-forwarding is out of scope — at minimum the arithmetic ops
        // are gone from the blocks.
        let live_bins = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(f.inst(**i).op, Op::Bin(_)))
            .count();
        assert_eq!(live_bins, 0, "all arithmetic folded away");
    }

    #[test]
    fn cse_merges_repeated_address_math() {
        let src = "__kernel void k(__global float* a, int n) {
            int i = get_global_id(0);
            a[i * n + 1] = a[i * n] + 1.0f;
        }";
        let before = {
            let f = lowered(src);
            f.blocks.iter().map(|b| b.insts.len()).sum::<usize>()
        };
        let (f, removed) = optimized(src);
        let after: usize = f.blocks.iter().map(|b| b.insts.len()).sum();
        assert!(removed > 0, "i*n computed twice, merged once");
        assert!(after < before);
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn dce_preserves_side_effects() {
        let (f, _) = optimized(
            "__kernel void k(__global int* a, __local int* t) {
                int unused = 40 + 2;
                t[get_local_id(0)] = a[0];
                barrier(CLK_LOCAL_MEM_FENCE);
                a[0] = t[0];
            }",
        );
        assert!(f.has_barrier(), "barrier survives DCE");
        let (loads, stores) = f.count_accesses(flexcl_frontend::types::AddressSpace::Local);
        assert_eq!((loads, stores), (1, 1), "local traffic survives DCE");
    }

    #[test]
    fn loads_are_never_cse_merged() {
        // Two loads of the same address may see different values (another
        // work-item's store could intervene): they must both survive.
        let (f, _) = optimized(
            "__kernel void k(__global int* a) {
                int x = a[0];
                a[1] = x;
                int y = a[0];
                a[2] = y;
            }",
        );
        let (loads, _) = f.count_accesses(flexcl_frontend::types::AddressSpace::Global);
        assert_eq!(loads, 2);
    }

    #[test]
    fn fixpoint_terminates_and_validates() {
        for spec_src in [
            "__kernel void k(__global float* a) {
                float s = 0.0f;
                for (int i = 0; i < 16; i++) { s += a[i] * 2.0f * 1.0f; }
                a[0] = s;
            }",
            "__kernel void k(__global int* a, int n) {
                int i = get_global_id(0);
                if (i < n && i >= 0) { a[i] = i % 3 + 7 * 0; }
            }",
        ] {
            let (f, _) = optimized(spec_src);
            assert_eq!(f.validate(), Ok(()));
        }
    }
}
