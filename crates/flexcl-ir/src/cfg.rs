//! Small CFG utilities: successors, predecessors, reverse postorder and
//! reachability.

use crate::function::{BlockId, Function};

/// Successor blocks of `b`.
pub fn successors(func: &Function, b: BlockId) -> Vec<BlockId> {
    func.block(b).term.successors()
}

/// Predecessor lists for every block, indexed by block id.
pub fn predecessors(func: &Function) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); func.blocks.len()];
    for block in &func.blocks {
        for s in block.term.successors() {
            preds[s.0 as usize].push(block.id);
        }
    }
    preds
}

/// Reverse postorder over the CFG starting from the entry block.
///
/// Unreachable blocks (dead code after early `return`/`break`) are appended
/// at the end in id order so every block appears exactly once.
pub fn reverse_postorder(func: &Function) -> Vec<BlockId> {
    let n = func.blocks.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with explicit stack of (block, next-successor-index).
    let mut stack: Vec<(BlockId, usize)> = vec![(func.entry, 0)];
    visited[func.entry.0 as usize] = true;
    while let Some((b, i)) = stack.pop() {
        let succs = successors(func, b);
        if i < succs.len() {
            stack.push((b, i + 1));
            let s = succs[i];
            if !visited[s.0 as usize] {
                visited[s.0 as usize] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
        }
    }
    post.reverse();
    for (i, v) in visited.iter().enumerate() {
        if !v {
            post.push(BlockId(i as u32));
        }
    }
    post
}

/// Blocks reachable from the entry.
pub fn reachable(func: &Function) -> Vec<bool> {
    let mut seen = vec![false; func.blocks.len()];
    let mut work = vec![func.entry];
    seen[func.entry.0 as usize] = true;
    while let Some(b) = work.pop() {
        for s in successors(func, b) {
            if !seen[s.0 as usize] {
                seen[s.0 as usize] = true;
                work.push(s);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_kernel;
    use flexcl_frontend::parse_and_check;

    fn lower(src: &str) -> Function {
        let p = parse_and_check(src).expect("frontend");
        lower_kernel(&p.kernels[0]).expect("lowering")
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_all_blocks() {
        let f = lower(
            "__kernel void k(__global int* a, int n) {
                int i = get_global_id(0);
                if (i < n) { a[i] = 1; } else { a[i] = 2; }
                for (int j = 0; j < 4; j++) { a[j] = j; }
            }",
        );
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], f.entry);
        assert_eq!(rpo.len(), f.blocks.len());
        let mut sorted: Vec<u32> = rpo.iter().map(|b| b.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..f.blocks.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn predecessors_are_consistent_with_successors() {
        let f = lower(
            "__kernel void k(__global int* a) {
                for (int i = 0; i < 4; i++) { a[i] = i; }
            }",
        );
        let preds = predecessors(&f);
        for block in &f.blocks {
            for s in successors(&f, block.id) {
                assert!(preds[s.0 as usize].contains(&block.id));
            }
        }
    }

    #[test]
    fn loop_header_is_reachable_and_has_two_preds() {
        let f = lower(
            "__kernel void k(__global int* a) {
                for (int i = 0; i < 4; i++) { a[i] = i; }
            }",
        );
        let header = f.loops[0].header;
        let preds = predecessors(&f);
        assert_eq!(preds[header.0 as usize].len(), 2, "preheader + latch");
        assert!(reachable(&f)[header.0 as usize]);
    }
}
