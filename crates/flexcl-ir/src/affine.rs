//! Affine index analysis and inter-work-item recurrence detection.
//!
//! FlexCL derives `RecMII` from static data dependences between successive
//! work-items (§3.3.1, refs [22, 23]). In the OpenCL setting such a
//! dependence arises when one work-item stores to a shared array at an
//! index that a *later* work-item loads: e.g. for `b[i+1] = f(b[i])` with
//! `i = get_global_id(0)`, work-item `i+1` reads what work-item `i` wrote —
//! a recurrence of distance 1 (the Figure 3 example of the paper).
//!
//! This module recognises indices of the affine form
//! `a·gid + b·lid + c` and reports `(load, store, distance)` triples; the
//! scheduler turns them into `RecMII = ceil(latency(load→store) / distance)`.

use crate::function::{Function, InstId, Literal, MemRoot, Op, Value};
use flexcl_frontend::ast::{BinOp, UnOp};
use flexcl_frontend::builtins::WorkItemFn;
use flexcl_frontend::types::AddressSpace;
use std::collections::HashMap;

/// An affine expression `g·gid0 + l·lid0 + c`, or "not affine".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Affine {
    /// Coefficient of `get_global_id(0)`.
    pub gid: i64,
    /// Coefficient of `get_local_id(0)`.
    pub lid: i64,
    /// Constant term.
    pub c: i64,
}

impl Affine {
    /// The constant `c`.
    pub fn constant(c: i64) -> Affine {
        Affine { gid: 0, lid: 0, c }
    }

    fn add(self, o: Affine) -> Affine {
        Affine { gid: self.gid + o.gid, lid: self.lid + o.lid, c: self.c + o.c }
    }

    fn sub(self, o: Affine) -> Affine {
        Affine { gid: self.gid - o.gid, lid: self.lid - o.lid, c: self.c - o.c }
    }

    fn neg(self) -> Affine {
        Affine { gid: -self.gid, lid: -self.lid, c: -self.c }
    }

    fn mul_const(self, k: i64) -> Affine {
        Affine { gid: self.gid * k, lid: self.lid * k, c: self.c * k }
    }

    fn as_const(self) -> Option<i64> {
        (self.gid == 0 && self.lid == 0).then_some(self.c)
    }
}

/// Computes affine forms for every instruction result where possible.
///
/// Private scalar slots with exactly one store propagate the stored value;
/// slots stored more than once (loop induction variables) are treated as
/// unknown, which keeps the analysis sound.
pub fn analyze(func: &Function) -> HashMap<InstId, Affine> {
    // Pass 1: count stores per private slot and record the stored value.
    let mut slot_value: HashMap<InstId, Option<Value>> = HashMap::new();
    for inst in &func.insts {
        if let Op::Store { space: AddressSpace::Private, root: MemRoot::Alloca(slot) } = inst.op {
            slot_value
                .entry(slot)
                .and_modify(|v| *v = None) // multiple stores: unknown
                .or_insert(Some(inst.args[1]));
        }
    }

    // Pass 2: forward propagation in arena order (construction order is a
    // topological order of def-use, so one pass suffices).
    let mut out: HashMap<InstId, Affine> = HashMap::new();
    for inst in &func.insts {
        if let Some(a) = infer_one(inst, &slot_value, &out) {
            out.insert(inst.id, a);
        }
    }
    out
}

fn infer_one(
    inst: &crate::function::Inst,
    slot_value: &HashMap<InstId, Option<Value>>,
    out: &HashMap<InstId, Affine>,
) -> Option<Affine> {
    let value_of = |v: &Value| -> Option<Affine> {
        match v {
            Value::Literal(Literal::Int(i)) => Some(Affine::constant(*i)),
            Value::Inst(id) => out.get(id).copied(),
            _ => None,
        }
    };
    match &inst.op {
        Op::WorkItem(WorkItemFn::GlobalId) if inst.args[0].as_const_int() == Some(0) => {
            Some(Affine { gid: 1, lid: 0, c: 0 })
        }
        Op::WorkItem(WorkItemFn::LocalId) if inst.args[0].as_const_int() == Some(0) => {
            Some(Affine { gid: 0, lid: 1, c: 0 })
        }
        Op::Bin(BinOp::Add) => Some(value_of(&inst.args[0])?.add(value_of(&inst.args[1])?)),
        Op::Bin(BinOp::Sub) => Some(value_of(&inst.args[0])?.sub(value_of(&inst.args[1])?)),
        Op::Bin(BinOp::Mul) => {
            let a = value_of(&inst.args[0])?;
            let b = value_of(&inst.args[1])?;
            match (a.as_const(), b.as_const()) {
                (Some(k), _) => Some(b.mul_const(k)),
                (_, Some(k)) => Some(a.mul_const(k)),
                _ => None,
            }
        }
        Op::Bin(BinOp::Shl) => {
            let a = value_of(&inst.args[0])?;
            let b = value_of(&inst.args[1])?;
            b.as_const().map(|k| a.mul_const(1 << k.clamp(0, 62)))
        }
        Op::Un(UnOp::Neg) => value_of(&inst.args[0]).map(Affine::neg),
        Op::Convert => value_of(&inst.args[0]),
        Op::Load { space: AddressSpace::Private, root: MemRoot::Alloca(slot) } => {
            match slot_value.get(slot) {
                Some(Some(v)) => value_of(v),
                _ => None,
            }
        }
        _ => None,
    }
}

/// An inter-work-item recurrence through shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recurrence {
    /// The load that observes a previous work-item's store.
    pub load: InstId,
    /// The store a later work-item depends on.
    pub store: InstId,
    /// Work-item distance of the dependence (≥ 1).
    pub distance: u32,
}

/// Finds inter-work-item recurrences: store/load pairs on the same shared
/// root whose indices are affine in `gid` (or `lid`) with the same
/// coefficient and a positive work-item distance.
pub fn find_recurrences(func: &Function) -> Vec<Recurrence> {
    let affine = analyze(func);
    let mut recs = Vec::new();

    let accesses: Vec<&crate::function::Inst> = func
        .insts
        .iter()
        .filter(|i| {
            matches!(
                i.op.mem_space(),
                Some(AddressSpace::Global) | Some(AddressSpace::Local)
            )
        })
        .collect();

    for store in accesses.iter().filter(|i| matches!(i.op, Op::Store { .. })) {
        for load in accesses.iter().filter(|i| matches!(i.op, Op::Load { .. })) {
            if store.op.mem_root() != load.op.mem_root() {
                continue;
            }
            let (Some(si), Some(li)) = (
                index_affine(store, &affine),
                index_affine(load, &affine),
            ) else {
                continue;
            };
            // Same linear coefficient in the work-item id.
            let (coef_s, coef_l) = if si.gid != 0 || li.gid != 0 {
                (si.gid, li.gid)
            } else {
                (si.lid, li.lid)
            };
            if coef_s == 0 || coef_s != coef_l {
                continue;
            }
            let delta = si.c - li.c;
            if delta == 0 || delta % coef_s != 0 {
                continue;
            }
            let distance = delta / coef_s;
            if distance > 0 {
                recs.push(Recurrence {
                    load: load.id,
                    store: store.id,
                    distance: distance as u32,
                });
            }
        }
    }
    recs.sort_by_key(|r| (r.load, r.store));
    recs
}

fn index_affine(
    inst: &crate::function::Inst,
    affine: &HashMap<InstId, Affine>,
) -> Option<Affine> {
    match &inst.args[0] {
        Value::Literal(Literal::Int(i)) => Some(Affine::constant(*i)),
        Value::Inst(id) => affine.get(id).copied(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_kernel;
    use flexcl_frontend::parse_and_check;

    fn lower(src: &str) -> Function {
        let p = parse_and_check(src).expect("frontend");
        lower_kernel(&p.kernels[0]).expect("lowering")
    }

    #[test]
    fn figure3_style_recurrence_detected() {
        // b[i+1] = b[i] + a[i]: work-item i+1 reads work-item i's store.
        let f = lower(
            "__kernel void k(__global float* a, __global float* b) {
                int i = get_global_id(0);
                b[i + 1] = b[i] + a[i];
            }",
        );
        let recs = find_recurrences(&f);
        assert_eq!(recs.len(), 1, "{recs:?}");
        assert_eq!(recs[0].distance, 1);
    }

    #[test]
    fn longer_distance_recurrence() {
        let f = lower(
            "__kernel void k(__global float* b) {
                int i = get_global_id(0);
                b[i + 4] = b[i] * 2.0f;
            }",
        );
        let recs = find_recurrences(&f);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].distance, 4);
    }

    #[test]
    fn elementwise_kernel_has_no_recurrence() {
        let f = lower(
            "__kernel void k(__global float* a, __global float* b) {
                int i = get_global_id(0);
                b[i] = a[i] + 1.0f;
            }",
        );
        assert!(find_recurrences(&f).is_empty());
    }

    #[test]
    fn scaled_index_distance_divides() {
        // b[2i+2] = b[2i]: distance (2)/(2) = 1.
        let f = lower(
            "__kernel void k(__global float* b) {
                int i = get_global_id(0);
                b[2 * i + 2] = b[2 * i] + 1.0f;
            }",
        );
        let recs = find_recurrences(&f);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].distance, 1);
    }

    #[test]
    fn backward_distance_not_a_recurrence() {
        // b[i] = b[i+1]: reads a *later* work-item's location, which is the
        // old value — not a pipeline recurrence.
        let f = lower(
            "__kernel void k(__global float* b) {
                int i = get_global_id(0);
                b[i] = b[i + 1] + 1.0f;
            }",
        );
        assert!(find_recurrences(&f).is_empty());
    }

    #[test]
    fn affine_analysis_tracks_slots() {
        let f = lower(
            "__kernel void k(__global float* b) {
                int i = get_global_id(0);
                int j = i * 2 + 3;
                b[j] = 1.0f;
            }",
        );
        let affine = analyze(&f);
        let store = f
            .insts
            .iter()
            .find(|i| matches!(i.op, Op::Store { space: AddressSpace::Global, .. }))
            .expect("store");
        let idx = match store.args[0] {
            Value::Inst(id) => affine[&id],
            _ => panic!("expected computed index"),
        };
        assert_eq!(idx, Affine { gid: 2, lid: 0, c: 3 });
    }

    #[test]
    fn loop_variable_is_not_affine() {
        let f = lower(
            "__kernel void k(__global float* b) {
                for (int i = 0; i < 8; i++) { b[i] = 0.0f; }
            }",
        );
        let affine = analyze(&f);
        let store = f
            .insts
            .iter()
            .find(|i| matches!(i.op, Op::Store { space: AddressSpace::Global, .. }))
            .expect("store");
        if let Value::Inst(id) = store.args[0] {
            assert!(!affine.contains_key(&id), "loop var must be unknown");
        }
    }
}
