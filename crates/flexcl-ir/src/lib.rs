//! # flexcl-ir
//!
//! Typed intermediate representation for FlexCL (DAC'17 reproduction).
//!
//! The original FlexCL consumed LLVM IR produced by Clang; this crate plays
//! that role with a purpose-built IR that exposes exactly the observables
//! the performance model needs:
//!
//! * per-operation opcodes keyed to an FPGA latency database,
//! * explicit loads/stores annotated with address space and root object
//!   (for local-memory port counting and global-memory trace generation),
//! * a structured region tree with loop trip counts — the simplified CDFG
//!   of §3.2 of the paper,
//! * dependence-graph extraction ([`dfg`]) feeding the schedulers, and
//! * inter-work-item recurrence detection ([`affine`]) feeding `RecMII`.
//!
//! ```
//! # fn main() -> Result<(), flexcl_frontend::FrontendError> {
//! let program = flexcl_frontend::parse_and_check(
//!     "__kernel void axpy(__global float* x, __global float* y, float a) {
//!          int i = get_global_id(0);
//!          y[i] = a * x[i] + y[i];
//!      }",
//! )?;
//! let func = flexcl_ir::lower_kernel(&program.kernels[0])?;
//! assert_eq!(func.global_accesses().len(), 3); // two loads + one store
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod affine;
pub mod cfg;
pub mod dfg;
pub mod function;
pub mod lower;
pub mod opt;

pub use affine::{find_recurrences, Affine, Recurrence};
pub use dfg::{build_deps, DepEdge, DepKind};
pub use function::{
    Block, BlockId, Function, Inst, InstId, Literal, LoopId, LoopMeta, MemRoot, Op, ParamInfo,
    Region, Terminator, TripCount, Value,
};
pub use lower::{lower_kernel, lower_program};
pub use opt::optimize;
