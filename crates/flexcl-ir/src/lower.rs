//! AST → IR lowering.
//!
//! Lowering produces a CFG plus the structured region tree in one pass.
//! Key decisions (documented because they shape every downstream model):
//!
//! * **Mutable scalars become private allocas** accessed via zero-latency
//!   loads/stores, so all dependencies are explicit instruction edges.
//! * **Pointer arithmetic is folded into element indices.** Every load and
//!   store carries the [`MemRoot`] it refers to; `p = a + off; p[i]`
//!   becomes a load of `a` at index `off + i`. Pointer variables may not be
//!   reassigned in terms of themselves (no induction pointers) — the corpus
//!   kernels never need this, and it keeps the dependence analysis exact.
//! * **Short-circuit `&&`/`||` and the ternary operator evaluate eagerly**,
//!   matching how HLS maps them to muxes rather than control flow.
//! * **`for` trip counts are recognised statically** for the canonical
//!   `for (i = c0; i <cmp> bound; i += c)` shape; anything else is marked
//!   [`TripCount::Profiled`] and resolved by the dynamic profiler.

use crate::function::*;
use flexcl_frontend::ast::{self, BinOp, ExprKind, LValue, Stmt, UnOp};
use flexcl_frontend::builtins::{self, Builtin};
use flexcl_frontend::error::{FrontendError, Result};
use flexcl_frontend::token::Span;
use flexcl_frontend::types::{AddressSpace, Scalar, Type};
use std::collections::HashMap;

/// Lowers one analyzed kernel to IR.
///
/// # Errors
///
/// Returns [`FrontendError::Sema`] for constructs outside the supported
/// subset (e.g. pointer induction variables).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), flexcl_frontend::FrontendError> {
/// let program = flexcl_frontend::parse_and_check(
///     "__kernel void add(__global int* a, __global int* b) {
///          int i = get_global_id(0);
///          b[i] = a[i] + 1;
///      }",
/// )?;
/// let func = flexcl_ir::lower_kernel(&program.kernels[0])?;
/// assert_eq!(func.name, "add");
/// assert!(func.validate().is_ok());
/// # Ok(())
/// # }
/// ```
pub fn lower_kernel(kernel: &ast::KernelDef) -> Result<Function> {
    let mut span = flexcl_obs::span("ir.lower");
    let func = Lowerer::new(kernel).run()?;
    span.attr_u64("blocks", func.blocks.len() as u64);
    span.attr_u64("insts", func.insts.len() as u64);
    Ok(func)
}

/// Lowers every kernel in a program.
///
/// # Errors
///
/// Propagates the first lowering failure.
pub fn lower_program(program: &ast::Program) -> Result<Vec<Function>> {
    program.kernels.iter().map(lower_kernel).collect()
}

#[derive(Debug, Clone)]
enum Binding {
    /// Mutable scalar or vector variable stored in a one-element private slot.
    Slot { alloca: InstId, ty: Type },
    /// A `__local`/`__private` array.
    Array { root: MemRoot, elem_ty: Type, dims: Vec<usize>, space: AddressSpace },
    /// A pointer (parameter or derived) with a folded element offset.
    Pointer { root: MemRoot, elem_ty: Type, space: AddressSpace, offset: Value },
}

struct LoopCtx {
    continue_target: BlockId,
    break_target: BlockId,
}

struct Lowerer<'a> {
    kernel: &'a ast::KernelDef,
    insts: Vec<Inst>,
    blocks: Vec<Block>,
    current: BlockId,
    scopes: Vec<HashMap<String, Binding>>,
    loops: Vec<LoopMeta>,
    loop_stack: Vec<LoopCtx>,
}

impl<'a> Lowerer<'a> {
    fn new(kernel: &'a ast::KernelDef) -> Self {
        let entry = Block { id: BlockId(0), insts: Vec::new(), term: Terminator::Ret };
        Lowerer {
            kernel,
            insts: Vec::new(),
            blocks: vec![entry],
            current: BlockId(0),
            scopes: vec![HashMap::new()],
            loops: Vec::new(),
            loop_stack: Vec::new(),
        }
    }

    fn err(&self, message: impl Into<String>, span: Span) -> FrontendError {
        FrontendError::Sema { message: message.into(), span }
    }

    // ------------------------------------------------------------- emit utils

    fn emit(&mut self, op: Op, ty: Type, args: Vec<Value>) -> Value {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(Inst { id, op, ty, args });
        self.blocks[self.current.0 as usize].insts.push(id);
        Value::Inst(id)
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block { id, insts: Vec::new(), term: Terminator::Ret });
        id
    }

    fn terminate(&mut self, term: Terminator) {
        self.blocks[self.current.0 as usize].term = term;
    }

    fn switch_to(&mut self, b: BlockId) {
        self.current = b;
    }

    // ----------------------------------------------------------------- scopes

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn bind(&mut self, name: &str, b: Binding) {
        self.scopes.last_mut().expect("scope").insert(name.to_string(), b);
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn rebind(&mut self, name: &str, b: Binding) {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = b;
                return;
            }
        }
    }

    // ------------------------------------------------------------------- run

    fn run(mut self) -> Result<Function> {
        // Bind parameters: scalars copied into slots, pointers tracked
        // symbolically.
        for (i, p) in self.kernel.params.iter().enumerate() {
            match &p.ty {
                Type::Pointer(elem, space) => {
                    let binding = Binding::Pointer {
                        root: MemRoot::Param(i as u32),
                        elem_ty: (**elem).clone(),
                        space: *space,
                        offset: Value::int(0),
                    };
                    self.bind(&p.name, binding);
                }
                ty => {
                    let slot = self.emit(
                        Op::Alloca { space: AddressSpace::Private, elems: 1 },
                        ty.clone(),
                        vec![],
                    );
                    let Value::Inst(slot_id) = slot else { unreachable!() };
                    self.emit(
                        Op::Store {
                            space: AddressSpace::Private,
                            root: MemRoot::Alloca(slot_id),
                        },
                        Type::Void,
                        vec![Value::int(0), Value::Param(i as u32)],
                    );
                    self.bind(&p.name, Binding::Slot { alloca: slot_id, ty: ty.clone() });
                }
            }
        }

        let mut regions = self.lower_stmts(&self.kernel.body.stmts.clone())?;
        self.terminate(Terminator::Ret);
        regions.push(Region::Block(self.current));

        let func = Function {
            name: self.kernel.name.clone(),
            params: self
                .kernel
                .params
                .iter()
                .map(|p| ParamInfo { name: p.name.clone(), ty: p.ty.clone() })
                .collect(),
            insts: self.insts,
            blocks: self.blocks,
            entry: BlockId(0),
            region: Region::Seq(regions),
            loops: self.loops,
            reqd_work_group_size: self.kernel.reqd_work_group_size(),
            pipeline_workitems: self.kernel.pipeline_workitems(),
        };
        debug_assert_eq!(func.validate(), Ok(()));
        Ok(func)
    }

    /// Lowers a statement list; leaves `self.current` open (unterminated).
    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<Vec<Region>> {
        let mut regions = Vec::new();
        self.push_scope();
        for s in stmts {
            self.lower_stmt(s, &mut regions)?;
        }
        self.pop_scope();
        Ok(regions)
    }

    fn lower_stmt(&mut self, stmt: &Stmt, regions: &mut Vec<Region>) -> Result<()> {
        match stmt {
            Stmt::Decl(d) => self.lower_decl(d),
            Stmt::Assign(a) => self.lower_assign(a),
            Stmt::Expr(e) => self.lower_expr(e).map(|_| ()),
            Stmt::Block(b) => {
                let mut inner = self.lower_stmts(&b.stmts)?;
                regions.append(&mut inner);
                Ok(())
            }
            Stmt::If(s) => self.lower_if(s, regions),
            Stmt::For(s) => self.lower_for(s, regions),
            Stmt::While(s) => self.lower_while(s, regions),
            Stmt::DoWhile(s) => self.lower_do_while(s, regions),
            Stmt::Return(_, _) => {
                self.terminate(Terminator::Ret);
                regions.push(Region::Block(self.current));
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            Stmt::Break(span) => {
                let target = self
                    .loop_stack
                    .last()
                    .ok_or_else(|| self.err("`break` outside loop", *span))?
                    .break_target;
                self.terminate(Terminator::Br(target));
                regions.push(Region::Block(self.current));
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            Stmt::Continue(span) => {
                let target = self
                    .loop_stack
                    .last()
                    .ok_or_else(|| self.err("`continue` outside loop", *span))?
                    .continue_target;
                self.terminate(Terminator::Br(target));
                regions.push(Region::Block(self.current));
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
        }
    }

    fn lower_decl(&mut self, d: &ast::DeclStmt) -> Result<()> {
        match &d.ty {
            Type::Array(_, _) => {
                let (elem_ty, dims) = flatten_array(&d.ty);
                let elems: u64 = dims.iter().map(|d| *d as u64).product();
                let space = if d.space == AddressSpace::Local {
                    AddressSpace::Local
                } else {
                    AddressSpace::Private
                };
                let v = self.emit(Op::Alloca { space, elems }, elem_ty.clone(), vec![]);
                let Value::Inst(id) = v else { unreachable!() };
                self.bind(
                    &d.name,
                    Binding::Array { root: MemRoot::Alloca(id), elem_ty, dims, space },
                );
                Ok(())
            }
            Type::Pointer(elem, space) => {
                // Pointer variable: must be initialised from a pointer expr.
                let init = d.init.as_ref().ok_or_else(|| {
                    self.err("pointer variables must be initialised", d.span)
                })?;
                let (root, ispace, elem_ty, offset) = self.lower_pointer_expr(init)?;
                if ispace != *space {
                    return Err(self.err(
                        format!("pointer address space mismatch: {ispace} vs {space}"),
                        d.span,
                    ));
                }
                let _ = elem;
                self.bind(&d.name, Binding::Pointer { root, elem_ty, space: ispace, offset });
                Ok(())
            }
            ty => {
                let slot = self.emit(
                    Op::Alloca { space: AddressSpace::Private, elems: 1 },
                    ty.clone(),
                    vec![],
                );
                let Value::Inst(slot_id) = slot else { unreachable!() };
                if let Some(init) = &d.init {
                    let (v, vt) = self.lower_expr(init)?;
                    let v = self.coerce(v, &vt, ty);
                    self.emit(
                        Op::Store {
                            space: AddressSpace::Private,
                            root: MemRoot::Alloca(slot_id),
                        },
                        Type::Void,
                        vec![Value::int(0), v],
                    );
                }
                self.bind(&d.name, Binding::Slot { alloca: slot_id, ty: ty.clone() });
                Ok(())
            }
        }
    }

    fn lower_assign(&mut self, a: &ast::AssignStmt) -> Result<()> {
        // Pointer rebinding: `p = q + off;` where target is a pointer var.
        if let LValue::Var(name, span) = &a.target {
            if let Some(Binding::Pointer { .. }) = self.lookup(name) {
                if a.op.is_some() {
                    return Err(
                        self.err("compound assignment to pointer is not supported", *span)
                    );
                }
                if expr_mentions_var(&a.value, name) {
                    return Err(self.err(
                        format!("pointer induction (`{name}` redefined in terms of itself) is not supported"),
                        *span,
                    ));
                }
                let (root, space, elem_ty, offset) = self.lower_pointer_expr(&a.value)?;
                self.rebind(name, Binding::Pointer { root, elem_ty, space, offset });
                return Ok(());
            }
        }

        // Compute target address first (so compound assigns reuse it).
        match &a.target {
            LValue::Var(name, span) => {
                let binding = self
                    .lookup(name)
                    .ok_or_else(|| self.err(format!("unknown variable `{name}`"), *span))?
                    .clone();
                let Binding::Slot { alloca, ty } = binding else {
                    return Err(self.err(format!("cannot assign to `{name}`"), *span));
                };
                let rhs = self.lower_assign_rhs(a, |me| {
                    Ok((
                        me.emit(
                            Op::Load {
                                space: AddressSpace::Private,
                                root: MemRoot::Alloca(alloca),
                            },
                            ty.clone(),
                            vec![Value::int(0)],
                        ),
                        ty.clone(),
                    ))
                })?;
                let rhs = self.coerce(rhs.0, &rhs.1, &ty);
                self.emit(
                    Op::Store { space: AddressSpace::Private, root: MemRoot::Alloca(alloca) },
                    Type::Void,
                    vec![Value::int(0), rhs],
                );
                Ok(())
            }
            LValue::Index { base, index, span } => {
                let (root, space, elem_ty, idx) = self.lower_access(base, index, *span)?;
                let rhs = self.lower_assign_rhs(a, |me| {
                    Ok((
                        me.emit(Op::Load { space, root }, elem_ty.clone(), vec![idx]),
                        elem_ty.clone(),
                    ))
                })?;
                let rhs = self.coerce(rhs.0, &rhs.1, &elem_ty);
                self.emit(Op::Store { space, root }, Type::Void, vec![idx, rhs]);
                Ok(())
            }
            LValue::Member { base, lane, span } => {
                let binding = self
                    .lookup(base)
                    .ok_or_else(|| self.err(format!("unknown variable `{base}`"), *span))?
                    .clone();
                let Binding::Slot { alloca, ty } = binding else {
                    return Err(self.err(format!("cannot assign to lane of `{base}`"), *span));
                };
                let scalar_ty = match &ty {
                    Type::Vector(s, _) => Type::Scalar(*s),
                    other => {
                        return Err(
                            self.err(format!("`.{lane}` on non-vector type {other}"), *span)
                        )
                    }
                };
                let lane = *lane;
                let rhs = self.lower_assign_rhs(a, |me| {
                    let vec = me.emit(
                        Op::Load { space: AddressSpace::Private, root: MemRoot::Alloca(alloca) },
                        ty.clone(),
                        vec![Value::int(0)],
                    );
                    Ok((me.emit(Op::Extract(lane), scalar_ty.clone(), vec![vec]), scalar_ty.clone()))
                })?;
                let rhs = self.coerce(rhs.0, &rhs.1, &scalar_ty);
                let vec = self.emit(
                    Op::Load { space: AddressSpace::Private, root: MemRoot::Alloca(alloca) },
                    ty.clone(),
                    vec![Value::int(0)],
                );
                let updated = self.emit(Op::Insert(lane), ty.clone(), vec![vec, rhs]);
                self.emit(
                    Op::Store { space: AddressSpace::Private, root: MemRoot::Alloca(alloca) },
                    Type::Void,
                    vec![Value::int(0), updated],
                );
                Ok(())
            }
        }
    }

    /// Lowers the RHS of an assignment, applying the compound operator if any.
    fn lower_assign_rhs(
        &mut self,
        a: &ast::AssignStmt,
        load_current: impl FnOnce(&mut Self) -> Result<(Value, Type)>,
    ) -> Result<(Value, Type)> {
        let (v, vt) = self.lower_expr(&a.value)?;
        match a.op {
            None => Ok((v, vt)),
            Some(op) => {
                let (cur, cur_ty) = load_current(self)?;
                let (lhs, rhs, ty) = self.unify_operands(cur, &cur_ty, v, &vt);
                Ok((self.emit(Op::Bin(op), ty.clone(), vec![lhs, rhs]), ty))
            }
        }
    }

    fn lower_if(&mut self, s: &ast::IfStmt, regions: &mut Vec<Region>) -> Result<()> {
        let (cond, cond_ty) = self.lower_expr(&s.cond)?;
        let cond = self.coerce(cond, &cond_ty, &Type::Scalar(Scalar::Bool));
        let cond_block = self.current;

        let then_bb = self.new_block();
        let else_bb = self.new_block();
        let merge_bb = self.new_block();
        self.terminate(Terminator::CondBr(cond, then_bb, else_bb));

        self.switch_to(then_bb);
        let mut then_regions = self.lower_stmts(&s.then_block.stmts)?;
        self.terminate(Terminator::Br(merge_bb));
        then_regions.push(Region::Block(self.current));

        self.switch_to(else_bb);
        let mut else_regions = self.lower_stmts(&s.else_block.stmts)?;
        self.terminate(Terminator::Br(merge_bb));
        else_regions.push(Region::Block(self.current));

        regions.push(Region::If {
            cond_block,
            then_region: Box::new(Region::Seq(then_regions)),
            else_region: Box::new(Region::Seq(else_regions)),
        });
        self.switch_to(merge_bb);
        Ok(())
    }

    fn lower_for(&mut self, s: &ast::ForStmt, regions: &mut Vec<Region>) -> Result<()> {
        self.push_scope();
        // A body that can `break` invalidates the closed-form count; defer
        // to dynamic profiling.
        let trip = if block_breaks(&s.body) {
            TripCount::Profiled
        } else {
            static_trip_count(s)
        };
        if let Some(init) = &s.init {
            let mut scratch = Vec::new();
            self.lower_stmt(init, &mut scratch)?;
            if !scratch.is_empty() {
                return Err(self.err("unsupported control flow in loop initialiser", s.span));
            }
        }
        // Close the block holding the initialiser.
        let header = self.new_block();
        self.terminate(Terminator::Br(header));
        regions.push(Region::Block(self.current));

        let body_bb = self.new_block();
        let latch_bb = self.new_block();
        let exit_bb = self.new_block();

        self.switch_to(header);
        match &s.cond {
            Some(c) => {
                let (cond, ct) = self.lower_expr(c)?;
                let cond = self.coerce(cond, &ct, &Type::Scalar(Scalar::Bool));
                self.terminate(Terminator::CondBr(cond, body_bb, exit_bb));
            }
            None => self.terminate(Terminator::Br(body_bb)),
        }

        self.loop_stack.push(LoopCtx { continue_target: latch_bb, break_target: exit_bb });
        self.switch_to(body_bb);
        let mut body_regions = self.lower_stmts(&s.body.stmts)?;
        self.terminate(Terminator::Br(latch_bb));
        body_regions.push(Region::Block(self.current));
        self.loop_stack.pop();

        self.switch_to(latch_bb);
        if let Some(step) = &s.step {
            let mut scratch = Vec::new();
            self.lower_stmt(step, &mut scratch)?;
            if !scratch.is_empty() {
                return Err(self.err("unsupported control flow in loop step", s.span));
            }
        }
        self.terminate(Terminator::Br(header));

        let id = LoopId(self.loops.len() as u32);
        self.loops.push(LoopMeta { id, trip, unroll: s.unroll, pipeline: s.pipeline, header });
        regions.push(Region::Loop {
            id,
            header,
            body: Box::new(Region::Seq(body_regions)),
            latch: Some(latch_bb),
        });
        self.pop_scope();
        self.switch_to(exit_bb);
        Ok(())
    }

    fn lower_while(&mut self, s: &ast::WhileStmt, regions: &mut Vec<Region>) -> Result<()> {
        let header = self.new_block();
        self.terminate(Terminator::Br(header));
        regions.push(Region::Block(self.current));

        let body_bb = self.new_block();
        let exit_bb = self.new_block();

        self.switch_to(header);
        let (cond, ct) = self.lower_expr(&s.cond)?;
        let cond = self.coerce(cond, &ct, &Type::Scalar(Scalar::Bool));
        self.terminate(Terminator::CondBr(cond, body_bb, exit_bb));

        self.loop_stack.push(LoopCtx { continue_target: header, break_target: exit_bb });
        self.switch_to(body_bb);
        let mut body_regions = self.lower_stmts(&s.body.stmts)?;
        self.terminate(Terminator::Br(header));
        body_regions.push(Region::Block(self.current));
        self.loop_stack.pop();

        let id = LoopId(self.loops.len() as u32);
        self.loops.push(LoopMeta {
            id,
            trip: TripCount::Profiled,
            unroll: None,
            pipeline: false,
            header,
        });
        regions.push(Region::Loop {
            id,
            header,
            body: Box::new(Region::Seq(body_regions)),
            latch: None,
        });
        self.switch_to(exit_bb);
        Ok(())
    }

    fn lower_do_while(&mut self, s: &ast::DoWhileStmt, regions: &mut Vec<Region>) -> Result<()> {
        let body_bb = self.new_block();
        self.terminate(Terminator::Br(body_bb));
        regions.push(Region::Block(self.current));

        let cond_bb = self.new_block();
        let exit_bb = self.new_block();

        self.loop_stack.push(LoopCtx { continue_target: cond_bb, break_target: exit_bb });
        self.switch_to(body_bb);
        let mut body_regions = self.lower_stmts(&s.body.stmts)?;
        self.terminate(Terminator::Br(cond_bb));
        body_regions.push(Region::Block(self.current));
        self.loop_stack.pop();

        self.switch_to(cond_bb);
        let (cond, ct) = self.lower_expr(&s.cond)?;
        let cond = self.coerce(cond, &ct, &Type::Scalar(Scalar::Bool));
        self.terminate(Terminator::CondBr(cond, body_bb, exit_bb));

        let id = LoopId(self.loops.len() as u32);
        self.loops.push(LoopMeta {
            id,
            trip: TripCount::Profiled,
            unroll: None,
            pipeline: false,
            header: cond_bb,
        });
        regions.push(Region::Loop {
            id,
            header: cond_bb,
            body: Box::new(Region::Seq(body_regions)),
            latch: None,
        });
        self.switch_to(exit_bb);
        Ok(())
    }

    // ------------------------------------------------------------ expressions

    fn lower_expr(&mut self, e: &ast::Expr) -> Result<(Value, Type)> {
        let span = e.span;
        match &e.kind {
            ExprKind::IntLit(v) => Ok((Value::int(*v), e.ty().clone())),
            ExprKind::FloatLit(v) => Ok((Value::float(*v), e.ty().clone())),
            ExprKind::Var(name) => {
                let binding = self
                    .lookup(name)
                    .ok_or_else(|| self.err(format!("unknown variable `{name}`"), span))?
                    .clone();
                match binding {
                    Binding::Slot { alloca, ty } => {
                        let v = self.emit(
                            Op::Load {
                                space: AddressSpace::Private,
                                root: MemRoot::Alloca(alloca),
                            },
                            ty.clone(),
                            vec![Value::int(0)],
                        );
                        Ok((v, ty))
                    }
                    Binding::Array { .. } | Binding::Pointer { .. } => Err(self.err(
                        format!("`{name}` is an array/pointer and cannot be used as a value here"),
                        span,
                    )),
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                // Pointer arithmetic is handled by lower_pointer_expr when a
                // pointer context requests it; in value context it is an error
                // caught by sema, except ptr comparisons which we fold to 0/1.
                let (lv, lt) = self.lower_expr(lhs)?;
                let (rv, rt) = self.lower_expr(rhs)?;
                let op = *op;
                let result_ty = e.ty().clone();
                match op {
                    BinOp::LogAnd | BinOp::LogOr => {
                        let lb = self.coerce(lv, &lt, &Type::Scalar(Scalar::Bool));
                        let rb = self.coerce(rv, &rt, &Type::Scalar(Scalar::Bool));
                        let bop = if op == BinOp::LogAnd { BinOp::And } else { BinOp::Or };
                        Ok((self.emit(Op::Bin(bop), result_ty.clone(), vec![lb, rb]), result_ty))
                    }
                    _ => {
                        let (lv, rv, opnd_ty) = self.unify_operands(lv, &lt, rv, &rt);
                        let _ = opnd_ty;
                        Ok((self.emit(Op::Bin(op), result_ty.clone(), vec![lv, rv]), result_ty))
                    }
                }
            }
            ExprKind::Unary { op, expr } => {
                let (v, _vt) = self.lower_expr(expr)?;
                let ty = e.ty().clone();
                Ok((self.emit(Op::Un(*op), ty.clone(), vec![v]), ty))
            }
            ExprKind::Call { name, args } => self.lower_call(name, args, e, span),
            ExprKind::Index { base, index } => {
                let (root, space, elem_ty, idx) = self.lower_access(base, index, span)?;
                Ok((self.emit(Op::Load { space, root }, elem_ty.clone(), vec![idx]), elem_ty))
            }
            ExprKind::Member { base, lane } => {
                let (v, _vt) = self.lower_expr(base)?;
                let ty = e.ty().clone();
                Ok((self.emit(Op::Extract(*lane), ty.clone(), vec![v]), ty))
            }
            ExprKind::Cast { ty, expr } => {
                let (v, vt) = self.lower_expr(expr)?;
                Ok((self.coerce(v, &vt, ty), ty.clone()))
            }
            ExprKind::VectorLit { ty, elems } => {
                let scalar_ty = Type::Scalar(ty.element_scalar().expect("vector type"));
                if elems.len() == 1 {
                    let (v, vt) = self.lower_expr(&elems[0])?;
                    let sv = self.coerce(v, &vt, &scalar_ty);
                    return Ok((self.emit(Op::Splat, ty.clone(), vec![sv]), ty.clone()));
                }
                // Build lane by lane starting from a splat of lane 0.
                let (v0, v0t) = self.lower_expr(&elems[0])?;
                let sv0 = self.coerce(v0, &v0t, &scalar_ty);
                let mut vec = self.emit(Op::Splat, ty.clone(), vec![sv0]);
                for (lane, e) in elems.iter().enumerate().skip(1) {
                    let (v, vt) = self.lower_expr(e)?;
                    let sv = self.coerce(v, &vt, &scalar_ty);
                    vec = self.emit(Op::Insert(lane as u8), ty.clone(), vec![vec, sv]);
                }
                Ok((vec, ty.clone()))
            }
            ExprKind::Ternary { cond, then_expr, else_expr } => {
                let (c, ct) = self.lower_expr(cond)?;
                let c = self.coerce(c, &ct, &Type::Scalar(Scalar::Bool));
                let (tv, tt) = self.lower_expr(then_expr)?;
                let (ev, et) = self.lower_expr(else_expr)?;
                let ty = e.ty().clone();
                let tv = self.coerce(tv, &tt, &ty);
                let ev = self.coerce(ev, &et, &ty);
                Ok((self.emit(Op::Select, ty.clone(), vec![c, tv, ev]), ty))
            }
        }
    }

    fn lower_call(
        &mut self,
        name: &str,
        args: &[ast::Expr],
        e: &ast::Expr,
        span: Span,
    ) -> Result<(Value, Type)> {
        let builtin = builtins::resolve(name)
            .ok_or_else(|| self.err(format!("unknown function `{name}`"), span))?;
        let ty = e.ty().clone();
        match builtin {
            Builtin::WorkItem(wi) => {
                let dim = if args.is_empty() {
                    Value::int(0)
                } else {
                    self.lower_expr(&args[0])?.0
                };
                Ok((self.emit(Op::WorkItem(wi), ty.clone(), vec![dim]), ty))
            }
            Builtin::Barrier | Builtin::MemFence => {
                // Flag arguments are constants; no need to lower them.
                Ok((self.emit(Op::Barrier, Type::Void, vec![]), Type::Void))
            }
            Builtin::Convert(target) => {
                let (v, vt) = self.lower_expr(&args[0])?;
                Ok((self.coerce(v, &vt, &target), target))
            }
            Builtin::Math(m) => {
                let mut lowered = Vec::with_capacity(args.len());
                for a in args {
                    let (v, vt) = self.lower_expr(a)?;
                    // Promote each arg to the call's result element type.
                    let want = if vt.lanes() == ty.lanes() {
                        ty.clone()
                    } else {
                        match ty.element_scalar() {
                            Some(s) => Type::Scalar(s),
                            None => vt.clone(),
                        }
                    };
                    lowered.push(self.coerce(v, &vt, &want));
                }
                Ok((self.emit(Op::Math(m), ty.clone(), lowered), ty))
            }
        }
    }

    /// Resolves `base[index]` into `(root, space, elem_ty, flattened index)`.
    fn lower_access(
        &mut self,
        base: &ast::Expr,
        index: &ast::Expr,
        span: Span,
    ) -> Result<(MemRoot, AddressSpace, Type, Value)> {
        // Collect the index chain (innermost last): a[i][j] has base chain
        // Var(a) -> Index(a,i), applied index j at the top.
        let mut indices = vec![index];
        let mut cur = base;
        while let ExprKind::Index { base: b, index: i } = &cur.kind {
            indices.push(i);
            cur = b;
        }
        indices.reverse();

        let (root, space, elem_ty, base_offset, dims) = match &cur.kind {
            ExprKind::Var(name) => {
                let binding = self
                    .lookup(name)
                    .ok_or_else(|| self.err(format!("unknown variable `{name}`"), span))?
                    .clone();
                match binding {
                    Binding::Array { root, elem_ty, dims, space } => {
                        (root, space, elem_ty, Value::int(0), dims)
                    }
                    Binding::Pointer { root, elem_ty, space, offset } => {
                        (root, space, elem_ty, offset, vec![])
                    }
                    Binding::Slot { ty, .. } => {
                        return Err(self.err(
                            format!("cannot index scalar `{name}` of type {ty}"),
                            span,
                        ))
                    }
                }
            }
            ExprKind::Binary { .. } => {
                // Pointer arithmetic in base position: (a + off)[i].
                let (root, space, elem_ty, offset) = self.lower_pointer_expr(cur)?;
                (root, space, elem_ty, offset, vec![])
            }
            _ => return Err(self.err("unsupported base expression for indexing", span)),
        };

        // Flatten the index chain. For arrays, use row-major dims; pointers
        // take a single index level (possibly repeated for pointer-to-array,
        // which we do not support).
        if !dims.is_empty() && indices.len() > dims.len() {
            return Err(self.err("too many indices for array", span));
        }
        let mut flat: Option<Value> = None;
        for (level, idx_expr) in indices.iter().enumerate() {
            let (iv, it) = self.lower_expr(idx_expr)?;
            let iv = self.coerce(iv, &it, &Type::int());
            // Stride = product of the remaining dims after this level.
            let stride: u64 = if dims.is_empty() {
                1
            } else {
                dims[level + 1..].iter().map(|d| *d as u64).product()
            };
            let scaled = if stride == 1 {
                iv
            } else {
                self.emit(Op::Bin(BinOp::Mul), Type::int(), vec![iv, Value::int(stride as i64)])
            };
            flat = Some(match flat {
                None => scaled,
                Some(acc) => self.emit(Op::Bin(BinOp::Add), Type::int(), vec![acc, scaled]),
            });
        }
        let mut idx = flat.unwrap_or(Value::int(0));
        if base_offset.as_const_int() != Some(0) {
            idx = self.emit(Op::Bin(BinOp::Add), Type::int(), vec![idx, base_offset]);
        }
        Ok((root, space, elem_ty, idx))
    }

    /// Lowers an expression that denotes a pointer: `p`, `a + off`, `a - off`.
    fn lower_pointer_expr(
        &mut self,
        e: &ast::Expr,
    ) -> Result<(MemRoot, AddressSpace, Type, Value)> {
        match &e.kind {
            ExprKind::Var(name) => {
                let binding = self
                    .lookup(name)
                    .ok_or_else(|| self.err(format!("unknown variable `{name}`"), e.span))?
                    .clone();
                match binding {
                    Binding::Pointer { root, elem_ty, space, offset } => {
                        Ok((root, space, elem_ty, offset))
                    }
                    Binding::Array { root, elem_ty, space, .. } => {
                        Ok((root, space, elem_ty, Value::int(0)))
                    }
                    Binding::Slot { .. } => {
                        Err(self.err(format!("`{name}` is not a pointer"), e.span))
                    }
                }
            }
            ExprKind::Binary { op: BinOp::Add, lhs, rhs } => {
                // Either side may be the pointer.
                let (ptr, off_expr) = if lhs.ty.as_ref().is_some_and(Type::is_pointer) {
                    (lhs, rhs)
                } else {
                    (rhs, lhs)
                };
                let (root, space, elem_ty, offset) = self.lower_pointer_expr(ptr)?;
                let (ov, ot) = self.lower_expr(off_expr)?;
                let ov = self.coerce(ov, &ot, &Type::int());
                let new_off = self.add_offsets(offset, ov);
                Ok((root, space, elem_ty, new_off))
            }
            ExprKind::Binary { op: BinOp::Sub, lhs, rhs } => {
                let (root, space, elem_ty, offset) = self.lower_pointer_expr(lhs)?;
                let (ov, ot) = self.lower_expr(rhs)?;
                let ov = self.coerce(ov, &ot, &Type::int());
                let neg = self.emit(Op::Un(UnOp::Neg), Type::int(), vec![ov]);
                let new_off = self.add_offsets(offset, neg);
                Ok((root, space, elem_ty, new_off))
            }
            ExprKind::Cast { expr, .. } => self.lower_pointer_expr(expr),
            _ => Err(self.err("unsupported pointer expression", e.span)),
        }
    }

    fn add_offsets(&mut self, a: Value, b: Value) -> Value {
        match (a.as_const_int(), b.as_const_int()) {
            (Some(0), _) => b,
            (_, Some(0)) => a,
            (Some(x), Some(y)) => Value::int(x + y),
            _ => self.emit(Op::Bin(BinOp::Add), Type::int(), vec![a, b]),
        }
    }

    /// Converts `v` of type `from` into type `to`, folding literals.
    fn coerce(&mut self, v: Value, from: &Type, to: &Type) -> Value {
        if from == to {
            return v;
        }
        // Literal folding.
        if let Value::Literal(lit) = v {
            if let (Some(fs), Some(ts)) = (from.element_scalar(), to.element_scalar()) {
                if from.lanes() == 1 && to.lanes() == 1 {
                    let _ = fs;
                    return match (lit, ts.is_float()) {
                        (Literal::Int(i), true) => Value::float(i as f64),
                        (Literal::Float(f), false) => Value::int(f as i64),
                        _ => v,
                    };
                }
            }
        }
        match (from.lanes(), to.lanes()) {
            (1, n) if n > 1 => {
                // Splat, converting the scalar first if needed.
                let scalar_to = Type::Scalar(to.element_scalar().expect("vector"));
                let sv = self.coerce(v, from, &scalar_to);
                self.emit(Op::Splat, to.clone(), vec![sv])
            }
            _ => self.emit(Op::Convert, to.clone(), vec![v]),
        }
    }

    /// Brings two operands to a common arithmetic type.
    fn unify_operands(
        &mut self,
        lv: Value,
        lt: &Type,
        rv: Value,
        rt: &Type,
    ) -> (Value, Value, Type) {
        let (ls, rs) = match (lt.element_scalar(), rt.element_scalar()) {
            (Some(a), Some(b)) => (a, b),
            _ => return (lv, rv, lt.clone()),
        };
        let unified = ls.unify(rs);
        let lanes = lt.lanes().max(rt.lanes());
        let ty = if lanes > 1 {
            Type::Vector(unified, lanes as u8)
        } else {
            Type::Scalar(unified)
        };
        let lv = self.coerce(lv, lt, &ty);
        let rv = self.coerce(rv, rt, &ty);
        (lv, rv, ty)
    }
}

/// Flattens nested array types into `(element type, dims)`.
fn flatten_array(ty: &Type) -> (Type, Vec<usize>) {
    let mut dims = Vec::new();
    let mut cur = ty;
    while let Type::Array(inner, n) = cur {
        dims.push(*n);
        cur = inner;
    }
    (cur.clone(), dims)
}

/// Whether a statement list contains a `break` that would exit *this*
/// loop (nested loops capture their own breaks).
fn block_breaks(block: &ast::Block) -> bool {
    block.stmts.iter().any(stmt_breaks)
}

fn stmt_breaks(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::Break(_) => true,
        Stmt::If(s) => block_breaks(&s.then_block) || block_breaks(&s.else_block),
        Stmt::Block(b) => block_breaks(b),
        // `break` inside a nested loop exits that loop, not this one.
        Stmt::For(_) | Stmt::While(_) | Stmt::DoWhile(_) => false,
        _ => false,
    }
}

/// Whether `expr` mentions variable `name` anywhere.
fn expr_mentions_var(expr: &ast::Expr, name: &str) -> bool {
    match &expr.kind {
        ExprKind::Var(n) => n == name,
        ExprKind::IntLit(_) | ExprKind::FloatLit(_) => false,
        ExprKind::Binary { lhs, rhs, .. } => {
            expr_mentions_var(lhs, name) || expr_mentions_var(rhs, name)
        }
        ExprKind::Unary { expr, .. } => expr_mentions_var(expr, name),
        ExprKind::Call { args, .. } => args.iter().any(|a| expr_mentions_var(a, name)),
        ExprKind::Index { base, index } => {
            expr_mentions_var(base, name) || expr_mentions_var(index, name)
        }
        ExprKind::Member { base, .. } => expr_mentions_var(base, name),
        ExprKind::Cast { expr, .. } => expr_mentions_var(expr, name),
        ExprKind::Ternary { cond, then_expr, else_expr } => {
            expr_mentions_var(cond, name)
                || expr_mentions_var(then_expr, name)
                || expr_mentions_var(else_expr, name)
        }
        ExprKind::VectorLit { elems, .. } => elems.iter().any(|e| expr_mentions_var(e, name)),
    }
}

/// Recognises the canonical counted-loop shape and computes its trip count.
fn static_trip_count(s: &ast::ForStmt) -> TripCount {
    let Some(init) = &s.init else { return TripCount::Profiled };
    let Some(cond) = &s.cond else { return TripCount::Profiled };
    let Some(step) = &s.step else { return TripCount::Profiled };

    // init: `<ty> v = c0` or `v = c0`.
    let (var, start) = match &**init {
        Stmt::Decl(d) => {
            let Some(init_e) = &d.init else { return TripCount::Profiled };
            let ExprKind::IntLit(c0) = init_e.kind else { return TripCount::Profiled };
            (d.name.as_str(), c0)
        }
        Stmt::Assign(a) => {
            let LValue::Var(name, _) = &a.target else { return TripCount::Profiled };
            if a.op.is_some() {
                return TripCount::Profiled;
            }
            let ExprKind::IntLit(c0) = a.value.kind else { return TripCount::Profiled };
            (name.as_str(), c0)
        }
        _ => return TripCount::Profiled,
    };

    // cond: `v < bound` (or <=, >, >=) with integer bound.
    let ExprKind::Binary { op, lhs, rhs } = &cond.kind else { return TripCount::Profiled };
    let (bound, flipped) = match (&lhs.kind, &rhs.kind) {
        (ExprKind::Var(n), ExprKind::IntLit(b)) if n == var => (*b, false),
        (ExprKind::IntLit(b), ExprKind::Var(n)) if n == var => (*b, true),
        _ => return TripCount::Profiled,
    };
    let op = if flipped {
        match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Gt => BinOp::Lt,
            BinOp::Le => BinOp::Ge,
            BinOp::Ge => BinOp::Le,
            other => *other,
        }
    } else {
        *op
    };

    // step: `v += c` / `v -= c` / `v++` / `v--` (parser lowers ++ to += 1).
    let Stmt::Assign(a) = &**step else { return TripCount::Profiled };
    let LValue::Var(n, _) = &a.target else { return TripCount::Profiled };
    if n != var {
        return TripCount::Profiled;
    }
    let ExprKind::IntLit(c) = a.value.kind else { return TripCount::Profiled };
    let delta = match a.op {
        Some(BinOp::Add) => c,
        Some(BinOp::Sub) => -c,
        _ => return TripCount::Profiled,
    };
    if delta == 0 {
        return TripCount::Profiled;
    }

    let count = match op {
        BinOp::Lt if delta > 0 && bound > start => (bound - start + delta - 1) / delta,
        BinOp::Le if delta > 0 && bound >= start => (bound - start) / delta + 1,
        BinOp::Gt if delta < 0 && bound < start => (start - bound + (-delta) - 1) / (-delta),
        BinOp::Ge if delta < 0 && bound <= start => (start - bound) / (-delta) + 1,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 0,
        BinOp::Ne if delta != 0 && (bound - start) % delta == 0 => (bound - start) / delta,
        _ => return TripCount::Profiled,
    };
    if count >= 0 {
        TripCount::Static(count as u64)
    } else {
        TripCount::Profiled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcl_frontend::parse_and_check;

    fn lower(src: &str) -> Function {
        let p = parse_and_check(src).expect("frontend");
        lower_kernel(&p.kernels[0]).expect("lowering")
    }

    #[test]
    fn lowers_add_kernel() {
        let f = lower(
            "__kernel void add(__global int* a, __global int* b) {
                int i = get_global_id(0);
                b[i] = a[i] + 1;
            }",
        );
        assert_eq!(f.validate(), Ok(()));
        let (loads, stores) = f.count_accesses(AddressSpace::Global);
        assert_eq!((loads, stores), (1, 1));
        assert!(!f.has_barrier());
        assert!(f.insts.iter().any(|i| matches!(i.op, Op::WorkItem(_))));
    }

    #[test]
    fn static_trip_count_for_canonical_loop() {
        let f = lower(
            "__kernel void k(__global float* a) {
                float s = 0.0f;
                for (int i = 0; i < 16; i++) { s += a[i]; }
                a[0] = s;
            }",
        );
        assert_eq!(f.loops.len(), 1);
        assert_eq!(f.loops[0].trip, TripCount::Static(16));
    }

    #[test]
    fn trip_count_shapes() {
        let cases = [
            ("for (int i = 0; i < 10; i++)", TripCount::Static(10)),
            ("for (int i = 0; i <= 10; i++)", TripCount::Static(11)),
            ("for (int i = 10; i > 0; i--)", TripCount::Static(10)),
            ("for (int i = 0; i < 10; i += 3)", TripCount::Static(4)),
            ("for (int i = 16; i >= 1; i -= 2)", TripCount::Static(8)),
        ];
        for (head, want) in cases {
            let src = format!(
                "__kernel void k(__global int* a) {{ {head} {{ a[i] = i; }} }}"
            );
            let f = lower(&src);
            assert_eq!(f.loops[0].trip, want, "loop `{head}`");
        }
    }

    #[test]
    fn dynamic_bound_is_profiled() {
        let f = lower(
            "__kernel void k(__global int* a, int n) {
                for (int i = 0; i < n; i++) { a[i] = i; }
            }",
        );
        assert_eq!(f.loops[0].trip, TripCount::Profiled);
    }

    #[test]
    fn barrier_lowering() {
        let f = lower(
            "__kernel void k(__global int* a, __local int* t) {
                int l = get_local_id(0);
                t[l] = a[l];
                barrier(CLK_LOCAL_MEM_FENCE);
                a[l] = t[l];
            }",
        );
        assert!(f.has_barrier());
        let (l_loads, l_stores) = f.count_accesses(AddressSpace::Local);
        assert_eq!((l_loads, l_stores), (1, 1));
    }

    #[test]
    fn multi_dim_local_array_flattens() {
        let f = lower(
            "__kernel void k(__global float* a) {
                __local float tile[4][8];
                int i = get_local_id(0);
                int j = get_local_id(1);
                tile[i][j] = a[i * 8 + j];
                barrier(CLK_LOCAL_MEM_FENCE);
                a[i * 8 + j] = tile[i][j];
            }",
        );
        assert_eq!(f.validate(), Ok(()));
        assert_eq!(f.local_bytes(), 4 * 8 * 4);
        // The flattened index for tile[i][j] should involve a Mul by 8.
        let has_stride_mul = f.insts.iter().any(|inst| {
            matches!(inst.op, Op::Bin(BinOp::Mul))
                && inst.args.iter().any(|a| a.as_const_int() == Some(8))
        });
        assert!(has_stride_mul);
    }

    #[test]
    fn pointer_offset_folds_into_index() {
        let f = lower(
            "__kernel void k(__global float* a, int off) {
                __global float* p = a + off;
                p[3] = 1.0f;
            }",
        );
        assert_eq!(f.validate(), Ok(()));
        // Store must be rooted at param 0 even though accessed through p.
        let store = f
            .insts
            .iter()
            .find(|i| matches!(i.op, Op::Store { space: AddressSpace::Global, .. }))
            .expect("store");
        assert_eq!(store.op.mem_root(), Some(MemRoot::Param(0)));
    }

    #[test]
    fn pointer_induction_rejected() {
        let p = parse_and_check(
            "__kernel void k(__global float* a) {
                __global float* p = a;
                for (int i = 0; i < 4; i++) { p[0] = 1.0f; p = p + 1; }
            }",
        )
        .expect("frontend");
        let e = lower_kernel(&p.kernels[0]).unwrap_err();
        assert!(e.to_string().contains("pointer induction"));
    }

    #[test]
    fn early_return_keeps_structure_valid() {
        let f = lower(
            "__kernel void k(__global int* a, int n) {
                int i = get_global_id(0);
                if (i >= n) { return; }
                a[i] = i;
            }",
        );
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn break_and_continue_lower() {
        let f = lower(
            "__kernel void k(__global int* a) {
                for (int i = 0; i < 100; i++) {
                    if (i == 50) { break; }
                    if (i % 2 == 0) { continue; }
                    a[i] = i;
                }
            }",
        );
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn vector_ops_lower() {
        let f = lower(
            "__kernel void k(__global float4* a) {
                int i = get_global_id(0);
                float4 v = a[i];
                v.x = v.y * 2.0f;
                a[i] = v;
            }",
        );
        assert_eq!(f.validate(), Ok(()));
        assert!(f.insts.iter().any(|i| matches!(i.op, Op::Extract(_))));
        assert!(f.insts.iter().any(|i| matches!(i.op, Op::Insert(0))));
    }

    #[test]
    fn ternary_lowers_to_select() {
        let f = lower(
            "__kernel void k(__global float* a, int n) {
                int i = get_global_id(0);
                a[i] = (i < n) ? 1.0f : 0.0f;
            }",
        );
        assert!(f.insts.iter().any(|i| matches!(i.op, Op::Select)));
    }

    #[test]
    fn logical_ops_lower_eagerly() {
        let f = lower(
            "__kernel void k(__global int* a, int n) {
                int i = get_global_id(0);
                if (i > 0 && i < n) { a[i] = 1; }
            }",
        );
        assert_eq!(f.validate(), Ok(()));
        assert!(f.insts.iter().any(|i| matches!(i.op, Op::Bin(BinOp::And))));
    }

    #[test]
    fn nested_loops_register_two_loops() {
        let f = lower(
            "__kernel void k(__global float* a) {
                for (int i = 0; i < 8; i++) {
                    for (int j = 0; j < 4; j++) {
                        a[i * 4 + j] = 0.0f;
                    }
                }
            }",
        );
        assert_eq!(f.loops.len(), 2);
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn unroll_pragma_recorded() {
        let f = lower(
            "__kernel void k(__global float* a) {
                #pragma unroll 4
                for (int i = 0; i < 16; i++) { a[i] = 0.0f; }
            }",
        );
        assert_eq!(f.loops[0].unroll, Some(4));
    }

    #[test]
    fn scalar_param_copies_to_slot() {
        let f = lower(
            "__kernel void k(__global float* a, float alpha) {
                a[0] = alpha * 2.0f;
            }",
        );
        // alpha is stored once at entry and loaded at use.
        let stores: Vec<_> = f
            .insts
            .iter()
            .filter(|i| matches!(i.op, Op::Store { space: AddressSpace::Private, .. }))
            .collect();
        assert!(!stores.is_empty());
        assert_eq!(f.validate(), Ok(()));
    }
}
