//! Property test: for randomly generated integer expression trees, the
//! whole pipeline (lexer → parser → sema → lowering → interpreter) must
//! agree with a direct Rust evaluation under C `int` (wrapping 32-bit)
//! semantics.
//!
//! This is the strongest cheap correctness property the compiler substrate
//! has: any bug in literal handling, operator precedence printing/parsing,
//! constant typing, IR lowering of operators, or the interpreter's
//! arithmetic shows up as a mismatch.

use flexcl_interp::{run, KernelArg, NdRange, RunOptions};
use proptest::prelude::*;

/// An integer expression tree mirrored in Rust and printed as OpenCL C.
#[derive(Debug, Clone)]
enum E {
    Lit(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, u8),
    Shr(Box<E>, u8),
    Neg(Box<E>),
    BitNot(Box<E>),
    Lt(Box<E>, Box<E>),
    Ternary(Box<E>, Box<E>, Box<E>),
}

impl E {
    fn eval(&self) -> i32 {
        match self {
            E::Lit(v) => *v,
            E::Add(a, b) => a.eval().wrapping_add(b.eval()),
            E::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            E::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            E::And(a, b) => a.eval() & b.eval(),
            E::Or(a, b) => a.eval() | b.eval(),
            E::Xor(a, b) => a.eval() ^ b.eval(),
            E::Shl(a, s) => a.eval().wrapping_shl(u32::from(*s)),
            E::Shr(a, s) => a.eval().wrapping_shr(u32::from(*s)),
            E::Neg(a) => a.eval().wrapping_neg(),
            E::BitNot(a) => !a.eval(),
            E::Lt(a, b) => i32::from(a.eval() < b.eval()),
            E::Ternary(c, t, e) => {
                if c.eval() != 0 {
                    t.eval()
                } else {
                    e.eval()
                }
            }
        }
    }

    fn print(&self) -> String {
        match self {
            // Negative literals print as unary-minus applications, which
            // exercises the parser's prefix handling.
            E::Lit(v) => {
                if *v < 0 {
                    format!("(-{})", i64::from(*v).unsigned_abs())
                } else {
                    format!("{v}")
                }
            }
            E::Add(a, b) => format!("({} + {})", a.print(), b.print()),
            E::Sub(a, b) => format!("({} - {})", a.print(), b.print()),
            E::Mul(a, b) => format!("({} * {})", a.print(), b.print()),
            E::And(a, b) => format!("({} & {})", a.print(), b.print()),
            E::Or(a, b) => format!("({} | {})", a.print(), b.print()),
            E::Xor(a, b) => format!("({} ^ {})", a.print(), b.print()),
            E::Shl(a, s) => format!("({} << {s})", a.print()),
            E::Shr(a, s) => format!("({} >> {s})", a.print()),
            E::Neg(a) => format!("(-{})", a.print()),
            E::BitNot(a) => format!("(~{})", a.print()),
            E::Lt(a, b) => format!("({} < {})", a.print(), b.print()),
            E::Ternary(c, t, e) => {
                format!("(({}) != 0 ? {} : {})", c.print(), t.print(), e.print())
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = any::<i32>().prop_map(E::Lit);
    leaf.prop_recursive(5, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(a.into(), b.into())),
            (inner.clone(), 0u8..31).prop_map(|(a, s)| E::Shl(a.into(), s)),
            (inner.clone(), 0u8..31).prop_map(|(a, s)| E::Shr(a.into(), s)),
            inner.clone().prop_map(|a| E::Neg(a.into())),
            inner.clone().prop_map(|a| E::BitNot(a.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lt(a.into(), b.into())),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, t, e)| E::Ternary(c.into(), t.into(), e.into())),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pipeline_matches_rust_semantics(e in arb_expr()) {
        let src = format!(
            "__kernel void k(__global int* out) {{ out[0] = {}; }}",
            e.print()
        );
        let program = flexcl_frontend::parse_and_check(&src)
            .unwrap_or_else(|err| panic!("frontend rejected `{src}`: {err}"));
        let func = flexcl_ir::lower_kernel(&program.kernels[0]).expect("lowering");
        let mut args = vec![KernelArg::IntBuf(vec![0])];
        run(&func, &mut args, NdRange::new_1d(1, 1), RunOptions::default()).expect("run");
        let KernelArg::IntBuf(out) = &args[0] else { unreachable!() };
        let expected = i64::from(e.eval());
        prop_assert_eq!(out[0], expected, "src: {}", src);
    }

    #[test]
    fn optimizer_agrees_with_interpreter(e in arb_expr()) {
        // The constant folder must compute exactly the interpreter's value.
        let src = format!(
            "__kernel void k(__global int* out) {{ out[0] = {}; }}",
            e.print()
        );
        let program = flexcl_frontend::parse_and_check(&src).expect("frontend");
        let mut func = flexcl_ir::lower_kernel(&program.kernels[0]).expect("lowering");
        flexcl_ir::optimize(&mut func);
        let mut args = vec![KernelArg::IntBuf(vec![0])];
        run(&func, &mut args, NdRange::new_1d(1, 1), RunOptions::default()).expect("run");
        let KernelArg::IntBuf(out) = &args[0] else { unreachable!() };
        prop_assert_eq!(out[0], i64::from(e.eval()), "src: {}", src);
    }

    #[test]
    fn lexer_never_panics(s in "\\PC*") {
        let _ = flexcl_frontend::lexer::Lexer::new(&s).tokenize();
    }

    #[test]
    fn parser_never_panics(s in "[a-zA-Z0-9_{}()\\[\\];,+\\-*/<>=!&|^~?: .\\n]*") {
        let _ = flexcl_frontend::parse(&s);
    }
}
