//! Property test: stratified work-group profiling must degenerate to exact
//! profiling whenever the group budget covers the whole NDRange.
//!
//! The analytical model trusts the stratified profile as if it were exact;
//! this pins the boundary case where it *must* be — same trace, same trip
//! statistics, same work-item count, and every group carrying weight 1 (no
//! zero-weight warm-up predecessors, no stratum aggregation).

use flexcl_interp::{run, GroupSampling, KernelArg, NdRange, RunOptions};
use proptest::prelude::*;

/// A kernel whose loop trip count and access pattern vary per group, so any
/// sampling artifact (missing groups, reweighted trips, warm-up entries)
/// changes the observable profile.
const SRC: &str = "__kernel void k(__global int* a, __global int* out) {
    int i = get_global_id(0);
    int g = get_group_id(0);
    int acc = 0;
    for (int j = 0; j <= (g % 3); j++) {
        acc += a[i] + j;
    }
    out[i] = acc;
}";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn full_budget_stratified_equals_exact(
        groups in 1u64..10,
        local in 1u64..8,
        surplus in 0u64..4,
    ) {
        let program = flexcl_frontend::parse_and_check(SRC).expect("frontend");
        let func = flexcl_ir::lower_kernel(&program.kernels[0]).expect("lowering");
        let global = groups * local;
        let nd = NdRange::new_1d(global, local);
        let n = global as usize;

        let mut exact_args =
            vec![KernelArg::IntBuf(vec![1; n]), KernelArg::IntBuf(vec![0; n])];
        let exact =
            run(&func, &mut exact_args, nd, RunOptions::default()).expect("exact run");

        let mut strat_args =
            vec![KernelArg::IntBuf(vec![1; n]), KernelArg::IntBuf(vec![0; n])];
        let opts = RunOptions {
            profile_groups: Some(groups + surplus),
            profile_sampling: GroupSampling::Stratified,
            ..RunOptions::default()
        };
        let strat = run(&func, &mut strat_args, nd, opts).expect("stratified run");

        prop_assert_eq!(strat.trace, exact.trace);
        prop_assert_eq!(strat.work_items, exact.work_items);
        prop_assert!(strat.groups.iter().all(|g| g.weight == 1.0),
            "weights must all be 1, got {:?}", strat.groups);
        prop_assert_eq!(strat.groups.len() as u64, groups);
        for (id, (entries, iters)) in &exact.trips.raw {
            let (se, si) = strat.trips.raw.get(id).copied().unwrap_or((0.0, 0.0));
            prop_assert!((se - entries).abs() < 1e-9 && (si - iters).abs() < 1e-9,
                "loop {id}: stratified trips ({se}, {si}) != exact ({entries}, {iters})");
        }
        prop_assert_eq!(strat.trips.raw.len(), exact.trips.raw.len());
        prop_assert_eq!(strat_args, exact_args);
    }
}
