//! The IR interpreter.
//!
//! Executes a lowered kernel over an NDRange, both to verify functional
//! behaviour and — its main job inside FlexCL — to *dynamically profile*
//! the kernel: loop trip counts that static analysis could not determine
//! and the global-memory access trace that drives the DRAM model (§3.2).
//!
//! Work-items execute sequentially in id order within each work-group.
//! `barrier()` is therefore a no-op here: for the profiling observables
//! (indices, loop bounds) this is exact, since they derive from work-item
//! ids; data read through local memory follows the common
//! "write-own-slot, then read" idiom for which id-order execution is also
//! functionally correct for forward neighbourhoods.

use crate::profile::{EdgeCounts, GroupObservation, MemAccess, Profile};
use crate::value::{truncate_int, KernelArg, RtVal};
use flexcl_frontend::ast::{BinOp, UnOp};
use flexcl_frontend::builtins::{MathOp, WorkItemFn};
use flexcl_frontend::types::{AddressSpace, Scalar, Type};
use flexcl_ir::{Function, InstId, Literal, MemRoot, Op, Terminator, Value};
use std::collections::HashMap;
use std::fmt;

/// The execution geometry of a kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdRange {
    /// Global work size per dimension.
    pub global: [u64; 3],
    /// Work-group size per dimension.
    pub local: [u64; 3],
}

impl NdRange {
    /// A 1-D NDRange.
    pub fn new_1d(global: u64, local: u64) -> Self {
        NdRange { global: [global, 1, 1], local: [local, 1, 1] }
    }

    /// A 2-D NDRange.
    pub fn new_2d(gx: u64, gy: u64, lx: u64, ly: u64) -> Self {
        NdRange { global: [gx, gy, 1], local: [lx, ly, 1] }
    }

    /// Total number of work-items.
    pub fn total_work_items(&self) -> u64 {
        self.global.iter().product()
    }

    /// Work-items per work-group.
    pub fn work_group_size(&self) -> u64 {
        self.local.iter().product()
    }

    /// Number of work-groups.
    pub fn num_groups(&self) -> u64 {
        (0..3).map(|d| self.global[d].div_ceil(self.local[d].max(1))).product()
    }

    /// Validates divisibility and non-zero sizes.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] when a dimension is zero or the local
    /// size does not divide the global size.
    pub fn validate(&self) -> Result<(), GeometryError> {
        for d in 0..3 {
            if self.global[d] == 0 || self.local[d] == 0 {
                return Err(GeometryError::ZeroDimension { dim: d });
            }
            if !self.global[d].is_multiple_of(self.local[d]) {
                return Err(GeometryError::NotDivisible {
                    dim: d,
                    global: self.global[d],
                    local: self.local[d],
                });
            }
        }
        Ok(())
    }
}

/// An invalid NDRange geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// A global or local dimension is zero.
    ZeroDimension {
        /// The offending dimension (0–2).
        dim: usize,
    },
    /// The local size does not divide the global size in some dimension.
    NotDivisible {
        /// The offending dimension (0–2).
        dim: usize,
        /// Global size in that dimension.
        global: u64,
        /// Local size in that dimension.
        local: u64,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::ZeroDimension { dim } => write!(f, "dimension {dim} has zero size"),
            GeometryError::NotDivisible { dim, global, local } => write!(
                f,
                "global size {global} not divisible by local size {local} in dim {dim}"
            ),
        }
    }
}

impl std::error::Error for GeometryError {}

/// Interpreter failures.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// A buffer access was out of bounds.
    OutOfBounds {
        /// Parameter index of the buffer.
        param: u32,
        /// Offending element index.
        index: i64,
        /// Buffer length.
        len: usize,
    },
    /// The kernel exceeded the execution step budget (runaway loop).
    StepLimit(u64),
    /// The recorded memory trace exceeded its size budget.
    TraceLimit(usize),
    /// The launch geometry is invalid.
    Geometry(GeometryError),
    /// Argument count/type mismatch with the kernel signature.
    BadArguments(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::OutOfBounds { param, index, len } => {
                write!(f, "buffer access out of bounds: param {param}, index {index}, len {len}")
            }
            InterpError::StepLimit(n) => write!(f, "execution exceeded {n} steps"),
            InterpError::TraceLimit(n) => {
                write!(f, "memory trace exceeded {n} recorded accesses")
            }
            InterpError::Geometry(g) => write!(f, "invalid NDRange: {g}"),
            InterpError::BadArguments(m) => write!(f, "bad kernel arguments: {m}"),
        }
    }
}

impl From<GeometryError> for InterpError {
    fn from(g: GeometryError) -> Self {
        InterpError::Geometry(g)
    }
}

impl std::error::Error for InterpError {}

/// How a profiled subset of work-groups is chosen from the NDRange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GroupSampling {
    /// The first `n` groups in linear order. Cheapest; representative only
    /// for kernels whose work is uniform over the index space.
    #[default]
    Leading,
    /// Groups spread evenly across the NDRange at a fixed stride, all
    /// weighted equally.
    Spread,
    /// Representative strata: the first, middle and last group, the
    /// boundary groups along each NDRange dimension, and evenly-strided
    /// fill up to the budget. Each profiled group carries a weight — the
    /// number of NDRange groups nearest to it in linear-id space — so the
    /// resulting [`Profile`] is a weighted mixture rather than a uniform
    /// average. Kernels whose work varies across the index space (guarded
    /// wavefronts, triangular iteration spaces) need this to avoid being
    /// modeled by their unguarded corner.
    Stratified,
}

/// Options controlling a profiled run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Profile only `n` work-groups (the paper profiles "a few
    /// work-groups"; traces are per-work-item so a subset suffices).
    /// `None` executes everything.
    pub profile_groups: Option<u64>,
    /// How the profiled subset is chosen (ignored when `profile_groups`
    /// covers the whole NDRange).
    pub profile_sampling: GroupSampling,
    /// Abort after this many interpreted instructions per work-item.
    pub step_limit: u64,
    /// Record the global memory trace.
    pub record_trace: bool,
    /// Abort once the recorded trace reaches this many accesses (bounds the
    /// profiling memory footprint for trip-count explosions).
    pub trace_limit: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            profile_groups: None,
            profile_sampling: GroupSampling::Leading,
            step_limit: 10_000_000,
            record_trace: true,
            trace_limit: 16_777_216,
        }
    }
}

/// Executes `func` over `ndrange` with the given arguments.
///
/// Buffers in `args` are mutated in place (stores write through). Returns
/// the execution [`Profile`].
///
/// # Errors
///
/// Returns [`InterpError`] on out-of-bounds accesses, argument mismatches or
/// runaway loops.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use flexcl_interp::{run, KernelArg, NdRange, RunOptions};
///
/// let program = flexcl_frontend::parse_and_check(
///     "__kernel void inc(__global int* a) {
///          int i = get_global_id(0);
///          a[i] = a[i] + 1;
///      }",
/// )?;
/// let func = flexcl_ir::lower_kernel(&program.kernels[0])?;
/// let mut args = vec![KernelArg::IntBuf(vec![0; 8])];
/// run(&func, &mut args, NdRange::new_1d(8, 4), RunOptions::default())?;
/// assert_eq!(args[0], KernelArg::IntBuf(vec![1; 8]));
/// # Ok(())
/// # }
/// ```
pub fn run(
    func: &Function,
    args: &mut [KernelArg],
    ndrange: NdRange,
    opts: RunOptions,
) -> Result<Profile, InterpError> {
    let mut span = flexcl_obs::span("interp.profile");
    ndrange.validate()?;
    if args.len() != func.params.len() {
        return Err(InterpError::BadArguments(format!(
            "kernel `{}` takes {} arguments, got {}",
            func.name,
            func.params.len(),
            args.len()
        )));
    }
    for (i, (p, a)) in func.params.iter().zip(args.iter()).enumerate() {
        let ok = match (&p.ty, a) {
            (Type::Pointer(_, _), KernelArg::IntBuf(_) | KernelArg::FloatBuf(_)) => true,
            (Type::Pointer(_, _), _) => false,
            (_, KernelArg::IntBuf(_) | KernelArg::FloatBuf(_)) => false,
            _ => true,
        };
        if !ok {
            return Err(InterpError::BadArguments(format!(
                "argument {i} does not match parameter type {}",
                p.ty
            )));
        }
    }

    let mut machine = Machine {
        func,
        args,
        edge_counts: EdgeCounts::new(),
        trace: Vec::new(),
        opts,
        work_items_executed: 0,
    };

    let groups = group_iter(&ndrange);
    let total = groups.len() as u64;
    let limit = opts.profile_groups.unwrap_or(u64::MAX);
    let counts = [
        ndrange.global[0] / ndrange.local[0],
        ndrange.global[1] / ndrange.local[1],
        ndrange.global[2] / ndrange.local[2],
    ];
    let selected = select_profiled_groups(total, limit, counts, opts.profile_sampling);

    let mut observations = Vec::with_capacity(selected.len());
    for (g_idx, weight) in selected {
        let wi_before = machine.work_items_executed;
        machine.run_group(g_idx, groups[g_idx as usize], &ndrange)?;
        observations.push(GroupObservation {
            group: g_idx,
            weight,
            edges: std::mem::take(&mut machine.edge_counts),
            work_items: machine.work_items_executed - wi_before,
        });
    }

    span.attr_u64("groups_profiled", observations.len() as u64);
    span.attr_u64("work_items", machine.work_items_executed);
    Ok(Profile::from_group_parts(
        func,
        observations,
        machine.trace,
        machine.work_items_executed,
    ))
}

/// Picks the profiled work-groups and their stratum weights.
///
/// Returns `(linear group id, weight)` pairs in ascending id order. Weights
/// partition the NDRange: every group is charged to its nearest selected
/// id in linear-id space (ties to the lower id), so `Σ weights = total`.
/// When `limit >= total` every group is selected with weight 1 — sampling
/// degenerates to exact profiling.
fn select_profiled_groups(
    total: u64,
    limit: u64,
    counts: [u64; 3],
    sampling: GroupSampling,
) -> Vec<(u64, f64)> {
    if total == 0 {
        return Vec::new();
    }
    if limit >= total {
        return (0..total).map(|g| (g, 1.0)).collect();
    }
    let limit = limit.max(1);

    let ids: Vec<u64> = match sampling {
        GroupSampling::Leading => (0..limit).collect(),
        GroupSampling::Spread => {
            // Evenly spread sample (ceil stride keeps the count ≤ limit).
            let stride = total.div_ceil(limit);
            (0..total).step_by(stride as usize).take(limit as usize).collect()
        }
        GroupSampling::Stratified => {
            // Candidate strata in priority order: corners of the linear
            // space, the middle, per-dimension boundary groups (first/last
            // slice along each multi-group dimension, other dims at their
            // middle), quartiles, then an even stride fill.
            let linear = |coord: [u64; 3]| -> u64 {
                (coord[2] * counts[1] + coord[1]) * counts[0] + coord[0]
            };
            let mid = [counts[0] / 2, counts[1] / 2, counts[2] / 2];
            // Interior "typical" samples are nudged to odd linear ids and
            // the stride fill runs at an odd stride from a half-stride
            // offset: memory systems are periodic in powers of two (bank
            // count, rows per group block), so even-aligned samples like
            // {0, 8, 16, ...} can all land in the same bank-conflict class
            // and misrepresent a population whose conflict rate is 1 in
            // `banks`. Odd ids/strides are coprime to every power of two,
            // rotating consecutive samples through the residue classes.
            let nudge_odd = |id: u64| -> u64 {
                let odd = id | 1;
                if odd < total {
                    odd
                } else {
                    id.min(total - 1)
                }
            };
            let mut candidates: Vec<u64> = vec![0, total - 1, nudge_odd(total / 2)];
            for d in 0..3 {
                if counts[d] > 1 {
                    let mut lo = mid;
                    lo[d] = 0;
                    let mut hi = mid;
                    hi[d] = counts[d] - 1;
                    candidates.push(linear(lo));
                    candidates.push(linear(hi));
                }
            }
            candidates.push(nudge_odd(total / 4));
            candidates.push(nudge_odd(3 * total / 4));
            let stride = total.div_ceil(limit) | 1;
            let mut v = stride / 2;
            while v < total {
                candidates.push(v);
                v += stride;
            }
            let mut picked = Vec::with_capacity(limit as usize);
            for c in candidates {
                if picked.len() as u64 >= limit {
                    break;
                }
                if !picked.contains(&c) {
                    picked.push(c);
                }
            }
            // Backstop: fill any remaining budget with the lowest unpicked
            // ids (odd first, for the same de-aliasing reason).
            for c in (1..total).step_by(2).chain((0..total).step_by(2)) {
                if picked.len() as u64 >= limit {
                    break;
                }
                if !picked.contains(&c) {
                    picked.push(c);
                }
            }
            picked
        }
    };

    let mut ids = ids;
    ids.sort_unstable();
    ids.dedup();

    // Stratum weights: each NDRange group is charged to the nearest
    // selected id (ties to the lower id); the boundary between consecutive
    // selected ids s_i < s_{i+1} falls at floor((s_i + s_{i+1}) / 2).
    // Exception: group 0 (and, when an interior sample can absorb the
    // mass, group total-1) represents only itself — it is sampled
    // *because* it is atypical (`get_global_id`-guarded prologues and
    // partial tails fire there), so it must not stand in for the bulk.
    let weighted = matches!(sampling, GroupSampling::Stratified);
    let n = ids.len();
    let first_pinned = weighted && n >= 2 && ids[0] == 0;
    let last_pinned = weighted && n >= 3 && ids[n - 1] == total - 1;
    let strata: Vec<(u64, f64)> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            // Pinned boundary groups represent only themselves (weight 1);
            // exact sampling weights everything 1.
            let pinned = (first_pinned && i == 0) || (last_pinned && i == n - 1);
            let w = if !weighted || pinned {
                1.0
            } else {
                let seg_start = if i == 0 {
                    0
                } else if first_pinned && i == 1 {
                    1
                } else {
                    (ids[i - 1] + id) / 2 + 1
                };
                let seg_end = if i == n - 1 {
                    total - 1
                } else if last_pinned && i == n - 2 {
                    total - 2
                } else {
                    (id + ids[i + 1]) / 2
                };
                (seg_end - seg_start + 1) as f64
            };
            (id, w)
        })
        .collect();
    if !weighted {
        return strata;
    }
    // Zero-weight warm-up predecessors: a stratum's memory-pattern stream is
    // only faithful if the DRAM bank state it replays against matches what
    // the *adjacent* group would have left (a group's first access typically
    // follows its predecessor's last write to the same bank). Each sampled
    // stratum therefore drags its immediate predecessor along, profiled but
    // weightless: it warms the replay state and contributes nothing to the
    // weighted aggregates.
    let mut out = Vec::with_capacity(strata.len() * 2);
    for (id, w) in strata {
        if id > 0
            && ids.binary_search(&(id - 1)).is_err()
            && out.last().map(|&(p, _)| p) != Some(id - 1)
        {
            out.push((id - 1, 0.0));
        }
        out.push((id, w));
    }
    out
}

/// Enumerates work-group origin coordinates.
fn group_iter(nd: &NdRange) -> Vec<[u64; 3]> {
    let mut out = Vec::new();
    let counts: Vec<u64> = (0..3).map(|d| nd.global[d] / nd.local[d]).collect();
    for gz in 0..counts[2] {
        for gy in 0..counts[1] {
            for gx in 0..counts[0] {
                out.push([gx, gy, gz]);
            }
        }
    }
    out
}

struct Machine<'a> {
    func: &'a Function,
    args: &'a mut [KernelArg],
    edge_counts: EdgeCounts,
    trace: Vec<MemAccess>,
    opts: RunOptions,
    work_items_executed: u64,
}

/// Per-work-item geometry context.
#[derive(Debug, Clone, Copy)]
struct WiCtx {
    global_id: [u64; 3],
    local_id: [u64; 3],
    group_id: [u64; 3],
    global_size: [u64; 3],
    local_size: [u64; 3],
    num_groups: [u64; 3],
    linear_id: u64,
    group_linear: u64,
}

impl<'a> Machine<'a> {
    /// Appends a memory access to the trace, enforcing the trace-size fuel.
    fn push_trace(&mut self, access: MemAccess) -> Result<(), InterpError> {
        if self.trace.len() >= self.opts.trace_limit {
            return Err(InterpError::TraceLimit(self.opts.trace_limit));
        }
        self.trace.push(access);
        Ok(())
    }

    fn run_group(
        &mut self,
        group_linear: u64,
        group: [u64; 3],
        nd: &NdRange,
    ) -> Result<(), InterpError> {
        // Local allocas shared across the work-group.
        let mut local_mem: HashMap<InstId, Vec<RtVal>> = HashMap::new();
        for inst in &self.func.insts {
            if let Op::Alloca { space: AddressSpace::Local, elems } = inst.op {
                let lanes = inst.ty.lanes() as u64;
                local_mem
                    .insert(inst.id, vec![RtVal::zero(&inst.ty); (elems * lanes.max(1)) as usize]);
            }
        }

        for lz in 0..nd.local[2] {
            for ly in 0..nd.local[1] {
                for lx in 0..nd.local[0] {
                    let local_id = [lx, ly, lz];
                    let global_id = [
                        group[0] * nd.local[0] + lx,
                        group[1] * nd.local[1] + ly,
                        group[2] * nd.local[2] + lz,
                    ];
                    let linear_id = global_id[2] * nd.global[1] * nd.global[0]
                        + global_id[1] * nd.global[0]
                        + global_id[0];
                    let ctx = WiCtx {
                        global_id,
                        local_id,
                        group_id: group,
                        global_size: nd.global,
                        local_size: nd.local,
                        num_groups: [
                            nd.global[0] / nd.local[0],
                            nd.global[1] / nd.local[1],
                            nd.global[2] / nd.local[2],
                        ],
                        linear_id,
                        group_linear,
                    };
                    self.run_work_item(ctx, &mut local_mem)?;
                    self.work_items_executed += 1;
                }
            }
        }
        Ok(())
    }

    fn run_work_item(
        &mut self,
        ctx: WiCtx,
        local_mem: &mut HashMap<InstId, Vec<RtVal>>,
    ) -> Result<(), InterpError> {
        let func = self.func;
        let mut regs: Vec<Option<RtVal>> = vec![None; func.insts.len()];
        let mut private_mem: HashMap<InstId, Vec<RtVal>> = HashMap::new();
        let mut steps: u64 = 0;
        let mut block = func.entry;
        let mut prev_block: Option<flexcl_ir::BlockId> = None;

        loop {
            if let Some(p) = prev_block {
                self.edge_counts.record(p, block);
            }
            for &iid in &func.block(block).insts {
                steps += 1;
                if steps > self.opts.step_limit {
                    return Err(InterpError::StepLimit(self.opts.step_limit));
                }
                let inst = func.inst(iid);
                let result =
                    self.exec_inst(inst, &ctx, &mut regs, &mut private_mem, local_mem)?;
                regs[iid.0 as usize] = result;
            }
            let term = &func.block(block).term;
            prev_block = Some(block);
            match term {
                Terminator::Br(t) => block = *t,
                Terminator::CondBr(c, t, f) => {
                    let cond = eval_value_with(c, &regs, self.args);
                    block = if cond.as_bool() { *t } else { *f };
                }
                Terminator::Ret => return Ok(()),
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec_inst(
        &mut self,
        inst: &flexcl_ir::Inst,
        ctx: &WiCtx,
        regs: &mut [Option<RtVal>],
        private_mem: &mut HashMap<InstId, Vec<RtVal>>,
        local_mem: &mut HashMap<InstId, Vec<RtVal>>,
    ) -> Result<Option<RtVal>, InterpError> {
        let arg = |i: usize| eval_value_with(&inst.args[i], regs, self.args);
        Ok(match &inst.op {
            Op::Alloca { space, elems } => {
                if *space == AddressSpace::Private {
                    private_mem
                        .insert(inst.id, vec![RtVal::zero(&inst.ty); *elems as usize]);
                }
                // Local allocas were materialised per work-group.
                Some(RtVal::Int(0))
            }
            Op::Bin(op) => Some(eval_bin(*op, &arg(0), &arg(1), &inst.ty)),
            Op::Un(op) => Some(eval_un(*op, &arg(0), &inst.ty)),
            Op::Select => {
                let v = if arg(0).as_bool() { arg(1) } else { arg(2) };
                Some(v.convert_to(&inst.ty))
            }
            Op::Convert => Some(arg(0).convert_to(&inst.ty)),
            Op::Splat => Some(arg(0).convert_to(&inst.ty)),
            Op::Extract(lane) => Some(match arg(0) {
                RtVal::FloatVec(v) => RtVal::Float(v.get(*lane as usize).copied().unwrap_or(0.0)),
                RtVal::IntVec(v) => RtVal::Int(v.get(*lane as usize).copied().unwrap_or(0)),
                scalar => scalar,
            }),
            Op::Insert(lane) => {
                let mut vec = arg(0).convert_to(&inst.ty);
                let s = arg(1);
                match &mut vec {
                    RtVal::FloatVec(v) => {
                        if let Some(slot) = v.get_mut(*lane as usize) {
                            *slot = s.as_float();
                        }
                    }
                    RtVal::IntVec(v) => {
                        if let Some(slot) = v.get_mut(*lane as usize) {
                            *slot = s.as_int();
                        }
                    }
                    _ => {}
                }
                Some(vec)
            }
            Op::Math(m) => {
                let vals: Vec<RtVal> = (0..inst.args.len()).map(arg).collect();
                Some(eval_math(*m, &vals, &inst.ty))
            }
            Op::WorkItem(wi) => {
                let dim = (arg(0).as_int().clamp(0, 2)) as usize;
                let v = match wi {
                    WorkItemFn::GlobalId => ctx.global_id[dim],
                    WorkItemFn::LocalId => ctx.local_id[dim],
                    WorkItemFn::GroupId => ctx.group_id[dim],
                    WorkItemFn::GlobalSize => ctx.global_size[dim],
                    WorkItemFn::LocalSize => ctx.local_size[dim],
                    WorkItemFn::NumGroups => ctx.num_groups[dim],
                    WorkItemFn::WorkDim => 3,
                };
                Some(RtVal::Int(v as i64))
            }
            Op::Barrier => None,
            Op::Load { space, root } => {
                let idx = arg(0).as_int();
                Some(self.load(*space, *root, idx, &inst.ty, ctx, private_mem, local_mem)?)
            }
            Op::Store { space, root } => {
                let idx = arg(0).as_int();
                let val = arg(1);
                self.store(*space, *root, idx, &val, ctx, private_mem, local_mem)?;
                None
            }
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn load(
        &mut self,
        space: AddressSpace,
        root: MemRoot,
        idx: i64,
        ty: &Type,
        ctx: &WiCtx,
        private_mem: &HashMap<InstId, Vec<RtVal>>,
        local_mem: &HashMap<InstId, Vec<RtVal>>,
    ) -> Result<RtVal, InterpError> {
        match (space, root) {
            (AddressSpace::Global | AddressSpace::Constant, MemRoot::Param(p)) => {
                let lanes = ty.lanes() as i64;
                let elem_bytes = ty.bytes().unwrap_or(4) as u32;
                if self.opts.record_trace {
                    self.push_trace(MemAccess {
                        write: false,
                        param: p,
                        elem_index: idx,
                        bytes: elem_bytes,
                        work_item: ctx.linear_id,
                        work_group: ctx.group_linear,
                    })?;
                }
                let buf = &self.args[p as usize];
                if lanes == 1 {
                    buf.read(usize::try_from(idx).map_err(|_| InterpError::OutOfBounds {
                        param: p,
                        index: idx,
                        len: buf.len(),
                    })?)
                    .ok_or(InterpError::OutOfBounds { param: p, index: idx, len: buf.len() })
                } else {
                    let base = idx * lanes;
                    let mut out_f = Vec::with_capacity(lanes as usize);
                    let mut out_i = Vec::with_capacity(lanes as usize);
                    let is_float = ty.is_float();
                    for l in 0..lanes {
                        let v = buf
                            .read((base + l) as usize)
                            .ok_or(InterpError::OutOfBounds {
                                param: p,
                                index: base + l,
                                len: buf.len(),
                            })?;
                        if is_float {
                            out_f.push(v.as_float());
                        } else {
                            out_i.push(v.as_int());
                        }
                    }
                    Ok(if is_float { RtVal::FloatVec(out_f) } else { RtVal::IntVec(out_i) })
                }
            }
            (AddressSpace::Local, MemRoot::Param(p)) => {
                // __local pointer parameter: host-allocated scratch; treat as
                // a work-group buffer keyed by param index via a pseudo
                // buffer in args.
                let buf = &self.args[p as usize];
                buf.read(usize::try_from(idx).unwrap_or(usize::MAX)).ok_or(
                    InterpError::OutOfBounds { param: p, index: idx, len: buf.len() },
                )
            }
            (_, MemRoot::Alloca(a)) => {
                let mem = if space == AddressSpace::Local {
                    local_mem.get(&a)
                } else {
                    private_mem.get(&a)
                };
                let mem = mem.ok_or(InterpError::OutOfBounds { param: 0, index: idx, len: 0 })?;
                mem.get(usize::try_from(idx).unwrap_or(usize::MAX)).cloned().ok_or(
                    InterpError::OutOfBounds { param: 0, index: idx, len: mem.len() },
                )
            }
            (space, root) => Err(InterpError::BadArguments(format!(
                "unsupported load: {space} from {root:?}"
            ))),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn store(
        &mut self,
        space: AddressSpace,
        root: MemRoot,
        idx: i64,
        val: &RtVal,
        ctx: &WiCtx,
        private_mem: &mut HashMap<InstId, Vec<RtVal>>,
        local_mem: &mut HashMap<InstId, Vec<RtVal>>,
    ) -> Result<(), InterpError> {
        match (space, root) {
            (AddressSpace::Global, MemRoot::Param(p)) => {
                let (lanes, elem_bytes, is_float) = match val {
                    RtVal::FloatVec(v) => (v.len() as i64, 4 * v.len() as u32, true),
                    RtVal::IntVec(v) => (v.len() as i64, 4 * v.len() as u32, false),
                    RtVal::Float(_) => (1, 4, true),
                    RtVal::Int(_) => (1, 4, false),
                };
                let _ = is_float;
                if self.opts.record_trace {
                    self.push_trace(MemAccess {
                        write: true,
                        param: p,
                        elem_index: idx,
                        bytes: elem_bytes,
                        work_item: ctx.linear_id,
                        work_group: ctx.group_linear,
                    })?;
                }
                let buf = &mut self.args[p as usize];
                if lanes == 1 {
                    if !buf.write(usize::try_from(idx).unwrap_or(usize::MAX), val) {
                        return Err(InterpError::OutOfBounds {
                            param: p,
                            index: idx,
                            len: buf.len(),
                        });
                    }
                } else {
                    let base = idx * lanes;
                    for l in 0..lanes {
                        let scalar = match val {
                            RtVal::FloatVec(v) => {
                                RtVal::Float(v.get(l as usize).copied().unwrap_or(0.0))
                            }
                            RtVal::IntVec(v) => {
                                RtVal::Int(v.get(l as usize).copied().unwrap_or(0))
                            }
                            // `lanes > 1` only for the vector variants, but
                            // degrade to a broadcast rather than panic.
                            other => other.clone(),
                        };
                        if !buf.write((base + l) as usize, &scalar) {
                            return Err(InterpError::OutOfBounds {
                                param: p,
                                index: base + l,
                                len: buf.len(),
                            });
                        }
                    }
                }
                Ok(())
            }
            (AddressSpace::Local, MemRoot::Param(p)) => {
                let buf = &mut self.args[p as usize];
                if buf.write(usize::try_from(idx).unwrap_or(usize::MAX), val) {
                    Ok(())
                } else {
                    Err(InterpError::OutOfBounds { param: p, index: idx, len: buf.len() })
                }
            }
            (_, MemRoot::Alloca(a)) => {
                let mem = if space == AddressSpace::Local {
                    local_mem.get_mut(&a)
                } else {
                    private_mem.get_mut(&a)
                };
                let mem = mem.ok_or(InterpError::OutOfBounds { param: 0, index: idx, len: 0 })?;
                let len = mem.len();
                match mem.get_mut(usize::try_from(idx).unwrap_or(usize::MAX)) {
                    Some(slot) => {
                        *slot = val.clone();
                        Ok(())
                    }
                    None => Err(InterpError::OutOfBounds { param: 0, index: idx, len }),
                }
            }
            (space, root) => Err(InterpError::BadArguments(format!(
                "unsupported store: {space} to {root:?}"
            ))),
        }
    }
}

fn eval_value_with(v: &Value, regs: &[Option<RtVal>], args: &[KernelArg]) -> RtVal {
    match v {
        Value::Literal(Literal::Int(i)) => RtVal::Int(*i),
        Value::Literal(Literal::Float(f)) => RtVal::Float(*f),
        Value::Inst(id) => regs[id.0 as usize].clone().unwrap_or(RtVal::Int(0)),
        Value::Param(p) => match args.get(*p as usize) {
            Some(KernelArg::Int(i)) => RtVal::Int(*i),
            Some(KernelArg::Float(f)) => RtVal::Float(*f),
            _ => RtVal::Int(0), // pointer params never appear in value position
        },
    }
}

fn eval_bin(op: BinOp, a: &RtVal, b: &RtVal, ty: &Type) -> RtVal {
    // Vector case: lane-wise recursion.
    if ty.lanes() > 1 {
        let n = ty.lanes() as usize;
        let elem_ty = Type::Scalar(ty.element_scalar().unwrap_or(Scalar::I64));
        let lane = |v: &RtVal, i: usize| -> RtVal {
            match v {
                RtVal::FloatVec(x) => RtVal::Float(x.get(i).copied().unwrap_or(0.0)),
                RtVal::IntVec(x) => RtVal::Int(x.get(i).copied().unwrap_or(0)),
                s => s.clone(),
            }
        };
        let results: Vec<RtVal> = (0..n).map(|i| eval_bin(op, &lane(a, i), &lane(b, i), &elem_ty)).collect();
        return if elem_ty.is_float() {
            RtVal::FloatVec(results.iter().map(RtVal::as_float).collect())
        } else {
            RtVal::IntVec(results.iter().map(RtVal::as_int).collect())
        };
    }

    let float_op = ty.is_float()
        || matches!(
            (a, b),
            (RtVal::Float(_), _) | (_, RtVal::Float(_))
        ) && !op.is_comparison();
    let is_cmp = op.is_comparison();
    let float_inputs = matches!(a, RtVal::Float(_) | RtVal::FloatVec(_))
        || matches!(b, RtVal::Float(_) | RtVal::FloatVec(_));

    if is_cmp {
        let r = if float_inputs {
            let (x, y) = (a.as_float(), b.as_float());
            match op {
                BinOp::Lt => x < y,
                BinOp::Gt => x > y,
                BinOp::Le => x <= y,
                BinOp::Ge => x >= y,
                BinOp::Eq => x == y,
                BinOp::Ne => x != y,
                BinOp::LogAnd => x != 0.0 && y != 0.0,
                BinOp::LogOr => x != 0.0 || y != 0.0,
                _ => false, // is_cmp guarantees a comparison op

            }
        } else {
            let (x, y) = (a.as_int(), b.as_int());
            match op {
                BinOp::Lt => x < y,
                BinOp::Gt => x > y,
                BinOp::Le => x <= y,
                BinOp::Ge => x >= y,
                BinOp::Eq => x == y,
                BinOp::Ne => x != y,
                BinOp::LogAnd => x != 0 && y != 0,
                BinOp::LogOr => x != 0 || y != 0,
                _ => false, // is_cmp guarantees a comparison op

            }
        };
        return RtVal::Int(i64::from(r));
    }

    if float_op {
        let (x, y) = (a.as_float(), b.as_float());
        let r = match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
            BinOp::Rem => x % y,
            _ => return RtVal::Int(0),
        };
        RtVal::Float(r)
    } else {
        let (x, y) = (a.as_int(), b.as_int());
        let r = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    0
                } else {
                    x.wrapping_div(y)
                }
            }
            BinOp::Rem => {
                if y == 0 {
                    0
                } else {
                    x.wrapping_rem(y)
                }
            }
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32 & 63),
            BinOp::Shr => x.wrapping_shr(y as u32 & 63),
            _ => 0,
        };
        let s = ty.element_scalar().unwrap_or(Scalar::I64);
        RtVal::Int(truncate_int(r, s))
    }
}

fn eval_un(op: UnOp, a: &RtVal, ty: &Type) -> RtVal {
    match op {
        UnOp::Neg => {
            if ty.is_float() {
                RtVal::Float(-a.as_float())
            } else if let RtVal::FloatVec(v) = a {
                RtVal::FloatVec(v.iter().map(|x| -x).collect())
            } else if let RtVal::IntVec(v) = a {
                RtVal::IntVec(v.iter().map(|x| -x).collect())
            } else if matches!(a, RtVal::Float(_)) {
                RtVal::Float(-a.as_float())
            } else {
                RtVal::Int(-a.as_int())
            }
        }
        UnOp::Not => RtVal::Int(i64::from(!a.as_bool())),
        UnOp::BitNot => RtVal::Int(!a.as_int()),
    }
}

fn eval_math(m: MathOp, args: &[RtVal], ty: &Type) -> RtVal {
    // Vector math: lane-wise.
    if ty.lanes() > 1 {
        let n = ty.lanes() as usize;
        let elem_ty = Type::Scalar(ty.element_scalar().unwrap_or(Scalar::I64));
        let lane = |v: &RtVal, i: usize| -> RtVal {
            match v {
                RtVal::FloatVec(x) => RtVal::Float(x.get(i).copied().unwrap_or(0.0)),
                RtVal::IntVec(x) => RtVal::Int(x.get(i).copied().unwrap_or(0)),
                s => s.clone(),
            }
        };
        let results: Vec<RtVal> = (0..n)
            .map(|i| {
                let lane_args: Vec<RtVal> = args.iter().map(|a| lane(a, i)).collect();
                eval_math(m, &lane_args, &elem_ty)
            })
            .collect();
        return if elem_ty.is_float() {
            RtVal::FloatVec(results.iter().map(RtVal::as_float).collect())
        } else {
            RtVal::IntVec(results.iter().map(RtVal::as_int).collect())
        };
    }

    use MathOp::*;
    let f = |i: usize| args.get(i).map_or(0.0, RtVal::as_float);
    let n = |i: usize| args.get(i).map_or(0, RtVal::as_int);
    let float_result = |v: f64| {
        if ty.is_float() {
            RtVal::Float(v)
        } else {
            RtVal::Int(v as i64)
        }
    };
    match m {
        Sqrt => float_result(f(0).sqrt()),
        Rsqrt => float_result(1.0 / f(0).sqrt()),
        Exp => float_result(f(0).exp()),
        Exp2 => float_result(f(0).exp2()),
        Log => float_result(f(0).ln()),
        Log2 => float_result(f(0).log2()),
        Sin => float_result(f(0).sin()),
        Cos => float_result(f(0).cos()),
        Tan => float_result(f(0).tan()),
        Fabs => float_result(f(0).abs()),
        Floor => float_result(f(0).floor()),
        Ceil => float_result(f(0).ceil()),
        Round => float_result(f(0).round()),
        Trunc => float_result(f(0).trunc()),
        Pow => float_result(f(0).powf(f(1))),
        Fmod => float_result(f(0) % f(1)),
        Atan2 => float_result(f(0).atan2(f(1))),
        Hypot => float_result(f(0).hypot(f(1))),
        Fmin => float_result(f(0).min(f(1))),
        Fmax => float_result(f(0).max(f(1))),
        Mad | Fma => float_result(f(0) * f(1) + f(2)),
        Clamp => float_result(f(0).clamp(f(1), f(2).max(f(1)))),
        Mix => float_result(f(0) + (f(1) - f(0)) * f(2)),
        Min => {
            if ty.is_float() {
                RtVal::Float(f(0).min(f(1)))
            } else {
                RtVal::Int(n(0).min(n(1)))
            }
        }
        Max => {
            if ty.is_float() {
                RtVal::Float(f(0).max(f(1)))
            } else {
                RtVal::Int(n(0).max(n(1)))
            }
        }
        Abs => {
            if ty.is_float() {
                RtVal::Float(f(0).abs())
            } else {
                RtVal::Int(n(0).abs())
            }
        }
        Mul24 => RtVal::Int((n(0) & 0xFF_FFFF).wrapping_mul(n(1) & 0xFF_FFFF)),
        Mad24 => RtVal::Int((n(0) & 0xFF_FFFF).wrapping_mul(n(1) & 0xFF_FFFF).wrapping_add(n(2))),
        Select => {
            if args.get(2).is_some_and(RtVal::as_bool) {
                args[1].clone()
            } else {
                args[0].clone()
            }
        }
    }
}
