//! Dynamic-profiling results: loop trip counts and the global-memory trace.
//!
//! FlexCL profiles "a few work-groups" to obtain (a) trip counts of loops
//! whose bounds static analysis could not resolve and (b) the sequence of
//! global-memory indices each work-item touches, which the DRAM model turns
//! into per-bank access patterns (§3.2, §3.4 of the paper).

use flexcl_ir::{BlockId, Function, LoopId, Region, TripCount};
use std::collections::HashMap;

/// CFG edge execution counts gathered during interpretation.
#[derive(Debug, Clone, Default)]
pub struct EdgeCounts {
    counts: HashMap<(u32, u32), u64>,
}

impl EdgeCounts {
    /// An empty counter set.
    pub fn new() -> Self {
        EdgeCounts::default()
    }

    /// Records one traversal of `from → to`.
    pub fn record(&mut self, from: BlockId, to: BlockId) {
        *self.counts.entry((from.0, to.0)).or_insert(0) += 1;
    }

    /// Number of traversals of `from → to`.
    pub fn count(&self, from: BlockId, to: BlockId) -> u64 {
        self.counts.get(&(from.0, to.0)).copied().unwrap_or(0)
    }

    /// Total traversals into `to`.
    pub fn into_block(&self, to: BlockId) -> u64 {
        self.counts.iter().filter(|((_, t), _)| *t == to.0).map(|(_, c)| c).sum()
    }

    /// Total traversals into `to` from blocks in `from_set`.
    pub fn into_block_from(&self, to: BlockId, from_set: &[BlockId]) -> u64 {
        from_set.iter().map(|f| self.count(*f, to)).sum()
    }
}

/// One recorded global-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// `true` for stores.
    pub write: bool,
    /// Which pointer parameter was accessed.
    pub param: u32,
    /// Element index into the parameter's buffer (may be negative when the
    /// kernel mis-indexes; the interpreter reports bounds errors separately).
    pub elem_index: i64,
    /// Access width in bytes.
    pub bytes: u32,
    /// Linear work-item id that issued the access.
    pub work_item: u64,
    /// Linear work-group id.
    pub work_group: u64,
}

/// Average trip counts observed for each loop.
#[derive(Debug, Clone, Default)]
pub struct LoopTrips {
    /// `loop id → (entries, total iterations)`.
    pub raw: HashMap<u32, (u64, u64)>,
}

impl LoopTrips {
    /// Average iterations per loop entry, `None` if the loop never ran.
    pub fn average(&self, id: LoopId) -> Option<f64> {
        let (entries, iters) = self.raw.get(&id.0)?;
        if *entries == 0 {
            return None;
        }
        Some(*iters as f64 / *entries as f64)
    }
}

/// Full profiling result of a kernel run.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Observed loop trip statistics.
    pub trips: LoopTrips,
    /// Global memory accesses in execution order.
    pub trace: Vec<MemAccess>,
    /// Number of work-items executed (may be a subset of the NDRange when
    /// `profile_groups` limits profiling).
    pub work_items: u64,
}

impl Profile {
    /// Assembles a profile from the machine's raw observations.
    pub fn from_parts(
        func: &Function,
        edges: EdgeCounts,
        trace: Vec<MemAccess>,
        work_items: u64,
    ) -> Profile {
        let mut trips = LoopTrips::default();
        collect_loop_trips(func, &func.region, &edges, &mut trips);
        Profile { trips, trace, work_items }
    }

    /// Effective trip count for a loop: static when known, else profiled,
    /// else 0 (loop never entered in the profile).
    pub fn trip_count(&self, func: &Function, id: LoopId) -> f64 {
        match func.loops[id.0 as usize].trip {
            TripCount::Static(n) => n as f64,
            TripCount::Profiled => self.trips.average(id).unwrap_or(0.0),
        }
    }

    /// Per-work-item access sequences, in work-item order.
    pub fn per_work_item_traces(&self) -> HashMap<u64, Vec<MemAccess>> {
        let mut out: HashMap<u64, Vec<MemAccess>> = HashMap::new();
        for a in &self.trace {
            out.entry(a.work_item).or_default().push(*a);
        }
        out
    }

    /// Average number of global accesses issued per work-item.
    pub fn accesses_per_work_item(&self) -> f64 {
        if self.work_items == 0 {
            return 0.0;
        }
        self.trace.len() as f64 / self.work_items as f64
    }
}

/// Walks the region tree accumulating trip statistics for every loop.
#[allow(clippy::only_used_in_recursion)]
fn collect_loop_trips(
    func: &Function,
    region: &Region,
    edges: &EdgeCounts,
    out: &mut LoopTrips,
) {
    match region {
        Region::Block(_) => {}
        Region::Seq(rs) => rs.iter().for_each(|r| collect_loop_trips(func, r, edges, out)),
        Region::If { then_region, else_region, .. } => {
            collect_loop_trips(func, then_region, edges, out);
            collect_loop_trips(func, else_region, edges, out);
        }
        Region::Loop { id, header, body, latch } => {
            let body_blocks = body.blocks();
            let body_first = body_blocks.first().copied();

            // Iterations: entries into the first body block from the header
            // (for/while) — or from anywhere (do-while, where the entry edge
            // jumps straight into the body).
            let (entries, iters) = match body_first {
                Some(bf) => {
                    let header_to_body = edges.count(*header, bf);
                    let total_into_body = edges.into_block(bf);
                    if header_to_body < total_into_body {
                        // do-while: entry edge bypasses the header.
                        let outside = total_into_body - header_to_body;
                        (outside, total_into_body)
                    } else {
                        // for/while: entries into the header from outside.
                        let mut inside: Vec<BlockId> = body_blocks.clone();
                        if let Some(l) = latch {
                            inside.push(*l);
                        }
                        let back = edges.into_block_from(*header, &inside);
                        let total_into_header = edges.into_block(*header);
                        (total_into_header.saturating_sub(back), header_to_body)
                    }
                }
                None => (0, 0),
            };
            let slot = out.raw.entry(id.0).or_insert((0, 0));
            slot.0 += entries;
            slot.1 += iters;

            collect_loop_trips(func, body, edges, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run, NdRange, RunOptions};
    use crate::value::KernelArg;
    use flexcl_ir::lower_kernel;

    fn profile(src: &str, args: &mut [KernelArg], nd: NdRange) -> (Function, Profile) {
        let p = flexcl_frontend::parse_and_check(src).expect("frontend");
        let f = lower_kernel(&p.kernels[0]).expect("lowering");
        let prof = run(&f, args, nd, RunOptions::default()).expect("run");
        (f, prof)
    }

    #[test]
    fn dynamic_trip_count_profiled() {
        let (f, prof) = profile(
            "__kernel void k(__global int* a, int n) {
                for (int i = 0; i < n; i++) { a[i] = i; }
            }",
            &mut [KernelArg::IntBuf(vec![0; 16]), KernelArg::Int(10)],
            NdRange::new_1d(1, 1),
        );
        assert_eq!(f.loops.len(), 1);
        assert_eq!(prof.trip_count(&f, LoopId(0)), 10.0);
    }

    #[test]
    fn while_loop_trip_profiled() {
        let (f, prof) = profile(
            "__kernel void k(__global int* a) {
                int i = 0;
                while (i < 7) { i++; }
                a[0] = i;
            }",
            &mut [KernelArg::IntBuf(vec![0; 1])],
            NdRange::new_1d(1, 1),
        );
        assert_eq!(prof.trip_count(&f, LoopId(0)), 7.0);
    }

    #[test]
    fn do_while_counts_first_iteration() {
        let (f, prof) = profile(
            "__kernel void k(__global int* a) {
                int i = 0;
                do { i++; } while (i < 5);
                a[0] = i;
            }",
            &mut [KernelArg::IntBuf(vec![0; 1])],
            NdRange::new_1d(1, 1),
        );
        assert_eq!(prof.trip_count(&f, LoopId(0)), 5.0);
    }

    #[test]
    fn break_shortens_observed_trips() {
        let (f, prof) = profile(
            "__kernel void k(__global int* a) {
                for (int i = 0; i < 100; i++) {
                    if (i == 9) { break; }
                    a[i] = i;
                }
            }",
            &mut [KernelArg::IntBuf(vec![0; 100])],
            NdRange::new_1d(1, 1),
        );
        // The loop body runs 10 times (i = 0..9, breaking on the 10th).
        let trip = prof.trip_count(&f, LoopId(0));
        assert!((trip - 10.0).abs() < 1e-9, "trip {trip}");
    }

    #[test]
    fn trace_records_reads_and_writes() {
        let (_f, prof) = profile(
            "__kernel void k(__global int* a, __global int* b) {
                int i = get_global_id(0);
                b[i] = a[i] + 1;
            }",
            &mut [KernelArg::IntBuf(vec![1; 8]), KernelArg::IntBuf(vec![0; 8])],
            NdRange::new_1d(8, 4),
        );
        assert_eq!(prof.trace.len(), 16); // 8 loads + 8 stores
        assert_eq!(prof.trace.iter().filter(|a| a.write).count(), 8);
        assert_eq!(prof.accesses_per_work_item(), 2.0);
        let per_wi = prof.per_work_item_traces();
        assert_eq!(per_wi.len(), 8);
        assert!(per_wi.values().all(|t| t.len() == 2));
    }

    #[test]
    fn nested_loop_average_trips() {
        let (f, prof) = profile(
            "__kernel void k(__global int* a, int n) {
                for (int i = 0; i < 4; i++) {
                    for (int j = 0; j < n; j++) {
                        a[i * 8 + j] = j;
                    }
                }
            }",
            &mut [KernelArg::IntBuf(vec![0; 32]), KernelArg::Int(8)],
            NdRange::new_1d(1, 1),
        );
        // Outer: static 4. Inner: profiled, entered 4 times, 8 iters each.
        assert_eq!(prof.trip_count(&f, LoopId(1)), 4.0);
        assert_eq!(prof.trip_count(&f, LoopId(0)), 8.0);
    }
}
