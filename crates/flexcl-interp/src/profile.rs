//! Dynamic-profiling results: loop trip counts and the global-memory trace.
//!
//! FlexCL profiles "a few work-groups" to obtain (a) trip counts of loops
//! whose bounds static analysis could not resolve and (b) the sequence of
//! global-memory indices each work-item touches, which the DRAM model turns
//! into per-bank access patterns (§3.2, §3.4 of the paper).
//!
//! Profiled work-groups are *strata*: each one stands in for a region of
//! the NDRange (see [`crate::RunOptions::profile_sampling`]). A
//! [`Profile`] therefore carries per-group weights — how many real groups
//! each profiled group represents — and its loop-trip statistics are the
//! weighted mixture of the per-group observations, so kernels whose work
//! varies across the index space (guarded wavefronts, triangular loops)
//! are not modeled by their unguarded corner.

use flexcl_ir::{BlockId, Function, LoopId, Region, TripCount};
use std::collections::HashMap;

/// CFG edge execution counts gathered during interpretation.
#[derive(Debug, Clone, Default)]
pub struct EdgeCounts {
    counts: HashMap<(u32, u32), u64>,
}

impl EdgeCounts {
    /// An empty counter set.
    pub fn new() -> Self {
        EdgeCounts::default()
    }

    /// Records one traversal of `from → to`.
    pub fn record(&mut self, from: BlockId, to: BlockId) {
        *self.counts.entry((from.0, to.0)).or_insert(0) += 1;
    }

    /// Number of traversals of `from → to`.
    pub fn count(&self, from: BlockId, to: BlockId) -> u64 {
        self.counts.get(&(from.0, to.0)).copied().unwrap_or(0)
    }

    /// Total traversals into `to`.
    pub fn into_block(&self, to: BlockId) -> u64 {
        self.counts.iter().filter(|((_, t), _)| *t == to.0).map(|(_, c)| c).sum()
    }

    /// Total traversals into `to` from blocks in `from_set`.
    pub fn into_block_from(&self, to: BlockId, from_set: &[BlockId]) -> u64 {
        from_set.iter().map(|f| self.count(*f, to)).sum()
    }
}

/// One recorded global-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// `true` for stores.
    pub write: bool,
    /// Which pointer parameter was accessed.
    pub param: u32,
    /// Element index into the parameter's buffer (may be negative when the
    /// kernel mis-indexes; the interpreter reports bounds errors separately).
    pub elem_index: i64,
    /// Access width in bytes.
    pub bytes: u32,
    /// Linear work-item id that issued the access.
    pub work_item: u64,
    /// Linear work-group id.
    pub work_group: u64,
}

/// Average trip counts observed for each loop.
///
/// Entries and iterations are `f64` because profiled groups enter the
/// statistics with their stratum weight (a group standing in for `w` real
/// groups contributes `w ×` its observations); for an unweighted profile
/// they are plain integer counts.
#[derive(Debug, Clone, Default)]
pub struct LoopTrips {
    /// `loop id → (weighted entries, weighted total iterations)`.
    pub raw: HashMap<u32, (f64, f64)>,
}

impl LoopTrips {
    /// Average iterations per loop entry, `None` if the loop never ran.
    pub fn average(&self, id: LoopId) -> Option<f64> {
        let (entries, iters) = self.raw.get(&id.0)?;
        if *entries <= 0.0 {
            return None;
        }
        Some(iters / entries)
    }
}

/// Everything the interpreter observed while running one profiled
/// work-group.
#[derive(Debug, Clone)]
pub struct GroupObservation {
    /// Linear work-group id.
    pub group: u64,
    /// How many NDRange groups this stratum represents (0 for a warm-up
    /// predecessor profiled only to establish adjacent replay state).
    pub weight: f64,
    /// CFG edge counts recorded while this group ran.
    pub edges: EdgeCounts,
    /// Work-items executed in this group.
    pub work_items: u64,
}

/// The weight of one profiled work-group, kept on the [`Profile`] so
/// downstream consumers (the memory model) can weight per-group traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupWeight {
    /// Linear work-group id.
    pub group: u64,
    /// How many NDRange groups this stratum represents (0 for a warm-up
    /// predecessor profiled only to establish adjacent replay state).
    pub weight: f64,
    /// Work-items executed in this group.
    pub work_items: u64,
}

/// Full profiling result of a kernel run.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Observed loop trip statistics (stratum-weighted).
    pub trips: LoopTrips,
    /// Global memory accesses in execution order.
    pub trace: Vec<MemAccess>,
    /// Number of work-items executed (may be a subset of the NDRange when
    /// `profile_groups` limits profiling).
    pub work_items: u64,
    /// Stratum weights of the profiled groups, ascending by group id.
    /// Empty means "unweighted" (every observation counts once) — the
    /// state of a profile assembled through [`Profile::from_parts`].
    pub groups: Vec<GroupWeight>,
}

impl Profile {
    /// Assembles an *unweighted* profile from the machine's aggregate
    /// observations (every profiled group counts once).
    pub fn from_parts(
        func: &Function,
        edges: EdgeCounts,
        trace: Vec<MemAccess>,
        work_items: u64,
    ) -> Profile {
        let mut raw = RawTrips::default();
        collect_loop_trips(func, &func.region, &edges, &mut raw);
        let mut trips = LoopTrips::default();
        for (id, (entries, iters)) in raw.raw {
            trips.raw.insert(id, (entries as f64, iters as f64));
        }
        Profile { trips, trace, work_items, groups: Vec::new() }
    }

    /// Assembles a stratum-weighted profile from per-group observations:
    /// each group's loop-trip statistics enter the mixture multiplied by
    /// its weight. With all weights at 1 this is bit-identical to
    /// [`Profile::from_parts`] over the merged observations.
    pub fn from_group_parts(
        func: &Function,
        observations: Vec<GroupObservation>,
        trace: Vec<MemAccess>,
        work_items: u64,
    ) -> Profile {
        let mut trips = LoopTrips::default();
        let mut groups = Vec::with_capacity(observations.len());
        for obs in &observations {
            let mut raw = RawTrips::default();
            collect_loop_trips(func, &func.region, &obs.edges, &mut raw);
            for (id, (entries, iters)) in raw.raw {
                let slot = trips.raw.entry(id).or_insert((0.0, 0.0));
                slot.0 += obs.weight * entries as f64;
                slot.1 += obs.weight * iters as f64;
            }
            groups.push(GroupWeight {
                group: obs.group,
                weight: obs.weight,
                work_items: obs.work_items,
            });
        }
        groups.sort_by_key(|g| g.group);
        Profile { trips, trace, work_items, groups }
    }

    /// Effective trip count for a loop: static when known, else profiled,
    /// else 0 (loop never entered in the profile).
    pub fn trip_count(&self, func: &Function, id: LoopId) -> f64 {
        match func.loops[id.0 as usize].trip {
            TripCount::Static(n) => n as f64,
            TripCount::Profiled => self.trips.average(id).unwrap_or(0.0),
        }
    }

    /// Stratum weight of a profiled group (1.0 when the profile carries no
    /// weights or the group was not profiled).
    pub fn group_weight(&self, group: u64) -> f64 {
        self.groups
            .binary_search_by_key(&group, |g| g.group)
            .map(|i| self.groups[i].weight)
            .unwrap_or(1.0)
    }

    /// Weighted work-item count: `Σ weight_g × work_items_g` over the
    /// profiled groups, the denominator for per-work-item averages over a
    /// stratified trace. Falls back to the raw count for unweighted
    /// profiles.
    pub fn weighted_work_items(&self) -> f64 {
        if self.groups.is_empty() {
            return self.work_items as f64;
        }
        self.groups.iter().map(|g| g.weight * g.work_items as f64).sum()
    }

    /// Per-work-item access sequences, in work-item order.
    pub fn per_work_item_traces(&self) -> HashMap<u64, Vec<MemAccess>> {
        let mut out: HashMap<u64, Vec<MemAccess>> = HashMap::new();
        for a in &self.trace {
            out.entry(a.work_item).or_default().push(*a);
        }
        out
    }

    /// Average number of global accesses issued per work-item (unweighted).
    pub fn accesses_per_work_item(&self) -> f64 {
        if self.work_items == 0 {
            return 0.0;
        }
        self.trace.len() as f64 / self.work_items as f64
    }
}

/// Integer trip accumulators for one set of edge counts.
#[derive(Debug, Default)]
struct RawTrips {
    raw: HashMap<u32, (u64, u64)>,
}

/// Walks the region tree accumulating trip statistics for every loop.
#[allow(clippy::only_used_in_recursion)]
fn collect_loop_trips(
    func: &Function,
    region: &Region,
    edges: &EdgeCounts,
    out: &mut RawTrips,
) {
    match region {
        Region::Block(_) => {}
        Region::Seq(rs) => rs.iter().for_each(|r| collect_loop_trips(func, r, edges, out)),
        Region::If { then_region, else_region, .. } => {
            collect_loop_trips(func, then_region, edges, out);
            collect_loop_trips(func, else_region, edges, out);
        }
        Region::Loop { id, header, body, latch } => {
            let body_blocks = body.blocks();
            let body_first = body_blocks.first().copied();

            // Iterations: entries into the first body block from the header
            // (for/while) — or from anywhere (do-while, where the entry edge
            // jumps straight into the body).
            let (entries, iters) = match body_first {
                Some(bf) => {
                    let header_to_body = edges.count(*header, bf);
                    let total_into_body = edges.into_block(bf);
                    if header_to_body < total_into_body {
                        // do-while: entry edge bypasses the header.
                        let outside = total_into_body - header_to_body;
                        (outside, total_into_body)
                    } else {
                        // for/while: entries into the header from outside.
                        let mut inside: Vec<BlockId> = body_blocks.clone();
                        if let Some(l) = latch {
                            inside.push(*l);
                        }
                        let back = edges.into_block_from(*header, &inside);
                        let total_into_header = edges.into_block(*header);
                        (total_into_header.saturating_sub(back), header_to_body)
                    }
                }
                None => (0, 0),
            };
            let slot = out.raw.entry(id.0).or_insert((0, 0));
            slot.0 += entries;
            slot.1 += iters;

            collect_loop_trips(func, body, edges, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run, NdRange, RunOptions};
    use crate::value::KernelArg;
    use flexcl_ir::lower_kernel;

    fn profile(src: &str, args: &mut [KernelArg], nd: NdRange) -> (Function, Profile) {
        let p = flexcl_frontend::parse_and_check(src).expect("frontend");
        let f = lower_kernel(&p.kernels[0]).expect("lowering");
        let prof = run(&f, args, nd, RunOptions::default()).expect("run");
        (f, prof)
    }

    #[test]
    fn dynamic_trip_count_profiled() {
        let (f, prof) = profile(
            "__kernel void k(__global int* a, int n) {
                for (int i = 0; i < n; i++) { a[i] = i; }
            }",
            &mut [KernelArg::IntBuf(vec![0; 16]), KernelArg::Int(10)],
            NdRange::new_1d(1, 1),
        );
        assert_eq!(f.loops.len(), 1);
        assert_eq!(prof.trip_count(&f, LoopId(0)), 10.0);
    }

    #[test]
    fn while_loop_trip_profiled() {
        let (f, prof) = profile(
            "__kernel void k(__global int* a) {
                int i = 0;
                while (i < 7) { i++; }
                a[0] = i;
            }",
            &mut [KernelArg::IntBuf(vec![0; 1])],
            NdRange::new_1d(1, 1),
        );
        assert_eq!(prof.trip_count(&f, LoopId(0)), 7.0);
    }

    #[test]
    fn do_while_counts_first_iteration() {
        let (f, prof) = profile(
            "__kernel void k(__global int* a) {
                int i = 0;
                do { i++; } while (i < 5);
                a[0] = i;
            }",
            &mut [KernelArg::IntBuf(vec![0; 1])],
            NdRange::new_1d(1, 1),
        );
        assert_eq!(prof.trip_count(&f, LoopId(0)), 5.0);
    }

    #[test]
    fn break_shortens_observed_trips() {
        let (f, prof) = profile(
            "__kernel void k(__global int* a) {
                for (int i = 0; i < 100; i++) {
                    if (i == 9) { break; }
                    a[i] = i;
                }
            }",
            &mut [KernelArg::IntBuf(vec![0; 100])],
            NdRange::new_1d(1, 1),
        );
        // The loop body runs 10 times (i = 0..9, breaking on the 10th).
        let trip = prof.trip_count(&f, LoopId(0));
        assert!((trip - 10.0).abs() < 1e-9, "trip {trip}");
    }

    #[test]
    fn trace_records_reads_and_writes() {
        let (_f, prof) = profile(
            "__kernel void k(__global int* a, __global int* b) {
                int i = get_global_id(0);
                b[i] = a[i] + 1;
            }",
            &mut [KernelArg::IntBuf(vec![1; 8]), KernelArg::IntBuf(vec![0; 8])],
            NdRange::new_1d(8, 4),
        );
        assert_eq!(prof.trace.len(), 16); // 8 loads + 8 stores
        assert_eq!(prof.trace.iter().filter(|a| a.write).count(), 8);
        assert_eq!(prof.accesses_per_work_item(), 2.0);
        let per_wi = prof.per_work_item_traces();
        assert_eq!(per_wi.len(), 8);
        assert!(per_wi.values().all(|t| t.len() == 2));
        // Full run: every group profiled with weight 1.
        assert_eq!(prof.groups.len(), 2);
        assert!(prof.groups.iter().all(|g| g.weight == 1.0 && g.work_items == 4));
        assert_eq!(prof.weighted_work_items(), 8.0);
    }

    #[test]
    fn nested_loop_average_trips() {
        let (f, prof) = profile(
            "__kernel void k(__global int* a, int n) {
                for (int i = 0; i < 4; i++) {
                    for (int j = 0; j < n; j++) {
                        a[i * 8 + j] = j;
                    }
                }
            }",
            &mut [KernelArg::IntBuf(vec![0; 32]), KernelArg::Int(8)],
            NdRange::new_1d(1, 1),
        );
        // Outer: static 4. Inner: profiled, entered 4 times, 8 iters each.
        assert_eq!(prof.trip_count(&f, LoopId(1)), 4.0);
        assert_eq!(prof.trip_count(&f, LoopId(0)), 8.0);
    }

    #[test]
    fn stratum_weights_skew_trip_mixture() {
        // A guarded loop whose trip count depends on the group id: group 0
        // runs 2 iterations per work-item, later groups run 10. Profiling
        // only groups 0 and 15 with weights 1 and 15 must pull the average
        // toward the heavy stratum ((2 + 15*10)/16 = 9.5).
        let src = "__kernel void k(__global int* a, int n) {
                int i = get_global_id(0);
                int bound = (i < 64) ? 2 : n;
                int s = 0;
                for (int j = 0; j < bound; j++) { s += j; }
                a[i] = s;
            }";
        let p = flexcl_frontend::parse_and_check(src).expect("frontend");
        let f = lower_kernel(&p.kernels[0]).expect("lowering");
        let nd = NdRange::new_1d(1024, 64);
        let mut args = [KernelArg::IntBuf(vec![0; 1024]), KernelArg::Int(10)];
        let prof = run(
            &f,
            &mut args,
            nd,
            RunOptions {
                profile_groups: Some(2),
                profile_sampling: crate::exec::GroupSampling::Stratified,
                ..RunOptions::default()
            },
        )
        .expect("run");
        let trip = prof.trip_count(&f, flexcl_ir::LoopId(0));
        assert!(
            trip > 8.0,
            "weighted mixture must lean on the 15-group stratum, got {trip}"
        );
    }
}
