//! # flexcl-interp
//!
//! IR interpreter and dynamic profiler for FlexCL (DAC'17 reproduction).
//!
//! FlexCL uses lightweight dynamic profiling — executing a few work-groups
//! on the host — to obtain loop trip counts and the global-memory access
//! trace that static analysis cannot produce (§3.2 of the paper). This
//! crate provides that profiler, and doubles as a functional reference
//! executor used by the test suite to validate the kernel corpus.
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use flexcl_interp::{run, KernelArg, NdRange, RunOptions};
//!
//! let program = flexcl_frontend::parse_and_check(
//!     "__kernel void scale(__global float* x, float a) {
//!          int i = get_global_id(0);
//!          x[i] = x[i] * a;
//!      }",
//! )?;
//! let func = flexcl_ir::lower_kernel(&program.kernels[0])?;
//! let mut args = vec![KernelArg::FloatBuf(vec![1.0; 4]), KernelArg::Float(2.5)];
//! let profile = run(&func, &mut args, NdRange::new_1d(4, 4), RunOptions::default())?;
//! assert_eq!(args[0], KernelArg::FloatBuf(vec![2.5; 4]));
//! assert_eq!(profile.trace.len(), 8); // 4 loads + 4 stores
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod exec;
pub mod profile;
pub mod value;

pub use exec::{run, GeometryError, GroupSampling, InterpError, NdRange, RunOptions};
pub use profile::{EdgeCounts, GroupObservation, GroupWeight, LoopTrips, MemAccess, Profile};
pub use value::{KernelArg, RtVal};

#[cfg(test)]
mod tests {
    use super::*;
    use flexcl_ir::lower_kernel;

    fn exec(src: &str, args: &mut [KernelArg], nd: NdRange) {
        let p = flexcl_frontend::parse_and_check(src).expect("frontend");
        let f = lower_kernel(&p.kernels[0]).expect("lowering");
        run(&f, args, nd, RunOptions::default()).expect("run");
    }

    #[test]
    fn vector_add_is_correct() {
        let mut args = vec![
            KernelArg::FloatBuf((0..16).map(f64::from).collect()),
            KernelArg::FloatBuf((0..16).map(|i| f64::from(i) * 10.0).collect()),
            KernelArg::FloatBuf(vec![0.0; 16]),
        ];
        exec(
            "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
                int i = get_global_id(0);
                c[i] = a[i] + b[i];
            }",
            &mut args,
            NdRange::new_1d(16, 4),
        );
        let KernelArg::FloatBuf(c) = &args[2] else { panic!() };
        for (i, v) in c.iter().enumerate() {
            assert_eq!(*v, i as f64 * 11.0);
        }
    }

    #[test]
    fn reduction_loop_is_correct() {
        let mut args = vec![
            KernelArg::FloatBuf((1..=10).map(f64::from).collect()),
            KernelArg::FloatBuf(vec![0.0; 1]),
        ];
        exec(
            "__kernel void sum(__global float* a, __global float* out) {
                float s = 0.0f;
                for (int i = 0; i < 10; i++) { s += a[i]; }
                out[0] = s;
            }",
            &mut args,
            NdRange::new_1d(1, 1),
        );
        let KernelArg::FloatBuf(out) = &args[1] else { panic!() };
        assert_eq!(out[0], 55.0);
    }

    #[test]
    fn conditional_guard_is_respected() {
        let mut args = vec![KernelArg::IntBuf(vec![0; 8]), KernelArg::Int(5)];
        exec(
            "__kernel void k(__global int* a, int n) {
                int i = get_global_id(0);
                if (i < n) { a[i] = 1; }
            }",
            &mut args,
            NdRange::new_1d(8, 8),
        );
        let KernelArg::IntBuf(a) = &args[0] else { panic!() };
        assert_eq!(a, &vec![1, 1, 1, 1, 1, 0, 0, 0]);
    }

    #[test]
    fn local_tile_roundtrip() {
        // Each work-item writes its own slot then reads it back (id-order
        // safe pattern).
        let mut args = vec![KernelArg::IntBuf((0..8).map(|i| i * 3).collect())];
        exec(
            "__kernel void k(__global int* a) {
                __local int tile[8];
                int l = get_local_id(0);
                tile[l] = a[get_global_id(0)];
                barrier(CLK_LOCAL_MEM_FENCE);
                a[get_global_id(0)] = tile[l] + 1;
            }",
            &mut args,
            NdRange::new_1d(8, 8),
        );
        let KernelArg::IntBuf(a) = &args[0] else { panic!() };
        for (i, v) in a.iter().enumerate() {
            assert_eq!(*v, i as i64 * 3 + 1);
        }
    }

    #[test]
    fn math_builtins_evaluate() {
        let mut args = vec![KernelArg::FloatBuf(vec![4.0, 9.0, 16.0, 25.0])];
        exec(
            "__kernel void k(__global float* a) {
                int i = get_global_id(0);
                a[i] = sqrt(a[i]);
            }",
            &mut args,
            NdRange::new_1d(4, 4),
        );
        let KernelArg::FloatBuf(a) = &args[0] else { panic!() };
        assert_eq!(a, &vec![2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn two_dimensional_ids() {
        let mut args = vec![KernelArg::IntBuf(vec![0; 16])];
        exec(
            "__kernel void k(__global int* a) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                a[y * 4 + x] = y * 4 + x;
            }",
            &mut args,
            NdRange::new_2d(4, 4, 2, 2),
        );
        let KernelArg::IntBuf(a) = &args[0] else { panic!() };
        assert_eq!(a, &(0..16).collect::<Vec<i64>>());
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void k(__global int* a) { a[100] = 1; }",
        )
        .expect("frontend");
        let f = lower_kernel(&p.kernels[0]).expect("lowering");
        let mut args = vec![KernelArg::IntBuf(vec![0; 4])];
        let err = run(&f, &mut args, NdRange::new_1d(1, 1), RunOptions::default()).unwrap_err();
        assert!(matches!(err, InterpError::OutOfBounds { index: 100, .. }));
    }

    #[test]
    fn step_limit_stops_runaway_loops() {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void k(__global int* a) {
                int i = 0;
                while (i >= 0) { i = i + 0; }
                a[0] = i;
            }",
        )
        .expect("frontend");
        let f = lower_kernel(&p.kernels[0]).expect("lowering");
        let mut args = vec![KernelArg::IntBuf(vec![0; 1])];
        let opts = RunOptions { step_limit: 10_000, ..RunOptions::default() };
        let err = run(&f, &mut args, NdRange::new_1d(1, 1), opts).unwrap_err();
        assert!(matches!(err, InterpError::StepLimit(_)));
    }

    #[test]
    fn argument_mismatch_is_reported() {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void k(__global int* a, int n) { a[0] = n; }",
        )
        .expect("frontend");
        let f = lower_kernel(&p.kernels[0]).expect("lowering");
        let mut args = vec![KernelArg::IntBuf(vec![0; 1])];
        let err = run(&f, &mut args, NdRange::new_1d(1, 1), RunOptions::default()).unwrap_err();
        assert!(matches!(err, InterpError::BadArguments(_)));
    }

    #[test]
    fn vector_types_execute_lanewise() {
        let mut args = vec![KernelArg::FloatBuf(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])];
        exec(
            "__kernel void k(__global float4* a) {
                int i = get_global_id(0);
                float4 v = a[i];
                a[i] = v * 2.0f;
            }",
            &mut args,
            NdRange::new_1d(2, 2),
        );
        let KernelArg::FloatBuf(a) = &args[0] else { panic!() };
        assert_eq!(a, &vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0]);
    }

    #[test]
    fn ir_optimization_preserves_semantics() {
        let src = "__kernel void k(__global int* a, int n) {
            int i = get_global_id(0);
            int base = i * 2 + 0;
            int dead = 123 * 456;
            a[base] = a[base] + (3 - 2) * n;
            a[base + 1] = a[base] + n * 1;
        }";
        let p = flexcl_frontend::parse_and_check(src).expect("frontend");
        let plain = lower_kernel(&p.kernels[0]).expect("lowering");
        let mut opt = plain.clone();
        let removed = flexcl_ir::optimize(&mut opt);
        assert!(removed > 0, "dead code and constants must fold");

        let mut args1 = vec![KernelArg::IntBuf((0..64).collect()), KernelArg::Int(5)];
        let mut args2 = args1.clone();
        run(&plain, &mut args1, NdRange::new_1d(32, 8), RunOptions::default()).expect("run");
        run(&opt, &mut args2, NdRange::new_1d(32, 8), RunOptions::default()).expect("run");
        assert_eq!(args1, args2, "optimization must not change results");
    }

    #[test]
    fn vector_literal_constructs_lanes() {
        let mut args = vec![KernelArg::FloatBuf(vec![0.0; 8]), KernelArg::Float(3.0)];
        exec(
            "__kernel void k(__global float4* a, float s) {
                a[0] = (float4)(1.0f, 2.0f, s, 4.0f);
                a[1] = (float4)(s);
            }",
            &mut args,
            NdRange::new_1d(1, 1),
        );
        let KernelArg::FloatBuf(a) = &args[0] else { panic!() };
        assert_eq!(a, &vec![1.0, 2.0, 3.0, 4.0, 3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn trace_limit_stops_trip_count_explosions() {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void k(__global int* a, int n) {
                int s = 0;
                for (int i = 0; i < n; i++) { s = s + a[i % 4]; }
                a[0] = s;
            }",
        )
        .expect("frontend");
        let f = lower_kernel(&p.kernels[0]).expect("lowering");
        let mut args = vec![KernelArg::IntBuf(vec![0; 4]), KernelArg::Int(1_000_000)];
        let opts = RunOptions { trace_limit: 100, ..RunOptions::default() };
        let err = run(&f, &mut args, NdRange::new_1d(1, 1), opts).unwrap_err();
        assert_eq!(err, InterpError::TraceLimit(100));
    }

    #[test]
    fn bad_geometry_is_a_typed_error() {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void k(__global int* a) { a[0] = 1; }",
        )
        .expect("frontend");
        let f = lower_kernel(&p.kernels[0]).expect("lowering");
        let mut args = vec![KernelArg::IntBuf(vec![0; 1])];
        let err =
            run(&f, &mut args, NdRange::new_1d(10, 3), RunOptions::default()).unwrap_err();
        assert_eq!(
            err,
            InterpError::Geometry(GeometryError::NotDivisible { dim: 0, global: 10, local: 3 })
        );
        let err =
            run(&f, &mut args, NdRange::new_1d(0, 1), RunOptions::default()).unwrap_err();
        assert_eq!(err, InterpError::Geometry(GeometryError::ZeroDimension { dim: 0 }));
    }

    #[test]
    fn profiled_subset_limits_trace() {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void k(__global int* a) {
                int i = get_global_id(0);
                a[i] = i;
            }",
        )
        .expect("frontend");
        let f = lower_kernel(&p.kernels[0]).expect("lowering");
        let mut args = vec![KernelArg::IntBuf(vec![0; 64])];
        let opts = RunOptions { profile_groups: Some(2), ..RunOptions::default() };
        let prof = run(&f, &mut args, NdRange::new_1d(64, 8), opts).expect("run");
        assert_eq!(prof.work_items, 16); // 2 groups × 8 work-items
        assert_eq!(prof.trace.len(), 16);
    }
}
