//! Runtime values and kernel arguments for the IR interpreter.

use flexcl_frontend::types::{Scalar, Type};
use std::fmt;

/// A dynamically typed runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum RtVal {
    /// Integer (covers bool as 0/1).
    Int(i64),
    /// Float.
    Float(f64),
    /// Integer vector.
    IntVec(Vec<i64>),
    /// Float vector.
    FloatVec(Vec<f64>),
}

impl RtVal {
    /// Zero value for a type.
    pub fn zero(ty: &Type) -> RtVal {
        match ty {
            Type::Vector(s, n) if s.is_float() => RtVal::FloatVec(vec![0.0; *n as usize]),
            Type::Vector(_, n) => RtVal::IntVec(vec![0; *n as usize]),
            Type::Scalar(s) if s.is_float() => RtVal::Float(0.0),
            _ => RtVal::Int(0),
        }
    }

    /// Interprets the value as a boolean.
    pub fn as_bool(&self) -> bool {
        match self {
            RtVal::Int(v) => *v != 0,
            RtVal::Float(v) => *v != 0.0,
            RtVal::IntVec(v) => v.iter().any(|x| *x != 0),
            RtVal::FloatVec(v) => v.iter().any(|x| *x != 0.0),
        }
    }

    /// Interprets the value as an integer (floats truncate).
    pub fn as_int(&self) -> i64 {
        match self {
            RtVal::Int(v) => *v,
            RtVal::Float(v) => *v as i64,
            RtVal::IntVec(v) => v.first().copied().unwrap_or(0),
            RtVal::FloatVec(v) => v.first().copied().unwrap_or(0.0) as i64,
        }
    }

    /// Interprets the value as a float.
    pub fn as_float(&self) -> f64 {
        match self {
            RtVal::Int(v) => *v as f64,
            RtVal::Float(v) => *v,
            RtVal::IntVec(v) => v.first().copied().unwrap_or(0) as f64,
            RtVal::FloatVec(v) => v.first().copied().unwrap_or(0.0),
        }
    }

    /// Converts to the representation required by `ty`.
    pub fn convert_to(&self, ty: &Type) -> RtVal {
        match ty {
            Type::Scalar(s) if s.is_float() => RtVal::Float(self.as_float()),
            Type::Scalar(s) => RtVal::Int(truncate_int(self.as_int(), *s)),
            Type::Vector(s, n) => {
                let n = *n as usize;
                let lanes_f: Vec<f64> = match self {
                    RtVal::FloatVec(v) => v.clone(),
                    RtVal::IntVec(v) => v.iter().map(|x| *x as f64).collect(),
                    RtVal::Float(v) => vec![*v; n],
                    RtVal::Int(v) => vec![*v as f64; n],
                };
                let mut lanes_f = lanes_f;
                lanes_f.resize(n, 0.0);
                if s.is_float() {
                    RtVal::FloatVec(lanes_f)
                } else {
                    RtVal::IntVec(
                        lanes_f.iter().map(|x| truncate_int(*x as i64, *s)).collect(),
                    )
                }
            }
            _ => self.clone(),
        }
    }
}

/// Truncates/wraps an i64 to the width and signedness of `s`.
pub fn truncate_int(v: i64, s: Scalar) -> i64 {
    match s {
        Scalar::Bool => i64::from(v != 0),
        Scalar::I8 => v as i8 as i64,
        Scalar::U8 => v as u8 as i64,
        Scalar::I16 => v as i16 as i64,
        Scalar::U16 => v as u16 as i64,
        Scalar::I32 => v as i32 as i64,
        Scalar::U32 => v as u32 as i64,
        Scalar::I64 | Scalar::U64 => v,
        Scalar::F32 | Scalar::F64 => v,
    }
}

impl fmt::Display for RtVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtVal::Int(v) => write!(f, "{v}"),
            RtVal::Float(v) => write!(f, "{v}"),
            RtVal::IntVec(v) => write!(f, "{v:?}"),
            RtVal::FloatVec(v) => write!(f, "{v:?}"),
        }
    }
}

/// A kernel argument supplied by the host.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelArg {
    /// A scalar integer argument.
    Int(i64),
    /// A scalar float argument.
    Float(f64),
    /// A `__global`/`__constant` integer buffer (element-typed).
    IntBuf(Vec<i64>),
    /// A `__global`/`__constant` float buffer (element-typed).
    FloatBuf(Vec<f64>),
}

impl KernelArg {
    /// Length in elements for buffer arguments.
    pub fn len(&self) -> usize {
        match self {
            KernelArg::IntBuf(v) => v.len(),
            KernelArg::FloatBuf(v) => v.len(),
            _ => 0,
        }
    }

    /// Whether this is an empty buffer (scalars count as empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads buffer element `i` (scalar lanes for vector types are handled
    /// by the interpreter's lane arithmetic).
    pub fn read(&self, i: usize) -> Option<RtVal> {
        match self {
            KernelArg::IntBuf(v) => v.get(i).map(|x| RtVal::Int(*x)),
            KernelArg::FloatBuf(v) => v.get(i).map(|x| RtVal::Float(*x)),
            _ => None,
        }
    }

    /// Writes buffer element `i`.
    pub fn write(&mut self, i: usize, val: &RtVal) -> bool {
        match self {
            KernelArg::IntBuf(v) => {
                if let Some(slot) = v.get_mut(i) {
                    *slot = val.as_int();
                    return true;
                }
                false
            }
            KernelArg::FloatBuf(v) => {
                if let Some(slot) = v.get_mut(i) {
                    *slot = val.as_float();
                    return true;
                }
                false
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(RtVal::Int(3).convert_to(&Type::float()), RtVal::Float(3.0));
        assert_eq!(RtVal::Float(3.9).convert_to(&Type::int()), RtVal::Int(3));
        assert_eq!(RtVal::Int(300).convert_to(&Type::Scalar(Scalar::U8)), RtVal::Int(44));
        assert_eq!(RtVal::Int(-1).convert_to(&Type::Scalar(Scalar::U32)), RtVal::Int(0xFFFF_FFFF));
    }

    #[test]
    fn splat_to_vector() {
        assert_eq!(
            RtVal::Float(2.0).convert_to(&Type::Vector(Scalar::F32, 4)),
            RtVal::FloatVec(vec![2.0; 4])
        );
    }

    #[test]
    fn bool_semantics() {
        assert!(RtVal::Int(5).as_bool());
        assert!(!RtVal::Int(0).as_bool());
        assert!(RtVal::Float(0.5).as_bool());
    }

    #[test]
    fn kernel_arg_rw() {
        let mut a = KernelArg::FloatBuf(vec![0.0; 4]);
        assert!(a.write(2, &RtVal::Float(7.0)));
        assert_eq!(a.read(2), Some(RtVal::Float(7.0)));
        assert!(!a.write(9, &RtVal::Float(1.0)));
        assert_eq!(a.len(), 4);
    }
}
