//! Minimum initiation interval: `MII = max(RecMII, ResMII)` (Eq. 2–4).

use crate::graph::{NodeId, ResourceBudget, ResourceClass, SchedGraph};

/// Resource-constrained MII: for each resource class, the number of uses
/// divided by the number of units (Eq. 3–4 of the paper).
pub fn res_mii(graph: &SchedGraph, budget: &ResourceBudget) -> u32 {
    let classes = [
        ResourceClass::LocalRead,
        ResourceClass::LocalWrite,
        ResourceClass::Dsp,
        ResourceClass::GlobalPort,
    ];
    let mut mii = 1;
    for c in classes {
        let uses = graph.resource_usage(c);
        let limit = budget.limit(c);
        if uses == 0 {
            continue;
        }
        let need = if limit == 0 {
            // No units at all: modeled as fully serialised on one virtual unit.
            uses
        } else {
            uses.div_ceil(limit)
        };
        mii = mii.max(need);
    }
    mii
}

/// Recurrence-constrained MII.
///
/// A recurrence cycle with total latency `L` and total distance `D` forces
/// `II ≥ ceil(L / D)`. We find the smallest feasible `II` by binary search:
/// `II` is feasible iff the graph with edge weights `latency(from) − II·distance`
/// has no positive-weight cycle (checked with Bellman–Ford).
pub fn rec_mii(graph: &SchedGraph) -> u32 {
    if graph.is_empty() || graph.edges().iter().all(|e| e.distance == 0) {
        return 1;
    }
    let mut lo = 1u32;
    let mut hi = (graph.total_latency().min(u64::from(u32::MAX / 2)) as u32).max(1);
    if !feasible(graph, hi) {
        // Degenerate (distance edges with zero-latency cycles of positive
        // weight cannot occur); bail conservatively.
        return hi;
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible(graph, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// The combined minimum initiation interval (Eq. 2).
pub fn mii(graph: &SchedGraph, budget: &ResourceBudget) -> u32 {
    res_mii(graph, budget).max(rec_mii(graph))
}

/// Bellman–Ford positive-cycle check with weights `lat(from) − II·dist`.
fn feasible(graph: &SchedGraph, ii: u32) -> bool {
    let n = graph.len();
    let mut dist = vec![0i64; n];
    for pass in 0..=n {
        let mut changed = false;
        for e in graph.edges() {
            let w = i64::from(graph.node(e.from).latency) - i64::from(ii) * i64::from(e.distance);
            let cand = dist[e.from.0 as usize] + w;
            if cand > dist[e.to.0 as usize] {
                dist[e.to.0 as usize] = cand;
                changed = true;
            }
        }
        if !changed {
            return true;
        }
        if pass == n {
            return false; // positive cycle
        }
    }
    true
}

/// Longest combinational path assuming infinite resources — the lower bound
/// for pipeline depth (also used as the ASAP schedule for SMS priorities).
pub fn asap_times(graph: &SchedGraph, ii: u32) -> Vec<i64> {
    let mut t = Vec::new();
    asap_times_into(graph, ii, &mut t);
    t
}

/// [`asap_times`] into a caller-provided buffer (cleared first).
pub fn asap_times_into(graph: &SchedGraph, ii: u32, t: &mut Vec<i64>) {
    let n = graph.len();
    t.clear();
    t.resize(n, 0i64);
    for _ in 0..=n {
        let mut changed = false;
        for e in graph.edges() {
            let w = i64::from(graph.node(e.from).latency) - i64::from(ii) * i64::from(e.distance);
            let cand = t[e.from.0 as usize] + w;
            if cand > t[e.to.0 as usize] {
                t[e.to.0 as usize] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Clamp to non-negative issue slots.
    for v in t.iter_mut() {
        *v = (*v).max(0);
    }
}

/// ALAP times relative to the ASAP critical-path length.
pub fn alap_times(graph: &SchedGraph, ii: u32) -> Vec<i64> {
    let asap = asap_times(graph, ii);
    let mut t = Vec::new();
    alap_times_into(graph, &asap, &mut t);
    t
}

/// [`alap_times`] into a caller-provided buffer, given precomputed ASAP
/// times for the same `(graph, ii)` pair.
pub fn alap_times_into(graph: &SchedGraph, asap: &[i64], t: &mut Vec<i64>) {
    let n = graph.len();
    let horizon: i64 = (0..n)
        .map(|i| asap[i] + i64::from(graph.node(NodeId(i as u32)).latency))
        .max()
        .unwrap_or(0);
    t.clear();
    t.extend((0..n).map(|i| horizon - i64::from(graph.node(NodeId(i as u32)).latency)));
    for _ in 0..=n {
        let mut changed = false;
        for e in graph.edges() {
            if e.distance > 0 {
                continue; // backward slack only constrained within instance
            }
            let w = i64::from(graph.node(e.from).latency);
            let cand = t[e.to.0 as usize] - w;
            if cand < t[e.from.0 as usize] {
                t[e.from.0 as usize] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn res_mii_counts_ports() {
        let mut g = SchedGraph::new();
        for _ in 0..6 {
            g.add_node(2, ResourceClass::LocalRead);
        }
        for _ in 0..2 {
            g.add_node(1, ResourceClass::LocalWrite);
        }
        let budget = ResourceBudget {
            local_read_ports: 2,
            local_write_ports: 1,
            dsps: 8,
            global_ports: 8,
        };
        // 6 reads / 2 ports = 3; 2 writes / 1 port = 2.
        assert_eq!(res_mii(&g, &budget), 3);
    }

    #[test]
    fn rec_mii_simple_recurrence() {
        // Cycle a → b → a with distance 1 and latencies 2 + 2 → II ≥ 4? No:
        // the recurrence length is lat(a)+lat(b) = 4 over distance 1 → 4.
        let mut g = SchedGraph::new();
        let a = g.add_node(2, ResourceClass::Fabric);
        let b = g.add_node(2, ResourceClass::Fabric);
        g.add_edge(a, b);
        g.add_edge_with_distance(b, a, 1);
        assert_eq!(rec_mii(&g), 4);
    }

    #[test]
    fn rec_mii_distance_divides() {
        // Same cycle but distance 2: II ≥ ceil(4/2) = 2.
        let mut g = SchedGraph::new();
        let a = g.add_node(2, ResourceClass::Fabric);
        let b = g.add_node(2, ResourceClass::Fabric);
        g.add_edge(a, b);
        g.add_edge_with_distance(b, a, 2);
        assert_eq!(rec_mii(&g), 2);
    }

    #[test]
    fn no_recurrence_gives_one() {
        let mut g = SchedGraph::new();
        let a = g.add_node(5, ResourceClass::Fabric);
        let b = g.add_node(5, ResourceClass::Fabric);
        g.add_edge(a, b);
        assert_eq!(rec_mii(&g), 1);
        assert_eq!(mii(&g, &ResourceBudget::unconstrained()), 1);
    }

    #[test]
    fn figure3_example_mii_is_two() {
        // The paper's Figure 3: inter work-item dependency with II = 2.
        // Model: load b[i] (lat 1) → add (lat 1) → store b[i+1], recurrence
        // distance 1 from store back to load. Cycle latency = 1 + 1 = 2 over
        // distance 1 → RecMII = 2 (store issue completes the cycle).
        let mut g = SchedGraph::new();
        let load = g.add_node(1, ResourceClass::LocalRead);
        let add = g.add_node(1, ResourceClass::Fabric);
        let store = g.add_node(0, ResourceClass::LocalWrite);
        g.add_edge(load, add);
        g.add_edge(add, store);
        g.add_edge_with_distance(store, load, 1);
        assert_eq!(rec_mii(&g), 2);
    }

    #[test]
    fn asap_respects_latency_chain() {
        let mut g = SchedGraph::new();
        let a = g.add_node(3, ResourceClass::Fabric);
        let b = g.add_node(2, ResourceClass::Fabric);
        let c = g.add_node(1, ResourceClass::Fabric);
        g.add_edge(a, b);
        g.add_edge(b, c);
        let t = asap_times(&g, 1);
        assert_eq!(t, vec![0, 3, 5]);
        let l = alap_times(&g, 1);
        assert_eq!(l, vec![0, 3, 5]); // pure chain: no slack
    }

    #[test]
    fn alap_slack_on_short_branch() {
        let mut g = SchedGraph::new();
        let a = g.add_node(10, ResourceClass::Fabric);
        let b = g.add_node(1, ResourceClass::Fabric);
        let c = g.add_node(1, ResourceClass::Fabric);
        g.add_edge(a, c);
        g.add_edge(b, c);
        let asap = asap_times(&g, 1);
        let alap = alap_times(&g, 1);
        assert_eq!(asap[1], 0);
        assert!(alap[1] > asap[1], "short branch has slack");
        assert_eq!(alap[0], asap[0], "critical path has none");
    }
}
