//! The dependence graph consumed by the schedulers.
//!
//! `flexcl-sched` is independent of the IR: the performance model translates
//! IR instructions into [`SchedNode`]s with an FPGA latency and a resource
//! class, and dependence edges carrying a `distance` (0 = same work-item,
//! k = the consumer runs k work-items later — the inter-work-item
//! recurrences that constrain `RecMII`).

use std::fmt;

/// Identifies a node in a [`SchedGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Hardware resource a node occupies at its issue cycle.
///
/// IP cores on the FPGA are fully pipelined, so a node holds its resource
/// for exactly one cycle; contention therefore constrains the *initiation*
/// rate, which is how `ResMII` arises (§3.3.1, Eq. 3–4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceClass {
    /// A read port of the CU's local memory.
    LocalRead,
    /// A write port of the CU's local memory.
    LocalWrite,
    /// A DSP slice (multipliers, floating-point cores).
    Dsp,
    /// An outstanding-request slot of the global-memory interface.
    GlobalPort,
    /// LUT fabric — effectively unconstrained.
    Fabric,
}

/// Number of [`ResourceClass`] variants (for dense per-class tables).
pub(crate) const NUM_RESOURCE_CLASSES: usize = 5;

impl ResourceClass {
    /// Dense index of the variant, for per-class counter arrays.
    pub(crate) fn index(self) -> usize {
        match self {
            ResourceClass::LocalRead => 0,
            ResourceClass::LocalWrite => 1,
            ResourceClass::Dsp => 2,
            ResourceClass::GlobalPort => 3,
            ResourceClass::Fabric => 4,
        }
    }
}

/// How many units of each resource a PE may use per cycle.
///
/// `Hash` lets evaluation layers memoize schedules per distinct budget —
/// many optimization configurations collapse to the same budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceBudget {
    /// Local memory read ports (banks × ports per bank).
    pub local_read_ports: u32,
    /// Local memory write ports.
    pub local_write_ports: u32,
    /// DSP slices available to the PE.
    pub dsps: u32,
    /// Concurrent global-memory interface slots.
    pub global_ports: u32,
}

impl ResourceBudget {
    /// A generous default (used in tests).
    pub fn unconstrained() -> Self {
        ResourceBudget {
            local_read_ports: u32::MAX,
            local_write_ports: u32::MAX,
            dsps: u32::MAX,
            global_ports: u32::MAX,
        }
    }

    /// Units available for `class` (fabric is unlimited).
    pub fn limit(&self, class: ResourceClass) -> u32 {
        match class {
            ResourceClass::LocalRead => self.local_read_ports,
            ResourceClass::LocalWrite => self.local_write_ports,
            ResourceClass::Dsp => self.dsps,
            ResourceClass::GlobalPort => self.global_ports,
            ResourceClass::Fabric => u32::MAX,
        }
    }
}

/// A schedulable operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedNode {
    /// Execution latency in cycles (0 allowed for wire-level ops).
    pub latency: u32,
    /// Resource occupied at issue.
    pub resource: ResourceClass,
}

/// A dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedEdge {
    /// Producer.
    pub from: NodeId,
    /// Consumer.
    pub to: NodeId,
    /// Iteration/work-item distance: 0 for same-instance dependences,
    /// k > 0 when the consumer belongs to the instance k steps later.
    pub distance: u32,
}

/// A dependence graph with latencies and resource classes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedGraph {
    nodes: Vec<SchedNode>,
    edges: Vec<SchedEdge>,
}

impl SchedGraph {
    /// An empty graph.
    pub fn new() -> Self {
        SchedGraph::default()
    }

    /// Removes all nodes and edges, keeping the allocations.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.edges.clear();
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, latency: u32, resource: ResourceClass) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(SchedNode { latency, resource });
        id
    }

    /// Adds a same-instance dependence edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint does not exist.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        self.add_edge_with_distance(from, to, 0);
    }

    /// Adds a dependence edge with an instance distance.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint does not exist.
    pub fn add_edge_with_distance(&mut self, from: NodeId, to: NodeId, distance: u32) {
        assert!((from.0 as usize) < self.nodes.len(), "unknown node {from}");
        assert!((to.0 as usize) < self.nodes.len(), "unknown node {to}");
        self.edges.push(SchedEdge { from, to, distance });
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> SchedNode {
        self.nodes[id.0 as usize]
    }

    /// All nodes with ids.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, SchedNode)> + '_ {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i as u32), *n))
    }

    /// All edges.
    pub fn edges(&self) -> &[SchedEdge] {
        &self.edges
    }

    /// Outgoing edges of `id`.
    pub fn succs(&self, id: NodeId) -> impl Iterator<Item = &SchedEdge> + '_ {
        self.edges.iter().filter(move |e| e.from == id)
    }

    /// Incoming edges of `id`.
    pub fn preds(&self, id: NodeId) -> impl Iterator<Item = &SchedEdge> + '_ {
        self.edges.iter().filter(move |e| e.to == id)
    }

    /// Count of nodes per resource class.
    pub fn resource_usage(&self, class: ResourceClass) -> u32 {
        self.nodes.iter().filter(|n| n.resource == class).count() as u32
    }

    /// Sum of all node latencies (an upper bound for any schedule).
    pub fn total_latency(&self) -> u64 {
        self.nodes.iter().map(|n| u64::from(n.latency)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_construction() {
        let mut g = SchedGraph::new();
        let a = g.add_node(2, ResourceClass::Fabric);
        let b = g.add_node(3, ResourceClass::Dsp);
        g.add_edge(a, b);
        assert_eq!(g.len(), 2);
        assert_eq!(g.node(a).latency, 2);
        assert_eq!(g.succs(a).count(), 1);
        assert_eq!(g.preds(b).count(), 1);
        assert_eq!(g.resource_usage(ResourceClass::Dsp), 1);
        assert_eq!(g.total_latency(), 5);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn edge_to_missing_node_panics() {
        let mut g = SchedGraph::new();
        let a = g.add_node(1, ResourceClass::Fabric);
        g.add_edge(a, NodeId(5));
    }

    #[test]
    fn budget_limits() {
        let b = ResourceBudget {
            local_read_ports: 2,
            local_write_ports: 1,
            dsps: 4,
            global_ports: 8,
        };
        assert_eq!(b.limit(ResourceClass::LocalRead), 2);
        assert_eq!(b.limit(ResourceClass::Fabric), u32::MAX);
    }
}
