//! Resource-aware priority-ordered list scheduling (ASAP policy).
//!
//! This is the per-basic-block estimator of §3.3.1: given the block's DFG
//! and the PE's resource constraints it returns the block's execution
//! latency. Priorities are longest-path-to-sink ("height"), the classic
//! critical-path heuristic of list scheduling [18, 19].

use crate::graph::{NodeId, ResourceBudget, ResourceClass, SchedGraph, NUM_RESOURCE_CLASSES};
use crate::scratch::SchedScratch;
use std::fmt;

/// Why a schedule could not be produced for the given graph and budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedError {
    /// The graph uses a resource class whose budget is zero, so at least
    /// one op can never issue.
    ZeroBudget(ResourceClass),
    /// The scheduler exceeded its convergence bound — the distance-0
    /// subgraph is cyclic (malformed input).
    NonConvergence,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::ZeroBudget(class) => {
                write!(f, "resource class {class:?} has a zero budget but is used by the graph")
            }
            SchedError::NonConvergence => {
                write!(f, "list scheduler failed to converge (cyclic distance-0 subgraph?)")
            }
        }
    }
}

impl std::error::Error for SchedError {}

/// The result of list scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListSchedule {
    /// Issue cycle per node.
    pub start: Vec<u32>,
    /// Total schedule length (cycles until the last result is available).
    pub length: u32,
}

impl ListSchedule {
    /// Issue cycle of `id`.
    pub fn start_of(&self, id: NodeId) -> u32 {
        self.start[id.0 as usize]
    }
}

/// Longest path from each node to any sink, counting node latencies.
///
/// Same-instance edges only (distance > 0 edges are loop-carried and do not
/// constrain a single instance).
pub fn heights(graph: &SchedGraph) -> Vec<u64> {
    let mut height = Vec::new();
    heights_into(graph, &mut height);
    height
}

/// [`heights`] into a caller-provided buffer (cleared first).
pub fn heights_into(graph: &SchedGraph, height: &mut Vec<u64>) {
    let n = graph.len();
    height.clear();
    height.resize(n, 0u64);
    // Process in reverse topological order; node ids are created in program
    // order so a reverse scan converges, but be safe and iterate to fixpoint
    // (graphs are DAGs on distance-0 edges; |V| passes bound the work).
    let mut changed = true;
    let mut passes = 0;
    while changed && passes <= n {
        changed = false;
        passes += 1;
        for id in (0..n).rev() {
            let node = graph.node(NodeId(id as u32));
            let mut h = u64::from(node.latency);
            for e in graph.succs(NodeId(id as u32)) {
                if e.distance == 0 {
                    let cand = u64::from(node.latency) + height[e.to.0 as usize];
                    h = h.max(cand);
                }
            }
            if h > height[id] {
                height[id] = h;
                changed = true;
            }
        }
    }
}

/// Schedules `graph` under `budget` using priority list scheduling.
///
/// Every node occupies its resource class for one cycle at issue (IP cores
/// are pipelined). Returns issue cycles and the overall latency.
///
/// # Errors
///
/// Returns [`SchedError::ZeroBudget`] if the graph uses a resource class
/// with a zero budget (such an op can never issue), and
/// [`SchedError::NonConvergence`] if the distance-0 subgraph turns out to be
/// cyclic (malformed input; the IR construction guarantees acyclicity
/// within an instance).
pub fn schedule(graph: &SchedGraph, budget: &ResourceBudget) -> Result<ListSchedule, SchedError> {
    schedule_with(graph, budget, &mut SchedScratch::new())
}

/// [`schedule`] reusing the buffers in `scratch` across calls.
///
/// Bit-identical to [`schedule`]; only the allocation behaviour differs.
///
/// # Errors
///
/// Same as [`schedule`].
pub fn schedule_with(
    graph: &SchedGraph,
    budget: &ResourceBudget,
    scratch: &mut SchedScratch,
) -> Result<ListSchedule, SchedError> {
    let mut span = flexcl_obs::span("sched.list");
    let n = graph.len();
    span.attr_u64("nodes", n as u64);
    if n == 0 {
        return Ok(ListSchedule { start: Vec::new(), length: 0 });
    }
    for (_, node) in graph.nodes() {
        if budget.limit(node.resource) == 0 {
            return Err(SchedError::ZeroBudget(node.resource));
        }
    }
    heights_into(graph, &mut scratch.heights);
    let SchedScratch { heights: height, pending, earliest, ready, deferred, issued, .. } =
        scratch;

    // Remaining same-instance predecessor counts.
    pending.clear();
    pending.resize(n, 0u32);
    for e in graph.edges() {
        if e.distance == 0 {
            pending[e.to.0 as usize] += 1;
        }
    }
    // Earliest start allowed by already-scheduled predecessors.
    earliest.clear();
    earliest.resize(n, 0u32);
    let mut start = vec![u32::MAX; n];

    ready.clear();
    ready.extend((0..n).filter(|i| pending[*i] == 0).map(|i| NodeId(i as u32)));

    let mut cycle: u32 = 0;
    let mut scheduled = 0usize;
    // Resource usage per cycle is transient: recompute per cycle.
    while scheduled < n {
        let mut used = [0u32; NUM_RESOURCE_CLASSES];
        // Within one cycle, keep issuing until a pass makes no progress:
        // zero-latency producers release their consumers in the same cycle
        // (combinational chains).
        loop {
            // Sort ready ops by priority (height desc, id asc for determinism).
            ready.sort_by(|a, b| {
                height[b.0 as usize]
                    .cmp(&height[a.0 as usize])
                    .then(a.0.cmp(&b.0))
            });
            issued.clear();
            deferred.clear();
            for id in ready.drain(..) {
                let idx = id.0 as usize;
                if earliest[idx] > cycle {
                    deferred.push(id);
                    continue;
                }
                let class = graph.node(id).resource;
                let limit = budget.limit(class);
                let u = &mut used[class.index()];
                if *u >= limit {
                    deferred.push(id);
                    continue;
                }
                *u += 1;
                start[idx] = cycle;
                issued.push(id);
                scheduled += 1;
            }
            std::mem::swap(ready, deferred);
            if issued.is_empty() {
                break;
            }
            // Release successors of newly issued nodes.
            for &id in issued.iter() {
                let lat = graph.node(id).latency;
                let finish = cycle + lat;
                for e in graph.succs(id) {
                    if e.distance != 0 {
                        continue;
                    }
                    let t = e.to.0 as usize;
                    earliest[t] = earliest[t].max(finish);
                    pending[t] -= 1;
                    if pending[t] == 0 {
                        ready.push(e.to);
                    }
                }
            }
        }
        cycle += 1;
        if u64::from(cycle) > graph.total_latency() + n as u64 + 1 {
            return Err(SchedError::NonConvergence);
        }
    }

    let length = (0..n)
        .map(|i| start[i] + graph.node(NodeId(i as u32)).latency)
        .max()
        .unwrap_or(0);
    Ok(ListSchedule { start, length })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(latencies: &[u32]) -> SchedGraph {
        let mut g = SchedGraph::new();
        let ids: Vec<NodeId> =
            latencies.iter().map(|l| g.add_node(*l, ResourceClass::Fabric)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        g
    }

    #[test]
    fn chain_latency_is_sum() {
        let g = chain(&[2, 3, 4]);
        let s = schedule(&g, &ResourceBudget::unconstrained()).expect("schedule");
        assert_eq!(s.length, 9);
        assert_eq!(s.start, vec![0, 2, 5]);
    }

    #[test]
    fn independent_ops_run_in_parallel() {
        let mut g = SchedGraph::new();
        for _ in 0..4 {
            g.add_node(5, ResourceClass::Fabric);
        }
        let s = schedule(&g, &ResourceBudget::unconstrained()).expect("schedule");
        assert_eq!(s.length, 5);
        assert!(s.start.iter().all(|c| *c == 0));
    }

    #[test]
    fn resource_limit_serialises_issues() {
        // 4 independent DSP ops, 2 DSPs: issue over 2 cycles.
        let mut g = SchedGraph::new();
        for _ in 0..4 {
            g.add_node(3, ResourceClass::Dsp);
        }
        let budget = ResourceBudget { dsps: 2, ..ResourceBudget::unconstrained() };
        let s = schedule(&g, &budget).expect("schedule");
        assert_eq!(s.length, 4); // last issue at cycle 1, +3 latency
    }

    #[test]
    fn diamond_takes_longest_branch() {
        let mut g = SchedGraph::new();
        let a = g.add_node(1, ResourceClass::Fabric);
        let b = g.add_node(10, ResourceClass::Fabric);
        let c = g.add_node(2, ResourceClass::Fabric);
        let d = g.add_node(1, ResourceClass::Fabric);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        let s = schedule(&g, &ResourceBudget::unconstrained()).expect("schedule");
        assert_eq!(s.length, 12); // 1 + 10 + 1
    }

    #[test]
    fn priority_prefers_critical_path() {
        // Two roots competing for one DSP; the one feeding the long chain
        // must issue first.
        let mut g = SchedGraph::new();
        let a = g.add_node(1, ResourceClass::Dsp); // feeds chain
        let b = g.add_node(1, ResourceClass::Dsp); // standalone
        let c = g.add_node(10, ResourceClass::Fabric);
        g.add_edge(a, c);
        let budget = ResourceBudget { dsps: 1, ..ResourceBudget::unconstrained() };
        let s = schedule(&g, &budget).expect("schedule");
        assert_eq!(s.start_of(a), 0, "critical op first");
        assert_eq!(s.start_of(b), 1);
        assert_eq!(s.length, 11);
    }

    #[test]
    fn loop_carried_edges_do_not_block() {
        let mut g = SchedGraph::new();
        let a = g.add_node(2, ResourceClass::Fabric);
        let b = g.add_node(2, ResourceClass::Fabric);
        g.add_edge(a, b);
        g.add_edge_with_distance(b, a, 1); // recurrence, ignored here
        let s = schedule(&g, &ResourceBudget::unconstrained()).expect("schedule");
        assert_eq!(s.length, 4);
    }

    #[test]
    fn empty_graph_is_zero() {
        let s = schedule(&SchedGraph::new(), &ResourceBudget::unconstrained()).expect("schedule");
        assert_eq!(s.length, 0);
    }

    #[test]
    fn zero_budget_is_a_typed_error() {
        let mut g = SchedGraph::new();
        g.add_node(2, ResourceClass::LocalRead);
        let budget = ResourceBudget { local_read_ports: 0, ..ResourceBudget::unconstrained() };
        assert_eq!(
            schedule(&g, &budget),
            Err(SchedError::ZeroBudget(ResourceClass::LocalRead))
        );
    }

    #[test]
    fn zero_budget_for_unused_class_is_fine() {
        let g = chain(&[1, 1]);
        let budget = ResourceBudget { dsps: 0, ..ResourceBudget::unconstrained() };
        assert_eq!(schedule(&g, &budget).expect("schedule").length, 2);
    }

    #[test]
    fn zero_latency_ops_chain_in_one_cycle_each() {
        let g = chain(&[0, 0, 0]);
        let s = schedule(&g, &ResourceBudget::unconstrained()).expect("schedule");
        // Zero-latency ops still issue on distinct ready cycles along a
        // chain but finish instantly.
        assert_eq!(s.length, 0);
    }
}
