//! Swing Modulo Scheduling (Llosa et al., PACT'96) — the second step of the
//! PE model (§3.3.1): starting from `MII`, find the smallest initiation
//! interval for which a modulo schedule exists under the resource budget,
//! and report the resulting pipeline depth `D_comp^PE`.
//!
//! The implementation follows the SMS recipe: per-candidate-II ASAP/ALAP
//! times give each node a mobility window; nodes are ordered by criticality
//! (smallest slack first, "swinging" between predecessors and successors of
//! already-placed nodes); placement scans the node's window against a
//! modulo reservation table. If any node cannot be placed, the candidate II
//! is bumped and the process restarts — exactly the "keeps refining the II
//! until it satisfies all the resource constraints" loop of the paper.

use crate::graph::{NodeId, ResourceBudget, SchedGraph};
use crate::mii::{alap_times_into, asap_times_into, mii};
use crate::scratch::SchedScratch;

/// The result of modulo scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuloSchedule {
    /// Achieved initiation interval (`II_comp^wi`).
    pub ii: u32,
    /// Pipeline depth (`D_comp^PE`): cycles from the first issue to the last
    /// result of one instance.
    pub depth: u32,
    /// Issue cycle per node.
    pub start: Vec<u32>,
}

/// Runs swing modulo scheduling on `graph` under `budget`.
///
/// `depth_floor` lets the caller impose a lower bound on the reported
/// pipeline depth (FlexCL derives the depth from the critical path through
/// the CDFG, which may include control regions not present in `graph`).
pub fn schedule(graph: &SchedGraph, budget: &ResourceBudget, depth_floor: u32) -> ModuloSchedule {
    schedule_with(graph, budget, depth_floor, &mut SchedScratch::new())
}

/// [`schedule`] reusing the buffers in `scratch` across calls.
///
/// Bit-identical to [`schedule`]; only the allocation behaviour differs.
pub fn schedule_with(
    graph: &SchedGraph,
    budget: &ResourceBudget,
    depth_floor: u32,
    scratch: &mut SchedScratch,
) -> ModuloSchedule {
    let mut span = flexcl_obs::span("sched.sms");
    let n = graph.len();
    span.attr_u64("nodes", n as u64);
    if n == 0 {
        return ModuloSchedule { ii: 1, depth: depth_floor.max(1), start: Vec::new() };
    }

    let start_ii = mii(graph, budget);
    let max_ii = (graph.total_latency() as u32).max(start_ii) + n as u32 + 1;

    for ii in start_ii..=max_ii {
        if let Some(start) = try_schedule(graph, budget, ii, scratch) {
            let depth = (0..n)
                .map(|i| start[i] + graph.node(NodeId(i as u32)).latency)
                .max()
                .unwrap_or(0)
                .max(depth_floor)
                .max(1);
            return ModuloSchedule { ii, depth, start };
        }
    }
    // Fully serial fallback — cannot happen for max_ii ≥ total latency, but
    // keep a sound answer rather than panic.
    let mut start = Vec::with_capacity(n);
    let mut t = 0;
    for i in 0..n {
        start.push(t);
        t += graph.node(NodeId(i as u32)).latency.max(1);
    }
    ModuloSchedule { ii: max_ii, depth: t.max(depth_floor).max(1), start }
}

fn try_schedule(
    graph: &SchedGraph,
    budget: &ResourceBudget,
    ii: u32,
    scratch: &mut SchedScratch,
) -> Option<Vec<u32>> {
    let n = graph.len();
    let SchedScratch { asap, alap, order, opt_start: start, mrt, .. } = scratch;
    asap_times_into(graph, ii, asap);
    alap_times_into(graph, asap, alap);

    // SMS node ordering: sort by increasing slack (ALAP − ASAP), breaking
    // ties by greater height (deeper nodes first), then id.
    order.clear();
    order.extend((0..n).map(|i| NodeId(i as u32)));
    order.sort_by_key(|id| {
        let i = id.0 as usize;
        let slack = alap[i] - asap[i];
        (slack, -asap[i], id.0)
    });

    // Modulo reservation table: per (slot, resource) usage counts.
    mrt.clear();
    start.clear();
    start.resize(n, None);

    for &id in order.iter() {
        let i = id.0 as usize;
        // Earliest start from already-placed predecessors (respecting
        // distances: a distance-d edge relaxes the bound by d·II).
        let mut est = asap[i].max(0);
        for e in graph.preds(id) {
            if let Some(ps) = start[e.from.0 as usize] {
                let bound = i64::from(ps) + i64::from(graph.node(e.from).latency)
                    - i64::from(ii) * i64::from(e.distance);
                est = est.max(bound);
            }
        }
        // Latest start from already-placed successors.
        let mut lst = i64::MAX;
        for e in graph.succs(id) {
            if let Some(ss) = start[e.to.0 as usize] {
                let bound = i64::from(ss) - i64::from(graph.node(id).latency)
                    + i64::from(ii) * i64::from(e.distance);
                lst = lst.min(bound);
            }
        }
        let est = est.max(0);
        // Scan one full II worth of slots starting at est (SMS guarantee:
        // if no slot in [est, est+II-1] fits, no slot fits).
        let class = graph.node(id).resource;
        let limit = budget.limit(class);
        let mut placed = false;
        for t in est..est + i64::from(ii) {
            if t > lst {
                break;
            }
            let t_u = u32::try_from(t).ok()?;
            let slot = t_u % ii;
            let used = mrt.get(&(slot, class)).copied().unwrap_or(0);
            if used < limit {
                *mrt.entry((slot, class)).or_insert(0) += 1;
                start[i] = Some(t_u);
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }

    // Verify all same-instance dependences (sanity; ordering+windows should
    // already guarantee them, but placements of later preds can violate an
    // earlier consumer's window in rare diamond shapes — reject then).
    let start: Vec<u32> = start.iter().map(|s| s.expect("placed")).collect();
    for e in graph.edges() {
        let lhs = i64::from(start[e.from.0 as usize]) + i64::from(graph.node(e.from).latency);
        let rhs = i64::from(start[e.to.0 as usize]) + i64::from(ii) * i64::from(e.distance);
        if lhs > rhs {
            return None;
        }
    }
    Some(start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ResourceBudget, ResourceClass};

    #[test]
    fn unconstrained_graph_achieves_ii_one() {
        let mut g = SchedGraph::new();
        let a = g.add_node(2, ResourceClass::Fabric);
        let b = g.add_node(3, ResourceClass::Fabric);
        g.add_edge(a, b);
        let s = schedule(&g, &ResourceBudget::unconstrained(), 0);
        assert_eq!(s.ii, 1);
        assert_eq!(s.depth, 5);
    }

    #[test]
    fn figure3_recurrence_gives_ii_two_depth_six() {
        // The paper's running example: II = 2, D = 6.
        // Work-item body: load b[i] (2) → add with a[i] (2) → store b[i+1]
        // (2), recurrence store→load at distance 1 closes a 4-cycle loop
        // over... we build latencies so the cycle latency is 4 → II=2 needs
        // distance 2; to get II = 2 with distance 1 the cycle latency must
        // be 2. Use load(1) → add(1) → store(0), plus a 4-cycle tail to
        // reach depth 6.
        let mut g = SchedGraph::new();
        let load = g.add_node(1, ResourceClass::LocalRead);
        let add = g.add_node(1, ResourceClass::Fabric);
        let store = g.add_node(0, ResourceClass::LocalWrite);
        let tail0 = g.add_node(2, ResourceClass::Fabric);
        let tail1 = g.add_node(2, ResourceClass::Fabric);
        g.add_edge(load, add);
        g.add_edge(add, store);
        g.add_edge_with_distance(store, load, 1);
        g.add_edge(add, tail0);
        g.add_edge(tail0, tail1);
        let s = schedule(&g, &ResourceBudget::unconstrained(), 0);
        assert_eq!(s.ii, 2);
        assert_eq!(s.depth, 6);
    }

    #[test]
    fn resource_pressure_raises_ii() {
        // 4 independent local reads per instance, 1 read port → II = 4.
        let mut g = SchedGraph::new();
        for _ in 0..4 {
            g.add_node(2, ResourceClass::LocalRead);
        }
        let budget = ResourceBudget {
            local_read_ports: 1,
            local_write_ports: 1,
            dsps: 8,
            global_ports: 8,
        };
        let s = schedule(&g, &budget, 0);
        assert_eq!(s.ii, 4);
    }

    #[test]
    fn modulo_slots_respected() {
        // 3 DSP ops, 1 DSP: they must land in distinct slots mod II.
        let mut g = SchedGraph::new();
        for _ in 0..3 {
            g.add_node(4, ResourceClass::Dsp);
        }
        let budget = ResourceBudget {
            local_read_ports: 4,
            local_write_ports: 4,
            dsps: 1,
            global_ports: 8,
        };
        let s = schedule(&g, &budget, 0);
        assert_eq!(s.ii, 3);
        let mut slots: Vec<u32> = s.start.iter().map(|t| t % s.ii).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 3);
    }

    #[test]
    fn schedule_respects_dependences() {
        let mut g = SchedGraph::new();
        let ids: Vec<_> = (0..6).map(|i| {
            let class = if i % 2 == 0 { ResourceClass::Dsp } else { ResourceClass::Fabric };
            g.add_node(1 + i % 3, class)
        }).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        g.add_edge_with_distance(ids[5], ids[0], 2);
        let budget = ResourceBudget {
            local_read_ports: 2,
            local_write_ports: 1,
            dsps: 1,
            global_ports: 4,
        };
        let s = schedule(&g, &budget, 0);
        for e in g.edges() {
            let lhs = s.start[e.from.0 as usize] + g.node(e.from).latency;
            let rhs = s.start[e.to.0 as usize] + s.ii * e.distance;
            assert!(lhs <= rhs, "violated edge {e:?} in {s:?}");
        }
    }

    #[test]
    fn depth_floor_applies() {
        let mut g = SchedGraph::new();
        g.add_node(1, ResourceClass::Fabric);
        let s = schedule(&g, &ResourceBudget::unconstrained(), 42);
        assert_eq!(s.depth, 42);
    }

    #[test]
    fn empty_graph_defaults() {
        let s = schedule(&SchedGraph::new(), &ResourceBudget::unconstrained(), 0);
        assert_eq!(s.ii, 1);
        assert_eq!(s.depth, 1);
    }

    #[test]
    fn ii_never_below_mii() {
        let mut g = SchedGraph::new();
        let a = g.add_node(3, ResourceClass::Fabric);
        let b = g.add_node(3, ResourceClass::Fabric);
        g.add_edge(a, b);
        g.add_edge_with_distance(b, a, 1);
        let s = schedule(&g, &ResourceBudget::unconstrained(), 0);
        assert_eq!(s.ii, crate::mii::mii(&g, &ResourceBudget::unconstrained()));
        assert_eq!(s.ii, 6);
    }
}
