//! Implementation-choice latency perturbation.
//!
//! SDAccel chooses among several hardware implementations per IR operation,
//! each with its own latency; the latency table the model schedules with is
//! the *average* over those choices (paper §4.2). This module owns the
//! canonical factor population describing that choice and the graph
//! transform that applies a draw of it — shared by the System Run simulator
//! (which samples one implementation per configuration seed) and the
//! analytical model (which averages schedules over a fixed ensemble to
//! estimate the population's expected pipeline parameters).

use crate::graph::SchedGraph;

/// Implementation-choice latency factors and their selection weights.
///
/// The weighted mean must be exactly 1.0: the latency table is defined as
/// the average over implementations, so a biased factor population would
/// contradict that premise and skew every draw in one direction
/// (`factor_population_mean_is_one` guards this).
pub const IMPL_FACTORS: [(f64, u32); 3] = [(0.8, 1), (1.0, 2), (1.2, 1)];

/// Total selection weight of [`IMPL_FACTORS`].
#[must_use]
pub fn impl_factor_weight_total() -> u32 {
    IMPL_FACTORS.iter().map(|(_, w)| w).sum()
}

/// Maps a uniform pick in `[0, impl_factor_weight_total())` to its factor.
#[must_use]
pub fn impl_factor(mut pick: u32) -> f64 {
    for (f, w) in IMPL_FACTORS {
        if pick < w {
            return f;
        }
        pick -= w;
    }
    1.0
}

/// Returns a copy of `graph` whose node latencies are scaled by per-node
/// factors drawn from `factor` (one call per node, in node order).
///
/// Zero-latency wires stay zero — there is nothing to implement — and any
/// perturbed non-zero latency is floored at one cycle.
pub fn perturb_graph_with(graph: &SchedGraph, factor: &mut impl FnMut() -> f64) -> SchedGraph {
    let mut out = SchedGraph::new();
    for (_, node) in graph.nodes() {
        let f = factor();
        let lat = (f64::from(node.latency) * f).round().max(0.0) as u32;
        let lat = if node.latency == 0 { 0 } else { lat.max(1) };
        out.add_node(lat, node.resource);
    }
    for e in graph.edges() {
        out.add_edge_with_distance(e.from, e.to, e.distance);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ResourceClass;

    #[test]
    fn factor_population_mean_is_one() {
        let mean: f64 = IMPL_FACTORS.iter().map(|(f, w)| f * f64::from(*w)).sum::<f64>()
            / f64::from(impl_factor_weight_total());
        assert!((mean - 1.0).abs() < 1e-12, "factor mean {mean} != 1.0");
    }

    #[test]
    fn every_pick_maps_into_the_population() {
        for pick in 0..impl_factor_weight_total() {
            let f = impl_factor(pick);
            assert!(IMPL_FACTORS.iter().any(|(x, _)| *x == f));
        }
    }

    #[test]
    fn perturbation_preserves_structure_and_zero_wires() {
        let mut g = SchedGraph::new();
        let a = g.add_node(2, ResourceClass::Fabric);
        let b = g.add_node(0, ResourceClass::Fabric);
        let c = g.add_node(6, ResourceClass::Dsp);
        g.add_edge(a, b);
        g.add_edge_with_distance(b, c, 1);
        let mut calls = 0u32;
        let p = perturb_graph_with(&g, &mut || {
            calls += 1;
            1.2
        });
        assert_eq!(calls, 3);
        assert_eq!(p.len(), g.len());
        assert_eq!(p.edges(), g.edges());
        let lats: Vec<u32> = p.nodes().map(|(_, n)| n.latency).collect();
        assert_eq!(lats, vec![2, 0, 7]); // 2·1.2 → 2, wire stays 0, 6·1.2 → 7
        assert!(p.nodes().zip(g.nodes()).all(|((_, x), (_, y))| x.resource == y.resource));
    }
}
