//! # flexcl-sched
//!
//! Scheduling algorithms for the FlexCL computation model (DAC'17
//! reproduction, §3.3):
//!
//! * [`list`] — resource-aware priority-ordered list scheduling with ASAP
//!   policy, used to estimate the execution latency of each CDFG basic
//!   block.
//! * [`mii`] — `MII = max(RecMII, ResMII)`: the recurrence- and
//!   resource-constrained lower bounds of the work-item initiation interval
//!   (Eq. 2–4).
//! * [`sms`] — Swing Modulo Scheduling, refining `II_comp^wi` until all
//!   resource constraints are met and yielding the PE pipeline depth
//!   `D_comp^PE`.
//!
//! The crate is IR-agnostic: it consumes a [`SchedGraph`] of latency- and
//! resource-annotated nodes, which the `flexcl-core` crate builds from IR.
//!
//! ```
//! use flexcl_sched::{ResourceBudget, ResourceClass, SchedGraph};
//!
//! let mut g = SchedGraph::new();
//! let load = g.add_node(2, ResourceClass::LocalRead);
//! let mul = g.add_node(4, ResourceClass::Dsp);
//! g.add_edge(load, mul);
//!
//! let block_latency = flexcl_sched::list::schedule(&g, &ResourceBudget::unconstrained())
//!     .expect("acyclic graph with a non-zero budget");
//! assert_eq!(block_latency.length, 6);
//!
//! let pipe = flexcl_sched::sms::schedule(&g, &ResourceBudget::unconstrained(), 0);
//! assert_eq!((pipe.ii, pipe.depth), (1, 6));
//! ```

#![warn(missing_docs)]

pub mod graph;
pub mod list;
pub mod mii;
pub mod perturb;
pub mod scratch;
pub mod sms;

pub use graph::{NodeId, ResourceBudget, ResourceClass, SchedEdge, SchedGraph, SchedNode};
pub use list::{ListSchedule, SchedError};
pub use perturb::{impl_factor, impl_factor_weight_total, perturb_graph_with, IMPL_FACTORS};
pub use scratch::SchedScratch;
pub use sms::ModuloSchedule;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Generates a random DAG with optional recurrence back-edges.
    fn arb_graph() -> impl Strategy<Value = SchedGraph> {
        (2usize..20, proptest::collection::vec(0u32..8, 2..20))
            .prop_flat_map(|(n, lats)| {
                let n = n.min(lats.len());
                let edges = proptest::collection::vec(
                    (0..n, 0..n, 0u32..3),
                    0..n * 2,
                );
                (Just(lats), edges)
            })
            .prop_map(|(lats, edges)| {
                let mut g = SchedGraph::new();
                let classes = [
                    ResourceClass::Fabric,
                    ResourceClass::Dsp,
                    ResourceClass::LocalRead,
                    ResourceClass::LocalWrite,
                ];
                let ids: Vec<NodeId> = lats
                    .iter()
                    .enumerate()
                    .map(|(i, l)| g.add_node(*l, classes[i % classes.len()]))
                    .collect();
                for (a, b, d) in edges {
                    let (a, b) = (a.min(ids.len() - 1), b.min(ids.len() - 1));
                    if a < b {
                        g.add_edge(ids[a], ids[b]); // forward: same instance
                    } else if a > b && d > 0 {
                        g.add_edge_with_distance(ids[a], ids[b], d); // recurrence
                    }
                }
                g
            })
    }

    fn small_budget() -> ResourceBudget {
        ResourceBudget { local_read_ports: 2, local_write_ports: 1, dsps: 2, global_ports: 4 }
    }

    proptest! {
        /// The list schedule must respect every distance-0 dependence and
        /// never beat the critical path.
        #[test]
        fn list_schedule_is_valid(g in arb_graph()) {
            let s = list::schedule(&g, &small_budget()).expect("generated DAGs always schedule");
            for e in g.edges() {
                if e.distance == 0 {
                    let lhs = s.start[e.from.0 as usize] + g.node(e.from).latency;
                    prop_assert!(lhs <= s.start[e.to.0 as usize]);
                }
            }
            let heights = list::heights(&g);
            let cp = heights.iter().copied().max().unwrap_or(0);
            prop_assert!(u64::from(s.length) >= cp);
        }

        /// SMS must achieve an II no smaller than MII and produce a schedule
        /// in which every edge (including recurrences) is satisfied.
        #[test]
        fn sms_schedule_is_valid(g in arb_graph()) {
            let budget = small_budget();
            let s = sms::schedule(&g, &budget, 0);
            prop_assert!(s.ii >= mii::mii(&g, &budget));
            for e in g.edges() {
                let lhs = i64::from(s.start[e.from.0 as usize]) + i64::from(g.node(e.from).latency);
                let rhs = i64::from(s.start[e.to.0 as usize]) + i64::from(s.ii) * i64::from(e.distance);
                prop_assert!(lhs <= rhs, "edge {:?} violated (ii={})", e, s.ii);
            }
        }

        /// Modulo reservation: no resource class is oversubscribed in any slot.
        #[test]
        fn sms_respects_modulo_resources(g in arb_graph()) {
            let budget = small_budget();
            let s = sms::schedule(&g, &budget, 0);
            let mut usage = std::collections::HashMap::new();
            for (id, node) in g.nodes() {
                let slot = s.start[id.0 as usize] % s.ii;
                *usage.entry((slot, node.resource)).or_insert(0u32) += 1;
            }
            for ((_, class), used) in usage {
                prop_assert!(used <= budget.limit(class));
            }
        }

        /// Relaxing the budget never worsens II.
        #[test]
        fn more_resources_never_hurt(g in arb_graph()) {
            let tight = sms::schedule(&g, &small_budget(), 0);
            let loose = sms::schedule(&g, &ResourceBudget::unconstrained(), 0);
            prop_assert!(loose.ii <= tight.ii);
        }

        /// Scheduling a sequence of graphs through one shared scratch is
        /// bit-identical to scheduling each with fresh allocations.
        #[test]
        fn scratch_reuse_is_bit_identical(gs in proptest::collection::vec(arb_graph(), 1..5)) {
            let mut scratch = SchedScratch::new();
            for g in &gs {
                let fresh = list::schedule(g, &small_budget());
                let reused = list::schedule_with(g, &small_budget(), &mut scratch);
                prop_assert_eq!(fresh, reused);
                let fresh = sms::schedule(g, &small_budget(), 0);
                let reused = sms::schedule_with(g, &small_budget(), 0, &mut scratch);
                prop_assert_eq!(fresh, reused);
            }
        }
    }
}
