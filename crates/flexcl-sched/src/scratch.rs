//! Reusable scratch buffers for the schedulers.
//!
//! The DSE hot path schedules thousands of small graphs per sweep; the
//! buffers the schedulers need (height priorities, ready lists, ASAP/ALAP
//! times, the modulo reservation table) are the same shape every time.
//! [`SchedScratch`] owns them so repeated calls through
//! [`crate::list::schedule_with`] and [`crate::sms::schedule_with`] reuse
//! the allocations instead of re-allocating per call — mirroring the
//! `AnalysisScratch` pattern in `flexcl-core`.
//!
//! Reuse never changes results: every buffer is cleared (and the reservation
//! table emptied) before use, and no scheduler iterates a map in an
//! order-dependent way, so scheduling through a shared scratch is
//! bit-identical to scheduling with fresh allocations.

use crate::graph::{NodeId, ResourceClass, SchedGraph};
use std::collections::HashMap;

/// Scratch space shared across scheduler invocations.
///
/// Create one per thread (it is cheap when empty) and pass it to the
/// `*_with` scheduler entry points. The plain `schedule` functions allocate
/// a fresh scratch internally, so results are identical either way.
#[derive(Debug, Default)]
pub struct SchedScratch {
    // list scheduling
    pub(crate) heights: Vec<u64>,
    pub(crate) pending: Vec<u32>,
    pub(crate) earliest: Vec<u32>,
    pub(crate) ready: Vec<NodeId>,
    pub(crate) deferred: Vec<NodeId>,
    pub(crate) issued: Vec<NodeId>,
    // swing modulo scheduling
    pub(crate) asap: Vec<i64>,
    pub(crate) alap: Vec<i64>,
    pub(crate) order: Vec<NodeId>,
    pub(crate) opt_start: Vec<Option<u32>>,
    pub(crate) mrt: HashMap<(u32, ResourceClass), u32>,
    // staged graph storage for callers that rebuild graphs per call
    graph: SchedGraph,
}

impl SchedScratch {
    /// An empty scratch; buffers grow on first use and are retained after.
    pub fn new() -> Self {
        SchedScratch::default()
    }

    /// Takes the staged graph storage, cleared but with capacity retained.
    ///
    /// Callers that build a fresh [`SchedGraph`] per scheduling call can
    /// stage it here between calls: `take_graph` → build → schedule →
    /// [`SchedScratch::put_graph`] keeps the node/edge allocations alive.
    pub fn take_graph(&mut self) -> SchedGraph {
        let mut g = std::mem::take(&mut self.graph);
        g.clear();
        g
    }

    /// Returns a graph taken with [`SchedScratch::take_graph`] so its
    /// allocation can be reused by the next call.
    pub fn put_graph(&mut self, g: SchedGraph) {
        self.graph = g;
    }
}
