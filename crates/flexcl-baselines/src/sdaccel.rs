//! SDAccel-style HLS cycle estimator.
//!
//! SDAccel's HLS functionality reports a cycle estimate for the generated
//! RTL without going through synthesis. The paper measures its error at
//! 30.4–84.9% and attributes it to three causes (§4.2), which this
//! baseline reproduces mechanistically:
//!
//! 1. **Underestimation of memory access latency** — global accesses are
//!    charged only their interface latency; there is no DRAM model.
//! 2. **Conservative estimation of designs with complex control
//!    dependency** — branch latencies are *summed* rather than maxed, and
//!    unknown-trip loops get a conservative default.
//! 3. **Ignorance of work-group scheduling overhead with multiple CUs** —
//!    CU replication is assumed to scale perfectly.
//!
//! It also *fails to return a result* for about 42% of design points, as
//! observed in the paper (complex parallelism/memory configurations and
//! cases where the HLS run would exceed the one-hour timeout).

use flexcl_core::{KernelAnalysis, OptimizationConfig};
use flexcl_ir::{build_deps, InstId, Region};
use flexcl_sched::{list, NodeId, ResourceBudget, SchedGraph};
use std::collections::HashMap;

/// Trip count assumed for loops the static analyzer cannot bound. HLS
/// reports `?` for such loops and its latency summary effectively counts a
/// single iteration — one of the reasons the paper finds SDAccel
/// *underestimating* complex kernels.
const DEFAULT_TRIP: f64 = 1.0;

/// Produces the SDAccel-style cycle estimate, or `None` when the tool
/// would fail to return a result for this design point.
pub fn estimate(analysis: &KernelAnalysis, config: &OptimizationConfig) -> Option<f64> {
    if fails(analysis, config) {
        return None;
    }
    let budget = pe_budget_flat(analysis);
    let depth = conservative_region_latency(analysis, &analysis.func.region, &budget);
    let ii = if config.work_item_pipeline {
        // Resource-aware II but *without* the memory-pattern refinement:
        // only local ports and DSPs are considered.
        f64::from(analysis.res_mii(&budget).max(analysis.rec_mii()))
    } else {
        depth
    };

    let wg = config.work_group_size() as f64;
    let n = (analysis.global.0 * analysis.global.1) as f64;
    let p = f64::from(config.effective_pes().max(1));
    let waves = ((wg - p) / p).ceil().max(0.0);
    let l_cu = ii * waves + depth;
    // Perfect CU scaling, no scheduling overhead, no global memory model.
    let rounds = (n / (wg * f64::from(config.num_cus.max(1)))).ceil().max(1.0);
    let _ = config.comm_mode;
    Some(l_cu * rounds)
}

/// The deterministic failure predicate (≈42% of realistic design spaces).
pub fn fails(analysis: &KernelAnalysis, config: &OptimizationConfig) -> bool {
    // Complex parallelism: high CU replication or wide PE arrays trip the
    // tool's parallel code generation.
    if config.num_cus > 2 {
        return true;
    }
    if config.effective_pes() > 16 {
        return true;
    }
    // Complex memory patterns: pipelined designs with inter-work-item
    // recurrences stall pipeline inference.
    if config.work_item_pipeline && !analysis.recurrences.is_empty() && config.num_pes > 1 {
        return true;
    }
    // 2-D work-groups with vectorization exceed the one-hour budget.
    if config.work_group.1 > 1 && config.vector_width > 1 {
        return true;
    }
    false
}

/// Flat (port/DSP only) budget — SDAccel knows the device resources.
fn pe_budget_flat(analysis: &KernelAnalysis) -> ResourceBudget {
    let p = &analysis.platform;
    ResourceBudget {
        local_read_ports: p.local_read_ports_per_bank,
        local_write_ports: p.local_write_ports_per_bank,
        dsps: u32::MAX,
        global_ports: p.global_ports,
    }
}

/// Conservative latency: branches sum, unknown loops get [`DEFAULT_TRIP`].
fn conservative_region_latency(
    analysis: &KernelAnalysis,
    region: &Region,
    budget: &ResourceBudget,
) -> f64 {
    match region {
        Region::Block(b) => {
            // Blocks are scheduled competently (HLS is good at straight-line
            // code); the baseline's errors come from control, memory and
            // CU-scaling assumptions, not from block scheduling.
            let insts = &analysis.func.block(*b).insts;
            if insts.is_empty() {
                return 0.0;
            }
            let mut g = SchedGraph::new();
            let mut map: HashMap<InstId, NodeId> = HashMap::new();
            for id in insts {
                let inst = analysis.func.inst(*id);
                let node = g.add_node(
                    analysis.platform.op_latency(&inst.op, &inst.ty),
                    analysis.platform.op_resource(&inst.op, &inst.ty),
                );
                map.insert(*id, node);
            }
            for e in build_deps(&analysis.func, insts) {
                g.add_edge(map[&e.from], map[&e.to]);
            }
            match list::schedule(&g, budget) {
                Ok(s) => f64::from(s.length),
                // A degenerate budget (zero ports) cannot overlap anything:
                // the conservative baseline degrades to fully serial issue.
                Err(_) => insts
                    .iter()
                    .map(|id| {
                        let inst = analysis.func.inst(*id);
                        f64::from(analysis.platform.op_latency(&inst.op, &inst.ty))
                    })
                    .sum::<f64>()
                    .max(1.0),
            }
        }
        Region::Seq(rs) => {
            rs.iter().map(|r| conservative_region_latency(analysis, r, budget)).sum()
        }
        Region::If { cond_block, then_region, else_region } => {
            // Conservative: both branches serialized.
            conservative_region_latency(analysis, &Region::Block(*cond_block), budget)
                + conservative_region_latency(analysis, then_region, budget)
                + conservative_region_latency(analysis, else_region, budget)
        }
        Region::Loop { id, header, body, latch } => {
            let meta = &analysis.func.loops[id.0 as usize];
            let trip = match meta.trip {
                flexcl_ir::TripCount::Static(n) => n as f64,
                flexcl_ir::TripCount::Profiled => DEFAULT_TRIP,
            };
            let header_l = conservative_region_latency(analysis, &Region::Block(*header), budget);
            let latch_l = latch.map_or(0.0, |l| {
                conservative_region_latency(analysis, &Region::Block(l), budget)
            });
            header_l + trip * (conservative_region_latency(analysis, body, budget)
                + latch_l
                + header_l)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcl_core::{Platform, Workload};
    use flexcl_interp::KernelArg;

    fn analysis(src: &str, n: u64) -> KernelAnalysis {
        let p = flexcl_frontend::parse_and_check(src).expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        KernelAnalysis::analyze(
            &f,
            &Platform::virtex7_adm7v3(),
            &Workload {
                args: vec![
                    KernelArg::FloatBuf(vec![1.0; n as usize]),
                    KernelArg::FloatBuf(vec![0.0; n as usize]),
                ],
                global: (n, 1),
            },
            (64, 1),
        )
        .expect("analysis")
    }

    const COPY: &str = "__kernel void copy(__global float* a, __global float* b) {
        int i = get_global_id(0);
        b[i] = a[i];
    }";

    #[test]
    fn underestimates_memory_bound_kernels() {
        let a = analysis(COPY, 1024);
        let cfg = OptimizationConfig {
            work_item_pipeline: true,
            ..OptimizationConfig::baseline((64, 1))
        };
        let sda = estimate(&a, &cfg).expect("estimate");
        let flexcl = flexcl_core::estimate(&a, &cfg).expect("estimate").cycles;
        assert!(
            sda < flexcl * 0.7,
            "SDAccel ({sda}) must underestimate vs FlexCL ({flexcl})"
        );
    }

    #[test]
    fn fails_on_many_cus() {
        let a = analysis(COPY, 1024);
        let cfg = OptimizationConfig { num_cus: 4, ..OptimizationConfig::baseline((64, 1)) };
        assert!(estimate(&a, &cfg).is_none());
    }

    #[test]
    fn fails_on_wide_pe_arrays() {
        let a = analysis(COPY, 1024);
        let cfg = OptimizationConfig {
            work_item_pipeline: true,
            num_pes: 16,
            vector_width: 4,
            ..OptimizationConfig::baseline((64, 1))
        };
        assert!(estimate(&a, &cfg).is_none());
    }

    #[test]
    fn failure_rate_is_realistic() {
        let a = analysis(COPY, 4096);
        let limits = flexcl_core::DesignSpaceLimits {
            global_x: 4096,
            global_y: 1,
            has_barrier: false,
            reqd_work_group: None,
            vectorizable: true,
            iterative: false,
        };
        let space = flexcl_core::enumerate(&limits);
        let failed = space.iter().filter(|c| fails(&a, c)).count();
        let rate = failed as f64 / space.len() as f64;
        assert!(
            (0.25..=0.6).contains(&rate),
            "failure rate {rate:.2} outside the paper's ~42% band"
        );
    }

    #[test]
    fn conservative_on_branchy_code() {
        let a = analysis(
            "__kernel void branchy(__global float* a, __global float* b) {
                int i = get_global_id(0);
                float v = a[i];
                if (v > 0.5f) { v = v * 2.0f + 1.0f; } else { v = v * 3.0f - 1.0f; }
                b[i] = v;
            }",
            1024,
        );
        let cfg = OptimizationConfig::baseline((64, 1));
        let sda = estimate(&a, &cfg).expect("estimate");
        // Comp-only FlexCL depth takes max of branches; SDAccel sums them,
        // so its *computation* term is larger per work-item.
        let budget = flexcl_core::pe_budget(&a, &cfg);
        let flexcl_depth = a.work_item_latency(&budget).expect("latency");
        let sda_depth = sda / 1024.0 * 64.0 / 64.0; // per-wi (serial)
        assert!(sda_depth > flexcl_depth, "sda {sda_depth} vs flexcl {flexcl_depth}");
    }
}
