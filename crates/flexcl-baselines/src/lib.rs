//! # flexcl-baselines
//!
//! The two comparison estimators of the FlexCL evaluation (DAC'17
//! reproduction):
//!
//! * [`sdaccel`] — an SDAccel-HLS-style cycle estimator that reproduces the
//!   paper's observed failure modes: memory-latency underestimation,
//!   conservative control-dependency handling, ignorance of work-group
//!   scheduling overhead, and a ~42% failure rate on complex design points
//!   (30.4–84.9% error band in Table 2).
//! * [`coarse`] — the coarse-grained model + step-by-step heuristic search
//!   of Wang et al. (HPCA'16), used in the §4.3 DSE comparison (only 12%
//!   of its configurations are optimal vs 96% for exhaustive FlexCL).
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use flexcl_core::{KernelAnalysis, OptimizationConfig, Platform, Workload};
//! use flexcl_interp::KernelArg;
//!
//! let program = flexcl_frontend::parse_and_check(
//!     "__kernel void copy(__global float* a, __global float* b) {
//!          int i = get_global_id(0);
//!          b[i] = a[i];
//!      }",
//! )?;
//! let func = flexcl_ir::lower_kernel(&program.kernels[0])?;
//! let workload = Workload {
//!     args: vec![KernelArg::FloatBuf(vec![0.0; 256]), KernelArg::FloatBuf(vec![0.0; 256])],
//!     global: (256, 1),
//! };
//! let analysis =
//!     KernelAnalysis::analyze(&func, &Platform::virtex7_adm7v3(), &workload, (64, 1))?;
//! let config = OptimizationConfig::baseline((64, 1));
//!
//! let sda = flexcl_baselines::sdaccel::estimate(&analysis, &config);
//! let coarse = flexcl_baselines::coarse::estimate(&analysis, &config);
//! assert!(sda.is_some());
//! assert!(coarse > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod coarse;
pub mod sdaccel;
