//! Coarse-grained performance model and step-by-step heuristic search,
//! after Wang et al., "A Performance Analysis Framework for Optimizing
//! OpenCL Applications on FPGAs" (HPCA'16) — the comparison baseline of
//! §4.3.
//!
//! The coarse model ignores exactly what the paper criticises it for:
//! global memory access *patterns* (it uses one flat average latency),
//! pipeline structure (it assumes a fixed initiation rate), and the
//! interplay between optimizations. Its step-by-step search optimizes one
//! knob at a time assuming independence, which strands it in local optima:
//! the paper finds only 12% of its chosen configurations optimal, versus
//! 96% for FlexCL with exhaustive search.

use flexcl_core::{CommMode, KernelAnalysis, OptimizationConfig};

/// Flat per-access global-memory latency used by the coarse model
/// (a single average, no hit/miss or read/write distinction).
const FLAT_MEM_LATENCY: f64 = 10.0;

/// Assumed initiation rate of a pipelined kernel (the coarse model does
/// not schedule; it assumes the tool achieves II = 1 whenever pipelining
/// is requested).
const ASSUMED_II: f64 = 1.0;

/// The coarse-grained cycle estimate.
pub fn estimate(analysis: &KernelAnalysis, config: &OptimizationConfig) -> f64 {
    let n = (analysis.global.0 * analysis.global.1) as f64;
    let wg = config.work_group_size() as f64;
    let p = f64::from(config.effective_pes().max(1));
    let c = f64::from(config.num_cus.max(1));

    // Computation: ops per work-item at an assumed rate.
    let ops_per_wi = analysis.func.insts.len() as f64;
    let comp_per_wi = if config.work_item_pipeline { ASSUMED_II } else { ops_per_wi };

    // Memory: flat latency × access count (no coalescing model either).
    let mem_per_wi = analysis.global_accesses_per_wi.max(
        analysis.func.global_accesses().len() as f64,
    ) * FLAT_MEM_LATENCY;

    let per_wi = match config.comm_mode {
        CommMode::Barrier => comp_per_wi + mem_per_wi,
        CommMode::Pipeline => comp_per_wi.max(mem_per_wi),
    };
    // Perfect scaling over PEs and CUs.
    (per_wi * n / (p * c)).max(wg)
}

/// The knob being varied in one step of the heuristic search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Knob {
    WorkGroup,
    Pipeline,
    Pes,
    Cus,
    Vector,
    Mode,
}

/// Whether `a` equals `b` in every dimension except possibly `knob`.
fn same_except(a: &OptimizationConfig, b: &OptimizationConfig, knob: Knob) -> bool {
    (knob == Knob::WorkGroup || a.work_group == b.work_group)
        && (knob == Knob::Pipeline || a.work_item_pipeline == b.work_item_pipeline)
        && (knob == Knob::Pes || a.num_pes == b.num_pes)
        && (knob == Knob::Cus || a.num_cus == b.num_cus)
        && (knob == Knob::Vector || a.vector_width == b.vector_width)
        && (knob == Knob::Mode || a.comm_mode == b.comm_mode)
}

/// Step-by-step heuristic search: optimize each knob once, in a fixed
/// order, holding the others at their current values (the independence
/// assumption the paper criticises).
///
/// Returns the chosen configuration (always one from `space`).
pub fn stepwise_search(
    analysis: &KernelAnalysis,
    space: &[OptimizationConfig],
) -> Option<OptimizationConfig> {
    let mut current = *space.first()?;
    for knob in [Knob::WorkGroup, Knob::Pipeline, Knob::Pes, Knob::Cus, Knob::Vector, Knob::Mode]
    {
        let best = space
            .iter()
            .filter(|cand| same_except(cand, &current, knob))
            .min_by(|a, b| estimate(analysis, a).total_cmp(&estimate(analysis, b)));
        if let Some(b) = best {
            current = *b;
        }
    }
    Some(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcl_core::{enumerate, DesignSpaceLimits, Platform, Workload};
    use flexcl_interp::KernelArg;

    fn analysis() -> KernelAnalysis {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void saxpy(__global float* x, __global float* y, float a) {
                int i = get_global_id(0);
                y[i] = a * x[i] + y[i];
            }",
        )
        .expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        KernelAnalysis::analyze(
            &f,
            &Platform::virtex7_adm7v3(),
            &Workload {
                args: vec![
                    KernelArg::FloatBuf(vec![1.0; 4096]),
                    KernelArg::FloatBuf(vec![2.0; 4096]),
                    KernelArg::Float(0.5),
                ],
                global: (4096, 1),
            },
            (64, 1),
        )
        .expect("analysis")
    }

    fn space() -> Vec<OptimizationConfig> {
        enumerate(&DesignSpaceLimits {
            global_x: 4096,
            global_y: 1,
            has_barrier: false,
            reqd_work_group: None,
            vectorizable: true,
            iterative: false,
        })
    }

    #[test]
    fn coarse_estimate_is_positive_and_scales() {
        let a = analysis();
        let base = OptimizationConfig::baseline((64, 1));
        let more_cus = OptimizationConfig { num_cus: 4, ..base };
        let e1 = estimate(&a, &base);
        let e4 = estimate(&a, &more_cus);
        assert!(e1 > 0.0);
        assert!(e4 < e1, "coarse model believes in perfect CU scaling");
    }

    #[test]
    fn coarse_model_is_pattern_blind() {
        // Two analyses with very different pattern mixes but the same
        // access count get the same coarse memory term: verify by checking
        // the model only depends on the count.
        let a = analysis();
        let cfg = OptimizationConfig::baseline((64, 1));
        let e = estimate(&a, &cfg);
        // Flat latency: reconstructible from the count.
        let n = 4096.0;
        let accesses =
            a.global_accesses_per_wi.max(a.func.global_accesses().len() as f64);
        let expected =
            (a.func.insts.len() as f64 + accesses * FLAT_MEM_LATENCY) * n;
        assert!((e - expected).abs() < 1e-6);
    }

    #[test]
    fn stepwise_search_returns_config_from_space() {
        let a = analysis();
        let sp = space();
        let chosen = stepwise_search(&a, &sp).expect("choice");
        assert!(sp.contains(&chosen));
    }

    #[test]
    fn stepwise_frequently_misses_flexcl_best() {
        // The headline DSE comparison: the stepwise pick is usually not the
        // exhaustive-FlexCL optimum.
        let a = analysis();
        let sp = space();
        let chosen = stepwise_search(&a, &sp).expect("choice");
        let flexcl_best = sp
            .iter()
            .filter(|c| flexcl_core::estimate(&a, c).expect("estimate").feasible)
            .min_by(|x, y| {
                flexcl_core::estimate(&a, x)
                    .expect("estimate")
                    .cycles
                    .total_cmp(&flexcl_core::estimate(&a, y).expect("estimate").cycles)
            })
            .expect("best");
        let chosen_cycles = flexcl_core::estimate(&a, &chosen).expect("estimate").cycles;
        let best_cycles = flexcl_core::estimate(&a, flexcl_best).expect("estimate").cycles;
        assert!(
            chosen_cycles >= best_cycles,
            "stepwise cannot beat the exhaustive optimum"
        );
    }
}
