//! # flexcl-obs
//!
//! Zero-dependency observability for the FlexCL stack: a span-based
//! structured tracer ([`trace`]) and a sharded metrics registry
//! ([`metrics`]), shared by the estimation pipeline, the DSE engine and
//! the serve layer.
//!
//! Design constraints, in order:
//!
//! 1. **Free when off.** Tracing is gated on one relaxed atomic load;
//!    metrics handles are single relaxed RMWs on pre-registered cells.
//!    Instrumentation stays compiled into release hot paths.
//! 2. **Never blocks, never lies.** The trace sink is a bounded
//!    channel drained by a dedicated writer thread; overflow and
//!    writer errors increment a `trace_dropped` counter that every
//!    metrics snapshot surfaces, instead of stalling a sweep or
//!    silently losing records.
//! 3. **No dependencies.** Like the rest of the workspace this crate
//!    builds offline from `std` alone; trace output is hand-formatted
//!    JSONL, metrics export is hand-formatted JSON + a flat text
//!    exposition.
//!
//! The span taxonomy and registry layout are documented in DESIGN.md
//! §13; the overhead methodology (and its CI gate) lives in
//! `obs_bench` / `BENCH_obs.json`.

#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{global, Counter, Gauge, Histogram, Registry, Snapshot};
pub use trace::{current_span_id, span, span_sampled, span_with_parent, Span};
