//! Sharded lock-free metrics: counters, gauges and log-bucketed
//! latency histograms behind a named registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones; the hot-path operations (`inc`, `add`, `set`, `record`) are
//! single relaxed atomic RMWs with no locking. Counters additionally
//! shard their cell across cache lines so concurrent writers on
//! different threads do not bounce one cache line between cores.
//!
//! A [`Registry`] maps names to handles. Registration takes a mutex
//! (it happens once per metric, off the hot path); reads via
//! [`Registry::snapshot`] are wait-free with respect to writers —
//! relaxed loads of monotone cells, so a snapshot is a consistent
//! *point-in-time-ish* view, never torn within one cell.
//!
//! Process-wide metrics live in [`global()`]; components that need
//! isolation (e.g. one server instance per test) own a `Registry` of
//! their own and merge its snapshot with the global one when exporting.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of cache-padded cells a [`Counter`] stripes across. Eight
/// covers every realistic worker count here (the DSE caps sweep threads
/// well below that of a big host) while keeping snapshot sums cheap.
const COUNTER_SHARDS: usize = 8;

/// Number of histogram buckets: one per possible bit length of a `u64`
/// sample (0 through 64).
pub const HIST_BUCKETS: usize = 65;

#[repr(align(64))]
#[derive(Debug)]
struct PaddedCell(AtomicU64);

/// A monotone event counter, striped across cache-padded shards.
#[derive(Debug, Clone)]
pub struct Counter(Arc<[PaddedCell; COUNTER_SHARDS]>);

/// Round-robin assignment of threads to counter shards. A thread keeps
/// its shard for life, so concurrent writers land on distinct cache
/// lines whenever there are at least as many shards as busy threads.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize =
            NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
    }
    SHARD.with(|s| *s)
}

impl Counter {
    fn new() -> Self {
        Counter(Arc::new(std::array::from_fn(|_| PaddedCell(AtomicU64::new(0)))))
    }

    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.0.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// A last-write-wins signed gauge (queue depths, in-flight counts).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    fn new() -> Self {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    /// Overwrites the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistCells {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log₂-bucketed histogram of `u64` samples (latencies in ns or µs).
///
/// Bucket `i` holds every sample whose bit length is `i`: bucket 0 is
/// exactly `{0}`, bucket `i ≥ 1` covers `[2^(i-1), 2^i - 1]`. Recording
/// is one relaxed `fetch_add` into the bucket plus count/sum upkeep —
/// no floating point, no locks. Percentiles come back as the upper
/// bound of the bucket holding the nearest-rank sample, so an extracted
/// percentile is always within one bucket of the exact order statistic.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistCells>);

/// Index of the bucket that holds `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (the value a percentile lookup
/// reports for samples landing in that bucket).
pub fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    fn new() -> Self {
        Histogram(Arc::new(HistCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Reads the histogram into an owned summary.
    pub fn summarize(&self) -> HistSummary {
        let buckets: Vec<u64> =
            self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count: u64 = buckets.iter().sum();
        HistSummary {
            count,
            sum: self.0.sum.load(Ordering::Relaxed),
            p50: percentile_of(&buckets, count, 50.0),
            p95: percentile_of(&buckets, count, 95.0),
            p99: percentile_of(&buckets, count, 99.0),
        }
    }
}

/// Nearest-rank percentile over bucket counts: the upper bound of the
/// bucket containing the `⌈p/100·n⌉`-th smallest sample.
fn percentile_of(buckets: &[u64], count: u64, p: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((p / 100.0 * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        seen += b;
        if seen >= rank {
            return bucket_bound(i);
        }
    }
    bucket_bound(HIST_BUCKETS - 1)
}

/// Point-in-time reading of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Median (upper bucket bound).
    pub p50: u64,
    /// 95th percentile (upper bucket bound).
    pub p95: u64,
    /// 99th percentile (upper bucket bound).
    pub p99: u64,
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics. Registration is idempotent per name;
/// asking for an existing name returns a handle to the same cells.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Vec<(String, Metric)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn entry<T: Clone>(
        &self,
        name: &str,
        extract: impl Fn(&Metric) -> Option<T>,
        make: impl Fn() -> (T, Metric),
    ) -> T {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, m)) = inner.iter().find(|(n, _)| n == name) {
            if let Some(h) = extract(m) {
                return h;
            }
            panic!("metric `{name}` already registered with a different type");
        }
        let (h, m) = make();
        inner.push((name.to_string(), m));
        h
    }

    /// Registers (or retrieves) the counter called `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.entry(
            name,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Counter::new();
                (c.clone(), Metric::Counter(c))
            },
        )
    }

    /// Registers (or retrieves) the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.entry(
            name,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Gauge::new();
                (g.clone(), Metric::Gauge(g))
            },
        )
    }

    /// Registers (or retrieves) the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.entry(
            name,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || {
                let h = Histogram::new();
                (h.clone(), Metric::Histogram(h))
            },
        )
    }

    /// Reads every registered metric. Names come back sorted so the
    /// rendering is deterministic regardless of registration order.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut snap = Snapshot::default();
        for (name, m) in inner.iter() {
            match m {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.summarize())),
            }
        }
        snap.counters.sort();
        snap.gauges.sort();
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }
}

/// Process-wide registry: library-level metrics (DSE sweep counters,
/// eval-cache hit rates, `trace_dropped`) register here.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A point-in-time reading of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<(String, HistSummary)>,
}

fn push_json_name(out: &mut String, name: &str) {
    out.push('"');
    for ch in name.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Snapshot {
    /// The value of the counter called `name`, if it was registered
    /// when the snapshot was taken.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The value of the gauge called `name`, if it was registered when
    /// the snapshot was taken.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Renders the snapshot as one JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,p50,p95,p99}}}`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_name(&mut out, name);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_name(&mut out, name);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_name(&mut out, name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count, h.sum, h.p50, h.p95, h.p99
            );
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot in a flat `name value` text exposition
    /// (one metric per line, histogram percentiles suffixed), suitable
    /// for scraping with standard line tools.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "{name}_count {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_p50 {}", h.p50);
            let _ = writeln!(out, "{name}_p95 {}", h.p95);
            let _ = writeln!(out, "{name}_p99 {}", h.p99);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_shards() {
        let r = Registry::new();
        let c = r.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same cells.
        r.counter("x").inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn gauge_set_and_add() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let r = Registry::new();
        let h = r.histogram("lat");
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.summarize();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1106);
        // p99 must land in the bucket of the max sample (1000 → bucket
        // 10, bound 1023).
        assert_eq!(s.p99, 1023);
    }

    #[test]
    fn bucket_bounds_cover_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bound(64), u64::MAX);
        for v in [0u64, 1, 5, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_bound(i));
            if i > 0 {
                assert!(v > bucket_bound(i - 1));
            }
        }
    }

    #[test]
    fn snapshot_renders_json_and_text() {
        let r = Registry::new();
        r.counter("a.b").add(2);
        r.gauge("g").set(-1);
        r.histogram("h").record(3);
        let s = r.snapshot();
        let j = s.to_json();
        assert!(j.contains("\"a.b\":2"), "{j}");
        assert!(j.contains("\"g\":-1"), "{j}");
        assert!(j.contains("\"count\":1"), "{j}");
        let t = s.to_text();
        assert!(t.contains("a.b 2\n"), "{t}");
        assert!(t.contains("h_p50 3\n"), "{t}");
    }
}
