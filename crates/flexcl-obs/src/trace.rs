//! Span-based structured tracing with a bounded, non-blocking JSONL
//! sink.
//!
//! The tracer is process-global and off by default. Every span site
//! first reads one relaxed [`AtomicBool`]; while tracing is disabled
//! that load-and-branch is the *entire* cost, so instrumentation can
//! stay in hot paths permanently. [`install`] points the tracer at a
//! writer (a file, stderr, or an in-memory buffer in tests) and flips
//! the flag; [`shutdown`] drains and joins the writer thread.
//!
//! A span is recorded as **one JSONL object at close**:
//!
//! ```json
//! {"id":7,"parent":3,"name":"dse.sweep","t_start_ns":10543,"dur_ns":81213,
//!  "thread":2,"attrs":{"kernel":"vadd","points":121600}}
//! ```
//!
//! `t_start_ns` is monotonic (an [`Instant`] epoch fixed at install
//! time), `id` is unique per process, and `parent` is `0` for roots.
//! Parenting is implicit within one thread — spans nest via a
//! thread-local stack — and explicit across threads: a fan-out site
//! captures [`current_span_id`] and hands it to workers, which open
//! their spans with [`span_with_parent`]. Sampled sites
//! ([`span_sampled`]) keep only one span in N (set at install), which
//! is what keeps per-chunk tracing affordable inside a sweep that
//! claims tens of thousands of chunks.
//!
//! Events are never silently lost: the channel to the writer thread is
//! bounded and sends never block, so overflow — or a writer I/O error —
//! increments the global `trace_dropped` counter surfaced by every
//! metrics snapshot instead of stalling the traced hot path.

use crate::metrics;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Capacity of the span channel between traced threads and the writer.
/// At ~200 bytes per record this bounds sink memory near 13 MB while
/// riding out multi-millisecond writer stalls at full DSE throughput.
const CHANNEL_CAP: usize = 65_536;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static SAMPLE_TICK: AtomicU64 = AtomicU64::new(0);
static SAMPLE_N: AtomicU64 = AtomicU64::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

struct SinkState {
    tx: SyncSender<String>,
    drain: std::thread::JoinHandle<()>,
}

fn sink() -> &'static Mutex<Option<SinkState>> {
    static SINK: OnceLock<Mutex<Option<SinkState>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// The process-wide count of trace records lost to sink overflow or
/// writer errors. Registered in [`metrics::global`] as `trace_dropped`.
pub fn dropped_counter() -> &'static metrics::Counter {
    static DROPPED: OnceLock<metrics::Counter> = OnceLock::new();
    DROPPED.get_or_init(|| metrics::global().counter("trace_dropped"))
}

/// Installs the tracer: spans flow to `writer` as JSONL, keeping one
/// sampled-site span in `sample_n` (≥ 1). Returns `false` (and changes
/// nothing) if a tracer is already installed — callers own the
/// install/[`shutdown`] pairing.
pub fn install(writer: Box<dyn Write + Send>, sample_n: u64) -> bool {
    let mut guard = sink().lock().unwrap_or_else(|e| e.into_inner());
    if guard.is_some() {
        return false;
    }
    epoch(); // fix the monotonic origin before any span can start
    SAMPLE_N.store(sample_n.max(1), Ordering::Relaxed);
    let (tx, rx) = sync_channel::<String>(CHANNEL_CAP);
    let drain = std::thread::Builder::new()
        .name("flexcl-trace".into())
        .spawn(move || {
            // One write per record, unbuffered: the writer runs off the
            // hot path, and per-line writes keep `trace_dropped`
            // accounting exact when the sink starts failing.
            let mut w = writer;
            for line in rx {
                if w.write_all(line.as_bytes()).is_err() {
                    dropped_counter().inc();
                }
            }
            let _ = w.flush();
        })
        .expect("spawn trace writer thread");
    *guard = Some(SinkState { tx, drain });
    ENABLED.store(true, Ordering::Relaxed);
    true
}

/// Disables tracing, drains buffered spans to the writer and joins the
/// writer thread. A no-op when no tracer is installed.
pub fn shutdown() {
    let state = {
        let mut guard = sink().lock().unwrap_or_else(|e| e.into_inner());
        ENABLED.store(false, Ordering::Relaxed);
        guard.take()
    };
    if let Some(SinkState { tx, drain }) = state {
        drop(tx); // closes the channel; the drain loop ends and flushes
        let _ = drain.join();
    }
}

/// Whether a tracer is currently installed. One relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Pauses or resumes emission without tearing down the sink: flips the
/// same relaxed flag the disabled fast path checks, so a paused tracer
/// costs exactly what an uninstalled one does. Spans already open keep
/// recording until they close. A no-op when no tracer is installed
/// (`span` would find no sink to send to, so the flag stays false).
pub fn set_enabled(on: bool) {
    let guard = sink().lock().unwrap_or_else(|e| e.into_inner());
    if guard.is_some() {
        ENABLED.store(on, Ordering::Relaxed);
    }
}

thread_local! {
    static STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// The id of the innermost open span on this thread (`0` if none).
/// Capture this before fanning work out to other threads and pass it
/// to [`span_with_parent`] there.
pub fn current_span_id() -> u64 {
    if !enabled() {
        return 0;
    }
    STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

struct SpanData {
    id: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
    start_ns: u64,
    attrs: String,
}

/// An open span. Dropping it closes the span and emits its record.
/// A span from a disabled or sampled-out site is inert: creation is a
/// branch, drop is a branch.
pub struct Span(Option<SpanData>);

fn open(name: &'static str, parent: u64) -> Span {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let start = Instant::now();
    let start_ns = start.duration_since(epoch()).as_nanos() as u64;
    STACK.with(|s| s.borrow_mut().push(id));
    Span(Some(SpanData { id, parent, name, start, start_ns, attrs: String::new() }))
}

/// Opens a span parented on the innermost open span of this thread.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span(None);
    }
    open(name, current_span_id())
}

/// Opens a span with an explicit parent id (cross-thread edges; pass
/// `0` for a root).
#[inline]
pub fn span_with_parent(name: &'static str, parent: u64) -> Span {
    if !enabled() {
        return Span(None);
    }
    open(name, parent)
}

/// Opens a span at a sampled site: only one call in N (the rate given
/// to [`install`]) produces a live span; the rest are inert. Children
/// created under a sampled-out span attach to its parent instead.
#[inline]
pub fn span_sampled(name: &'static str, parent: u64) -> Span {
    if !enabled() {
        return Span(None);
    }
    let n = SAMPLE_N.load(Ordering::Relaxed);
    if n > 1 && !SAMPLE_TICK.fetch_add(1, Ordering::Relaxed).is_multiple_of(n) {
        return Span(None);
    }
    open(name, parent)
}

/// Emits an instant event (a zero-duration span) parented on the
/// innermost open span of this thread.
pub fn event(name: &'static str) {
    drop(span(name));
}

impl Span {
    /// This span's id (`0` when the span is inert), for explicit
    /// parenting across threads.
    pub fn id(&self) -> u64 {
        self.0.as_ref().map_or(0, |d| d.id)
    }

    /// Whether this span will emit a record when closed.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    fn push_key(attrs: &mut String, key: &str) {
        if !attrs.is_empty() {
            attrs.push(',');
        }
        attrs.push('"');
        attrs.push_str(key); // keys are static identifiers, no escaping
        attrs.push_str("\":");
    }

    /// Attaches a string attribute (escaped on write).
    pub fn attr_str(&mut self, key: &str, value: &str) {
        if let Some(d) = self.0.as_mut() {
            Self::push_key(&mut d.attrs, key);
            d.attrs.push('"');
            for ch in value.chars() {
                match ch {
                    '"' => d.attrs.push_str("\\\""),
                    '\\' => d.attrs.push_str("\\\\"),
                    c if (c as u32) < 0x20 => {
                        use std::fmt::Write as _;
                        let _ = write!(d.attrs, "\\u{:04x}", c as u32);
                    }
                    c => d.attrs.push(c),
                }
            }
            d.attrs.push('"');
        }
    }

    /// Attaches an integer attribute.
    pub fn attr_u64(&mut self, key: &str, value: u64) {
        if let Some(d) = self.0.as_mut() {
            use std::fmt::Write as _;
            Self::push_key(&mut d.attrs, key);
            let _ = write!(d.attrs, "{value}");
        }
    }

    /// Attaches a float attribute (`null` if non-finite).
    pub fn attr_f64(&mut self, key: &str, value: f64) {
        if let Some(d) = self.0.as_mut() {
            use std::fmt::Write as _;
            Self::push_key(&mut d.attrs, key);
            if value.is_finite() {
                let _ = write!(d.attrs, "{value}");
            } else {
                d.attrs.push_str("null");
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(d) = self.0.take() else { return };
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop our own id; tolerate out-of-order drops from panics.
            if let Some(pos) = stack.iter().rposition(|&x| x == d.id) {
                stack.remove(pos);
            }
        });
        let dur_ns = d.start.elapsed().as_nanos() as u64;
        let mut line = String::with_capacity(96 + d.attrs.len());
        {
            use std::fmt::Write as _;
            let _ = write!(
                line,
                "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"t_start_ns\":{},\"dur_ns\":{}",
                d.id, d.parent, d.name, d.start_ns, dur_ns
            );
            if !d.attrs.is_empty() {
                let _ = write!(line, ",\"attrs\":{{{}}}", d.attrs);
            }
            line.push_str("}\n");
        }
        let guard = sink().lock().unwrap_or_else(|e| e.into_inner());
        match guard.as_ref() {
            Some(state) => match state.tx.try_send(line) {
                Ok(()) => {}
                Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                    dropped_counter().inc();
                }
            },
            // Tracer shut down between our open and close.
            None => dropped_counter().inc(),
        }
    }
}

#[cfg(test)]
pub(crate) mod testsupport {
    use std::io::Write;
    use std::sync::{Arc, Mutex};

    /// A `Write` handing bytes to a shared buffer, for asserting on
    /// emitted JSONL in tests.
    #[derive(Clone, Default)]
    pub struct SharedBuf(pub Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        pub fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Serializes tests that install the (process-global) tracer.
    pub fn tracer_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::testsupport::{tracer_lock, SharedBuf};
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = tracer_lock();
        assert!(!enabled());
        let mut s = span("noop");
        s.attr_u64("k", 1);
        assert_eq!(s.id(), 0);
        assert!(!s.is_live());
        drop(s);
        assert_eq!(current_span_id(), 0);
    }

    #[test]
    fn spans_nest_and_emit_jsonl() {
        let _guard = tracer_lock();
        let buf = SharedBuf::default();
        assert!(install(Box::new(buf.clone()), 1));
        {
            let mut root = span("root");
            root.attr_str("kernel", "va\"dd");
            let root_id = root.id();
            assert!(root_id != 0);
            {
                let child = span("child");
                assert_eq!(current_span_id(), child.id());
            }
            assert_eq!(current_span_id(), root_id);
        }
        shutdown();
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        // Children close first.
        assert!(lines[0].contains("\"name\":\"child\""), "{text}");
        assert!(lines[1].contains("\"name\":\"root\""), "{text}");
        assert!(lines[1].contains("\\\"dd"), "escaped attr: {text}");
        // The child's parent is the root's id.
        let root_id: u64 = lines[1]
            .split("\"id\":")
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(lines[0].contains(&format!("\"parent\":{root_id}")), "{text}");
    }

    #[test]
    fn sampling_keeps_one_in_n() {
        let _guard = tracer_lock();
        let buf = SharedBuf::default();
        assert!(install(Box::new(buf.clone()), 4));
        for _ in 0..16 {
            drop(span_sampled("chunk", 0));
        }
        shutdown();
        assert_eq!(buf.contents().lines().count(), 4, "{}", buf.contents());
    }

    #[test]
    fn second_install_is_rejected() {
        let _guard = tracer_lock();
        let buf = SharedBuf::default();
        assert!(install(Box::new(buf.clone()), 1));
        assert!(!install(Box::new(buf.clone()), 1));
        shutdown();
    }
}
