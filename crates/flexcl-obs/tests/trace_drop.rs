//! Regression coverage for the silent-drop gap: trace records lost to
//! sink overflow or writer failure must show up in `trace_dropped`,
//! never vanish.

use flexcl_obs::trace;
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serializes the tests in this file: the tracer is process-global.
fn tracer_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A writer that fails every write, modelling a closed pipe or a full
/// disk under the sink.
struct FailingWriter;

impl Write for FailingWriter {
    fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
        Err(std::io::Error::other("sink failure"))
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn writer_errors_are_counted_not_silent() {
    let _guard = tracer_lock();
    let before = trace::dropped_counter().get();
    assert!(trace::install(Box::new(FailingWriter), 1));
    for _ in 0..10 {
        drop(trace::span("doomed"));
    }
    trace::shutdown();
    let dropped = trace::dropped_counter().get() - before;
    assert_eq!(dropped, 10, "every failed write must be counted");
}

/// A writer that blocks until the test releases it, so the bounded
/// channel behind the tracer fills up.
struct BlockedWriter(Arc<Mutex<()>>);

impl Write for BlockedWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let _stall = self.0.lock().unwrap_or_else(|e| e.into_inner());
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn sink_overflow_is_counted_not_silent() {
    let _guard = tracer_lock();
    let before = trace::dropped_counter().get();
    let stall = Arc::new(Mutex::new(()));
    let held = stall.lock().unwrap();
    assert!(trace::install(Box::new(BlockedWriter(stall.clone())), 1));
    // The writer thread wedges on its first record while we pour spans
    // into the bounded channel; everything past capacity must be
    // counted as dropped, and nothing may block.
    const SPANS: u64 = 70_000;
    for _ in 0..SPANS {
        drop(trace::span("flood"));
    }
    let dropped_while_wedged = trace::dropped_counter().get() - before;
    assert!(
        dropped_while_wedged > 0,
        "overflow past the bounded sink must increment trace_dropped"
    );
    drop(held); // un-wedge the writer so shutdown can drain and join
    trace::shutdown();
    let dropped = trace::dropped_counter().get() - before;
    // Conservation: every span either reached the writer or was counted.
    assert!(dropped <= SPANS);
    assert!(dropped >= dropped_while_wedged);
}
