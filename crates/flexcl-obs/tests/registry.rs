//! Metrics-registry correctness under concurrency, snapshot fidelity,
//! and histogram bucket/percentile properties.

use flexcl_obs::metrics::{bucket_bound, bucket_index, Registry, HIST_BUCKETS};
use proptest::prelude::*;

#[test]
fn counters_are_exact_under_hammering() {
    let r = Registry::new();
    let c = r.counter("hammer");
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let c = c.clone();
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
}

#[test]
fn histograms_lose_no_samples_under_hammering() {
    let r = Registry::new();
    let h = r.histogram("lat");
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = h.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * PER_THREAD + i);
                }
            });
        }
    });
    let snap = h.summarize();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    // Sum of 0..160000.
    let n = THREADS * PER_THREAD;
    assert_eq!(snap.sum, n * (n - 1) / 2);
}

#[test]
fn gauges_balance_under_hammering() {
    let r = Registry::new();
    let g = r.gauge("depth");
    std::thread::scope(|s| {
        for _ in 0..4 {
            let g = g.clone();
            s.spawn(move || {
                for _ in 0..10_000 {
                    g.add(3);
                    g.add(-3);
                }
            });
        }
    });
    assert_eq!(g.get(), 0);
}

#[test]
fn snapshot_matches_ground_truth() {
    let r = Registry::new();
    let c = r.counter("reqs");
    let g = r.gauge("inflight");
    let h = r.histogram("ms");
    let values = [3u64, 3, 5, 9, 120, 121, 4000];
    c.add(42);
    g.set(-7);
    for &v in &values {
        h.record(v);
    }

    let snap = r.snapshot();
    assert_eq!(snap.counters, vec![("reqs".to_string(), 42)]);
    assert_eq!(snap.gauges, vec![("inflight".to_string(), -7)]);
    assert_eq!(snap.histograms.len(), 1);
    let (name, hs) = &snap.histograms[0];
    assert_eq!(name, "ms");
    assert_eq!(hs.count, values.len() as u64);
    assert_eq!(hs.sum, values.iter().sum::<u64>());
    // Exact nearest-rank order statistics land in known buckets:
    // p50 → 4th of 7 sorted samples = 9 → bucket bound 15;
    // p99 → 7th = 4000 → bucket bound 4095.
    assert_eq!(hs.p50, 15);
    assert_eq!(hs.p99, 4095);

    // A second snapshot after more traffic sees the delta.
    c.inc();
    assert_eq!(r.snapshot().counters[0].1, 43);
}

#[test]
fn bucket_bounds_are_monotone() {
    for i in 1..HIST_BUCKETS {
        assert!(
            bucket_bound(i) > bucket_bound(i - 1),
            "bound({i}) = {} !> bound({}) = {}",
            bucket_bound(i),
            i - 1,
            bucket_bound(i - 1)
        );
    }
}

/// Exact nearest-rank percentile over raw samples, the ground truth the
/// histogram approximates.
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    /// Every value sits inside its bucket's (lo, hi] range.
    #[test]
    fn bucket_index_is_consistent_with_bounds(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(v <= bucket_bound(i));
        if i > 0 {
            prop_assert!(v > bucket_bound(i - 1));
        }
    }

    /// An extracted percentile is the upper bound of the bucket that
    /// holds the exact order statistic — i.e. within one bucket of
    /// exact, never below it.
    #[test]
    fn percentiles_are_within_one_bucket(
        mut samples in proptest::collection::vec(0u64..1_000_000, 1..200),
        which in 0usize..3,
    ) {
        let r = Registry::new();
        let h = r.histogram("x");
        for &v in &samples {
            h.record(v);
        }
        samples.sort_unstable();
        let snap = h.summarize();
        let (p, got) = [(50.0, snap.p50), (95.0, snap.p95), (99.0, snap.p99)][which];
        let exact = exact_percentile(&samples, p);
        prop_assert_eq!(bucket_index(got), bucket_index(exact));
        prop_assert!(got >= exact);
    }
}
