//! Criterion benchmark isolating `model::estimate` with and without the
//! budget-keyed schedule caches.
//!
//! The DSE hot path evaluates ~330 configurations per kernel analysis;
//! `EvalContext` computes the schedules once per distinct resource budget
//! instead of once per configuration. This benchmark measures exactly
//! that delta over the enumerated space of the vadd fixture:
//!
//! * `estimate/uncached` — a fresh context per call, schedules recomputed
//!   every time (the behaviour of the plain `flexcl_core::estimate` entry
//!   point);
//! * `estimate/cached` — one context across the sweep, schedules served
//!   from the budget-keyed caches after the first miss.
//!
//! Run with `cargo bench -p flexcl-bench --bench estimate`.

use criterion::{criterion_group, criterion_main, Criterion};
use flexcl_core::{
    enumerate, estimate, DesignSpaceLimits, EvalContext, KernelAnalysis, OptimizationConfig,
    Platform, Workload,
};
use flexcl_interp::KernelArg;

fn vadd_analysis() -> KernelAnalysis {
    let p = flexcl_frontend::parse_and_check(
        "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
            int i = get_global_id(0);
            c[i] = a[i] + b[i];
        }",
    )
    .expect("frontend");
    let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
    KernelAnalysis::analyze(
        &f,
        &Platform::virtex7_adm7v3(),
        &Workload {
            args: vec![
                KernelArg::FloatBuf(vec![1.0; 1024]),
                KernelArg::FloatBuf(vec![2.0; 1024]),
                KernelArg::FloatBuf(vec![0.0; 1024]),
            ],
            global: (1024, 1),
        },
        (64, 1),
    )
    .expect("analysis")
}

fn space() -> Vec<OptimizationConfig> {
    enumerate(&DesignSpaceLimits {
        global_x: 1024,
        global_y: 1,
        has_barrier: false,
        reqd_work_group: Some((64, 1)),
        vectorizable: true,
        iterative: false,
    })
}

fn bench_estimate(c: &mut Criterion) {
    let analysis = vadd_analysis();
    let configs = space();
    assert!(configs.len() > 50, "need a non-trivial space");

    c.bench_function("estimate/uncached", |b| {
        b.iter(|| {
            let mut feasible = 0usize;
            for cfg in &configs {
                if estimate(&analysis, cfg).expect("estimate").feasible {
                    feasible += 1;
                }
            }
            feasible
        })
    });
    c.bench_function("estimate/cached", |b| {
        b.iter(|| {
            let mut ctx = EvalContext::new(&analysis);
            let mut feasible = 0usize;
            for cfg in &configs {
                if ctx.estimate(cfg).expect("estimate").feasible {
                    feasible += 1;
                }
            }
            feasible
        })
    });
}

criterion_group!(benches, bench_estimate);
criterion_main!(benches);
