//! Criterion benchmark of the DSE sweep engine.
//!
//! Compares the serial exhaustive sweep against the multi-threaded and
//! branch-and-bound variants on the vadd fixture. Run with
//! `cargo bench -p flexcl-bench --bench dse`.

use criterion::{criterion_group, criterion_main, Criterion};
use flexcl_core::{explore_with, DseOptions, Platform, Workload};
use flexcl_interp::KernelArg;

fn vadd() -> (flexcl_ir::Function, Workload) {
    let p = flexcl_frontend::parse_and_check(
        "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
            int i = get_global_id(0);
            c[i] = a[i] + b[i];
        }",
    )
    .expect("frontend");
    let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
    let w = Workload {
        args: vec![
            KernelArg::FloatBuf(vec![1.0; 1024]),
            KernelArg::FloatBuf(vec![2.0; 1024]),
            KernelArg::FloatBuf(vec![0.0; 1024]),
        ],
        global: (1024, 1),
    };
    (f, w)
}

fn bench_dse(c: &mut Criterion) {
    let (func, workload) = vadd();
    let platform = Platform::virtex7_adm7v3();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    c.bench_function("dse/serial", |b| {
        b.iter(|| {
            explore_with(&func, &platform, &workload, DseOptions::default())
                .expect("sweep")
                .points
                .len()
        })
    });
    c.bench_function(&format!("dse/parallel-{threads}"), |b| {
        b.iter(|| {
            explore_with(&func, &platform, &workload, DseOptions::parallel(threads))
                .expect("sweep")
                .points
                .len()
        })
    });
    c.bench_function("dse/pruned", |b| {
        b.iter(|| {
            explore_with(
                &func,
                &platform,
                &workload,
                DseOptions { prune: true, threads: 1, ..DseOptions::default() },
            )
            .expect("sweep")
            .points
            .len()
        })
    });
}

criterion_group!(benches, bench_dse);
criterion_main!(benches);
