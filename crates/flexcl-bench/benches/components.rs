//! Criterion micro-benchmarks for the model's building blocks.
//!
//! These quantify the §4.3 claim that one FlexCL evaluation costs
//! microseconds-to-milliseconds (against hours for synthesis): per-call
//! costs of the frontend, kernel analysis, a single estimate, the
//! schedulers, and the DRAM pattern profiler.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flexcl_core::{estimate, KernelAnalysis, OptimizationConfig, Platform, Workload};
use flexcl_dram::{microbench, DramConfig};
use flexcl_interp::KernelArg;
use flexcl_sched::{list, sms, ResourceBudget, ResourceClass, SchedGraph};

const SRC: &str = "__kernel void saxpy(__global float* x, __global float* y, float a) {
    int i = get_global_id(0);
    y[i] = a * x[i] + y[i];
}";

fn workload() -> Workload {
    Workload {
        args: vec![
            KernelArg::FloatBuf(vec![1.0; 1024]),
            KernelArg::FloatBuf(vec![2.0; 1024]),
            KernelArg::Float(0.5),
        ],
        global: (1024, 1),
    }
}

fn analysis() -> KernelAnalysis {
    let p = flexcl_frontend::parse_and_check(SRC).expect("frontend");
    let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
    KernelAnalysis::analyze(&f, &Platform::virtex7_adm7v3(), &workload(), (64, 1))
        .expect("analysis")
}

fn sched_graph(n: usize) -> SchedGraph {
    let mut g = SchedGraph::new();
    let classes =
        [ResourceClass::Fabric, ResourceClass::Dsp, ResourceClass::LocalRead];
    let ids: Vec<_> = (0..n)
        .map(|i| g.add_node(1 + (i % 5) as u32, classes[i % classes.len()]))
        .collect();
    for i in 1..n {
        g.add_edge(ids[i / 2], ids[i]);
    }
    g
}

fn bench_frontend(c: &mut Criterion) {
    c.bench_function("frontend/parse_and_check", |b| {
        b.iter(|| flexcl_frontend::parse_and_check(black_box(SRC)).expect("frontend"))
    });
}

fn bench_analysis(c: &mut Criterion) {
    let p = flexcl_frontend::parse_and_check(SRC).expect("frontend");
    let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
    let platform = Platform::virtex7_adm7v3();
    let w = workload();
    c.bench_function("core/kernel_analysis", |b| {
        b.iter(|| {
            KernelAnalysis::analyze(black_box(&f), &platform, &w, (64, 1)).expect("analysis")
        })
    });
}

fn bench_estimate(c: &mut Criterion) {
    let a = analysis();
    let cfg = OptimizationConfig {
        work_item_pipeline: true,
        ..OptimizationConfig::baseline((64, 1))
    };
    c.bench_function("core/single_estimate", |b| {
        b.iter(|| estimate(black_box(&a), black_box(&cfg)))
    });
}

fn bench_schedulers(c: &mut Criterion) {
    let g = sched_graph(64);
    let budget = ResourceBudget {
        local_read_ports: 2,
        local_write_ports: 1,
        dsps: 4,
        global_ports: 4,
    };
    c.bench_function("sched/list_64_nodes", |b| {
        b.iter(|| list::schedule(black_box(&g), &budget))
    });
    c.bench_function("sched/sms_64_nodes", |b| {
        b.iter(|| sms::schedule(black_box(&g), &budget, 0))
    });
}

fn bench_dram_profile(c: &mut Criterion) {
    c.bench_function("dram/pattern_profile", |b| {
        b.iter(|| microbench::profile(black_box(DramConfig::adm_pcie_7v3())))
    });
}

criterion_group!(
    benches,
    bench_frontend,
    bench_analysis,
    bench_estimate,
    bench_schedulers,
    bench_dram_profile
);
criterion_main!(benches);
