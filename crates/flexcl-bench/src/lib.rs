//! # flexcl-bench
//!
//! Experiment harness for the FlexCL reproduction. Each binary in
//! `src/bin/` regenerates one table or figure of the paper (see
//! `DESIGN.md` §4 for the index); this library holds the shared sweep
//! machinery.
//!
//! All experiments write both a human-readable report to stdout and a CSV
//! under `results/`.

use flexcl_core::{explore, KernelAnalysis, OptimizationConfig, Platform};
use flexcl_ir::Function;
use flexcl_kernels::{KernelSpec, Scale};
use flexcl_sim::{system_run, SimError, SimOptions};
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Per-configuration record of one sweep.
#[derive(Debug, Clone)]
pub struct ConfigRecord {
    /// The configuration.
    pub config: OptimizationConfig,
    /// Ground-truth cycles from the System Run simulator.
    pub system_cycles: f64,
    /// FlexCL's estimate.
    pub flexcl_cycles: f64,
    /// SDAccel-style estimate (`None` = the tool failed on this point).
    pub sdaccel_cycles: Option<f64>,
}

impl ConfigRecord {
    /// FlexCL's relative error on this point.
    pub fn flexcl_err(&self) -> f64 {
        (self.flexcl_cycles - self.system_cycles).abs() / self.system_cycles
    }

    /// SDAccel's relative error, if it returned a result.
    pub fn sdaccel_err(&self) -> Option<f64> {
        self.sdaccel_cycles
            .map(|c| (c - self.system_cycles).abs() / self.system_cycles)
    }
}

/// Result of sweeping one kernel's design space with all three tools.
#[derive(Debug)]
pub struct KernelSweep {
    /// Kernel identity (`benchmark/kernel`).
    pub name: String,
    /// Feasible design points with all measurements.
    pub records: Vec<ConfigRecord>,
    /// Number of enumerated designs (incl. infeasible / failed).
    pub designs: usize,
    /// Wall time spent in System Runs.
    pub system_time: Duration,
    /// Wall time spent in SDAccel estimates.
    pub sdaccel_time: Duration,
    /// Wall time spent in FlexCL (analysis + estimates).
    pub flexcl_time: Duration,
}

impl KernelSweep {
    /// Mean absolute FlexCL error (%).
    pub fn flexcl_error_pct(&self) -> f64 {
        mean(self.records.iter().map(ConfigRecord::flexcl_err)) * 100.0
    }

    /// Mean absolute SDAccel error (%) over the surviving points.
    pub fn sdaccel_error_pct(&self) -> f64 {
        mean(self.records.iter().filter_map(ConfigRecord::sdaccel_err)) * 100.0
    }

    /// Fraction of design points where the SDAccel estimator failed.
    pub fn sdaccel_failure_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let failed = self.records.iter().filter(|r| r.sdaccel_cycles.is_none()).count();
        failed as f64 / self.records.len() as f64
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = it.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Compiles a kernel spec to IR.
///
/// # Panics
///
/// Panics if a corpus kernel fails the frontend — that is a bug, caught by
/// the corpus tests.
pub fn compile(spec: &KernelSpec) -> Function {
    let program =
        flexcl_frontend::parse_and_check(spec.source).expect("corpus kernel must compile");
    flexcl_ir::lower_kernel(program.kernel(spec.kernel).expect("kernel present"))
        .expect("corpus kernel must lower")
}

/// Sweeps one kernel: every feasible configuration is evaluated by FlexCL,
/// the SDAccel baseline and the System Run simulator.
pub fn sweep_kernel(spec: &KernelSpec, platform: &Platform, scale: Scale) -> KernelSweep {
    let func = compile(spec);
    let workload = spec.workload(scale, 1234);

    // FlexCL: exhaustive exploration (includes per-wg analyses).
    let t0 = Instant::now();
    let dse = explore(&func, platform, &workload).expect("exploration");
    let flexcl_time = t0.elapsed();

    // Reuse the per-wg analyses for the SDAccel baseline.
    let mut analyses: HashMap<(u32, u32), KernelAnalysis> = HashMap::new();
    let mut records = Vec::new();
    let mut sdaccel_time = Duration::ZERO;
    let mut system_time = Duration::ZERO;

    for point in &dse.points {
        if !point.estimate.feasible {
            continue;
        }
        let wg = point.config.work_group;
        if !analyses.contains_key(&wg) {
            match KernelAnalysis::analyze(&func, platform, &workload, wg) {
                Ok(a) => {
                    analyses.insert(wg, a);
                }
                Err(_) => continue,
            }
        }
        let analysis = &analyses[&wg];

        let t = Instant::now();
        let sdaccel_cycles = flexcl_baselines::sdaccel::estimate(analysis, &point.config);
        sdaccel_time += t.elapsed();

        let t = Instant::now();
        let system = system_run(&func, platform, &workload, &point.config, SimOptions::default());
        system_time += t.elapsed();
        let system_cycles = match system {
            Ok(r) => r.cycles,
            Err(SimError::Infeasible(_)) => continue,
            Err(e) => panic!("system run failed for {}: {e}", spec.full_name()),
        };

        records.push(ConfigRecord {
            config: point.config,
            system_cycles,
            flexcl_cycles: point.estimate.cycles,
            sdaccel_cycles,
        });
    }

    KernelSweep {
        name: spec.full_name(),
        records,
        designs: dse.points.len(),
        system_time,
        sdaccel_time,
        flexcl_time,
    }
}

/// Re-evaluates FlexCL only (no System Run) — used by timing comparisons.
pub fn flexcl_only_sweep(spec: &KernelSpec, platform: &Platform, scale: Scale) -> Duration {
    let func = compile(spec);
    let workload = spec.workload(scale, 1234);
    let t0 = Instant::now();
    let _ = explore(&func, platform, &workload).expect("exploration");
    t0.elapsed()
}

/// Finds a spec by `benchmark/kernel` name.
pub fn find_spec(name: &str) -> KernelSpec {
    flexcl_kernels::all()
        .into_iter()
        .find(|s| s.full_name() == name)
        .unwrap_or_else(|| panic!("no kernel named {name}"))
}

/// The `results/` directory (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes CSV rows (with header) into `results/<name>`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = results_dir().join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write");
    for r in rows {
        writeln!(f, "{r}").expect("write");
    }
    println!("wrote {}", path.display());
}

/// Formats a duration compactly.
pub fn fmt_dur(d: Duration) -> String {
    if d.as_secs() >= 60 {
        format!("{:.1} min", d.as_secs_f64() / 60.0)
    } else if d.as_secs_f64() >= 1.0 {
        format!("{:.1} s", d.as_secs_f64())
    } else {
        format!("{:.0} ms", d.as_secs_f64() * 1e3)
    }
}

/// The "hours per synthesis run" the paper's System Run column implies:
/// used to report the extrapolated exploration time a real toolchain would
/// need for the same number of design points (the paper's Table 2 shows
/// 47–182 hours per kernel at ~0.7 h per design).
pub const SYNTHESIS_HOURS_PER_DESIGN: f64 = 0.7;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_small_kernel_end_to_end() {
        let spec = find_spec("nn/nn");
        let sweep = sweep_kernel(&spec, &Platform::virtex7_adm7v3(), Scale::Test);
        assert!(sweep.records.len() >= 50, "{} records", sweep.records.len());
        assert!(sweep.flexcl_error_pct() < 30.0, "err {:.1}%", sweep.flexcl_error_pct());
        assert!(
            sweep.sdaccel_error_pct() > sweep.flexcl_error_pct(),
            "SDAccel ({:.1}%) must be worse than FlexCL ({:.1}%)",
            sweep.sdaccel_error_pct(),
            sweep.flexcl_error_pct()
        );
        let fail = sweep.sdaccel_failure_rate();
        assert!((0.2..=0.6).contains(&fail), "failure rate {fail}");
    }
}
