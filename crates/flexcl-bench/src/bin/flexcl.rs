//! `flexcl` — command-line interface to the performance model.
//!
//! ```text
//! flexcl estimate kernel.cl --kernel name --global 4096 [--wg 64] [--pipeline]
//!                           [--pes P] [--cus C] [--vector V] [--coarsen N]
//!                           [--temporal N] [--mode pipeline]
//!                           [--platform 7v3|ku060] [--scalar-int N] [--scalar-float X]
//!                           [--buf-elems N]
//! flexcl explore  kernel.cl --kernel name --global 4096 [--top 10] [--pareto] [--verbose]
//! flexcl ir       kernel.cl --kernel name
//! flexcl patterns [--platform 7v3|ku060]
//! ```
//!
//! Every subcommand accepts `--trace-out PATH` (plus `--trace-sample N`)
//! to dump the span trace of the run as JSONL.
//!
//! Buffer arguments are synthesized automatically: every pointer parameter
//! gets a buffer of `--buf-elems` elements (default: 64 × the global size)
//! filled with small positive values; scalar `int` parameters default to
//! `--scalar-int` (16) and `float` parameters to `--scalar-float` (1.0).
//! If the kernel indexes further than that, re-run with a larger
//! `--buf-elems`.

use flexcl_core::{
    estimate, estimate_area, CommMode, KernelAnalysis, OptimizationConfig, Platform, Workload,
};
use flexcl_frontend::types::Type;
use flexcl_interp::KernelArg;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `flexcl help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        print_help();
        return Ok(());
    };
    let traced = install_tracer(args)?;
    let result = match cmd.as_str() {
        "estimate" => cmd_estimate(&args[1..]),
        "explore" => cmd_explore(&args[1..]),
        "ir" => cmd_ir(&args[1..]),
        "patterns" => cmd_patterns(&args[1..]),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    if traced {
        flexcl_obs::trace::shutdown();
    }
    result
}

/// Arms the process-wide tracer when `--trace-out PATH` is present
/// (optionally with `--trace-sample N`); works with every subcommand.
fn install_tracer(args: &[String]) -> Result<bool, String> {
    let value_of = |flag: &str| -> Option<&String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1))
    };
    let Some(path) = value_of("--trace-out") else { return Ok(false) };
    let sample: u64 = match value_of("--trace-sample") {
        Some(v) => v.parse().map_err(|_| "bad --trace-sample")?,
        None => 1,
    };
    let file =
        std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    Ok(flexcl_obs::trace::install(Box::new(file), sample))
}

fn print_help() {
    println!(
        "flexcl — analytical FPGA performance model for OpenCL kernels (DAC'17)\n\n\
         USAGE:\n\
         \x20 flexcl estimate <file.cl> --kernel NAME --global N[xM] [options]\n\
         \x20 flexcl explore  <file.cl> --kernel NAME --global N[xM] [--top K] [--pareto]\n\
         \x20 flexcl ir       <file.cl> --kernel NAME\n\
         \x20 flexcl patterns [--platform 7v3|ku060]\n\n\
         OPTIONS:\n\
         \x20 --wg N[xM]          work-group size (default 64 / 8x8)\n\
         \x20 --pipeline          enable work-item pipelining\n\
         \x20 --pes P             PE replication (default 1)\n\
         \x20 --cus C             CU replication (default 1)\n\
         \x20 --vector V          vectorization width (default 1)\n\
         \x20 --coarsen N         thread-coarsening factor, must divide wg (default 1)\n\
         \x20 --temporal N        temporal-blocking depth, iterative stencils only (default 1)\n\
         \x20 --mode MODE         barrier | pipeline (default barrier)\n\
         \x20 --platform P        7v3 | ku060 (default 7v3)\n\
         \x20 --buf-elems N       synthesized buffer length per pointer param\n\
         \x20 --scalar-int N      value for int scalar params (default 16)\n\
         \x20 --scalar-float X    value for float scalar params (default 1.0)\n\
         \x20 --verbose           (explore) print sweep internals and diagnostics\n\
         \x20 --trace-out PATH    write the run's span trace to PATH as JSONL\n\
         \x20 --trace-sample N    keep 1-in-N hot-loop spans (default 1 = all)"
    );
}

/// Minimal flag parser: positionals + `--key value` + boolean flags.
struct Flags {
    positional: Vec<String>,
    values: std::collections::HashMap<String, String>,
    switches: std::collections::HashSet<String>,
}

const BOOL_FLAGS: &[&str] = &["pipeline", "pareto", "verbose"];

fn parse_flags(args: &[String]) -> Flags {
    let mut f = Flags {
        positional: Vec::new(),
        values: std::collections::HashMap::new(),
        switches: std::collections::HashSet::new(),
    };
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if BOOL_FLAGS.contains(&name) {
                f.switches.insert(name.to_string());
            } else if let Some(v) = it.next() {
                f.values.insert(name.to_string(), v.clone());
            }
        } else {
            f.positional.push(a.clone());
        }
    }
    f
}

fn parse_dims(s: &str) -> Result<(u64, u64), String> {
    match s.split_once('x') {
        Some((a, b)) => Ok((
            a.parse().map_err(|_| format!("bad dimension `{a}`"))?,
            b.parse().map_err(|_| format!("bad dimension `{b}`"))?,
        )),
        None => Ok((s.parse().map_err(|_| format!("bad size `{s}`"))?, 1)),
    }
}

fn platform_for(flags: &Flags) -> Result<Platform, String> {
    match flags.values.get("platform").map(String::as_str) {
        None | Some("7v3") => Ok(Platform::virtex7_adm7v3()),
        Some("ku060") => Ok(Platform::ku060_nas120a()),
        Some(other) => Err(format!("unknown platform `{other}` (use 7v3 or ku060)")),
    }
}

struct Loaded {
    func: flexcl_ir::Function,
    workload: Workload,
    global: (u64, u64),
}

fn load(flags: &Flags) -> Result<Loaded, String> {
    let path = flags
        .positional
        .first()
        .ok_or("missing kernel file argument")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let program = flexcl_frontend::parse_and_check(&src).map_err(|e| e.to_string())?;
    let name = match flags.values.get("kernel") {
        Some(n) => n.clone(),
        None if program.kernels.len() == 1 => program.kernels[0].name.clone(),
        None => {
            return Err(format!(
                "--kernel required; file defines: {}",
                program
                    .kernels
                    .iter()
                    .map(|k| k.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        }
    };
    let kernel = program
        .kernel(&name)
        .ok_or_else(|| format!("no kernel named `{name}`"))?;
    let func = flexcl_ir::lower_kernel(kernel).map_err(|e| e.to_string())?;

    let global = parse_dims(
        flags
            .values
            .get("global")
            .map(String::as_str)
            .unwrap_or("1024"),
    )?;
    let total = global.0 * global.1;
    let buf_elems: u64 = match flags.values.get("buf-elems") {
        Some(v) => v.parse().map_err(|_| "bad --buf-elems")?,
        None => total * 64,
    };
    let scalar_int: i64 = flags
        .values
        .get("scalar-int")
        .map_or(Ok(16), |v| v.parse())
        .map_err(|_| "bad --scalar-int")?;
    let scalar_float: f64 = flags
        .values
        .get("scalar-float")
        .map_or(Ok(1.0), |v| v.parse())
        .map_err(|_| "bad --scalar-float")?;

    // Synthesize arguments from the signature.
    let args: Vec<KernelArg> = func
        .params
        .iter()
        .map(|p| match &p.ty {
            Type::Pointer(elem, _) => {
                let lanes = u64::from(elem.lanes());
                if elem.is_float() {
                    KernelArg::FloatBuf(vec![1.0; (buf_elems * lanes) as usize])
                } else {
                    KernelArg::IntBuf(vec![1; (buf_elems * lanes) as usize])
                }
            }
            t if t.is_float() => KernelArg::Float(scalar_float),
            _ => KernelArg::Int(scalar_int),
        })
        .collect();
    Ok(Loaded { func, workload: Workload { args, global }, global })
}

fn config_for(flags: &Flags, global: (u64, u64)) -> Result<OptimizationConfig, String> {
    let default_wg = if global.1 > 1 { "8x8" } else { "64" };
    let wg = parse_dims(flags.values.get("wg").map(String::as_str).unwrap_or(default_wg))?;
    let get_u32 = |key: &str, default: u32| -> Result<u32, String> {
        flags
            .values
            .get(key)
            .map_or(Ok(default), |v| v.parse())
            .map_err(|_| format!("bad --{key}"))
    };
    let mode = match flags.values.get("mode").map(String::as_str) {
        None | Some("barrier") => CommMode::Barrier,
        Some("pipeline") => CommMode::Pipeline,
        Some(other) => Err(format!("unknown mode `{other}`"))?,
    };
    Ok(OptimizationConfig {
        work_group: (wg.0 as u32, wg.1 as u32),
        work_item_pipeline: flags.switches.contains("pipeline") || mode == CommMode::Pipeline,
        num_pes: get_u32("pes", 1)?,
        num_cus: get_u32("cus", 1)?,
        vector_width: get_u32("vector", 1)?,
        comm_mode: mode,
        coarsen_factor: get_u32("coarsen", 1)?,
        temporal_block_depth: get_u32("temporal", 1)?,
    })
}

fn cmd_estimate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args);
    let platform = platform_for(&flags)?;
    let loaded = load(&flags)?;
    let config = config_for(&flags, loaded.global)?;
    let analysis =
        KernelAnalysis::analyze(&loaded.func, &platform, &loaded.workload, config.work_group)
            .map_err(|e| format!("{e}\nhint: if out of bounds, raise --buf-elems"))?;
    let est = estimate(&analysis, &config).map_err(|e| e.to_string())?;
    let area = estimate_area(&analysis, &config);

    println!("kernel   : {}", loaded.func.name);
    println!("platform : {}", platform.name);
    println!("config   : {config}");
    println!("estimate : {est}");
    println!("area     : {area}");
    println!(
        "wall time: {:.2} us at {} MHz",
        est.seconds(platform.frequency_mhz) * 1e6,
        platform.frequency_mhz
    );
    if !analysis.recurrences.is_empty() {
        println!(
            "note     : {} inter-work-item recurrence(s), RecMII = {}",
            analysis.recurrences.len(),
            analysis.rec_mii()
        );
    }
    Ok(())
}

fn cmd_explore(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args);
    let platform = platform_for(&flags)?;
    let loaded = load(&flags)?;
    let top: usize = flags
        .values
        .get("top")
        .map_or(Ok(10), |v| v.parse())
        .map_err(|_| "bad --top")?;

    let result = flexcl_core::explore(&loaded.func, &platform, &loaded.workload)
        .map_err(|e| format!("{e}\nhint: if out of bounds, raise --buf-elems"))?;
    println!(
        "explored {} configurations ({} feasible) in {:.2} s",
        result.points.len(),
        result.feasible_count(),
        result.elapsed.as_secs_f64()
    );
    if result.diagnostics.is_clean() {
        println!();
    } else {
        println!(
            "skipped {} candidate(s) [{}]; first failure: {}\n",
            result.diagnostics.skipped_count(),
            result.diagnostics.summary(),
            result.diagnostics.failed[0].message
        );
    }
    let mut ranked: Vec<_> = result.points.iter().filter(|p| p.estimate.feasible).collect();
    ranked.sort_by(|a, b| a.estimate.cycles.total_cmp(&b.estimate.cycles));
    println!("{:<46} {:>12}", "configuration", "cycles");
    for p in ranked.iter().take(top) {
        println!("{:<46} {:>12.0}", p.config.to_string(), p.estimate.cycles);
    }
    if let Some(s) = result.speedup_over_baseline() {
        println!("\nbest vs unoptimized baseline: {s:.1}x");
    }
    if flags.switches.contains("verbose") {
        println!("\nsweep internals:\n{}", result.stats);
        println!("  diagnostics      : {}", result.diagnostics);
    }
    if flags.switches.contains("pareto") {
        let wg = ranked.first().map(|p| p.config.work_group).unwrap_or((64, 1));
        let analysis =
            KernelAnalysis::analyze(&loaded.func, &platform, &loaded.workload, wg)
                .map_err(|e| e.to_string())?;
        println!("\nperformance/area Pareto frontier:");
        for p in result.pareto(&analysis) {
            println!("  {:<44} {:>10.0} cycles  {}", p.config.to_string(), p.cycles, p.area);
        }
    }
    Ok(())
}

fn cmd_ir(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args);
    let loaded = load(&flags)?;
    let mut func = loaded.func;
    let removed = flexcl_ir::optimize(&mut func);
    println!("{func}");
    println!("; {} instructions removed by optimization", removed);
    println!("; loops: {}", func.loops.len());
    for l in &func.loops {
        println!(";   {:?} trip={:?} unroll={:?}", l.id, l.trip, l.unroll);
    }
    Ok(())
}

fn cmd_patterns(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args);
    let platform = platform_for(&flags)?;
    let table = flexcl_dram::microbench::profile(platform.dram);
    println!("DRAM access-pattern latencies on {} (kernel cycles):", platform.name);
    for (p, dt) in table.iter() {
        println!("  {:<10} {dt:>6.1}", p.name());
    }
    Ok(())
}
