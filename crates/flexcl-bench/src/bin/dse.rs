//! Experiment E5 — §4.3 design-space exploration.
//!
//! Reproduced claims, per PolyBench kernel:
//!
//! * **Speed**: FlexCL explores the full space in seconds; against
//!   synthesis-based System Run (0.7 h per design, as Table 2 implies) the
//!   speedup exceeds 10,000×.
//! * **Quality**: the configuration FlexCL ranks best performs within a
//!   few percent of the true (System-Run-measured) optimum — the paper
//!   reports 2.1% average — and the best configuration accelerates the
//!   unoptimized baseline by orders of magnitude (273× on the paper's
//!   workload sizes).
//! * **Comparison with \[16\]**: exhaustive search over the FlexCL model
//!   finds the optimum for most kernels, while the coarse-grained model
//!   with step-by-step search of HPCA'16 rarely does (96% vs 12%).
//!
//! Regenerate with `cargo run -p flexcl-bench --bin dse --release`.
//!
//! In addition to the E5 tables, the binary measures the raw sweep-engine
//! throughput (serial vs multi-threaded) and writes it to the repo-root
//! `BENCH_dse.json`. Pass `--bench-only` to run just that measurement.

use flexcl_bench::{compile, sweep_kernel, write_csv, SYNTHESIS_HOURS_PER_DESIGN};
use flexcl_core::{explore_with, DseOptions, KernelAnalysis, Platform, Workload};
use flexcl_interp::KernelArg;
use flexcl_kernels::{polybench, Scale};
use std::time::Instant;

/// One BENCH_dse.json entry: a full model-only sweep of one kernel.
struct BenchRow {
    kernel: String,
    points: usize,
    threads: usize,
    elapsed_ms: f64,
    configs_per_sec: f64,
}

/// The vadd fixture used by the unit tests (3 × 4096 floats, 1-D range).
fn vadd() -> (flexcl_ir::Function, Workload) {
    let p = flexcl_frontend::parse_and_check(
        "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
            int i = get_global_id(0);
            c[i] = a[i] + b[i];
        }",
    )
    .expect("vadd frontend");
    let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("vadd lowering");
    let w = Workload {
        args: vec![
            KernelArg::FloatBuf(vec![1.0; 4096]),
            KernelArg::FloatBuf(vec![2.0; 4096]),
            KernelArg::FloatBuf(vec![0.0; 4096]),
        ],
        global: (4096, 1),
    };
    (f, w)
}

/// Times model-only sweeps (no System Run) at 1 and `available_parallelism`
/// threads over vadd and a few PolyBench kernels.
fn bench_sweeps() -> Vec<BenchRow> {
    let platform = Platform::virtex7_adm7v3();
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut thread_counts = vec![1usize];
    if avail > 1 {
        thread_counts.push(avail);
    }

    let mut targets: Vec<(String, flexcl_ir::Function, Workload)> = Vec::new();
    let (f, w) = vadd();
    targets.push(("vadd".to_string(), f, w));
    for spec in polybench().into_iter().take(3) {
        let func = compile(&spec);
        let workload = spec.workload(Scale::Test, 1234);
        targets.push((spec.full_name(), func, workload));
    }

    let mut rows = Vec::new();
    for (name, func, workload) in &targets {
        for &threads in &thread_counts {
            // Warm the process-wide caches once so both thread counts
            // measure the same steady state.
            let opts = DseOptions { threads, ..DseOptions::default() };
            let _ = explore_with(func, &platform, workload, opts);
            let start = Instant::now();
            let res = explore_with(func, &platform, workload, opts).expect("bench sweep");
            let secs = start.elapsed().as_secs_f64();
            if !res.diagnostics.is_clean() {
                eprintln!(
                    "  warning: {} skipped {} candidate(s): {}",
                    name,
                    res.diagnostics.skipped_count(),
                    res.diagnostics.failed[0].message
                );
            }
            rows.push(BenchRow {
                kernel: name.clone(),
                points: res.points.len(),
                threads,
                elapsed_ms: secs * 1e3,
                configs_per_sec: res.points.len() as f64 / secs.max(1e-9),
            });
        }
    }
    rows
}

/// Writes the throughput rows to `BENCH_dse.json` at the repo root.
fn write_bench_json(rows: &[BenchRow]) {
    let mut body = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "  {{\"kernel\": \"{}\", \"points\": {}, \"threads\": {}, \
             \"elapsed_ms\": {:.3}, \"configs_per_sec\": {:.1}}}{}\n",
            r.kernel,
            r.points,
            r.threads,
            r.elapsed_ms,
            r.configs_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    body.push_str("]\n");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_dse.json");
    std::fs::write(&path, body).expect("write BENCH_dse.json");
    println!("\nSweep throughput (model only):");
    for r in rows {
        println!(
            "  {:<26} {:>4} points  threads={}  {:>8.1} ms  {:>8.0} configs/s",
            r.kernel, r.points, r.threads, r.elapsed_ms, r.configs_per_sec
        );
    }
    println!("wrote {}", path.display());
}

fn main() {
    if std::env::args().any(|a| a == "--bench-only") {
        write_bench_json(&bench_sweeps());
        return;
    }
    let platform = Platform::virtex7_adm7v3();
    let mut rows = Vec::new();
    let mut flexcl_optimal = 0usize;
    let mut stepwise_optimal = 0usize;
    let mut total = 0usize;
    let mut gaps = Vec::new();
    let mut speedups = Vec::new();
    let mut speed_ratio = Vec::new();

    println!("Design-space exploration (PolyBench)");
    println!("{:-<100}", "");
    println!(
        "{:<26} {:>7} {:>9} {:>9} {:>9} {:>10} {:>12} {:>10}",
        "Kernel", "points", "gap", "speedup", "FlexCL t", "Synth est", "explore spd", "stepwise"
    );
    println!("{:-<100}", "");

    for spec in polybench() {
        let sweep = sweep_kernel(&spec, &platform, Scale::Test);
        if sweep.records.is_empty() {
            continue;
        }
        total += 1;

        // Ground-truth optimum and FlexCL's pick.
        let sim_best = sweep
            .records
            .iter()
            .min_by(|a, b| a.system_cycles.total_cmp(&b.system_cycles))
            .expect("non-empty");
        let flexcl_pick = sweep
            .records
            .iter()
            .min_by(|a, b| a.flexcl_cycles.total_cmp(&b.flexcl_cycles))
            .expect("non-empty");
        let gap =
            (flexcl_pick.system_cycles - sim_best.system_cycles) / sim_best.system_cycles;
        gaps.push(gap);
        // "Optimal" within the System Run's synthesis-variance noise floor
        // (per-op implementation factors move a measurement by a few
        // percent, so near-ties are genuine ties).
        if gap < 0.05 {
            flexcl_optimal += 1;
        }

        // Speedup of the best point over the unoptimized baseline.
        let baseline = sweep
            .records
            .iter()
            .filter(|r| {
                !r.config.work_item_pipeline
                    && r.config.num_pes == 1
                    && r.config.num_cus == 1
                    && r.config.vector_width == 1
            })
            .map(|r| r.system_cycles)
            .fold(0f64, f64::max);
        let speedup = baseline / sim_best.system_cycles;
        speedups.push(speedup);

        // Stepwise coarse-grained search (HPCA'16).
        let func = compile(&spec);
        let workload = spec.workload(Scale::Test, 1234);
        let limits = flexcl_core::limits_for(&func, &workload);
        let space = flexcl_core::enumerate(&limits);
        let analysis = KernelAnalysis::analyze(&func, &platform, &workload, (64, 1))
            .or_else(|_| KernelAnalysis::analyze(&func, &platform, &workload, (8, 8)))
            .expect("analysis");
        let stepwise_pick = flexcl_baselines::coarse::stepwise_search(&analysis, &space)
            .expect("stepwise");
        let stepwise_sim = sweep
            .records
            .iter()
            .find(|r| r.config == stepwise_pick)
            .map_or(f64::INFINITY, |r| r.system_cycles);
        let stepwise_gap = (stepwise_sim - sim_best.system_cycles) / sim_best.system_cycles;
        let stepwise_is_optimal = stepwise_gap < 0.05;
        if stepwise_is_optimal {
            stepwise_optimal += 1;
        }

        // Exploration speed: measured model time vs extrapolated synthesis.
        let synth_secs = sweep.records.len() as f64 * SYNTHESIS_HOURS_PER_DESIGN * 3600.0;
        let ratio = synth_secs / sweep.flexcl_time.as_secs_f64().max(1e-9);
        speed_ratio.push(ratio);

        println!(
            "{:<26} {:>7} {:>8.1}% {:>8.1}x {:>8.1}s {:>8.0} h {:>11.0}x {:>10}",
            sweep.name,
            sweep.records.len(),
            gap * 100.0,
            speedup,
            sweep.flexcl_time.as_secs_f64(),
            synth_secs / 3600.0,
            ratio,
            if stepwise_is_optimal { "optimal" } else { "local opt" },
        );
        rows.push(format!(
            "{},{},{:.4},{:.2},{:.3},{:.0},{:.0},{}",
            sweep.name,
            sweep.records.len(),
            gap,
            speedup,
            sweep.flexcl_time.as_secs_f64(),
            synth_secs,
            ratio,
            stepwise_is_optimal
        ));
    }

    println!("{:-<100}", "");
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "FlexCL pick within {:.1}% of optimum on average (paper: 2.1%); optimal picks: {}/{} = {:.0}% (paper: 96%)",
        avg(&gaps) * 100.0,
        flexcl_optimal,
        total,
        100.0 * flexcl_optimal as f64 / total.max(1) as f64
    );
    println!(
        "Stepwise [16] optimal picks: {}/{} = {:.0}% (paper: 12%)",
        stepwise_optimal,
        total,
        100.0 * stepwise_optimal as f64 / total.max(1) as f64
    );
    println!(
        "Best-vs-baseline speedup: {:.0}x average (paper: 273x at full workload scale)",
        avg(&speedups)
    );
    println!(
        "Exploration speedup over synthesis-based System Run: {:.0}x average (paper: >10,000x)",
        avg(&speed_ratio)
    );
    write_csv(
        "dse_polybench.csv",
        "kernel,points,gap_to_optimal,speedup_over_baseline,flexcl_seconds,\
         synthesis_seconds_extrapolated,exploration_speedup,stepwise_optimal",
        &rows,
    );
    write_bench_json(&bench_sweeps());
}
