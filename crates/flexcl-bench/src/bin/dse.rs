//! Experiment E5 — §4.3 design-space exploration.
//!
//! Reproduced claims, per PolyBench kernel:
//!
//! * **Speed**: FlexCL explores the full space in seconds; against
//!   synthesis-based System Run (0.7 h per design, as Table 2 implies) the
//!   speedup exceeds 10,000×.
//! * **Quality**: the configuration FlexCL ranks best performs within a
//!   few percent of the true (System-Run-measured) optimum — the paper
//!   reports 2.1% average — and the best configuration accelerates the
//!   unoptimized baseline by orders of magnitude (273× on the paper's
//!   workload sizes).
//! * **Comparison with \[16\]**: exhaustive search over the FlexCL model
//!   finds the optimum for most kernels, while the coarse-grained model
//!   with step-by-step search of HPCA'16 rarely does (96% vs 12%).
//!
//! Regenerate with `cargo run -p flexcl-bench --bin dse --release`.

use flexcl_bench::{compile, sweep_kernel, write_csv, SYNTHESIS_HOURS_PER_DESIGN};
use flexcl_core::{KernelAnalysis, Platform};
use flexcl_kernels::{polybench, Scale};

fn main() {
    let platform = Platform::virtex7_adm7v3();
    let mut rows = Vec::new();
    let mut flexcl_optimal = 0usize;
    let mut stepwise_optimal = 0usize;
    let mut total = 0usize;
    let mut gaps = Vec::new();
    let mut speedups = Vec::new();
    let mut speed_ratio = Vec::new();

    println!("Design-space exploration (PolyBench)");
    println!("{:-<100}", "");
    println!(
        "{:<26} {:>7} {:>9} {:>9} {:>9} {:>10} {:>12} {:>10}",
        "Kernel", "points", "gap", "speedup", "FlexCL t", "Synth est", "explore spd", "stepwise"
    );
    println!("{:-<100}", "");

    for spec in polybench() {
        let sweep = sweep_kernel(&spec, &platform, Scale::Test);
        if sweep.records.is_empty() {
            continue;
        }
        total += 1;

        // Ground-truth optimum and FlexCL's pick.
        let sim_best = sweep
            .records
            .iter()
            .min_by(|a, b| a.system_cycles.total_cmp(&b.system_cycles))
            .expect("non-empty");
        let flexcl_pick = sweep
            .records
            .iter()
            .min_by(|a, b| a.flexcl_cycles.total_cmp(&b.flexcl_cycles))
            .expect("non-empty");
        let gap =
            (flexcl_pick.system_cycles - sim_best.system_cycles) / sim_best.system_cycles;
        gaps.push(gap);
        // "Optimal" within the System Run's synthesis-variance noise floor
        // (per-op implementation factors move a measurement by a few
        // percent, so near-ties are genuine ties).
        if gap < 0.05 {
            flexcl_optimal += 1;
        }

        // Speedup of the best point over the unoptimized baseline.
        let baseline = sweep
            .records
            .iter()
            .filter(|r| {
                !r.config.work_item_pipeline
                    && r.config.num_pes == 1
                    && r.config.num_cus == 1
                    && r.config.vector_width == 1
            })
            .map(|r| r.system_cycles)
            .fold(0f64, f64::max);
        let speedup = baseline / sim_best.system_cycles;
        speedups.push(speedup);

        // Stepwise coarse-grained search (HPCA'16).
        let func = compile(&spec);
        let workload = spec.workload(Scale::Test, 1234);
        let limits = flexcl_core::limits_for(&func, &workload);
        let space = flexcl_core::enumerate(&limits);
        let analysis = KernelAnalysis::analyze(&func, &platform, &workload, (64, 1))
            .or_else(|_| KernelAnalysis::analyze(&func, &platform, &workload, (8, 8)))
            .expect("analysis");
        let stepwise_pick = flexcl_baselines::coarse::stepwise_search(&analysis, &space)
            .expect("stepwise");
        let stepwise_sim = sweep
            .records
            .iter()
            .find(|r| r.config == stepwise_pick)
            .map_or(f64::INFINITY, |r| r.system_cycles);
        let stepwise_gap = (stepwise_sim - sim_best.system_cycles) / sim_best.system_cycles;
        let stepwise_is_optimal = stepwise_gap < 0.05;
        if stepwise_is_optimal {
            stepwise_optimal += 1;
        }

        // Exploration speed: measured model time vs extrapolated synthesis.
        let synth_secs = sweep.records.len() as f64 * SYNTHESIS_HOURS_PER_DESIGN * 3600.0;
        let ratio = synth_secs / sweep.flexcl_time.as_secs_f64().max(1e-9);
        speed_ratio.push(ratio);

        println!(
            "{:<26} {:>7} {:>8.1}% {:>8.1}x {:>8.1}s {:>8.0} h {:>11.0}x {:>10}",
            sweep.name,
            sweep.records.len(),
            gap * 100.0,
            speedup,
            sweep.flexcl_time.as_secs_f64(),
            synth_secs / 3600.0,
            ratio,
            if stepwise_is_optimal { "optimal" } else { "local opt" },
        );
        rows.push(format!(
            "{},{},{:.4},{:.2},{:.3},{:.0},{:.0},{}",
            sweep.name,
            sweep.records.len(),
            gap,
            speedup,
            sweep.flexcl_time.as_secs_f64(),
            synth_secs,
            ratio,
            stepwise_is_optimal
        ));
    }

    println!("{:-<100}", "");
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "FlexCL pick within {:.1}% of optimum on average (paper: 2.1%); optimal picks: {}/{} = {:.0}% (paper: 96%)",
        avg(&gaps) * 100.0,
        flexcl_optimal,
        total,
        100.0 * flexcl_optimal as f64 / total.max(1) as f64
    );
    println!(
        "Stepwise [16] optimal picks: {}/{} = {:.0}% (paper: 12%)",
        stepwise_optimal,
        total,
        100.0 * stepwise_optimal as f64 / total.max(1) as f64
    );
    println!(
        "Best-vs-baseline speedup: {:.0}x average (paper: 273x at full workload scale)",
        avg(&speedups)
    );
    println!(
        "Exploration speedup over synthesis-based System Run: {:.0}x average (paper: >10,000x)",
        avg(&speed_ratio)
    );
    write_csv(
        "dse_polybench.csv",
        "kernel,points,gap_to_optimal,speedup_over_baseline,flexcl_seconds,\
         synthesis_seconds_extrapolated,exploration_speedup,stepwise_optimal",
        &rows,
    );
}
