//! Experiment E5 — §4.3 design-space exploration.
//!
//! Reproduced claims, per PolyBench kernel:
//!
//! * **Speed**: FlexCL explores the full space in seconds; against
//!   synthesis-based System Run (0.7 h per design, as Table 2 implies) the
//!   speedup exceeds 10,000×.
//! * **Quality**: the configuration FlexCL ranks best performs within a
//!   few percent of the true (System-Run-measured) optimum — the paper
//!   reports 2.1% average — and the best configuration accelerates the
//!   unoptimized baseline by orders of magnitude (273× on the paper's
//!   workload sizes).
//! * **Comparison with \[16\]**: exhaustive search over the FlexCL model
//!   finds the optimum for most kernels, while the coarse-grained model
//!   with step-by-step search of HPCA'16 rarely does (96% vs 12%).
//!
//! Regenerate with `cargo run -p flexcl-bench --bin dse --release`.
//!
//! In addition to the E5 tables, the binary measures the raw sweep-engine
//! throughput at 1/2/4/8 worker threads — with per-phase timings, the
//! work-stealing scheduler's chunk/steal counters and the hit rates of
//! the analysis and schedule caches — and writes it to the repo-root
//! `BENCH_dse.json`. Each row is the **median of N repetitions** after a
//! warm-up sweep: the per-sweep times are sub-millisecond at standard
//! scale, so single-shot timings are noise-dominated.
//!
//! Flags:
//!
//! * `--bench-only` — run just the throughput measurement.
//! * `--kernels SUBSTR` — restrict the measured kernels to names
//!   containing `SUBSTR` (e.g. `--kernels vadd` for a smoke run).
//! * `--grid NAME` — sweep the `standard`, `fine` (default) or `ultra`
//!   knob grid; `fine` gives the ≥10⁵-point sweeps the scaling numbers
//!   are quoted on.
//! * `--reps N` — repetitions per row (default 5); the row reports the
//!   median.
//! * `--out PATH` — write the JSON to `PATH` instead of the repo root.
//! * `--verbose` — print each measured sweep's internals (the
//!   [`flexcl_core::DseStats`] rendering) and diagnostics.
//! * `--trace-out PATH` (with `--trace-sample N`) — dump the span trace
//!   of the run as JSONL.
//! * `--check PATH` — validate an existing BENCH_dse.json (schema keys
//!   present, `configs_per_sec` finite and positive) and exit; used by
//!   `scripts/tier1.sh`. With `--require-scaling`, additionally require
//!   threads=8 throughput to beat threads=1 per kernel — skipped with a
//!   notice when the rows were measured on a single-core host.

use flexcl_bench::{compile, sweep_kernel, write_csv, SYNTHESIS_HOURS_PER_DESIGN};
use flexcl_core::{
    explore_space, DseOptions, KernelAnalysis, Platform, SweepGrid, Workload,
};
use flexcl_interp::KernelArg;
use flexcl_kernels::{polybench, Scale};
use std::time::Instant;

/// One BENCH_dse.json entry: a full model-only sweep of one kernel at one
/// thread count (median of `reps` runs), with phase timings, scheduler
/// counters and cache effectiveness.
struct BenchRow {
    kernel: String,
    points: usize,
    threads: usize,
    grid: String,
    reps: usize,
    chunk_size: usize,
    chunks: usize,
    steals: u64,
    repaired_chunks: usize,
    host_cores: usize,
    elapsed_ms: f64,
    configs_per_sec: f64,
    analysis_ms: f64,
    estimate_ms: f64,
    sched_ms: f64,
    analysis_cache_hit_rate: f64,
    sched_cache_hit_rate: f64,
}

/// CPU cores of the measuring host — the scaling gate only demands a
/// parallel speedup when the hardware can physically provide one.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The vadd fixture used by the unit tests (3 × 4096 floats, 1-D range).
fn vadd() -> (flexcl_ir::Function, Workload) {
    let p = flexcl_frontend::parse_and_check(
        "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
            int i = get_global_id(0);
            c[i] = a[i] + b[i];
        }",
    )
    .expect("vadd frontend");
    let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("vadd lowering");
    let w = Workload {
        args: vec![
            KernelArg::FloatBuf(vec![1.0; 4096]),
            KernelArg::FloatBuf(vec![2.0; 4096]),
            KernelArg::FloatBuf(vec![0.0; 4096]),
        ],
        global: (4096, 1),
    };
    (f, w)
}

/// Times model-only sweeps (no System Run) at 1, 2, 4 and 8 worker
/// threads over vadd and a few PolyBench kernels. `filter` restricts the
/// kernels to names containing the given substring; each row is the
/// median of `reps` timed sweeps after one warm-up.
fn bench_sweeps(filter: Option<&str>, grid_name: &str, reps: usize, verbose: bool) -> Vec<BenchRow> {
    let platform = Platform::virtex7_adm7v3();
    let grid = SweepGrid::by_name(grid_name)
        .unwrap_or_else(|| panic!("unknown grid {grid_name:?} (standard|fine|ultra)"));
    let thread_counts = [1usize, 2, 4, 8];
    let reps = reps.max(1);
    let cores = host_cores();

    let mut targets: Vec<(String, flexcl_ir::Function, Workload)> = Vec::new();
    let (f, w) = vadd();
    targets.push(("vadd".to_string(), f, w));
    for spec in polybench().into_iter().take(3) {
        let func = compile(&spec);
        let workload = spec.workload(Scale::Test, 1234);
        targets.push((spec.full_name(), func, workload));
    }
    if let Some(sub) = filter {
        targets.retain(|(name, _, _)| name.contains(sub));
    }

    let mut rows = Vec::new();
    for (name, func, workload) in &targets {
        // Warm the process-wide caches once so every repetition measures
        // the same steady state (the analysis cache fully hot).
        let _ = explore_space(func, &platform, workload, &grid, DseOptions::default());
        for &threads in &thread_counts {
            let opts = DseOptions { threads, ..DseOptions::default() };
            // Median of `reps` runs: sub-millisecond standard-grid sweeps
            // are noise-dominated single-shot.
            let mut runs = Vec::with_capacity(reps);
            for _ in 0..reps {
                let start = Instant::now();
                let res =
                    explore_space(func, &platform, workload, &grid, opts).expect("bench sweep");
                runs.push((start.elapsed().as_secs_f64(), res));
            }
            runs.sort_by(|(a, _), (b, _)| a.total_cmp(b));
            let (secs, res) = &runs[runs.len() / 2];
            if verbose {
                println!("{name} threads={threads} sweep internals:\n{}", res.stats);
                println!("  diagnostics      : {}", res.diagnostics);
            }
            if !res.diagnostics.is_clean() {
                eprintln!(
                    "  warning: {} skipped {} candidate(s) [{}]: {}",
                    name,
                    res.diagnostics.skipped_count(),
                    res.diagnostics.summary(),
                    res.diagnostics.failed[0].message
                );
            }
            rows.push(BenchRow {
                kernel: name.clone(),
                points: res.points.len(),
                threads,
                grid: grid_name.to_string(),
                reps,
                chunk_size: res.stats.chunk_size,
                chunks: res.stats.chunks_processed,
                steals: res.stats.steals,
                repaired_chunks: res.stats.repaired_chunks,
                host_cores: cores,
                elapsed_ms: secs * 1e3,
                configs_per_sec: res.points.len() as f64 / secs.max(1e-9),
                analysis_ms: res.stats.analysis_nanos as f64 / 1e6,
                estimate_ms: res.stats.estimate_nanos as f64 / 1e6,
                sched_ms: res.stats.sched_nanos as f64 / 1e6,
                analysis_cache_hit_rate: res.stats.analysis_cache_hit_rate(),
                sched_cache_hit_rate: res.stats.sched_cache_hit_rate(),
            });
        }
    }
    rows
}

/// Every key a BENCH_dse.json row must carry, in emission order.
const BENCH_KEYS: [&str; 17] = [
    "kernel",
    "points",
    "threads",
    "grid",
    "reps",
    "chunk_size",
    "chunks",
    "steals",
    "repaired_chunks",
    "host_cores",
    "elapsed_ms",
    "configs_per_sec",
    "analysis_ms",
    "estimate_ms",
    "sched_ms",
    "analysis_cache_hit_rate",
    "sched_cache_hit_rate",
];

/// Writes the throughput rows to `out` (default: repo-root
/// `BENCH_dse.json`).
fn write_bench_json(rows: &[BenchRow], out: Option<&str>) {
    let mut body = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "  {{\"kernel\": \"{}\", \"points\": {}, \"threads\": {}, \
             \"grid\": \"{}\", \"reps\": {}, \"chunk_size\": {}, \"chunks\": {}, \
             \"steals\": {}, \"repaired_chunks\": {}, \"host_cores\": {}, \
             \"elapsed_ms\": {:.3}, \"configs_per_sec\": {:.1}, \
             \"analysis_ms\": {:.3}, \"estimate_ms\": {:.3}, \"sched_ms\": {:.3}, \
             \"analysis_cache_hit_rate\": {:.3}, \"sched_cache_hit_rate\": {:.3}}}{}\n",
            r.kernel,
            r.points,
            r.threads,
            r.grid,
            r.reps,
            r.chunk_size,
            r.chunks,
            r.steals,
            r.repaired_chunks,
            r.host_cores,
            r.elapsed_ms,
            r.configs_per_sec,
            r.analysis_ms,
            r.estimate_ms,
            r.sched_ms,
            r.analysis_cache_hit_rate,
            r.sched_cache_hit_rate,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    body.push_str("]\n");
    let path = match out {
        Some(p) => std::path::PathBuf::from(p),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_dse.json"),
    };
    std::fs::write(&path, body).expect("write BENCH_dse.json");
    println!("\nSweep throughput (model only):");
    for r in rows {
        println!(
            "  {:<26} {:>4} points  threads={}  {:>8.2} ms  {:>9.0} configs/s  \
             sched-hits={:>5.1}%",
            r.kernel,
            r.points,
            r.threads,
            r.elapsed_ms,
            r.configs_per_sec,
            r.sched_cache_hit_rate * 100.0,
        );
    }
    println!("wrote {}", path.display());
}

/// Numeric value of `key` in a one-line JSON object, if present.
fn num_field(obj: &str, key: &str) -> Option<f64> {
    obj.split(&format!("\"{key}\":"))
        .nth(1)?
        .trim_start()
        .split(|c: char| c == ',' || c == '}')
        .next()?
        .trim()
        .parse::<f64>()
        .ok()
}

/// String value of `key` in a one-line JSON object, if present.
fn str_field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    obj.split(&format!("\"{key}\":")).nth(1)?.trim_start().strip_prefix('"')?.split('"').next()
}

/// Validates a BENCH_dse.json produced by [`write_bench_json`]: at least
/// one row, every schema key in every row, and a finite positive
/// `configs_per_sec`. With `require_scaling`, additionally demands that
/// per kernel the threads=8 throughput beats threads=1 — skipped with a
/// notice when the rows report a single-core measuring host, where a
/// parallel speedup is physically impossible. Exits non-zero with a
/// message on the first problem.
fn check_bench_json(path: &str, require_scaling: bool) {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("BENCH check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let fail = |msg: String| -> ! {
        eprintln!("BENCH check: {path}: {msg}");
        std::process::exit(1);
    };
    // The emitter writes one object per line; validate each line that
    // holds an object.
    let objects: Vec<&str> =
        body.lines().filter(|l| l.trim_start().starts_with('{')).collect();
    if objects.is_empty() {
        fail("no benchmark rows".to_string());
    }
    for (i, obj) in objects.iter().enumerate() {
        for key in BENCH_KEYS {
            if !obj.contains(&format!("\"{key}\":")) {
                fail(format!("row {i} is missing key \"{key}\""));
            }
        }
        let cps = num_field(obj, "configs_per_sec")
            .unwrap_or_else(|| fail(format!("row {i}: configs_per_sec is not a number")));
        if !cps.is_finite() || cps <= 0.0 {
            fail(format!("row {i}: configs_per_sec = {cps} (must be finite and positive)"));
        }
    }
    if require_scaling {
        // kernel → (threads=1 cps, threads=8 cps, host_cores).
        let mut per_kernel: Vec<(String, Option<f64>, Option<f64>, usize)> = Vec::new();
        for obj in &objects {
            let kernel = str_field(obj, "kernel").unwrap_or("?").to_string();
            let threads = num_field(obj, "threads").unwrap_or(0.0) as usize;
            let cps = num_field(obj, "configs_per_sec");
            let cores = num_field(obj, "host_cores").unwrap_or(1.0) as usize;
            let entry = match per_kernel.iter_mut().find(|(k, ..)| *k == kernel) {
                Some(e) => e,
                None => {
                    per_kernel.push((kernel, None, None, cores));
                    per_kernel.last_mut().expect("just pushed")
                }
            };
            match threads {
                1 => entry.1 = cps,
                8 => entry.2 = cps,
                _ => {}
            }
        }
        for (kernel, t1, t8, cores) in &per_kernel {
            let (Some(t1), Some(t8)) = (t1, t8) else {
                fail(format!("{kernel}: need threads=1 and threads=8 rows for the scaling gate"));
            };
            if *cores < 2 {
                println!(
                    "BENCH check: {kernel}: scaling gate skipped \
                     (rows measured on a {cores}-core host; t1={t1:.0}, t8={t8:.0} configs/s)"
                );
            } else if t8 <= t1 {
                fail(format!(
                    "{kernel}: threads=8 ({t8:.0} configs/s) does not beat \
                     threads=1 ({t1:.0} configs/s) on a {cores}-core host"
                ));
            } else {
                println!(
                    "BENCH check: {kernel}: scaling ok ({:.2}x at 8 threads)",
                    t8 / t1
                );
            }
        }
    }
    println!("BENCH check: {path}: {} rows ok", objects.len());
}

/// Value of a `--flag VALUE` pair in `args`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = flag_value(&args, "--check") {
        check_bench_json(path, args.iter().any(|a| a == "--require-scaling"));
        return;
    }
    let kernels = flag_value(&args, "--kernels");
    let out = flag_value(&args, "--out");
    let grid = flag_value(&args, "--grid").unwrap_or("fine");
    let reps = flag_value(&args, "--reps")
        .map(|r| r.parse::<usize>().expect("--reps takes a positive integer"))
        .unwrap_or(5);
    let verbose = args.iter().any(|a| a == "--verbose");
    let traced = match flag_value(&args, "--trace-out") {
        Some(path) => {
            let sample = flag_value(&args, "--trace-sample")
                .map(|n| n.parse::<u64>().expect("--trace-sample takes a positive integer"))
                .unwrap_or(1);
            let file = std::fs::File::create(path).expect("create --trace-out file");
            flexcl_obs::trace::install(Box::new(file), sample)
        }
        None => false,
    };
    if args.iter().any(|a| a == "--bench-only") {
        write_bench_json(&bench_sweeps(kernels, grid, reps, verbose), out);
        if traced {
            flexcl_obs::trace::shutdown();
        }
        return;
    }
    let platform = Platform::virtex7_adm7v3();
    let mut rows = Vec::new();
    let mut flexcl_optimal = 0usize;
    let mut stepwise_optimal = 0usize;
    let mut total = 0usize;
    let mut gaps = Vec::new();
    let mut speedups = Vec::new();
    let mut speed_ratio = Vec::new();

    println!("Design-space exploration (PolyBench)");
    println!("{:-<100}", "");
    println!(
        "{:<26} {:>7} {:>9} {:>9} {:>9} {:>10} {:>12} {:>10}",
        "Kernel", "points", "gap", "speedup", "FlexCL t", "Synth est", "explore spd", "stepwise"
    );
    println!("{:-<100}", "");

    for spec in polybench() {
        let sweep = sweep_kernel(&spec, &platform, Scale::Test);
        if sweep.records.is_empty() {
            continue;
        }
        total += 1;

        // Ground-truth optimum and FlexCL's pick.
        let sim_best = sweep
            .records
            .iter()
            .min_by(|a, b| a.system_cycles.total_cmp(&b.system_cycles))
            .expect("non-empty");
        let flexcl_pick = sweep
            .records
            .iter()
            .min_by(|a, b| a.flexcl_cycles.total_cmp(&b.flexcl_cycles))
            .expect("non-empty");
        let gap =
            (flexcl_pick.system_cycles - sim_best.system_cycles) / sim_best.system_cycles;
        gaps.push(gap);
        // "Optimal" within the System Run's synthesis-variance noise floor
        // (per-op implementation factors move a measurement by a few
        // percent, so near-ties are genuine ties).
        if gap < 0.05 {
            flexcl_optimal += 1;
        }

        // Speedup of the best point over the unoptimized baseline.
        let baseline = sweep
            .records
            .iter()
            .filter(|r| {
                !r.config.work_item_pipeline
                    && r.config.num_pes == 1
                    && r.config.num_cus == 1
                    && r.config.vector_width == 1
            })
            .map(|r| r.system_cycles)
            .fold(0f64, f64::max);
        let speedup = baseline / sim_best.system_cycles;
        speedups.push(speedup);

        // Stepwise coarse-grained search (HPCA'16).
        let func = compile(&spec);
        let workload = spec.workload(Scale::Test, 1234);
        let limits = flexcl_core::limits_for(&func, &workload);
        let space = flexcl_core::enumerate(&limits);
        let analysis = KernelAnalysis::analyze(&func, &platform, &workload, (64, 1))
            .or_else(|_| KernelAnalysis::analyze(&func, &platform, &workload, (8, 8)))
            .expect("analysis");
        let stepwise_pick = flexcl_baselines::coarse::stepwise_search(&analysis, &space)
            .expect("stepwise");
        let stepwise_sim = sweep
            .records
            .iter()
            .find(|r| r.config == stepwise_pick)
            .map_or(f64::INFINITY, |r| r.system_cycles);
        let stepwise_gap = (stepwise_sim - sim_best.system_cycles) / sim_best.system_cycles;
        let stepwise_is_optimal = stepwise_gap < 0.05;
        if stepwise_is_optimal {
            stepwise_optimal += 1;
        }

        // Exploration speed: measured model time vs extrapolated synthesis.
        let synth_secs = sweep.records.len() as f64 * SYNTHESIS_HOURS_PER_DESIGN * 3600.0;
        let ratio = synth_secs / sweep.flexcl_time.as_secs_f64().max(1e-9);
        speed_ratio.push(ratio);

        println!(
            "{:<26} {:>7} {:>8.1}% {:>8.1}x {:>8.1}s {:>8.0} h {:>11.0}x {:>10}",
            sweep.name,
            sweep.records.len(),
            gap * 100.0,
            speedup,
            sweep.flexcl_time.as_secs_f64(),
            synth_secs / 3600.0,
            ratio,
            if stepwise_is_optimal { "optimal" } else { "local opt" },
        );
        rows.push(format!(
            "{},{},{:.4},{:.2},{:.3},{:.0},{:.0},{}",
            sweep.name,
            sweep.records.len(),
            gap,
            speedup,
            sweep.flexcl_time.as_secs_f64(),
            synth_secs,
            ratio,
            stepwise_is_optimal
        ));
    }

    println!("{:-<100}", "");
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "FlexCL pick within {:.1}% of optimum on average (paper: 2.1%); optimal picks: {}/{} = {:.0}% (paper: 96%)",
        avg(&gaps) * 100.0,
        flexcl_optimal,
        total,
        100.0 * flexcl_optimal as f64 / total.max(1) as f64
    );
    println!(
        "Stepwise [16] optimal picks: {}/{} = {:.0}% (paper: 12%)",
        stepwise_optimal,
        total,
        100.0 * stepwise_optimal as f64 / total.max(1) as f64
    );
    println!(
        "Best-vs-baseline speedup: {:.0}x average (paper: 273x at full workload scale)",
        avg(&speedups)
    );
    println!(
        "Exploration speedup over synthesis-based System Run: {:.0}x average (paper: >10,000x)",
        avg(&speed_ratio)
    );
    write_csv(
        "dse_polybench.csv",
        "kernel,points,gap_to_optimal,speedup_over_baseline,flexcl_seconds,\
         synthesis_seconds_extrapolated,exploration_speedup,stepwise_optimal",
        &rows,
    );
    write_bench_json(&bench_sweeps(kernels, grid, reps, verbose), out);
    if traced {
        flexcl_obs::trace::shutdown();
    }
}
