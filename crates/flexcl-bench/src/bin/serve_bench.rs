//! `serve_bench` — load generator for the flexcl-serve estimation
//! server, emitting `BENCH_serve.json`.
//!
//! ```text
//! serve_bench [--steady-requests N] [--steady-clients N] [--overload-clients N]
//!             [--workers N] [--out PATH]
//! serve_bench --check PATH [--require-overload] [--min-rps X]
//! ```
//!
//! Two phases against an in-process server (the transport is exercised
//! by the tier-1 smoke; this measures the service core):
//!
//! * **steady** — a small kernel working set is warmed once, then
//!   clients replay it; traffic is cache-hit dominated, measuring the
//!   request path a warm production server actually runs. Reports
//!   client-observed p50/p99 latency and requests/s.
//! * **overload** — a deliberately tiny queue (`2×` more concurrent
//!   clients than capacity) of unique fine-grid sources, some with
//!   impossible deadlines. Proves the robustness counters move: shed,
//!   degraded and deadline rejections must all be nonzero while the
//!   server keeps answering.
//!
//! `--check` validates a previously written file: schema keys on every
//! row, finite positive throughput, and (with `--require-overload`) the
//! nonzero shed/degraded/deadline acceptance gate.

use flexcl_serve::server::ServerConfig;
use flexcl_serve::{CounterSnapshot, Server};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One kernel shape per distinct fingerprint in the steady working set.
fn steady_kernel(i: usize) -> String {
    format!(
        "__kernel void k{i}(__global float* a, __global float* b) {{ \
           int i = get_global_id(0); a[i] = a[i] * {}.0f + b[i]; }}",
        i + 1
    )
}

fn request(id: &str, src: &str, global: u64, extra: &str) -> String {
    let src_json = src.replace('\\', "\\\\").replace('"', "\\\"");
    format!(r#"{{"id":"{id}","src":"{src_json}","global":{global}{extra}}}"#)
}

struct PhaseRow {
    phase: &'static str,
    workers: usize,
    clients: usize,
    queue_cap: usize,
    requests: u64,
    counters: CounterSnapshot,
    p50_ms: f64,
    p99_ms: f64,
    requests_per_sec: f64,
    elapsed_ms: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Fires `total` requests from `clients` threads, each picking frames
/// round-robin from `frames`, and collects client-side latencies.
fn fire(
    server: &Arc<Server>,
    frames: &Arc<Vec<String>>,
    clients: usize,
    total: usize,
) -> (Vec<f64>, f64) {
    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let server = Arc::clone(server);
            let frames = Arc::clone(frames);
            let next = Arc::clone(&next);
            std::thread::spawn(move || {
                let mut lat = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        return lat;
                    }
                    let t = Instant::now();
                    let _ = server.handle_frame(&frames[i % frames.len()]);
                    lat.push(t.elapsed().as_secs_f64() * 1000.0);
                }
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(total);
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));
    (latencies, elapsed)
}

fn steady_phase(workers: usize, clients: usize, total: usize) -> PhaseRow {
    let queue_cap = 256;
    let (server, _) = Server::start(ServerConfig {
        workers,
        queue_cap,
        degrade_at: usize::MAX,
        default_deadline_ms: 60_000,
        ..ServerConfig::default()
    })
    .expect("start steady server");
    let server = Arc::new(server);

    // Warm the working set: 4 kernel shapes, computed once each. Note
    // the server runs cache-less here — the warm path being measured is
    // the *core analysis cache* plus the request pipeline, the same
    // shape a warm persistent cache serves.
    let frames: Vec<String> = (0..4)
        .map(|i| request(&format!("w{i}"), &steady_kernel(i), 1024, ""))
        .collect();
    for f in &frames {
        let resp = server.handle_frame(f);
        assert_eq!(resp.kind(), "ok", "warm-up failed: {}", resp.to_json());
    }
    let frames = Arc::new(frames);

    let (latencies, elapsed) = fire(&server, &frames, clients, total);
    let requests = latencies.len() as u64;
    let row = PhaseRow {
        phase: "steady",
        workers,
        clients,
        queue_cap,
        requests,
        counters: server.counters(),
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        requests_per_sec: requests as f64 / elapsed,
        elapsed_ms: elapsed * 1000.0,
    };
    Arc::into_inner(server).expect("sole handle").shutdown();
    row
}

fn overload_phase(workers: usize, clients: usize) -> PhaseRow {
    // 2× overload by construction: concurrent clients = 2 × queue_cap.
    let queue_cap = clients / 2;
    let (server, _) = Server::start(ServerConfig {
        workers,
        queue_cap,
        degrade_at: 1,
        default_deadline_ms: 30_000,
        ..ServerConfig::default()
    })
    .expect("start overload server");
    let server = Arc::new(server);

    // Unique fine-grid sources (no cache relief) plus a slice of
    // impossible deadlines: every robustness counter must move.
    let frames: Vec<String> = (0..clients * 4)
        .map(|i| {
            let src = format!(
                "__kernel void o{i}(__global float* a) {{ \
                   int i = get_global_id(0); a[i] = a[i] + {i}.0f; }}"
            );
            let extra = if i % 7 == 3 {
                r#","grid":"fine","deadline_ms":0"#
            } else {
                r#","grid":"fine""#
            };
            request(&format!("o{i}"), &src, 1024, extra)
        })
        .collect();
    let total = frames.len();
    let frames = Arc::new(frames);

    let (latencies, elapsed) = fire(&server, &frames, clients, total);
    // The storm's deadline-0 requests race admission control and may all
    // be shed; this post-storm probe lands in an empty queue, so it is
    // always admitted and always rejected at claim time — the
    // deadline_expired counter is deterministic, not a race artifact.
    let probe = request("probe", &steady_kernel(0), 1024, r#","deadline_ms":0"#);
    assert_eq!(server.handle_frame(&probe).kind(), "deadline");
    let row = PhaseRow {
        phase: "overload",
        workers,
        clients,
        queue_cap,
        requests: latencies.len() as u64,
        counters: server.counters(),
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        requests_per_sec: latencies.len() as f64 / elapsed,
        elapsed_ms: elapsed * 1000.0,
    };
    Arc::into_inner(server).expect("sole handle").shutdown();
    row
}

/// Every key a BENCH_serve.json row must carry.
const BENCH_KEYS: [&str; 18] = [
    "phase",
    "workers",
    "clients",
    "queue_cap",
    "requests",
    "completed",
    "shed",
    "degraded",
    "deadline_expired",
    "malformed",
    "failed",
    "cache_hits",
    "cache_misses",
    "p50_ms",
    "p99_ms",
    "requests_per_sec",
    "elapsed_ms",
    "host_cores",
];

fn write_bench_json(rows: &[PhaseRow], out: Option<&str>) {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut body = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let c = &r.counters;
        body.push_str(&format!(
            "  {{\"phase\": \"{}\", \"workers\": {}, \"clients\": {}, \"queue_cap\": {}, \
             \"requests\": {}, \"completed\": {}, \"shed\": {}, \"degraded\": {}, \
             \"deadline_expired\": {}, \"malformed\": {}, \"failed\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"requests_per_sec\": {:.1}, \"elapsed_ms\": {:.1}, \"host_cores\": {}}}{}\n",
            r.phase,
            r.workers,
            r.clients,
            r.queue_cap,
            r.requests,
            c.completed,
            c.shed,
            c.degraded,
            c.deadline_expired,
            c.malformed,
            c.failed,
            c.cache_hits,
            c.cache_misses,
            r.p50_ms,
            r.p99_ms,
            r.requests_per_sec,
            r.elapsed_ms,
            cores,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    body.push_str("]\n");
    let path = match out {
        Some(p) => std::path::PathBuf::from(p),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_serve.json"),
    };
    std::fs::write(&path, body).expect("write BENCH_serve.json");
    for r in rows {
        let c = &r.counters;
        println!(
            "  {:<9} {:>6} requests  {:>9.0} req/s  p50={:.2}ms p99={:.2}ms  \
             ok={} shed={} degraded={} deadline={}",
            r.phase,
            r.requests,
            r.requests_per_sec,
            r.p50_ms,
            r.p99_ms,
            c.completed,
            c.shed,
            c.degraded,
            c.deadline_expired,
        );
    }
    println!("wrote {}", path.display());
}

fn num_field(obj: &str, key: &str) -> Option<f64> {
    obj.split(&format!("\"{key}\":"))
        .nth(1)?
        .trim_start()
        .split(|c: char| c == ',' || c == '}')
        .next()?
        .trim()
        .parse::<f64>()
        .ok()
}

fn str_field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    obj.split(&format!("\"{key}\":")).nth(1)?.trim_start().strip_prefix('"')?.split('"').next()
}

/// Validates a BENCH_serve.json: schema keys on every row, finite
/// positive throughput, optional steady-phase rps floor, and (with
/// `require_overload`) an overload row with nonzero shed, degraded and
/// deadline counters. Exits non-zero on the first problem.
fn check_bench_json(path: &str, require_overload: bool, min_rps: Option<f64>) {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("BENCH check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let fail = |msg: String| -> ! {
        eprintln!("BENCH check: {path}: {msg}");
        std::process::exit(1);
    };
    let objects: Vec<&str> = body.lines().filter(|l| l.trim_start().starts_with('{')).collect();
    if objects.is_empty() {
        fail("no benchmark rows".to_string());
    }
    let mut saw_overload_gate = false;
    for (i, obj) in objects.iter().enumerate() {
        for key in BENCH_KEYS {
            if !obj.contains(&format!("\"{key}\":")) {
                fail(format!("row {i} is missing key \"{key}\""));
            }
        }
        let rps = num_field(obj, "requests_per_sec")
            .unwrap_or_else(|| fail(format!("row {i}: requests_per_sec is not a number")));
        if !rps.is_finite() || rps <= 0.0 {
            fail(format!("row {i}: requests_per_sec = {rps} (must be finite and positive)"));
        }
        let phase = str_field(obj, "phase").unwrap_or("?");
        if phase == "steady" {
            if let Some(floor) = min_rps {
                if rps < floor {
                    fail(format!("steady phase sustained {rps:.0} req/s < the {floor:.0} floor"));
                }
            }
        }
        if phase == "overload" {
            let shed = num_field(obj, "shed").unwrap_or(0.0);
            let degraded = num_field(obj, "degraded").unwrap_or(0.0);
            let deadline = num_field(obj, "deadline_expired").unwrap_or(0.0);
            let completed = num_field(obj, "completed").unwrap_or(0.0);
            if require_overload {
                if shed <= 0.0 || degraded <= 0.0 || deadline <= 0.0 {
                    fail(format!(
                        "overload row: shed={shed} degraded={degraded} \
                         deadline_expired={deadline} — all must be nonzero"
                    ));
                }
                if completed <= 0.0 {
                    fail("overload row: server completed nothing under pressure".to_string());
                }
                saw_overload_gate = true;
            }
        }
    }
    if require_overload && !saw_overload_gate {
        fail("no overload row to gate on".to_string());
    }
    println!("BENCH check: {path}: {} rows ok", objects.len());
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = flag_value(&args, "--check") {
        let min_rps = flag_value(&args, "--min-rps").map(|v| v.parse().expect("bad --min-rps"));
        check_bench_json(path, args.iter().any(|a| a == "--require-overload"), min_rps);
        return;
    }
    let parse = |flag: &str, default: usize| -> usize {
        flag_value(&args, flag).map_or(default, |v| v.parse().expect("bad flag value"))
    };
    let workers =
        parse("--workers", std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2));
    let steady_requests = parse("--steady-requests", 20_000);
    let steady_clients = parse("--steady-clients", 4);
    let overload_clients = parse("--overload-clients", 16);

    println!("steady phase: {steady_clients} clients, {steady_requests} requests…");
    let steady = steady_phase(workers, steady_clients, steady_requests);
    println!("overload phase: {overload_clients} clients on a {}-slot queue…", overload_clients / 2);
    let overload = overload_phase(workers, overload_clients);
    write_bench_json(&[steady, overload], flag_value(&args, "--out"));
}
