//! `serve_bench` — load generator for the flexcl-serve estimation
//! server, emitting `BENCH_serve.json`.
//!
//! ```text
//! serve_bench [--steady-requests N] [--steady-clients N] [--overload-clients N]
//!             [--workers N] [--no-backoff] [--out PATH]
//! serve_bench --check PATH [--require-overload] [--require-coalesce]
//!             [--require-warm-hits] [--min-rps X]
//! ```
//!
//! Four phases:
//!
//! * **steady** — a small kernel working set is warmed once into a
//!   persistent result cache, then clients replay it in-process;
//!   traffic is cache-hit dominated, measuring the request path a warm
//!   production server actually runs. The warm-up asserts the replay
//!   really hits the cache before anything is timed.
//! * **steady-tcp** (Linux) — the same working set driven over real TCP
//!   sockets through the epoll transport, so the framing and event-loop
//!   overhead is measured, not assumed.
//! * **coalesce** — concurrent clients replay one identical fine-grid
//!   frame against a cache-less server: all but the request leading
//!   each sweep must park on it and share the result (`coalesced > 0`).
//! * **overload** — a sustained storm (16 requests per client) of
//!   unique fine-grid sources against a deliberately tiny queue, some
//!   with impossible deadlines. Clients honor the server's
//!   `retry_after_ms` back-off hint (disable with `--no-backoff`).
//!   Shed and completed latencies are reported separately — a shed
//!   rejection returns in microseconds and saying "p50 0.002 ms" about
//!   a phase that mostly sheds would measure nothing.
//!
//! `--check` validates a previously written file: schema keys on every
//! row, finite positive throughput, optional steady rps floor, and the
//! nonzero overload / coalesce / warm-hit acceptance gates.

use flexcl_serve::server::ServerConfig;
use flexcl_serve::{CounterSnapshot, Server};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One kernel shape per distinct fingerprint in the steady working set.
fn steady_kernel(i: usize) -> String {
    format!(
        "__kernel void k{i}(__global float* a, __global float* b) {{ \
           int i = get_global_id(0); a[i] = a[i] * {}.0f + b[i]; }}",
        i + 1
    )
}

fn request(id: &str, src: &str, global: u64, extra: &str) -> String {
    let src_json = src.replace('\\', "\\\\").replace('"', "\\\"");
    format!(r#"{{"id":"{id}","src":"{src_json}","global":{global}{extra}}}"#)
}

struct PhaseRow {
    phase: &'static str,
    transport: &'static str,
    workers: usize,
    clients: usize,
    queue_cap: usize,
    requests: u64,
    counters: CounterSnapshot,
    backoff: bool,
    p50_ms: f64,
    p99_ms: f64,
    completed_p50_ms: f64,
    completed_p99_ms: f64,
    shed_p50_ms: f64,
    shed_p99_ms: f64,
    requests_per_sec: f64,
    elapsed_ms: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Client-observed latencies, split by outcome.
#[derive(Default)]
struct Latencies {
    all: Vec<f64>,
    completed: Vec<f64>,
    shed: Vec<f64>,
}

impl Latencies {
    fn absorb(&mut self, mut other: Latencies) {
        self.all.append(&mut other.all);
        self.completed.append(&mut other.completed);
        self.shed.append(&mut other.shed);
    }

    fn sort(&mut self) {
        self.all.sort_by(|a, b| a.total_cmp(b));
        self.completed.sort_by(|a, b| a.total_cmp(b));
        self.shed.sort_by(|a, b| a.total_cmp(b));
    }
}

/// Back-off cap: the server's hint is an EWMA of full service time,
/// which against fine-grid storms would idle clients for longer than
/// the bench runs. Sleeping a bounded slice still yields the queue.
const BACKOFF_CAP_MS: u64 = 5;

fn record(lat: &mut Latencies, kind: &str, ms: f64, retry_hint: Option<u64>, backoff: bool) {
    lat.all.push(ms);
    match kind {
        "ok" => lat.completed.push(ms),
        "overloaded" => {
            lat.shed.push(ms);
            if backoff {
                let hint = retry_hint.unwrap_or(1).clamp(1, BACKOFF_CAP_MS);
                std::thread::sleep(Duration::from_millis(hint));
            }
        }
        _ => {}
    }
}

/// Fires `total` requests from `clients` threads, each picking frames
/// round-robin from `frames`, against the in-process service core.
fn fire(
    server: &Arc<Server>,
    frames: &Arc<Vec<String>>,
    clients: usize,
    total: usize,
    backoff: bool,
) -> (Latencies, f64) {
    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let server = Arc::clone(server);
            let frames = Arc::clone(frames);
            let next = Arc::clone(&next);
            std::thread::spawn(move || {
                let mut lat = Latencies::default();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        return lat;
                    }
                    let t = Instant::now();
                    let resp = server.handle_frame(&frames[i % frames.len()]);
                    let ms = t.elapsed().as_secs_f64() * 1000.0;
                    record(&mut lat, resp.kind(), ms, resp.retry_after_ms(), backoff);
                }
            })
        })
        .collect();
    let mut latencies = Latencies::default();
    for h in handles {
        latencies.absorb(h.join().expect("client thread"));
    }
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort();
    (latencies, elapsed)
}

/// Fires `total` requests over real TCP connections to `addr`, one
/// socket per client, length-prefixed frames both ways.
#[cfg(target_os = "linux")]
fn fire_tcp(
    addr: std::net::SocketAddrV4,
    frames: &Arc<Vec<String>>,
    clients: usize,
    total: usize,
) -> (Latencies, f64) {
    use flexcl_serve::protocol::{read_frame, write_frame};
    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let frames = Arc::clone(frames);
            let next = Arc::clone(&next);
            std::thread::spawn(move || {
                let mut stream = std::net::TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                let mut lat = Latencies::default();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        return lat;
                    }
                    let t = Instant::now();
                    write_frame(&mut stream, &frames[i % frames.len()]).expect("write");
                    let reply = read_frame(&mut stream).expect("read").expect("frame");
                    let ms = t.elapsed().as_secs_f64() * 1000.0;
                    let kind =
                        if reply.contains("\"status\":\"ok\"") { "ok" } else { "error" };
                    record(&mut lat, kind, ms, None, false);
                }
            })
        })
        .collect();
    let mut latencies = Latencies::default();
    for h in handles {
        latencies.absorb(h.join().expect("client thread"));
    }
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort();
    (latencies, elapsed)
}

fn row(
    phase: &'static str,
    transport: &'static str,
    workers: usize,
    clients: usize,
    queue_cap: usize,
    counters: CounterSnapshot,
    backoff: bool,
    lat: &Latencies,
    elapsed: f64,
) -> PhaseRow {
    PhaseRow {
        phase,
        transport,
        workers,
        clients,
        queue_cap,
        requests: lat.all.len() as u64,
        counters,
        backoff,
        p50_ms: percentile(&lat.all, 0.50),
        p99_ms: percentile(&lat.all, 0.99),
        completed_p50_ms: percentile(&lat.completed, 0.50),
        completed_p99_ms: percentile(&lat.completed, 0.99),
        shed_p50_ms: percentile(&lat.shed, 0.50),
        shed_p99_ms: percentile(&lat.shed, 0.99),
        requests_per_sec: lat.all.len() as f64 / elapsed,
        elapsed_ms: elapsed * 1000.0,
    }
}

/// A scratch directory for the steady phase's persistent cache,
/// removed on drop.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        let path =
            std::env::temp_dir().join(format!("serve_bench-{tag}-{}-{nanos}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create cache scratch dir");
        ScratchDir(path)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn steady_config(workers: usize, cache_dir: Option<std::path::PathBuf>) -> ServerConfig {
    ServerConfig {
        workers,
        queue_cap: 256,
        degrade_at: usize::MAX,
        default_deadline_ms: 60_000,
        cache_dir,
        ..ServerConfig::default()
    }
}

/// Warms the working set and proves the replay path hits the cache:
/// every shape computed once (miss), then one replay that must come
/// back `"cache":"hit"` — the anomaly this guards against is a steady
/// phase silently measuring cache-less traffic.
fn warm(server: &Server, frames: &[String]) {
    for f in frames {
        let resp = server.handle_frame(f);
        assert_eq!(resp.kind(), "ok", "warm-up failed: {}", resp.to_json());
    }
    let probe = server.handle_frame(&frames[0]);
    assert_eq!(probe.kind(), "ok", "warm probe failed: {}", probe.to_json());
    assert!(
        probe.to_json().contains("\"cache\":\"hit\""),
        "warm replay did not hit the persistent cache: {}",
        probe.to_json()
    );
    assert!(server.counters().cache_hits > 0, "warm-up recorded no cache hits");
}

fn steady_frames() -> Vec<String> {
    (0..4).map(|i| request(&format!("w{i}"), &steady_kernel(i), 1024, "")).collect()
}

fn steady_phase(workers: usize, clients: usize, total: usize) -> PhaseRow {
    let scratch = ScratchDir::new("steady");
    let (server, _) =
        Server::start(steady_config(workers, Some(scratch.0.clone()))).expect("start steady");
    let server = Arc::new(server);
    let frames = steady_frames();
    warm(&server, &frames);
    let frames = Arc::new(frames);

    let (lat, elapsed) = fire(&server, &frames, clients, total, false);
    let counters = server.counters();
    // Every steady request is served without a fresh sweep: from the
    // warm persistent cache, or coalesced onto a twin already fetching.
    assert!(
        (counters.cache_hits + counters.coalesced) as usize >= total,
        "steady traffic must be cache-hit dominated (hits={} coalesced={} total={total})",
        counters.cache_hits,
        counters.coalesced,
    );
    let r = row("steady", "in-process", workers, clients, 256, counters, false, &lat, elapsed);
    Arc::into_inner(server).expect("sole handle").shutdown();
    r
}

#[cfg(target_os = "linux")]
fn steady_tcp_phase(workers: usize, clients: usize, total: usize) -> PhaseRow {
    use flexcl_serve::net::epoll::{EpollOptions, EpollTransport};
    let scratch = ScratchDir::new("steady-tcp");
    let (server, _) =
        Server::start(steady_config(workers, Some(scratch.0.clone()))).expect("start steady-tcp");
    let server = Arc::new(server);
    let frames = steady_frames();
    warm(&server, &frames);
    let frames = Arc::new(frames);

    let transport = EpollTransport::bind(
        Arc::clone(&server),
        "127.0.0.1:0",
        EpollOptions { listeners: 2, ..EpollOptions::default() },
    )
    .expect("bind epoll");
    let (lat, elapsed) = fire_tcp(transport.local_addr(), &frames, clients, total);
    let counters = server.counters();
    let r = row("steady-tcp", "epoll", workers, clients, 256, counters, false, &lat, elapsed);
    transport.shutdown().expect("transport shutdown");
    Arc::into_inner(server).expect("sole handle").shutdown();
    r
}

/// Identical fine-grid frames from concurrent clients against a
/// cache-less server: every request that arrives while a twin's sweep
/// is queued or executing parks on it, so one sweep fans out to many.
fn coalesce_phase(workers: usize, clients: usize) -> PhaseRow {
    let queue_cap = 256;
    let (server, _) = Server::start(ServerConfig {
        workers,
        queue_cap,
        degrade_at: usize::MAX,
        default_deadline_ms: 60_000,
        ..ServerConfig::default()
    })
    .expect("start coalesce");
    let server = Arc::new(server);

    let frames = Arc::new(vec![request(
        "dup",
        "__kernel void hot(__global float* a, __global float* b) { \
           int i = get_global_id(0); b[i] = a[i] * a[i] + b[i]; }",
        4096,
        r#","grid":"fine""#,
    )]);
    let total = clients * 8;
    let (lat, elapsed) = fire(&server, &frames, clients, total, false);
    let counters = server.counters();
    assert!(
        counters.coalesced > 0,
        "identical concurrent requests coalesced zero times in {total} attempts"
    );
    let r = row("coalesce", "in-process", workers, clients, queue_cap, counters, false, &lat, elapsed);
    Arc::into_inner(server).expect("sole handle").shutdown();
    r
}

fn overload_phase(workers: usize, clients: usize, backoff: bool) -> PhaseRow {
    // 2× overload by construction: concurrent clients = 2 × queue_cap,
    // sustained for 16 requests per client so shedding and degradation
    // are a steady regime, not a transient spike.
    let queue_cap = clients / 2;
    let (server, _) = Server::start(ServerConfig {
        workers,
        queue_cap,
        degrade_at: 1,
        default_deadline_ms: 30_000,
        ..ServerConfig::default()
    })
    .expect("start overload server");
    let server = Arc::new(server);

    // Unique fine-grid sources (no cache or coalescing relief) plus a
    // slice of impossible deadlines: every robustness counter must move.
    let frames: Vec<String> = (0..clients * 16)
        .map(|i| {
            let src = format!(
                "__kernel void o{i}(__global float* a) {{ \
                   int i = get_global_id(0); a[i] = a[i] + {i}.0f; }}"
            );
            let extra = if i % 7 == 3 {
                r#","grid":"fine","deadline_ms":0"#
            } else {
                r#","grid":"fine""#
            };
            request(&format!("o{i}"), &src, 1024, extra)
        })
        .collect();
    let total = frames.len();
    let frames = Arc::new(frames);

    let (lat, elapsed) = fire(&server, &frames, clients, total, backoff);
    // The storm's deadline-0 requests race admission control and may all
    // be shed; this post-storm probe lands in an empty queue, so it is
    // always admitted and always rejected at claim time — the
    // deadline_expired counter is deterministic, not a race artifact.
    let probe = request("probe", &steady_kernel(0), 1024, r#","deadline_ms":0"#);
    assert_eq!(server.handle_frame(&probe).kind(), "deadline");
    let r = row(
        "overload",
        "in-process",
        workers,
        clients,
        queue_cap,
        server.counters(),
        backoff,
        &lat,
        elapsed,
    );
    Arc::into_inner(server).expect("sole handle").shutdown();
    r
}

/// Every key a BENCH_serve.json row must carry.
const BENCH_KEYS: [&str; 26] = [
    "phase",
    "transport",
    "workers",
    "clients",
    "queue_cap",
    "requests",
    "completed",
    "shed",
    "degraded",
    "deadline_expired",
    "malformed",
    "failed",
    "cache_hits",
    "cache_misses",
    "coalesced",
    "backoff",
    "p50_ms",
    "p99_ms",
    "completed_p50_ms",
    "completed_p99_ms",
    "shed_p50_ms",
    "shed_p99_ms",
    "requests_per_sec",
    "elapsed_ms",
    "host_cores",
    "listeners",
];

fn write_bench_json(rows: &[PhaseRow], out: Option<&str>) {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut body = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let c = &r.counters;
        let listeners = if r.transport == "epoll" { 2 } else { 0 };
        body.push_str(&format!(
            "  {{\"phase\": \"{}\", \"transport\": \"{}\", \"workers\": {}, \"clients\": {}, \
             \"queue_cap\": {}, \"requests\": {}, \"completed\": {}, \"shed\": {}, \
             \"degraded\": {}, \"deadline_expired\": {}, \"malformed\": {}, \"failed\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"coalesced\": {}, \"backoff\": {}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"completed_p50_ms\": {:.3}, \
             \"completed_p99_ms\": {:.3}, \"shed_p50_ms\": {:.4}, \"shed_p99_ms\": {:.4}, \
             \"requests_per_sec\": {:.1}, \"elapsed_ms\": {:.1}, \"host_cores\": {}, \
             \"listeners\": {}}}{}\n",
            r.phase,
            r.transport,
            r.workers,
            r.clients,
            r.queue_cap,
            r.requests,
            c.completed,
            c.shed,
            c.degraded,
            c.deadline_expired,
            c.malformed,
            c.failed,
            c.cache_hits,
            c.cache_misses,
            c.coalesced,
            r.backoff,
            r.p50_ms,
            r.p99_ms,
            r.completed_p50_ms,
            r.completed_p99_ms,
            r.shed_p50_ms,
            r.shed_p99_ms,
            r.requests_per_sec,
            r.elapsed_ms,
            cores,
            listeners,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    body.push_str("]\n");
    let path = match out {
        Some(p) => std::path::PathBuf::from(p),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_serve.json"),
    };
    std::fs::write(&path, body).expect("write BENCH_serve.json");
    for r in rows {
        let c = &r.counters;
        println!(
            "  {:<10} {:<10} {:>6} requests  {:>9.0} req/s  p50={:.2}ms p99={:.2}ms  \
             ok={} shed={} degraded={} deadline={} cache_hits={} coalesced={}",
            r.phase,
            r.transport,
            r.requests,
            r.requests_per_sec,
            r.p50_ms,
            r.p99_ms,
            c.completed,
            c.shed,
            c.degraded,
            c.deadline_expired,
            c.cache_hits,
            c.coalesced,
        );
    }
    println!("wrote {}", path.display());
}

fn num_field(obj: &str, key: &str) -> Option<f64> {
    obj.split(&format!("\"{key}\":"))
        .nth(1)?
        .trim_start()
        .split(|c: char| c == ',' || c == '}')
        .next()?
        .trim()
        .parse::<f64>()
        .ok()
}

fn str_field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    obj.split(&format!("\"{key}\":")).nth(1)?.trim_start().strip_prefix('"')?.split('"').next()
}

/// Validates a BENCH_serve.json: schema keys on every row, finite
/// positive throughput, optional steady-phase rps floor, and the
/// overload / coalesce / warm-hit acceptance gates. Exits non-zero on
/// the first problem.
fn check_bench_json(
    path: &str,
    require_overload: bool,
    require_coalesce: bool,
    require_warm_hits: bool,
    min_rps: Option<f64>,
) {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("BENCH check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let fail = |msg: String| -> ! {
        eprintln!("BENCH check: {path}: {msg}");
        std::process::exit(1);
    };
    let objects: Vec<&str> = body.lines().filter(|l| l.trim_start().starts_with('{')).collect();
    if objects.is_empty() {
        fail("no benchmark rows".to_string());
    }
    let mut saw_overload_gate = false;
    let mut saw_coalesce_gate = false;
    let mut saw_warm_gate = false;
    for (i, obj) in objects.iter().enumerate() {
        for key in BENCH_KEYS {
            if !obj.contains(&format!("\"{key}\":")) {
                fail(format!("row {i} is missing key \"{key}\""));
            }
        }
        let rps = num_field(obj, "requests_per_sec")
            .unwrap_or_else(|| fail(format!("row {i}: requests_per_sec is not a number")));
        if !rps.is_finite() || rps <= 0.0 {
            fail(format!("row {i}: requests_per_sec = {rps} (must be finite and positive)"));
        }
        let phase = str_field(obj, "phase").unwrap_or("?");
        if phase == "steady" {
            if let Some(floor) = min_rps {
                if rps < floor {
                    fail(format!("steady phase sustained {rps:.0} req/s < the {floor:.0} floor"));
                }
            }
            if require_warm_hits {
                let hits = num_field(obj, "cache_hits").unwrap_or(0.0);
                if hits <= 0.0 {
                    fail("steady row: cache_hits = 0 — the warm cache is not being hit"
                        .to_string());
                }
                saw_warm_gate = true;
            }
        }
        if phase == "coalesce" && require_coalesce {
            let coalesced = num_field(obj, "coalesced").unwrap_or(0.0);
            if coalesced <= 0.0 {
                fail("coalesce row: coalesced = 0 — identical in-flight requests did not share"
                    .to_string());
            }
            saw_coalesce_gate = true;
        }
        if phase == "overload" && require_overload {
            let shed = num_field(obj, "shed").unwrap_or(0.0);
            let degraded = num_field(obj, "degraded").unwrap_or(0.0);
            let deadline = num_field(obj, "deadline_expired").unwrap_or(0.0);
            let completed = num_field(obj, "completed").unwrap_or(0.0);
            if shed <= 0.0 || degraded <= 0.0 || deadline <= 0.0 {
                fail(format!(
                    "overload row: shed={shed} degraded={degraded} \
                     deadline_expired={deadline} — all must be nonzero"
                ));
            }
            if completed <= 0.0 {
                fail("overload row: server completed nothing under pressure".to_string());
            }
            saw_overload_gate = true;
        }
    }
    if require_overload && !saw_overload_gate {
        fail("no overload row to gate on".to_string());
    }
    if require_coalesce && !saw_coalesce_gate {
        fail("no coalesce row to gate on".to_string());
    }
    if require_warm_hits && !saw_warm_gate {
        fail("no steady row to gate warm hits on".to_string());
    }
    println!("BENCH check: {path}: {} rows ok", objects.len());
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = flag_value(&args, "--check") {
        let min_rps = flag_value(&args, "--min-rps").map(|v| v.parse().expect("bad --min-rps"));
        check_bench_json(
            path,
            args.iter().any(|a| a == "--require-overload"),
            args.iter().any(|a| a == "--require-coalesce"),
            args.iter().any(|a| a == "--require-warm-hits"),
            min_rps,
        );
        return;
    }
    let parse = |flag: &str, default: usize| -> usize {
        flag_value(&args, flag).map_or(default, |v| v.parse().expect("bad flag value"))
    };
    let workers =
        parse("--workers", std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2));
    let steady_requests = parse("--steady-requests", 20_000);
    let steady_clients = parse("--steady-clients", 4);
    let overload_clients = parse("--overload-clients", 16);
    let backoff = !args.iter().any(|a| a == "--no-backoff");

    let mut rows = Vec::new();
    println!("steady phase: {steady_clients} clients, {steady_requests} requests…");
    rows.push(steady_phase(workers, steady_clients, steady_requests));
    #[cfg(target_os = "linux")]
    {
        let tcp_requests = (steady_requests / 4).max(1);
        println!("steady-tcp phase: {steady_clients} clients, {tcp_requests} requests over epoll…");
        rows.push(steady_tcp_phase(workers, steady_clients, tcp_requests));
    }
    println!("coalesce phase: 8 clients replaying one fine-grid frame…");
    rows.push(coalesce_phase(workers.min(2), 8));
    println!(
        "overload phase: {overload_clients} clients on a {}-slot queue (backoff={backoff})…",
        overload_clients / 2
    );
    rows.push(overload_phase(workers, overload_clients, backoff));
    write_bench_json(&rows, flag_value(&args, "--out"));
}
