//! Experiment E3 — Figure 4: per-design-point estimated (FlexCL) vs actual
//! (System Run) performance for `hotspot3D` and `nn`.
//!
//! The paper's figure plots both series over the optimization
//! configuration id; the claim is that FlexCL tracks the actual
//! performance point-by-point, not just on average. This binary writes one
//! CSV per kernel and prints a compact summary (per-point error quantiles
//! and a coarse ASCII rendering).
//!
//! Regenerate with `cargo run -p flexcl-bench --bin figure4 --release`.

use flexcl_bench::{find_spec, sweep_kernel, write_csv};
use flexcl_core::Platform;
use flexcl_kernels::Scale;

fn main() {
    let platform = Platform::virtex7_adm7v3();
    for name in ["hotspot3D/hotspot3D", "nn/nn"] {
        let spec = find_spec(name);
        let sweep = sweep_kernel(&spec, &platform, Scale::Test);
        let short = name.split('/').next().expect("name");

        let mut rows = Vec::new();
        let mut errs: Vec<f64> = Vec::new();
        for (id, r) in sweep.records.iter().enumerate() {
            rows.push(format!(
                "{},{},{:.0},{:.0},{:.4}",
                id,
                r.config,
                r.system_cycles,
                r.flexcl_cycles,
                r.flexcl_err()
            ));
            errs.push(r.flexcl_err());
        }
        errs.sort_by(f64::total_cmp);
        let pct = |q: f64| errs[((errs.len() - 1) as f64 * q) as usize] * 100.0;

        println!("Figure 4 — {short}: {} design points", sweep.records.len());
        println!(
            "  per-point |error|: median {:.1}%  p90 {:.1}%  max {:.1}%  (mean {:.1}%)",
            pct(0.5),
            pct(0.9),
            pct(1.0),
            sweep.flexcl_error_pct()
        );
        ascii_plot(&sweep.records);
        write_csv(
            &format!("figure4_{short}.csv"),
            "config_id,config,actual_cycles,flexcl_cycles,rel_err",
            &rows,
        );
    }
}

/// Coarse terminal rendering: actual (`*`) and FlexCL (`o`) per config, log
/// scale, one column per bucket of configs.
fn ascii_plot(records: &[flexcl_bench::ConfigRecord]) {
    const WIDTH: usize = 72;
    const HEIGHT: usize = 12;
    if records.is_empty() {
        return;
    }
    let max = records
        .iter()
        .map(|r| r.system_cycles.max(r.flexcl_cycles))
        .fold(0f64, f64::max)
        .ln();
    let min = records
        .iter()
        .map(|r| r.system_cycles.min(r.flexcl_cycles))
        .fold(f64::INFINITY, f64::min)
        .ln();
    let span = (max - min).max(1e-9);
    let mut grid = vec![vec![b' '; WIDTH]; HEIGHT];
    for (i, r) in records.iter().enumerate() {
        let col = i * WIDTH / records.len();
        let row_a = ((max - r.system_cycles.ln()) / span * (HEIGHT - 1) as f64) as usize;
        let row_f = ((max - r.flexcl_cycles.ln()) / span * (HEIGHT - 1) as f64) as usize;
        grid[row_a.min(HEIGHT - 1)][col] = b'*';
        let rf = row_f.min(HEIGHT - 1);
        grid[rf][col] = if grid[rf][col] == b'*' { b'@' } else { b'o' };
    }
    println!("  cycles (log)   *=actual  o=FlexCL  @=overlap");
    for row in grid {
        println!("  |{}", String::from_utf8_lossy(&row));
    }
    println!("  +{}", "-".repeat(WIDTH));
    println!("   configuration id ->");
}
