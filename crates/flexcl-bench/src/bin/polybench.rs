//! Experiment E2 — §4.2 PolyBench accuracy: average absolute estimation
//! error of FlexCL over the PolyBench suite (paper: 8.7%).
//!
//! Regenerate with `cargo run -p flexcl-bench --bin polybench --release`.

use flexcl_bench::{sweep_kernel, write_csv};
use flexcl_core::Platform;
use flexcl_kernels::{polybench, Scale};

fn main() {
    let platform = Platform::virtex7_adm7v3();

    println!("PolyBench accuracy (vs System Run)");
    println!("{:-<58}", "");
    println!("{:<28} {:>8} {:>10} {:>8}", "Kernel", "#Designs", "FlexCL err", "points");
    println!("{:-<58}", "");

    let mut rows = Vec::new();
    let mut errors = Vec::new();
    for spec in polybench() {
        let sweep = sweep_kernel(&spec, &platform, Scale::Test);
        println!(
            "{:<28} {:>8} {:>9.1}% {:>8}",
            sweep.name,
            sweep.designs,
            sweep.flexcl_error_pct(),
            sweep.records.len()
        );
        errors.push(sweep.flexcl_error_pct());
        rows.push(format!(
            "{},{},{:.2},{}",
            sweep.name,
            sweep.designs,
            sweep.flexcl_error_pct(),
            sweep.records.len()
        ));
    }
    println!("{:-<58}", "");
    let avg = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
    println!("AVERAGE FlexCL error: {avg:.1}% (paper: 8.7%)");
    write_csv("polybench.csv", "kernel,designs,flexcl_err_pct,points", &rows);
}
