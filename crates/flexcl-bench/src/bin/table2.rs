//! Experiment E1 — Table 2: performance-estimation results for all 45
//! Rodinia kernels.
//!
//! For every kernel the full optimization design space is swept; each
//! feasible point is measured with the System Run simulator (ground
//! truth) and estimated by the SDAccel-style baseline and by FlexCL. The
//! table reports, per kernel: the number of designs, the average absolute
//! estimation errors, and the design-space exploration times of the three
//! approaches (System Run extrapolated to synthesis hours, as in the
//! paper; measured simulator time is written to the CSV).
//!
//! Regenerate with `cargo run -p flexcl-bench --bin table2 --release`
//! (append a kernel name, e.g. `nn/nn`, to sweep a single kernel).

use flexcl_bench::{fmt_dur, sweep_kernel, write_csv, SYNTHESIS_HOURS_PER_DESIGN};
use flexcl_core::Platform;
use flexcl_kernels::{rodinia, Scale};
use std::time::Instant;

fn main() {
    let filter: Option<String> = std::env::args().nth(1);
    let platform = Platform::virtex7_adm7v3();
    let t0 = Instant::now();

    println!("Table 2: Performance Estimation Results of Rodinia");
    println!("{:-<104}", "");
    println!(
        "{:<24} {:>8} {:>12} {:>12} {:>7} | {:>14} {:>10} {:>10}",
        "Kernel", "#Designs", "SDAccel err", "FlexCL err", "SDfail",
        "SystemRun(est)", "SDAccel t", "FlexCL t"
    );
    println!("{:-<104}", "");

    let mut rows = Vec::new();
    let mut all_flexcl = Vec::new();
    let mut all_sdaccel = Vec::new();
    let mut total_fail = (0usize, 0usize);

    for spec in rodinia() {
        if let Some(f) = &filter {
            if spec.full_name() != *f {
                continue;
            }
        }
        let sweep = sweep_kernel(&spec, &platform, Scale::Test);
        let synth_hours = sweep.records.len() as f64 * SYNTHESIS_HOURS_PER_DESIGN;
        println!(
            "{:<24} {:>8} {:>11.1}% {:>11.1}% {:>6.0}% | {:>11.0} hrs {:>10} {:>10}",
            sweep.name,
            sweep.designs,
            sweep.sdaccel_error_pct(),
            sweep.flexcl_error_pct(),
            sweep.sdaccel_failure_rate() * 100.0,
            synth_hours,
            fmt_dur(sweep.sdaccel_time),
            fmt_dur(sweep.flexcl_time),
        );
        all_flexcl.push(sweep.flexcl_error_pct());
        all_sdaccel.push(sweep.sdaccel_error_pct());
        total_fail.0 += sweep.records.iter().filter(|r| r.sdaccel_cycles.is_none()).count();
        total_fail.1 += sweep.records.len();
        rows.push(format!(
            "{},{},{:.2},{:.2},{:.2},{:.2},{:.3},{:.3},{:.3}",
            sweep.name,
            sweep.designs,
            sweep.sdaccel_error_pct(),
            sweep.flexcl_error_pct(),
            sweep.sdaccel_failure_rate() * 100.0,
            synth_hours,
            sweep.system_time.as_secs_f64(),
            sweep.sdaccel_time.as_secs_f64(),
            sweep.flexcl_time.as_secs_f64(),
        ));
    }

    println!("{:-<104}", "");
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "AVERAGE: SDAccel err {:.1}% (paper: 30.4-84.9%), FlexCL err {:.1}% (paper avg: 9.5%),",
        avg(&all_sdaccel),
        avg(&all_flexcl)
    );
    println!(
        "         SDAccel failures {:.0}% of designs (paper: ~42%), total wall time {}",
        100.0 * total_fail.0 as f64 / total_fail.1.max(1) as f64,
        fmt_dur(t0.elapsed())
    );
    write_csv(
        "table2_rodinia.csv",
        "kernel,designs,sdaccel_err_pct,flexcl_err_pct,sdaccel_fail_pct,\
         systemrun_extrapolated_hours,sim_seconds,sdaccel_seconds,flexcl_seconds",
        &rows,
    );
}
