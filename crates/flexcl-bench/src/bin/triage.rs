//! Divergence triage harness — model-vs-System-Run error attribution.
//!
//! Sweeps every corpus kernel's design space, runs the System Run
//! simulator on each feasible point, and attributes the *signed*
//! model-vs-sim error to its compute, memory and dispatch/launch
//! components: both sides decompose their cycle counts into
//! `comp + mem + overhead` (see [`flexcl_core::Estimate`] and
//! `flexcl_sim::SimResult`), so per component
//! `err_X = (model_X - sim_X) / sim_cycles` and the three components sum
//! to the total signed error. The attribution turns "kernel X is 15% off"
//! into "kernel X's memory model is 14% optimistic at C=4" — pointing at
//! the subsystem to fix.
//!
//! Outputs:
//! * `results/triage_points.csv` — every (kernel, config) point with
//!   signed total and per-component errors.
//! * `results/triage_worst.csv` — the worst points by absolute error,
//!   ranked.
//! * repo-root `BENCH_accuracy.json` — machine-readable per-kernel rows
//!   (validated by `--check`, mirroring `dse --check`).
//!
//! Regenerate with `cargo run -p flexcl-bench --bin triage --release`.
//!
//! Flags:
//!
//! * `--kernels SUBSTR` — restrict to kernels whose `benchmark/kernel`
//!   name contains `SUBSTR`.
//! * `--out PATH` — write the JSON to `PATH` instead of the repo root.
//! * `--check PATH` — validate an existing BENCH_accuracy.json (schema
//!   keys present, errors finite and non-negative) and exit; used by
//!   `scripts/tier1.sh`.
//! * `--max-mean-err PCT` — exit non-zero if any swept kernel's mean
//!   absolute error exceeds `PCT` percent (the tier-1 accuracy smoke).
//! * `--no-csv` — skip the `results/` CSVs (so a filtered smoke run does
//!   not overwrite the committed full-suite artifacts).

use flexcl_bench::{compile, write_csv};
use flexcl_core::{
    estimate, explore, is_iterative_stencil, KernelAnalysis, OptimizationConfig, Platform,
};
use flexcl_kernels::{all, Scale, Suite};
use flexcl_sim::{system_run, SimError, SimOptions};

/// One feasible design point with its signed error attribution.
struct PointRow {
    kernel: String,
    suite: &'static str,
    config: OptimizationConfig,
    sim_cycles: f64,
    model_cycles: f64,
    /// Signed relative error `(model - sim) / sim`.
    err: f64,
    /// Compute share of `err` (same denominator, so the three sum to it).
    err_comp: f64,
    /// Memory share of `err`.
    err_mem: f64,
    /// Dispatch/launch share of `err`.
    err_overhead: f64,
}

/// One BENCH_accuracy.json entry: a kernel's accuracy over its design
/// space, with the worst point's attribution.
struct KernelRow {
    kernel: String,
    suite: &'static str,
    points: usize,
    mean_abs_err_pct: f64,
    max_abs_err_pct: f64,
    worst_config: String,
    worst_err_pct: f64,
    worst_err_comp_pct: f64,
    worst_err_mem_pct: f64,
    worst_err_overhead_pct: f64,
}

fn suite_name(s: Suite) -> &'static str {
    match s {
        Suite::Rodinia => "rodinia",
        Suite::PolyBench => "polybench",
    }
}

/// Sweeps the corpus (optionally filtered) and returns every attributed
/// point. Infeasible system runs are skipped like in `sweep_kernel`.
fn triage_sweep(filter: Option<&str>) -> Vec<PointRow> {
    let platform = Platform::virtex7_adm7v3();
    let mut points = Vec::new();
    for spec in all() {
        let name = spec.full_name();
        if let Some(sub) = filter {
            if !name.contains(sub) {
                continue;
            }
        }
        let func = compile(&spec);
        let workload = spec.workload(Scale::Test, 1234);
        let dse = explore(&func, &platform, &workload).expect("exploration");
        for point in &dse.points {
            if !point.estimate.feasible {
                continue;
            }
            let sim = match system_run(
                &func,
                &platform,
                &workload,
                &point.config,
                SimOptions::default(),
            ) {
                Ok(r) => r,
                Err(SimError::Infeasible(_)) => continue,
                Err(e) => panic!("system run failed for {name}: {e}"),
            };
            let est = &point.estimate;
            let denom = sim.cycles.max(1.0);
            points.push(PointRow {
                kernel: name.clone(),
                suite: suite_name(spec.suite),
                config: point.config,
                sim_cycles: sim.cycles,
                model_cycles: est.cycles,
                err: (est.cycles - sim.cycles) / denom,
                err_comp: (est.comp_cycles - sim.comp_cycles) / denom,
                err_mem: (est.mem_cycles - sim.mem_cycles) / denom,
                err_overhead: (est.overhead_cycles - sim.overhead_cycles) / denom,
            });
        }
        // The standard grid keeps the coarsening/temporal axes at the
        // identity (it mirrors the paper's Table 2 space), so probe them
        // explicitly off the kernel's best standard point: coarsened
        // variants for every kernel, blocked (and combined) variants for
        // iterative stencils. The probes flow through the same error
        // attribution, so BENCH_accuracy.json gates the new axes too.
        let Some(best) = dse.best() else { continue };
        let mut probes: Vec<OptimizationConfig> = Vec::new();
        for cf in [2u32, 4] {
            if best.config.work_group_size().is_multiple_of(u64::from(cf)) {
                probes.push(OptimizationConfig { coarsen_factor: cf, ..best.config });
            }
        }
        if is_iterative_stencil(&func.name) {
            for tb in [2u32, 4] {
                probes.push(OptimizationConfig { temporal_block_depth: tb, ..best.config });
            }
            if best.config.work_group_size().is_multiple_of(2) {
                probes.push(OptimizationConfig {
                    coarsen_factor: 2,
                    temporal_block_depth: 2,
                    ..best.config
                });
            }
        }
        for cfg in probes {
            let analysis =
                KernelAnalysis::analyze(&func, &platform, &workload, cfg.work_group)
                    .expect("analysis");
            let est = match estimate(&analysis, &cfg) {
                Ok(e) if e.feasible => e,
                _ => continue,
            };
            let sim = match system_run(&func, &platform, &workload, &cfg, SimOptions::default())
            {
                Ok(r) => r,
                Err(SimError::Infeasible(_)) => continue,
                Err(e) => panic!("system run failed for {name} probe {cfg}: {e}"),
            };
            let denom = sim.cycles.max(1.0);
            points.push(PointRow {
                kernel: name.clone(),
                suite: suite_name(spec.suite),
                config: cfg,
                sim_cycles: sim.cycles,
                model_cycles: est.cycles,
                err: (est.cycles - sim.cycles) / denom,
                err_comp: (est.comp_cycles - sim.comp_cycles) / denom,
                err_mem: (est.mem_cycles - sim.mem_cycles) / denom,
                err_overhead: (est.overhead_cycles - sim.overhead_cycles) / denom,
            });
        }
    }
    points
}

/// Folds the point rows into per-kernel accuracy rows.
fn kernel_rows(points: &[PointRow]) -> Vec<KernelRow> {
    let mut rows: Vec<KernelRow> = Vec::new();
    for p in points {
        if !rows.iter().any(|r| r.kernel == p.kernel) {
            let mine: Vec<&PointRow> =
                points.iter().filter(|q| q.kernel == p.kernel).collect();
            let worst = mine
                .iter()
                .max_by(|a, b| a.err.abs().total_cmp(&b.err.abs()))
                .expect("non-empty");
            rows.push(KernelRow {
                kernel: p.kernel.clone(),
                suite: p.suite,
                points: mine.len(),
                mean_abs_err_pct: 100.0 * mine.iter().map(|q| q.err.abs()).sum::<f64>()
                    / mine.len() as f64,
                max_abs_err_pct: 100.0 * worst.err.abs(),
                worst_config: worst.config.to_string(),
                worst_err_pct: 100.0 * worst.err,
                worst_err_comp_pct: 100.0 * worst.err_comp,
                worst_err_mem_pct: 100.0 * worst.err_mem,
                worst_err_overhead_pct: 100.0 * worst.err_overhead,
            });
        }
    }
    rows
}

/// Every key a BENCH_accuracy.json row must carry, in emission order.
const BENCH_KEYS: [&str; 10] = [
    "kernel",
    "suite",
    "points",
    "mean_abs_err_pct",
    "max_abs_err_pct",
    "worst_config",
    "worst_err_pct",
    "worst_err_comp_pct",
    "worst_err_mem_pct",
    "worst_err_overhead_pct",
];

/// Writes the per-kernel rows to `out` (default: repo-root
/// `BENCH_accuracy.json`), one object per line like BENCH_dse.json.
fn write_bench_json(rows: &[KernelRow], out: Option<&str>) {
    let mut body = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "  {{\"kernel\": \"{}\", \"suite\": \"{}\", \"points\": {}, \
             \"mean_abs_err_pct\": {:.3}, \"max_abs_err_pct\": {:.3}, \
             \"worst_config\": \"{}\", \"worst_err_pct\": {:.3}, \
             \"worst_err_comp_pct\": {:.3}, \"worst_err_mem_pct\": {:.3}, \
             \"worst_err_overhead_pct\": {:.3}}}{}\n",
            r.kernel,
            r.suite,
            r.points,
            r.mean_abs_err_pct,
            r.max_abs_err_pct,
            r.worst_config,
            r.worst_err_pct,
            r.worst_err_comp_pct,
            r.worst_err_mem_pct,
            r.worst_err_overhead_pct,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    body.push_str("]\n");
    let path = match out {
        Some(p) => std::path::PathBuf::from(p),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_accuracy.json"),
    };
    std::fs::write(&path, body).expect("write BENCH_accuracy.json");
    println!("wrote {}", path.display());
}

/// Validates a BENCH_accuracy.json produced by [`write_bench_json`]: at
/// least one row, every schema key in every row, and finite non-negative
/// `mean_abs_err_pct`. Exits non-zero with a message on the first problem.
fn check_bench_json(path: &str) {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("BENCH check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let fail = |msg: String| -> ! {
        eprintln!("BENCH check: {path}: {msg}");
        std::process::exit(1);
    };
    let objects: Vec<&str> =
        body.lines().filter(|l| l.trim_start().starts_with('{')).collect();
    if objects.is_empty() {
        fail("no accuracy rows".to_string());
    }
    for (i, obj) in objects.iter().enumerate() {
        for key in BENCH_KEYS {
            if !obj.contains(&format!("\"{key}\":")) {
                fail(format!("row {i} is missing key \"{key}\""));
            }
        }
        let mean = obj
            .split("\"mean_abs_err_pct\":")
            .nth(1)
            .and_then(|rest| {
                rest.trim_start()
                    .split(|c: char| c == ',' || c == '}')
                    .next()?
                    .trim()
                    .parse::<f64>()
                    .ok()
            })
            .unwrap_or_else(|| fail(format!("row {i}: mean_abs_err_pct is not a number")));
        if !mean.is_finite() || mean < 0.0 {
            fail(format!(
                "row {i}: mean_abs_err_pct = {mean} (must be finite and non-negative)"
            ));
        }
    }
    println!("BENCH check: {path}: {} rows ok", objects.len());
}

/// Value of a `--flag VALUE` pair in `args`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = flag_value(&args, "--check") {
        check_bench_json(path);
        return;
    }
    let filter = flag_value(&args, "--kernels");
    let out = flag_value(&args, "--out");
    let max_mean_err: Option<f64> =
        flag_value(&args, "--max-mean-err").map(|v| v.parse().expect("--max-mean-err PCT"));
    let write_csvs = !args.iter().any(|a| a == "--no-csv");

    let mut points = triage_sweep(filter);
    if points.is_empty() {
        eprintln!("triage: no feasible points matched (filter: {filter:?})");
        std::process::exit(1);
    }

    // Per-point CSV (the raw material for by-hand slicing), and the worst
    // points ranked by |error|.
    points.sort_by(|a, b| b.err.abs().total_cmp(&a.err.abs()));
    if write_csvs {
        let point_rows: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "{},{},{},{:.0},{:.0},{:.4},{:.4},{:.4},{:.4}",
                    p.kernel,
                    p.suite,
                    p.config.to_string().replace(' ', ";"),
                    p.sim_cycles,
                    p.model_cycles,
                    p.err,
                    p.err_comp,
                    p.err_mem,
                    p.err_overhead
                )
            })
            .collect();
        write_csv(
            "triage_points.csv",
            "kernel,suite,config,sim_cycles,model_cycles,err,err_comp,err_mem,err_overhead",
            &point_rows,
        );

        let worst_rows: Vec<String> = points
            .iter()
            .take(20)
            .map(|p| {
                format!(
                    "{},{},{},{:.2},{:.2},{:.2},{:.2}",
                    p.kernel,
                    p.suite,
                    p.config.to_string().replace(' ', ";"),
                    100.0 * p.err,
                    100.0 * p.err_comp,
                    100.0 * p.err_mem,
                    100.0 * p.err_overhead
                )
            })
            .collect();
        write_csv(
            "triage_worst.csv",
            "kernel,suite,config,err_pct,err_comp_pct,err_mem_pct,err_overhead_pct",
            &worst_rows,
        );
    }

    let rows = kernel_rows(&points);
    println!("\nModel-vs-sim divergence triage");
    println!("{:-<100}", "");
    println!(
        "{:<26} {:>7} {:>9} {:>9}   worst point attribution (comp/mem/overhead)",
        "Kernel", "points", "mean|e|", "max|e|"
    );
    println!("{:-<100}", "");
    for r in &rows {
        println!(
            "{:<26} {:>7} {:>8.1}% {:>8.1}%   {:+.1}% = {:+.1}% {:+.1}% {:+.1}%  @ {}",
            r.kernel,
            r.points,
            r.mean_abs_err_pct,
            r.max_abs_err_pct,
            r.worst_err_pct,
            r.worst_err_comp_pct,
            r.worst_err_mem_pct,
            r.worst_err_overhead_pct,
            r.worst_config,
        );
    }
    println!("{:-<100}", "");
    let suite_mean = |s: &str| {
        let v: Vec<f64> = rows
            .iter()
            .filter(|r| r.suite == s)
            .map(|r| r.mean_abs_err_pct)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    println!(
        "Suite averages: rodinia {:.2}% | polybench {:.2}% (paper: 3.7% / 1.5%)",
        suite_mean("rodinia"),
        suite_mean("polybench")
    );

    // The temporal-blocking probes exist to show the reuse win on the
    // iterative stencils, in the simulator as well as the model — report
    // it per kernel so a regression is visible in the triage output.
    let blocked_kernels: Vec<&str> = {
        let mut v: Vec<&str> = points
            .iter()
            .filter(|p| p.config.temporal_block_depth > 1)
            .map(|p| p.kernel.as_str())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    if !blocked_kernels.is_empty() {
        println!("\nTemporal-blocking probes (best sim cycles, blocked vs flat):");
        for kernel in blocked_kernels {
            let best_sim = |pred: &dyn Fn(u32) -> bool| {
                points
                    .iter()
                    .filter(|p| p.kernel == kernel && pred(p.config.temporal_block_depth))
                    .map(|p| p.sim_cycles)
                    .fold(f64::INFINITY, f64::min)
            };
            let blocked = best_sim(&|tb| tb > 1);
            let flat = best_sim(&|tb| tb == 1);
            println!(
                "  {kernel:<26} {blocked:>10.0} vs {flat:>10.0}  ({:+.1}%{})",
                100.0 * (blocked - flat) / flat,
                if blocked < flat { ", win" } else { "" }
            );
        }
    }
    write_bench_json(&rows, out);

    if let Some(limit) = max_mean_err {
        for r in &rows {
            if r.mean_abs_err_pct > limit {
                eprintln!(
                    "triage: {} mean |error| {:.2}% exceeds --max-mean-err {limit}%",
                    r.kernel, r.mean_abs_err_pct
                );
                std::process::exit(1);
            }
        }
        println!("accuracy smoke ok: all kernels within {limit}% mean |error|");
    }
}
