//! Experiment E7 — Table 1: the eight global-memory access patterns and
//! their micro-benchmarked latencies `ΔT` on both platforms.
//!
//! Regenerate with `cargo run -p flexcl-bench --bin table1_patterns --release`.

use flexcl_bench::write_csv;
use flexcl_dram::{microbench, DramConfig, Pattern};

fn main() {
    let v7 = microbench::profile(DramConfig::adm_pcie_7v3());
    let ku = microbench::profile(DramConfig::nas_120a_ku060());

    println!("Table 1: Global Memory Access Patterns And Parameters");
    println!("{:-<66}", "");
    println!(
        "{:<32} {:>14} {:>14}",
        "Pattern", "dT (7V3) [cyc]", "dT (KU060) [cyc]"
    );
    println!("{:-<66}", "");
    let mut rows = Vec::new();
    for p in Pattern::all() {
        let label = pattern_label(&p);
        println!("{label:<32} {:>14.1} {:>14.1}", v7[p], ku[p]);
        rows.push(format!("{},{:.3},{:.3}", p.name(), v7[p], ku[p]));
    }
    write_csv("table1_patterns.csv", "pattern,dt_adm7v3_cycles,dt_ku060_cycles", &rows);
}

fn pattern_label(p: &Pattern) -> String {
    use flexcl_dram::AccessKind::*;
    let now = match p.now {
        Read => "read",
        Write => "write",
    };
    let prev = match p.prev {
        Read => "read",
        Write => "write",
    };
    let hit = if p.hit { "hit" } else { "miss" };
    format!("{now}({hit}) access after {prev}")
}
