//! Ablation studies for the design choices called out in `DESIGN.md` §5.
//!
//! 1. **Pattern-aware vs flat memory model** — replace the eight-pattern
//!    `ΔT` table of Eq. 9 with a single average latency (what the paper
//!    criticises HPCA'16 \[16\] for) and measure the accuracy loss.
//! 2. **SMS refinement vs plain MII** — how often swing modulo scheduling
//!    raises the initiation interval above `max(RecMII, ResMII)` under
//!    resource pressure.
//! 3. **Coalescing** — transaction-count reduction from burst coalescing
//!    per kernel (the `f = unit/width` effect of §3.4).
//!
//! Regenerate with `cargo run -p flexcl-bench --bin ablation --release`.

use flexcl_bench::{compile, sweep_kernel, write_csv};
use flexcl_core::{KernelAnalysis, Platform};
use flexcl_dram::Pattern;
use flexcl_kernels::{polybench, rodinia, Scale};
use flexcl_sim::{system_run, SimOptions};

fn main() {
    ablation_flat_memory();
    ablation_mode_aware_patterns();
    ablation_sms_vs_mii();
    ablation_coalescing();
}

/// Ablation 1b: mode-aware pattern classification (barrier phases reads
/// then writes) vs using the pipeline-order counts for both modes.
fn ablation_mode_aware_patterns() {
    let platform = Platform::virtex7_adm7v3();
    println!("Ablation 1b: mode-aware vs single-order pattern classification");
    println!("{:-<66}", "");
    println!("{:<28} {:>16} {:>16}", "Kernel", "L_mem/wi (wi-ord)", "L_mem/wi (phased)");
    println!("{:-<66}", "");
    let mut rows = Vec::new();
    for spec in polybench().into_iter().take(8) {
        let func = compile(&spec);
        let workload = spec.workload(Scale::Test, 1234);
        let wg = if workload.global.1 > 1 { (8, 8) } else { (64, 1) };
        let Ok(analysis) = KernelAnalysis::analyze(&func, &platform, &workload, wg) else {
            continue;
        };
        let wi_order = analysis.l_mem_wi();
        let phased = analysis.l_mem_wi_phased();
        println!("{:<28} {:>16.2} {:>16.2}", spec.full_name(), wi_order, phased);
        rows.push(format!("{},{wi_order:.3},{phased:.3}", spec.full_name()));
    }
    println!("{:-<66}", "");
    println!("(phased ≤ wi-order wherever reads and writes interleave)\n");
    write_csv(
        "ablation_mode_patterns.csv",
        "kernel,l_mem_wi_order,l_mem_phased",
        &rows,
    );
}

/// Ablation 1: flat average memory latency instead of the pattern table.
fn ablation_flat_memory() {
    let platform = Platform::virtex7_adm7v3();
    println!("Ablation 1: pattern-aware (Eq. 9) vs flat-average memory latency");
    println!("{:-<64}", "");
    println!("{:<28} {:>12} {:>12}", "Kernel", "pattern err", "flat err");
    println!("{:-<64}", "");
    let mut rows = Vec::new();
    let mut pattern_errs = Vec::new();
    let mut flat_errs = Vec::new();
    for spec in polybench().into_iter().take(6) {
        let sweep = sweep_kernel(&spec, &platform, Scale::Test);
        // Recompute FlexCL cycles with a flat L_mem_wi: scale each record's
        // memory contribution via the analysis' pattern table collapsed to
        // its unweighted average.
        let func = compile(&spec);
        let workload = spec.workload(Scale::Test, 1234);
        let mut flat_err_sum = 0.0;
        let mut n = 0usize;
        // One analysis per work-group size (records sharing a work-group
        // share the analysis; negative results are cached too).
        let mut analyses: std::collections::HashMap<(u32, u32), Option<KernelAnalysis>> =
            std::collections::HashMap::new();
        for r in &sweep.records {
            let analysis = match analyses
                .entry(r.config.work_group)
                .or_insert_with(|| {
                    KernelAnalysis::analyze(&func, &platform, &workload, r.config.work_group).ok()
                }) {
                Some(a) => a,
                None => continue,
            };
            let avg_dt: f64 = Pattern::all()
                .iter()
                .map(|p| analysis.pattern_latencies[*p])
                .sum::<f64>()
                / 8.0;
            let total_accesses: f64 =
                Pattern::all().iter().map(|p| analysis.pattern_counts[*p]).sum();
            let flat_l_mem = avg_dt * total_accesses;
            let true_l_mem = analysis.l_mem_wi();
            // Replace the memory term proportionally in the estimate.
            let Ok(est) = flexcl_core::estimate(&analysis, &r.config) else {
                continue;
            };
            let flat_cycles = if true_l_mem > 1e-9 {
                // Re-evaluate with scaled memory: approximate by scaling the
                // memory-dependent share of the estimate.
                let mem_share = (est.l_mem_wi * workload_items(&workload)).min(est.cycles);
                est.cycles - mem_share + mem_share * (flat_l_mem / true_l_mem)
            } else {
                est.cycles
            };
            flat_err_sum += (flat_cycles - r.system_cycles).abs() / r.system_cycles;
            n += 1;
        }
        let flat = 100.0 * flat_err_sum / n.max(1) as f64;
        let pat = sweep.flexcl_error_pct();
        println!("{:<28} {:>11.1}% {:>11.1}%", sweep.name, pat, flat);
        pattern_errs.push(pat);
        flat_errs.push(flat);
        rows.push(format!("{},{pat:.2},{flat:.2}", sweep.name));
    }
    println!("{:-<64}", "");
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "average: pattern-aware {:.1}% vs flat {:.1}%\n",
        avg(&pattern_errs),
        avg(&flat_errs)
    );
    write_csv("ablation_flat_memory.csv", "kernel,pattern_err_pct,flat_err_pct", &rows);
}

fn workload_items(w: &flexcl_core::Workload) -> f64 {
    (w.global.0 * w.global.1) as f64
}

/// Ablation 2: II from SMS vs the MII lower bound.
fn ablation_sms_vs_mii() {
    let platform = Platform::virtex7_adm7v3();
    println!("Ablation 2: SMS-refined II vs plain MII (P = 1, tight budget)");
    println!("{:-<54}", "");
    println!("{:<28} {:>8} {:>8}", "Kernel", "MII", "SMS II");
    println!("{:-<54}", "");
    let mut rows = Vec::new();
    let mut raised = 0;
    let mut total = 0;
    for spec in rodinia().into_iter().take(12) {
        let func = compile(&spec);
        let workload = spec.workload(Scale::Test, 1234);
        let wg = if workload.global.1 > 1 { (8, 8) } else { (64, 1) };
        let Ok(analysis) = KernelAnalysis::analyze(&func, &platform, &workload, wg) else {
            continue;
        };
        let budget = flexcl_sched::ResourceBudget {
            local_read_ports: 1,
            local_write_ports: 1,
            dsps: 1,
            global_ports: 1,
        };
        let mii = analysis.rec_mii().max(analysis.res_mii(&budget));
        let Ok((ii, _)) = analysis.pipeline_params(&budget) else {
            continue;
        };
        println!("{:<28} {:>8} {:>8}", spec.full_name(), mii, ii);
        rows.push(format!("{},{mii},{ii}", spec.full_name()));
        if ii > mii {
            raised += 1;
        }
        total += 1;
    }
    println!("{:-<54}", "");
    println!("SMS raised II above MII on {raised}/{total} kernels\n");
    write_csv("ablation_sms_vs_mii.csv", "kernel,mii,sms_ii", &rows);
}

/// Ablation 3: coalescing effect on transaction counts.
fn ablation_coalescing() {
    let platform = Platform::virtex7_adm7v3();
    println!("Ablation 3: global-memory transactions per work-item, with coalescing");
    println!("{:-<66}", "");
    println!(
        "{:<28} {:>10} {:>12} {:>8}",
        "Kernel", "raw/wi", "coalesced/wi", "factor"
    );
    println!("{:-<66}", "");
    let mut rows = Vec::new();
    for spec in polybench().into_iter().take(8) {
        let func = compile(&spec);
        let workload = spec.workload(Scale::Test, 1234);
        let wg = if workload.global.1 > 1 { (8, 8) } else { (64, 1) };
        let Ok(analysis) = KernelAnalysis::analyze(&func, &platform, &workload, wg) else {
            continue;
        };
        let raw = analysis.profile.accesses_per_work_item();
        let coalesced = analysis.global_accesses_per_wi;
        let factor = raw / coalesced.max(1e-9);
        println!(
            "{:<28} {:>10.2} {:>12.3} {:>7.1}x",
            spec.full_name(),
            raw,
            coalesced,
            factor
        );
        rows.push(format!("{},{raw:.3},{coalesced:.4},{factor:.2}", spec.full_name()));
    }
    println!("{:-<66}", "");
    println!("(512-bit access unit / 32-bit float gives an upper bound of 16x)\n");
    write_csv(
        "ablation_coalescing.csv",
        "kernel,raw_per_wi,coalesced_per_wi,factor",
        &rows,
    );
    let _ = platform;
    // Silence unused warning if system_run is not exercised here.
    let _ = system_run as fn(_, _, _, _, SimOptions) -> _;
}
