//! `obs_bench` — observability overhead measurement, emitting
//! `BENCH_obs.json`.
//!
//! ```text
//! obs_bench [--reps N] [--threads N] [--serve-requests N] [--trace-sample N] [--out PATH]
//! obs_bench --check PATH [--max-overhead-pct X] [--max-disabled-pct X]
//! ```
//!
//! Four rows:
//!
//! 1. **span_disabled** — ns/op of opening+dropping a span with no
//!    tracer armed (the cost every instrumented call site pays in a
//!    production run with tracing off: one relaxed atomic load).
//! 2. **sweep_off** / **sweep_trace** — fine-grid vadd sweep throughput
//!    with tracing disabled vs enabled. The two are measured *paired*:
//!    each rep times one disabled and one enabled sweep back-to-back
//!    (via `trace::set_enabled`, whose paused state runs the exact
//!    disabled fast path), because an unpaired A-then-B comparison
//!    drifts more than the real overhead on small hosts. The sink is a
//!    line-counting null writer, so disk speed is not measured.
//!    `sweep_trace.overhead_pct` is the measured best-of throughput
//!    loss; a truly uninstrumented build does not exist in this binary,
//!    so `sweep_off.overhead_pct` is *derived*: disabled-span ns/op ×
//!    spans per point as a fraction of the per-point budget.
//! 3. **serve_trace** — client-observed p50/p99 and req/s of a steady
//!    cache-warm request stream with tracing on.
//!
//! `--check` validates schema keys on every row and gates
//! `sweep_trace.overhead_pct` (default ceiling 5%) and the derived
//! `sweep_off.overhead_pct` (default ceiling 1%).

use flexcl_core::{explore_space, DseOptions, Platform, SweepGrid, Workload};
use flexcl_interp::KernelArg;
use flexcl_serve::server::ServerConfig;
use flexcl_serve::Server;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A trace sink that counts emitted lines and discards the bytes, so the
/// overhead rows measure the tracer, not the disk.
struct CountingSink(Arc<AtomicU64>);

impl Write for CountingSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.fetch_add(buf.iter().filter(|&&b| b == b'\n').count() as u64, Ordering::Relaxed);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct ObsRow {
    mode: &'static str,
    kernel: &'static str,
    grid: &'static str,
    points: u64,
    threads: usize,
    reps: usize,
    configs_per_sec: f64,
    /// sweep_trace: measured loss vs sweep_off. sweep_off: derived
    /// disabled-path cost. Other rows: 0.
    overhead_pct: f64,
    span_ns: f64,
    spans_emitted: u64,
    trace_dropped: u64,
    p50_ms: f64,
    p99_ms: f64,
    requests_per_sec: f64,
    host_cores: usize,
}

impl ObsRow {
    fn blank(mode: &'static str) -> ObsRow {
        ObsRow {
            mode,
            kernel: "",
            grid: "",
            points: 0,
            threads: 0,
            reps: 0,
            configs_per_sec: 0.0,
            overhead_pct: 0.0,
            span_ns: 0.0,
            spans_emitted: 0,
            trace_dropped: 0,
            p50_ms: 0.0,
            p99_ms: 0.0,
            requests_per_sec: 0.0,
            host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

fn vadd() -> (flexcl_ir::Function, Workload) {
    let p = flexcl_frontend::parse_and_check(
        "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
            int i = get_global_id(0);
            c[i] = a[i] + b[i];
        }",
    )
    .expect("vadd frontend");
    let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("vadd lowering");
    let w = Workload {
        args: vec![
            KernelArg::FloatBuf(vec![1.0; 4096]),
            KernelArg::FloatBuf(vec![2.0; 4096]),
            KernelArg::FloatBuf(vec![0.0; 4096]),
        ],
        global: (4096, 1),
    };
    (f, w)
}

/// ns/op of the disabled-span fast path: open + drop with no tracer.
fn bench_disabled_span() -> f64 {
    const ITERS: u64 = 20_000_000;
    // Warm the branch predictor / icache before timing.
    for _ in 0..100_000 {
        std::hint::black_box(flexcl_obs::span("obs.noop"));
    }
    let start = Instant::now();
    for _ in 0..ITERS {
        std::hint::black_box(flexcl_obs::span("obs.noop"));
    }
    start.elapsed().as_nanos() as f64 / ITERS as f64
}

/// Best-of-reps fine-grid sweep throughput: (points, configs/s).
/// Best-of rather than median: the overhead comparison wants each
/// configuration's peak capability, which is far less sensitive to
/// scheduler noise on small hosts than any averaged statistic.
fn bench_sweep(func: &flexcl_ir::Function, workload: &Workload, threads: usize, reps: usize) -> (u64, f64) {
    let platform = Platform::virtex7_adm7v3();
    let grid = SweepGrid::fine();
    let opts = DseOptions { threads, ..DseOptions::default() };
    let mut best = 0.0f64;
    let mut points = 0u64;
    for _ in 0..reps {
        let start = Instant::now();
        let res = explore_space(func, &platform, workload, &grid, opts).expect("obs sweep");
        let secs = start.elapsed().as_secs_f64();
        points = res.points.len() as u64;
        best = best.max(points as f64 / secs.max(1e-9));
    }
    (points, best)
}

/// Blocks until the trace drain thread has caught up: the emitted-line
/// counter is only bumped when a span is written to the sink, and on
/// small hosts the drain lags the sweep workers considerably.
fn settled_line_count(lines: &AtomicU64) -> u64 {
    let mut prev = lines.load(Ordering::Relaxed);
    loop {
        std::thread::sleep(std::time::Duration::from_millis(50));
        let cur = lines.load(Ordering::Relaxed);
        if cur == prev {
            return cur;
        }
        prev = cur;
    }
}

/// Steady cache-warm serve traffic with tracing on: (p50 ms, p99 ms, req/s).
fn bench_serve(total: usize) -> (f64, f64, f64) {
    let (server, _) = Server::start(ServerConfig {
        workers: 2,
        queue_cap: 256,
        degrade_at: usize::MAX,
        default_deadline_ms: 60_000,
        ..ServerConfig::default()
    })
    .expect("start serve");
    let server = Arc::new(server);
    let frames: Vec<String> = (0..4)
        .map(|i| {
            format!(
                r#"{{"id":"w{i}","src":"__kernel void k{i}(__global float* a) {{ int i = get_global_id(0); a[i] = a[i] * {}.0f; }}","global":1024}}"#,
                i + 1
            )
        })
        .collect();
    for f in &frames {
        let resp = server.handle_frame(f);
        assert_eq!(resp.kind(), "ok", "warm-up failed: {}", resp.to_json());
    }
    let frames = Arc::new(frames);
    let next = Arc::new(AtomicUsize::new(0));
    let clients = 4;
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let server = Arc::clone(&server);
            let frames = Arc::clone(&frames);
            let next = Arc::clone(&next);
            std::thread::spawn(move || {
                let mut lat = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        return lat;
                    }
                    let t = Instant::now();
                    let _ = server.handle_frame(&frames[i % frames.len()]);
                    lat.push(t.elapsed().as_secs_f64() * 1000.0);
                }
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::with_capacity(total);
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_by(f64::total_cmp);
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p).round() as usize];
    let rps = latencies.len() as f64 / elapsed.max(1e-9);
    let out = (pct(0.50), pct(0.99), rps);
    Arc::into_inner(server).expect("sole handle").shutdown();
    out
}

/// Every key a BENCH_obs.json row must carry.
const BENCH_KEYS: [&str; 15] = [
    "mode",
    "kernel",
    "grid",
    "points",
    "threads",
    "reps",
    "configs_per_sec",
    "overhead_pct",
    "span_ns",
    "spans_emitted",
    "trace_dropped",
    "p50_ms",
    "p99_ms",
    "requests_per_sec",
    "host_cores",
];

fn write_bench_json(rows: &[ObsRow], out: Option<&str>) {
    let mut body = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "  {{\"mode\": \"{}\", \"kernel\": \"{}\", \"grid\": \"{}\", \"points\": {}, \
             \"threads\": {}, \"reps\": {}, \"configs_per_sec\": {:.1}, \
             \"overhead_pct\": {:.3}, \"span_ns\": {:.2}, \"spans_emitted\": {}, \
             \"trace_dropped\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"requests_per_sec\": {:.1}, \"host_cores\": {}}}{}\n",
            r.mode,
            r.kernel,
            r.grid,
            r.points,
            r.threads,
            r.reps,
            r.configs_per_sec,
            r.overhead_pct,
            r.span_ns,
            r.spans_emitted,
            r.trace_dropped,
            r.p50_ms,
            r.p99_ms,
            r.requests_per_sec,
            r.host_cores,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    body.push_str("]\n");
    let path = match out {
        Some(p) => std::path::PathBuf::from(p),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_obs.json"),
    };
    std::fs::write(&path, body).expect("write BENCH_obs.json");
    for r in rows {
        match r.mode {
            "span_disabled" => println!("  span_disabled  {:.2} ns/op", r.span_ns),
            "serve_trace" => println!(
                "  serve_trace    p50={:.2}ms p99={:.2}ms  {:.0} req/s",
                r.p50_ms, r.p99_ms, r.requests_per_sec
            ),
            _ => println!(
                "  {:<14} {:>9.0} configs/s  overhead={:+.2}%  spans={} dropped={}",
                r.mode, r.configs_per_sec, r.overhead_pct, r.spans_emitted, r.trace_dropped
            ),
        }
    }
    println!("wrote {}", path.display());
}

fn num_field(obj: &str, key: &str) -> Option<f64> {
    obj.split(&format!("\"{key}\":"))
        .nth(1)?
        .trim_start()
        .split([',', '}'])
        .next()?
        .trim()
        .parse::<f64>()
        .ok()
}

fn str_field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    obj.split(&format!("\"{key}\":")).nth(1)?.trim_start().strip_prefix('"')?.split('"').next()
}

/// Validates a BENCH_obs.json: schema keys on every row, the four modes
/// present, traced-sweep overhead under `max_pct`, derived disabled-path
/// overhead under `max_disabled_pct`, and a live serve row. Exits
/// non-zero on the first problem.
fn check_bench_json(path: &str, max_pct: f64, max_disabled_pct: f64) {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("BENCH check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let fail = |msg: String| -> ! {
        eprintln!("BENCH check: {path}: {msg}");
        std::process::exit(1);
    };
    let objects: Vec<&str> = body.lines().filter(|l| l.trim_start().starts_with('{')).collect();
    if objects.is_empty() {
        fail("no benchmark rows".to_string());
    }
    let mut seen = Vec::new();
    for (i, obj) in objects.iter().enumerate() {
        for key in BENCH_KEYS {
            if !obj.contains(&format!("\"{key}\":")) {
                fail(format!("row {i} is missing key \"{key}\""));
            }
        }
        let mode = str_field(obj, "mode").unwrap_or("?").to_string();
        match mode.as_str() {
            "sweep_off" => {
                let pct = num_field(obj, "overhead_pct").unwrap_or(f64::NAN);
                if !pct.is_finite() || pct > max_disabled_pct {
                    fail(format!(
                        "sweep_off: derived disabled-path overhead {pct:.3}% exceeds \
                         the {max_disabled_pct}% ceiling"
                    ));
                }
            }
            "sweep_trace" => {
                let pct = num_field(obj, "overhead_pct").unwrap_or(f64::NAN);
                if !pct.is_finite() || pct > max_pct {
                    fail(format!(
                        "sweep_trace: traced-sweep overhead {pct:.2}% exceeds the \
                         {max_pct}% ceiling"
                    ));
                }
                let cps = num_field(obj, "configs_per_sec").unwrap_or(0.0);
                if !cps.is_finite() || cps <= 0.0 {
                    fail(format!("sweep_trace: configs_per_sec = {cps}"));
                }
            }
            "serve_trace" => {
                let p99 = num_field(obj, "p99_ms").unwrap_or(f64::NAN);
                let rps = num_field(obj, "requests_per_sec").unwrap_or(0.0);
                if !p99.is_finite() || p99 <= 0.0 || !rps.is_finite() || rps <= 0.0 {
                    fail(format!("serve_trace: p99_ms = {p99}, requests_per_sec = {rps}"));
                }
            }
            _ => {}
        }
        seen.push(mode);
    }
    for required in ["span_disabled", "sweep_off", "sweep_trace", "serve_trace"] {
        if !seen.iter().any(|m| m == required) {
            fail(format!("missing the `{required}` row"));
        }
    }
    println!("BENCH check: {path}: {} rows ok", objects.len());
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = flag_value(&args, "--check") {
        let max_pct = flag_value(&args, "--max-overhead-pct")
            .map_or(5.0, |v| v.parse().expect("bad --max-overhead-pct"));
        let max_disabled = flag_value(&args, "--max-disabled-pct")
            .map_or(1.0, |v| v.parse().expect("bad --max-disabled-pct"));
        check_bench_json(path, max_pct, max_disabled);
        return;
    }
    let parse = |flag: &str, default: usize| -> usize {
        flag_value(&args, flag).map_or(default, |v| v.parse().expect("bad flag value"))
    };
    let reps = parse("--reps", 5).max(1);
    // Oversubscribing a small host adds scheduler noise the paired
    // design cannot cancel, so default to what the host actually has.
    let threads =
        parse("--threads", std::thread::available_parallelism().map_or(1, |n| n.get()).min(4));
    let serve_requests = parse("--serve-requests", 2_000);
    let sample = parse("--trace-sample", 1).max(1) as u64;

    // 1. Disabled-path microbench — must run before the tracer is armed.
    println!("disabled-span microbench…");
    let span_ns = bench_disabled_span();
    let mut r_span = ObsRow::blank("span_disabled");
    r_span.span_ns = span_ns;

    // 2 + 3. Paired off/on sweeps. An unpaired A-then-B comparison is
    // hopeless on small noisy hosts (run-to-run swing dwarfs the real
    // overhead), so the tracer is installed up front, toggled with
    // `set_enabled` — a paused tracer runs the exact disabled fast
    // path — and each rep times one disabled and one enabled sweep
    // back-to-back. Best-of on each side picks both phases' quietest
    // epochs.
    println!("paired fine-grid sweeps, tracing off/on 1-in-{sample} ({reps} reps each)…");
    let (func, workload) = vadd();
    let lines = Arc::new(AtomicU64::new(0));
    assert!(
        flexcl_obs::trace::install(Box::new(CountingSink(Arc::clone(&lines))), sample),
        "tracer already installed"
    );
    flexcl_obs::trace::set_enabled(false);
    let _ = bench_sweep(&func, &workload, threads, 1); // cache warm-up
    let mut points = 0u64;
    let mut cps_off = 0.0f64;
    let mut cps_trace = 0.0f64;
    let mut pair_overhead = f64::INFINITY;
    for _ in 0..reps {
        flexcl_obs::trace::set_enabled(false);
        let (p, off) = bench_sweep(&func, &workload, threads, 1);
        flexcl_obs::trace::set_enabled(true);
        let (_, on) = bench_sweep(&func, &workload, threads, 1);
        points = p;
        cps_off = cps_off.max(off);
        cps_trace = cps_trace.max(on);
        // The quietest pair is the cleanest overhead estimate: every
        // pair carries the true overhead, noisy pairs only inflate it.
        pair_overhead = pair_overhead.min((off / on.max(1e-9) - 1.0) * 100.0);
    }
    // Let the drain catch up, then snapshot before the serve phase so
    // sweep span accounting is not polluted by request spans.
    let sweep_spans = settled_line_count(&lines);
    let mut r_off = ObsRow::blank("sweep_off");
    r_off.kernel = "vadd";
    r_off.grid = "fine";
    r_off.points = points;
    r_off.threads = threads;
    r_off.reps = reps;
    r_off.configs_per_sec = cps_off;
    let mut r_trace = ObsRow::blank("sweep_trace");
    r_trace.kernel = "vadd";
    r_trace.grid = "fine";
    r_trace.points = points;
    r_trace.threads = threads;
    r_trace.reps = reps;
    r_trace.configs_per_sec = cps_trace;
    r_trace.overhead_pct = pair_overhead;

    // 4. Serve latency with tracing on.
    flexcl_obs::trace::set_enabled(true);
    println!("serve steady phase with tracing on ({serve_requests} requests)…");
    let (p50, p99, rps) = bench_serve(serve_requests);
    let mut r_serve = ObsRow::blank("serve_trace");
    r_serve.p50_ms = p50;
    r_serve.p99_ms = p99;
    r_serve.requests_per_sec = rps;

    flexcl_obs::trace::shutdown();
    r_trace.spans_emitted = sweep_spans;
    r_trace.trace_dropped = flexcl_obs::trace::dropped_counter().get();

    // Derived disabled-path overhead: every emitted span corresponds to
    // one disabled-path call site hit, so spans-per-point × disabled
    // ns/op bounds what the instrumentation costs when tracing is off.
    let spans_per_point = sweep_spans as f64 / (points.max(1) as f64 * reps as f64);
    let ns_per_point_off = 1e9 / cps_off.max(1e-9);
    r_off.overhead_pct = span_ns * spans_per_point / ns_per_point_off * 100.0;
    r_off.span_ns = span_ns;

    write_bench_json(&[r_span, r_off, r_trace, r_serve], flag_value(&args, "--out"));
}
