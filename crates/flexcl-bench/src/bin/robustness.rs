//! Experiment E4 — §4.2 robustness: FlexCL on a second platform.
//!
//! The paper re-runs `HotSpot` and `pathfinder` on a NAS-120A board with a
//! Kintex UltraScale KU060 and reports 9.7% / 13.6% average error,
//! demonstrating the model is not tuned to one device. We evaluate the
//! same two benchmarks on the KU060 platform profile (different latency
//! tables, DSP/BRAM capacities, DDR4-class memory) with the same design
//! points.
//!
//! Regenerate with `cargo run -p flexcl-bench --bin robustness --release`.

use flexcl_bench::{find_spec, sweep_kernel, write_csv};
use flexcl_core::Platform;
use flexcl_kernels::Scale;

fn main() {
    let mut rows = Vec::new();
    println!("Robustness: FlexCL accuracy on the KU060 platform");
    println!("{:-<64}", "");
    println!(
        "{:<26} {:>12} {:>12}",
        "Kernel", "7V3 err", "KU060 err"
    );
    println!("{:-<64}", "");
    for name in ["hotspot/hotspot", "pathfinder/dynproc"] {
        let spec = find_spec(name);
        let v7 = sweep_kernel(&spec, &Platform::virtex7_adm7v3(), Scale::Test);
        let ku = sweep_kernel(&spec, &Platform::ku060_nas120a(), Scale::Test);
        println!(
            "{:<26} {:>11.1}% {:>11.1}%",
            name,
            v7.flexcl_error_pct(),
            ku.flexcl_error_pct()
        );
        rows.push(format!(
            "{},{:.2},{:.2}",
            name,
            v7.flexcl_error_pct(),
            ku.flexcl_error_pct()
        ));
    }
    println!("{:-<64}", "");
    println!("(paper: HotSpot 9.7%, pathfinder 13.6% on KU060)");
    write_csv("robustness_ku060.csv", "kernel,err_adm7v3_pct,err_ku060_pct", &rows);
}
