//! Accuracy-tail regressions (fixed seeds, Test scale).
//!
//! These pin the two worst cases the divergence triage closed:
//!
//! * `particlefilter/normalize` — the stratified sample used to alias with
//!   the 8-bank DRAM mapping (every sampled group in the bank-conflict
//!   class), inflating `L_mem^wi` by ~2× and the kernel's mean error to
//!   21.6%. De-aliased odd-stride sampling plus warm-up predecessors hold
//!   it under 10%.
//! * `nn/nn` — the worst single design point used to reach 16.2%, from a
//!   biased synthesis-factor population and the model scheduling the
//!   mean-latency graph instead of averaging over implementation draws.
//!   Every point of the full sweep must now sit within 8%.

use flexcl_bench::{find_spec, sweep_kernel};
use flexcl_core::Platform;
use flexcl_kernels::Scale;

#[test]
fn normalize_mean_error_within_ten_percent() {
    let spec = find_spec("particlefilter/normalize");
    let sweep = sweep_kernel(&spec, &Platform::virtex7_adm7v3(), Scale::Test);
    assert!(!sweep.records.is_empty(), "sweep produced no feasible points");
    let mean = sweep.flexcl_error_pct();
    assert!(mean <= 10.0, "particlefilter/normalize mean |error| {mean:.2}% > 10%");
}

#[test]
fn nn_max_point_error_within_eight_percent() {
    let spec = find_spec("nn/nn");
    let sweep = sweep_kernel(&spec, &Platform::virtex7_adm7v3(), Scale::Test);
    assert!(!sweep.records.is_empty(), "sweep produced no feasible points");
    let (max, worst) = sweep
        .records
        .iter()
        .map(|r| (r.flexcl_err() * 100.0, r.config))
        .fold((0.0f64, None), |(m, w), (e, c)| if e > m { (e, Some(c)) } else { (m, w) });
    assert!(max <= 8.0, "nn/nn max point |error| {max:.2}% > 8% at {worst:?}");
}
