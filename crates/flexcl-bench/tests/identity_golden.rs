//! Identity anchor for the coarsening/temporal-blocking axes: estimates at
//! `coarsen_factor == 1` / `temporal_block_depth == 1` must stay bit-identical
//! to the pre-axis model on every suite kernel.
//!
//! The golden file was generated from the model *before* either axis existed
//! (regenerate only on an intentional model change with
//! `FLEXCL_REGEN_GOLDEN=1 cargo test -p flexcl-bench --test identity_golden`).

use flexcl_core::config::{CommMode, OptimizationConfig};
use flexcl_core::KernelAnalysis;
use flexcl_kernels::Scale;
use std::fmt::Write as _;

const GOLDEN: &str = include_str!("data/identity_golden.txt");

/// Largest divisor of `n` drawn from `cands` (descending), falling back to 1.
fn pick_dim(n: u64, cands: &[u32]) -> u32 {
    cands.iter().copied().find(|&c| n % u64::from(c) == 0).unwrap_or(1)
}

/// A small deterministic probe set per work-group: the barrier baseline, a
/// pipelined point, replicated PEs/CUs in both comm modes, and a vectorized
/// point — enough to cover every estimate branch the sweep exercises.
fn probe_configs(wg: (u32, u32)) -> Vec<OptimizationConfig> {
    let base = OptimizationConfig::baseline(wg);
    vec![
        base,
        OptimizationConfig { work_item_pipeline: true, ..base },
        OptimizationConfig {
            work_item_pipeline: true,
            num_pes: 4,
            num_cus: 2,
            comm_mode: CommMode::Pipeline,
            ..base
        },
        OptimizationConfig { num_pes: 2, vector_width: 2, ..base },
        OptimizationConfig {
            work_item_pipeline: true,
            num_pes: 8,
            num_cus: 4,
            vector_width: 2,
            comm_mode: CommMode::Pipeline,
            ..base
        },
    ]
}

fn render_current() -> String {
    let platform = flexcl_core::Platform::virtex7_adm7v3();
    let mut out = String::new();
    for spec in flexcl_kernels::all() {
        let workload = spec.workload(Scale::Test, 7);
        let program = flexcl_frontend::parse_and_check(spec.source)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.full_name()));
        let func = flexcl_ir::lower_kernel(program.kernel(spec.kernel).expect("kernel"))
            .unwrap_or_else(|e| panic!("{}: {e}", spec.full_name()));
        let wg = (
            pick_dim(workload.global.0, &[16, 8, 4, 2]),
            pick_dim(workload.global.1, &[4, 2]),
        );
        let analysis = match KernelAnalysis::analyze(&func, &platform, &workload, wg) {
            Ok(a) => a,
            Err(e) => {
                writeln!(out, "{}|analysis-err|{}", spec.full_name(), e.kind()).unwrap();
                continue;
            }
        };
        for config in probe_configs(wg) {
            match flexcl_core::estimate(&analysis, &config) {
                Ok(est) => writeln!(
                    out,
                    "{}|{config}|{:016x}|{:016x}|{:016x}|{:016x}",
                    spec.full_name(),
                    est.cycles.to_bits(),
                    est.comp_cycles.to_bits(),
                    est.mem_cycles.to_bits(),
                    est.overhead_cycles.to_bits()
                )
                .unwrap(),
                Err(e) => {
                    writeln!(out, "{}|{config}|err:{}", spec.full_name(), e.kind()).unwrap()
                }
            }
        }
    }
    out
}

#[test]
fn identity_configs_match_pre_axis_model_bit_for_bit() {
    let current = render_current();
    if std::env::var_os("FLEXCL_REGEN_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/identity_golden.txt");
        std::fs::write(path, &current).expect("write golden");
        eprintln!("regenerated {path}");
        return;
    }
    let mut mismatches = Vec::new();
    for (want, got) in GOLDEN.lines().zip(current.lines()) {
        if want != got {
            mismatches.push(format!("  want: {want}\n  got:  {got}"));
        }
    }
    let want_n = GOLDEN.lines().count();
    let got_n = current.lines().count();
    assert!(
        mismatches.is_empty() && want_n == got_n,
        "cf=1/tb=1 estimates drifted from the pre-axis model \
         ({} mismatched lines, {want_n} golden vs {got_n} current):\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
}
