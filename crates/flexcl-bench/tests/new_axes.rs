//! Suite-level properties of the thread-coarsening and temporal-blocking
//! axes against the System Run ground truth.
//!
//! The identity half of the contract (cf = 1 / tb = 1 configurations are
//! bit-identical to the pre-axis model) is pinned by `identity_golden`;
//! this suite covers the non-identity half: estimates at cf > 1 / tb > 1
//! must track the simulator, temporal blocking must show its predicted
//! win on the iterative stencils it was built for, and the enlarged
//! sweep grids must actually visit the new axes.

use flexcl_bench::{compile, find_spec};
use flexcl_core::{
    estimate, explore_space, CommMode, DseOptions, KernelAnalysis, OptimizationConfig,
    Platform, SweepGrid,
};
use flexcl_kernels::Scale;
use flexcl_sim::{system_run, SimOptions};

const WG: (u32, u32) = (16, 4);

fn piped(wg: (u32, u32)) -> OptimizationConfig {
    OptimizationConfig {
        work_item_pipeline: true,
        comm_mode: CommMode::Pipeline,
        ..OptimizationConfig::baseline(wg)
    }
}

/// Model-vs-sim relative error for one configuration of a named kernel.
fn model_and_sim(name: &str, cfg: &OptimizationConfig) -> (f64, f64) {
    let spec = find_spec(name);
    let func = compile(&spec);
    let platform = Platform::virtex7_adm7v3();
    let workload = spec.workload(Scale::Test, 1234);
    let analysis =
        KernelAnalysis::analyze(&func, &platform, &workload, cfg.work_group).expect("analysis");
    let est = estimate(&analysis, cfg).expect("estimate");
    assert!(est.feasible, "{name} {cfg} must fit");
    let sys = system_run(&func, &platform, &workload, cfg, SimOptions::default()).expect("sim");
    (est.cycles, sys.cycles)
}

fn rel_err(model: f64, sim: f64) -> f64 {
    (model - sim).abs() / sim
}

#[test]
fn temporal_blocking_wins_for_jacobi2d_in_model_and_sim() {
    let base = piped(WG);
    let blocked = OptimizationConfig { temporal_block_depth: 4, ..base };
    let (m1, s1) = model_and_sim("polybench/jacobi2d", &base);
    let (m4, s4) = model_and_sim("polybench/jacobi2d", &blocked);
    assert!(m4 < m1, "model must predict the temporal-blocking win: {m4} vs {m1}");
    assert!(s4 < s1, "the simulator must realise the win: {s4} vs {s1}");
    assert!(
        rel_err(m4, s4) < 0.5,
        "blocked jacobi2d estimate off by {:.1}% (model {m4}, sim {s4})",
        rel_err(m4, s4) * 100.0
    );
}

#[test]
fn temporal_blocking_wins_for_hotspot_in_model_and_sim() {
    let base = piped(WG);
    let blocked = OptimizationConfig { temporal_block_depth: 2, ..base };
    let (m1, s1) = model_and_sim("hotspot/hotspot", &base);
    let (m2, s2) = model_and_sim("hotspot/hotspot", &blocked);
    assert!(m2 < m1, "model must predict the temporal-blocking win: {m2} vs {m1}");
    assert!(s2 < s1, "the simulator must realise the win: {s2} vs {s1}");
    assert!(
        rel_err(m2, s2) < 0.5,
        "blocked hotspot estimate off by {:.1}% (model {m2}, sim {s2})",
        rel_err(m2, s2) * 100.0
    );
}

#[test]
fn coarsened_estimates_track_the_simulator() {
    for (name, cf) in [("polybench/jacobi2d", 2u32), ("polybench/jacobi2d", 4), ("hotspot/hotspot", 4)] {
        let cfg = OptimizationConfig { coarsen_factor: cf, ..piped(WG) };
        let (m, s) = model_and_sim(name, &cfg);
        assert!(
            rel_err(m, s) < 0.5,
            "{name} cf={cf}: model {m} vs sim {s} ({:.1}% off)",
            rel_err(m, s) * 100.0
        );
    }
}

#[test]
fn fine_grid_sweeps_the_new_axes_and_blocking_reaches_the_frontier() {
    let spec = find_spec("polybench/jacobi2d");
    let func = compile(&spec);
    let platform = Platform::virtex7_adm7v3();
    let workload = spec.workload(Scale::Test, 1234);
    let result = explore_space(
        &func,
        &platform,
        &workload,
        &SweepGrid::fine(),
        DseOptions::default(),
    )
    .expect("fine sweep");
    assert!(result.points.iter().any(|p| p.config.coarsen_factor > 1));
    assert!(result.points.iter().any(|p| p.config.temporal_block_depth > 1));
    // The best blocked point must beat the best unblocked point: the DSE
    // surfaces the reuse win, not just enumerates the axis.
    let best_at = |tb_pred: &dyn Fn(u32) -> bool| {
        result
            .points
            .iter()
            .filter(|p| p.estimate.feasible && tb_pred(p.config.temporal_block_depth))
            .map(|p| p.estimate.cycles)
            .fold(f64::INFINITY, f64::min)
    };
    let best_blocked = best_at(&|tb| tb > 1);
    let best_flat = best_at(&|tb| tb == 1);
    assert!(
        best_blocked < best_flat,
        "temporal blocking must reach the frontier: blocked {best_blocked} vs flat {best_flat}"
    );
    let best = result.best().expect("best point");
    assert!(best.estimate.feasible);
}

#[test]
fn simulator_rejects_temporal_blocking_on_non_iterative_kernels() {
    let spec = find_spec("nn/nn");
    let func = compile(&spec);
    let platform = Platform::virtex7_adm7v3();
    let workload = spec.workload(Scale::Test, 1234);
    let cfg = OptimizationConfig { temporal_block_depth: 2, ..piped((64, 1)) };
    let err = system_run(&func, &platform, &workload, &cfg, SimOptions::default());
    assert!(err.is_err(), "tb > 1 on nn must be rejected end to end");
}
