//! Property: the memoizing evaluation context is observationally
//! identical to the uncached model.
//!
//! [`EvalContext`] serves repeated budgets from its schedule caches and
//! hoists per-family constants; none of that may be visible in results.
//! For arbitrary candidate configurations — valid, degenerate, or
//! hostile — and in arbitrary evaluation orders, a context shared across
//! the whole sequence must return exactly what a fresh
//! [`flexcl_core::estimate`] call returns per configuration: bit-identical
//! `Estimate`s, identical errors.

use flexcl_core::{
    CommMode, EvalContext, KernelAnalysis, OptimizationConfig, Platform, Workload,
};
use flexcl_interp::KernelArg;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One analysis shared across all cases (profiling is the expensive part
/// and is irrelevant to the property under test).
fn analysis() -> &'static KernelAnalysis {
    static A: OnceLock<KernelAnalysis> = OnceLock::new();
    A.get_or_init(|| {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void saxpy(__global float* x, __global float* y, float a) {
                int i = get_global_id(0);
                y[i] = a * x[i] + y[i];
            }",
        )
        .expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        KernelAnalysis::analyze(
            &f,
            &Platform::virtex7_adm7v3(),
            &Workload {
                args: vec![
                    KernelArg::FloatBuf(vec![1.0; 1024]),
                    KernelArg::FloatBuf(vec![2.0; 1024]),
                    KernelArg::Float(0.5),
                ],
                global: (1024, 1),
            },
            (64, 1),
        )
        .expect("analysis")
    })
}

/// Mostly-plausible values with the occasional hostile extreme, so cases
/// reach deep model code instead of all dying in validation.
fn arb_knob() -> BoxedStrategy<u32> {
    prop_oneof![
        proptest::sample::select(vec![0u32, 1, 2, 4, 16, 64]),
        any::<u32>(),
    ]
    .boxed()
}

fn arb_config() -> BoxedStrategy<OptimizationConfig> {
    (
        proptest::sample::select(vec![
            (0u32, 0u32),
            (1, 1),
            (16, 1),
            (64, 1),
            (256, 1),
            (3, 7),
            (u32::MAX, 1),
        ]),
        any::<bool>(),
        arb_knob(),
        arb_knob(),
        arb_knob(),
        any::<bool>(),
        // Coarsening factors skew toward the analyzed levels (1/2/4/8) but
        // include hostile values; temporal depth >1 exercises the typed
        // rejection path (saxpy is not an iterative stencil), which must
        // also be cache-transparent.
        (proptest::sample::select(vec![1u32, 2, 3, 4, 8]), proptest::sample::select(vec![1u32, 2, 4])),
    )
        .prop_map(|(work_group, pipe, num_pes, num_cus, vector_width, pipe_mode, (cf, tb))| {
            OptimizationConfig {
                work_group,
                work_item_pipeline: pipe,
                num_pes,
                num_cus,
                vector_width,
                comm_mode: if pipe_mode { CommMode::Pipeline } else { CommMode::Barrier },
                coarsen_factor: cf,
                temporal_block_depth: tb,
            }
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A context shared across an arbitrary sequence of configurations
    /// returns, for each one, exactly what the uncached entry point
    /// returns — regardless of which budgets happen to hit the caches.
    #[test]
    fn shared_context_matches_fresh_estimates(
        configs in proptest::collection::vec(arb_config(), 1..40),
    ) {
        let a = analysis();
        let mut ctx = EvalContext::new(a);
        for cfg in &configs {
            let cached = ctx.estimate(cfg);
            let fresh = flexcl_core::estimate(a, cfg);
            prop_assert_eq!(cached, fresh, "divergence at {}", cfg);
        }
    }

    /// Evaluation order must not matter: the same set of configurations
    /// evaluated forwards and backwards through two contexts yields the
    /// same per-configuration results (the caches memoize pure functions).
    #[test]
    fn evaluation_order_is_immaterial(
        configs in proptest::collection::vec(arb_config(), 1..20),
    ) {
        let a = analysis();
        let mut fwd = EvalContext::new(a);
        let forward: Vec<_> = configs.iter().map(|c| fwd.estimate(c)).collect();
        let mut bwd = EvalContext::new(a);
        let mut backward: Vec<_> =
            configs.iter().rev().map(|c| bwd.estimate(c)).collect();
        backward.reverse();
        prop_assert_eq!(forward, backward);
    }
}
