//! Property: the chunked work-stealing sweep is a pure function of the
//! schedule order — never of thread count or timing.
//!
//! The DSE engine claims fixed-size chunks from an atomic counter and
//! prunes against a racy shared incumbent, then runs a deterministic
//! replay pass that re-derives every pruning decision from the prefix
//! incumbent. These properties pin the contract down:
//!
//! * with pruning **off**, the explored points are bit-identical to the
//!   serial exhaustive sweep at *any* thread count and chunk size;
//! * with pruning **on**, the survivor set is a function of the chunk
//!   size alone — threads ∈ {2, 4, 8} reproduce the threads = 1 sweep
//!   bit for bit — and `best()` always matches the exhaustive sweep.

use flexcl_core::{
    explore_space, explore_with, DseOptions, DseResult, Platform, SweepGrid, Workload,
};
use flexcl_interp::KernelArg;
use flexcl_ir::Function;
use proptest::prelude::*;
use std::sync::OnceLock;

/// vadd has no barrier, so its space spans both communication modes and
/// every vector width — the richest pruning surface the standard grid
/// offers.
fn fixture() -> &'static (Function, Workload, Platform) {
    static F: OnceLock<(Function, Workload, Platform)> = OnceLock::new();
    F.get_or_init(|| {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
                int i = get_global_id(0);
                c[i] = a[i] + b[i];
            }",
        )
        .expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        let w = Workload {
            args: vec![
                KernelArg::FloatBuf(vec![1.0; 4096]),
                KernelArg::FloatBuf(vec![2.0; 4096]),
                KernelArg::FloatBuf(vec![0.0; 4096]),
            ],
            global: (4096, 1),
        };
        (f, w, Platform::virtex7_adm7v3())
    })
}

/// The serial exhaustive reference every case compares against. Computed
/// once; the process-wide analysis cache keeps the per-case sweeps cheap.
fn serial_exhaustive() -> &'static DseResult {
    static R: OnceLock<DseResult> = OnceLock::new();
    R.get_or_init(|| {
        let (f, w, platform) = fixture();
        explore_with(f, platform, w, DseOptions::default()).expect("serial sweep")
    })
}

fn sweep(threads: usize, chunk_size: usize, prune: bool) -> DseResult {
    let (f, w, platform) = fixture();
    let opts = DseOptions { threads, chunk_size, prune, ..DseOptions::default() };
    explore_with(f, platform, w, opts).expect("sweep")
}

fn assert_points_identical(a: &DseResult, b: &DseResult) {
    assert_eq!(a.points.len(), b.points.len(), "point counts differ");
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa.config, pb.config);
        assert_eq!(pa.estimate, pb.estimate, "{}", pa.config);
    }
}

/// An iterative stencil, so the enlarged fine grid enumerates BOTH new
/// axes (coarsening per work-group family, temporal depth space-wide).
fn stencil_fixture() -> &'static (Function, Workload, Platform) {
    static F: OnceLock<(Function, Workload, Platform)> = OnceLock::new();
    F.get_or_init(|| {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void jacobi2d(__global float* a, __global float* b, int w, int h) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                int i = y * w + x;
                if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
                    b[i] = 0.2f * (a[i] + a[i - 1] + a[i + 1] + a[i - w] + a[i + w]);
                }
            }",
        )
        .expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        let w = Workload {
            args: vec![
                KernelArg::FloatBuf(vec![1.0; 1024]),
                KernelArg::FloatBuf(vec![0.0; 1024]),
                KernelArg::Int(32),
                KernelArg::Int(32),
            ],
            global: (32, 32),
        };
        (f, w, Platform::virtex7_adm7v3())
    })
}

/// The fine grid enlarged by the coarsening/temporal axes remains a pure
/// function of the schedule order: threads ∈ {2, 4, 8} reproduce the
/// threads = 1 sweep bit for bit, pruning on or off, and the swept space
/// genuinely contains points on the new axes.
#[test]
fn fine_grid_with_new_axes_is_deterministic_across_threads() {
    let (f, w, platform) = stencil_fixture();
    let run = |threads: usize, prune: bool| {
        let opts = DseOptions { threads, chunk_size: 37, prune, ..DseOptions::default() };
        explore_space(f, platform, w, &SweepGrid::fine(), opts).expect("fine sweep")
    };
    for prune in [false, true] {
        let reference = run(1, prune);
        assert!(
            reference.points.iter().any(|p| p.config.coarsen_factor > 1),
            "fine grid must sweep the coarsening axis"
        );
        assert!(
            reference.points.iter().any(|p| p.config.temporal_block_depth > 1),
            "fine grid must sweep the temporal axis on an iterative stencil"
        );
        for threads in [2usize, 4, 8] {
            let parallel = run(threads, prune);
            assert_points_identical(&reference, &parallel);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exhaustive sweeps are bit-identical to the serial reference for
    /// every (threads, chunk size) combination — chunk granularity and
    /// work stealing leave no fingerprint on the result.
    #[test]
    fn exhaustive_sweep_is_bit_identical(
        threads in proptest::sample::select(vec![1usize, 2, 3, 4, 8]),
        chunk_size in proptest::sample::select(vec![0usize, 1, 3, 7, 16, 64, 333, 5000]),
    ) {
        let result = sweep(threads, chunk_size, false);
        assert_points_identical(serial_exhaustive(), &result);
        prop_assert!(result.diagnostics.is_clean(), "{:?}", result.diagnostics);
    }

    /// Pruned sweeps drop dominated points, but *which* points survive is
    /// decided by the deterministic replay pass: the survivor set depends
    /// only on the chunk size, so any thread count reproduces the
    /// threads = 1 sweep exactly, and the best point always matches the
    /// exhaustive sweep.
    #[test]
    fn pruned_sweep_is_deterministic_and_preserves_best(
        threads in proptest::sample::select(vec![2usize, 4, 8]),
        chunk_size in proptest::sample::select(vec![0usize, 1, 5, 17, 64, 1000]),
    ) {
        let reference = sweep(1, chunk_size, true);
        let parallel = sweep(threads, chunk_size, true);
        assert_points_identical(&reference, &parallel);

        let exhaustive = serial_exhaustive();
        let (eb, pb) = (
            exhaustive.best().expect("exhaustive best"),
            parallel.best().expect("pruned best"),
        );
        prop_assert_eq!(eb.config, pb.config);
        prop_assert_eq!(eb.estimate.cycles, pb.estimate.cycles);

        // Survivors are an in-order subset of the exhaustive sweep with
        // unaltered estimates (pruning may drop points, never edit them).
        let mut it = exhaustive.points.iter();
        for p in &parallel.points {
            let twin = it
                .by_ref()
                .find(|q| q.config == p.config)
                .expect("pruned point present in exhaustive sweep, in order");
            prop_assert_eq!(&twin.estimate, &p.estimate);
        }
    }
}
