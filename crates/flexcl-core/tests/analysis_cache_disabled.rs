//! Regression: `DseOptions.analysis_cache_cap == 0` is the documented
//! no-cache mode — the sweep must not touch the process-wide analysis
//! cache at all (no lookups, no inserts), and the explored points must
//! be bit-identical to a cache-enabled sweep.
//!
//! Before the validation fix, cap 0 fell through to the FIFO insert path
//! with a `max(1)` backstop — the sweep silently cached one entry while
//! claiming to cache none.
//!
//! This lives in its own integration-test binary: the analysis cache is
//! process-global, so sharing a process with cache-exercising tests
//! would make hit/miss counts racy.

use flexcl_core::{explore_with, DseOptions, Platform, Workload};
use flexcl_interp::KernelArg;

fn fixture() -> (flexcl_ir::Function, Workload, Platform) {
    let p = flexcl_frontend::parse_and_check(
        "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
            int i = get_global_id(0);
            c[i] = a[i] + b[i];
        }",
    )
    .expect("frontend");
    let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
    let w = Workload {
        args: vec![
            KernelArg::FloatBuf(vec![1.0; 4096]),
            KernelArg::FloatBuf(vec![2.0; 4096]),
            KernelArg::FloatBuf(vec![0.0; 4096]),
        ],
        global: (4096, 1),
    };
    (f, w, Platform::virtex7_adm7v3())
}

#[test]
fn cap_zero_disables_the_analysis_cache_entirely() {
    let (f, w, platform) = fixture();
    let opts = DseOptions { reuse_analysis: true, analysis_cache_cap: 0, ..DseOptions::default() };

    // First cap-0 sweep: every family must be a miss, nothing cached.
    let first = explore_with(&f, &platform, &w, opts).expect("first sweep");
    assert!(first.stats.families_analyzed > 0);
    assert_eq!(first.stats.analysis_cache_hits, 0, "cap 0 must never hit");
    assert_eq!(first.stats.analysis_cache_misses, first.stats.families_analyzed as u64);

    // Second cap-0 sweep of the *same content*: still all misses — the
    // first sweep must not have inserted anything behind our back.
    let second = explore_with(&f, &platform, &w, opts).expect("second sweep");
    assert_eq!(second.stats.analysis_cache_hits, 0, "first sweep leaked an insert");
    assert_eq!(second.stats.analysis_cache_misses, second.stats.families_analyzed as u64);

    // No-cache answers are bit-identical to cache-enabled answers.
    let cached_opts = DseOptions { reuse_analysis: true, ..DseOptions::default() };
    let cached = explore_with(&f, &platform, &w, cached_opts).expect("cached sweep");
    assert_eq!(first.points.len(), cached.points.len());
    for (a, b) in first.points.iter().zip(&cached.points) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.estimate, b.estimate, "{}", a.config);
    }

    // And now the cache is warm: a third cache-enabled sweep hits, which
    // proves the earlier all-miss runs really did mean "disabled" rather
    // than "broken for everyone".
    let warm = explore_with(&f, &platform, &w, cached_opts).expect("warm sweep");
    assert_eq!(warm.stats.analysis_cache_hits, warm.stats.families_analyzed as u64);
}
