//! Property: the sweep engine is total over its inputs. Arbitrary
//! candidate configurations (including degenerate zeros and overflowing
//! replication factors) and arbitrary sweep options (thread counts,
//! pruning, hostile fuel budgets) must flow through [`explore_configs`]
//! without a panic: invalid candidates surface in the
//! [`DiagnosticsReport`], never as a crash.

use flexcl_core::{
    explore_configs, CommMode, DseOptions, OptimizationConfig, Platform, ProfileFuel, Workload,
};
use flexcl_interp::KernelArg;
use proptest::prelude::*;

fn scale_kernel() -> flexcl_ir::Function {
    let p = flexcl_frontend::parse_and_check(
        "__kernel void scale(__global float* x, float a) {
            int i = get_global_id(0);
            x[i] = x[i] * a;
        }",
    )
    .expect("frontend");
    flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering")
}

fn workload() -> Workload {
    Workload {
        args: vec![KernelArg::FloatBuf(vec![1.0; 256]), KernelArg::Float(2.0)],
        global: (256, 1),
    }
}

/// Mostly-plausible values with the occasional hostile extreme, so cases
/// reach deep model code instead of all dying in validation.
fn arb_knob() -> BoxedStrategy<u32> {
    prop_oneof![
        proptest::sample::select(vec![0u32, 1, 2, 4, 16, 64]),
        any::<u32>(),
    ]
}

fn arb_config() -> BoxedStrategy<OptimizationConfig> {
    (
        proptest::sample::select(vec![
            (0u32, 0u32),
            (1, 1),
            (16, 1),
            (64, 1),
            (256, 1),
            (3, 7),
            (u32::MAX, 1),
        ]),
        any::<bool>(),
        arb_knob(),
        arb_knob(),
        arb_knob(),
        any::<bool>(),
        (arb_knob(), arb_knob()),
    )
        .prop_map(
            |(work_group, pipe, num_pes, num_cus, vector_width, pipe_mode, (cf, tb))| {
                OptimizationConfig {
                    work_group,
                    work_item_pipeline: pipe,
                    num_pes,
                    num_cus,
                    vector_width,
                    comm_mode: if pipe_mode { CommMode::Pipeline } else { CommMode::Barrier },
                    coarsen_factor: cf,
                    temporal_block_depth: tb,
                }
            },
        )
        .boxed()
}

fn arb_opts() -> BoxedStrategy<DseOptions> {
    (
        0usize..5,
        any::<bool>(),
        proptest::sample::select(vec![0u64, 1, 1_000, 10_000_000]),
        proptest::sample::select(vec![0usize, 1, 1 << 20]),
        any::<bool>(),
        proptest::sample::select(vec![0usize, 1, 7, 4096]),
        proptest::sample::select(vec![1usize, 2, 64]),
    )
        .prop_map(
            |(threads, prune, step_limit, trace_limit, reuse_analysis, chunk_size, cache_cap)| {
                DseOptions {
                    threads,
                    prune,
                    fuel: ProfileFuel { step_limit, trace_limit, ..ProfileFuel::default() },
                    reuse_analysis,
                    chunk_size,
                    analysis_cache_cap: cache_cap,
                    inject: None,
                }
            },
        )
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn explore_configs_never_panics(
        configs in proptest::collection::vec(arb_config(), 0..6),
        opts in arb_opts(),
    ) {
        let func = scale_kernel();
        let platform = Platform::virtex7_adm7v3();
        let w = workload();
        // Ok (possibly with diagnostics) or a typed error — never a panic.
        if let Ok(result) = explore_configs(&func, &platform, &w, &configs, opts) {
            prop_assert!(
                result.points.len() + result.diagnostics.skipped_count() <= configs.len()
            );
        }
    }

    #[test]
    fn validate_and_estimate_are_total(config in arb_config()) {
        // validate() itself must be panic-free on the whole domain
        // (including the u32::MAX * u32::MAX overflow corner)...
        let validation = config.validate();
        // ...and a validated config must estimate without panicking.
        if validation.is_ok() && config.work_group == (64, 1) {
            let func = scale_kernel();
            let platform = Platform::virtex7_adm7v3();
            let analysis = flexcl_core::KernelAnalysis::analyze(
                &func, &platform, &workload(), (64, 1),
            ).expect("analysis");
            let _ = flexcl_core::estimate(&analysis, &config);
        }
    }
}
