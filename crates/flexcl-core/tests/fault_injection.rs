//! Fault-injection suite for the fault-tolerant DSE sweep.
//!
//! Each test poisons one layer of the pipeline — candidate configurations,
//! the kernel's runtime behaviour (via the profiling fuel budget), the
//! platform description, or the analysis itself (an injected panic) — and
//! asserts the sweep's failure contract:
//!
//! * the sweep **completes** (`Ok`) instead of aborting or hanging,
//! * every skipped candidate is **attributed** in the
//!   [`DiagnosticsReport`] with the right [`ErrorKind`],
//! * the surviving points are **bit-identical** to a clean sweep over the
//!   same subset, serial and parallel alike.
//!
//! Only corrupt platform tables reject the whole sweep, and they do so up
//! front with a typed error rather than a hundred per-candidate failures.
//!
//! Most sweeps here run with `prune: false` (the default) so the clean
//! reference covers every candidate; pruned sweeps are fair game too —
//! the scheduler's deterministic replay pass makes even the pruned
//! survivor set independent of thread timing (see
//! `tests/chunk_determinism.rs`).

use flexcl_core::dse::testhook;
use flexcl_core::{
    enumerate, explore_configs, explore_with, limits_for, DseOptions, DseResult, ErrorKind,
    OptimizationConfig, Platform, ProfileFuel, Workload,
};
use flexcl_interp::KernelArg;
use std::sync::Mutex;

/// The testhook's armed state is process-global and an armed panic would
/// leak into any concurrently running sweep, so every test in this file
/// serializes on this lock (poison-tolerant: a failed test must not
/// cascade into the others).
static LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Disarms the injected panic even if the test itself fails.
struct Disarm;

impl Drop for Disarm {
    fn drop(&mut self) {
        testhook::disarm();
    }
}

fn compile(src: &str) -> flexcl_ir::Function {
    let p = flexcl_frontend::parse_and_check(src).expect("frontend");
    flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering")
}

fn vadd() -> (flexcl_ir::Function, Workload) {
    let f = compile(
        "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
            int i = get_global_id(0);
            c[i] = a[i] + b[i];
        }",
    );
    let w = Workload {
        args: vec![
            KernelArg::FloatBuf(vec![1.0; 4096]),
            KernelArg::FloatBuf(vec![2.0; 4096]),
            KernelArg::FloatBuf(vec![0.0; 4096]),
        ],
        global: (4096, 1),
    };
    (f, w)
}

fn assert_points_identical(a: &DseResult, b: &DseResult) {
    assert_eq!(a.points.len(), b.points.len(), "point counts differ");
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa.config, pb.config);
        assert_eq!(pa.estimate, pb.estimate, "{}", pa.config);
    }
}

#[test]
fn poisoned_configs_are_skipped_and_survivors_are_bit_identical() {
    let _guard = serialize();
    let (f, w) = vadd();
    let platform = Platform::virtex7_adm7v3();
    let valid = enumerate(&limits_for(&f, &w));
    assert!(valid.len() >= 100);

    // Interleave three invalid candidates among the valid ones.
    let poison = [
        (3usize, OptimizationConfig { work_group: (0, 1), ..Default::default() }),
        (40, OptimizationConfig { num_pes: 0, ..Default::default() }),
        (valid.len(), OptimizationConfig { vector_width: 0, ..Default::default() }),
    ];
    let mut poisoned = valid.clone();
    for &(at, cfg) in poison.iter().rev() {
        poisoned.insert(at, cfg);
    }

    let clean = explore_configs(&f, &platform, &w, &valid, DseOptions::default())
        .expect("clean sweep");
    assert!(clean.diagnostics.is_clean());

    for threads in [1, 3] {
        let opts = DseOptions { threads, ..DseOptions::default() };
        let result =
            explore_configs(&f, &platform, &w, &poisoned, opts).expect("poisoned sweep");
        assert_eq!(result.diagnostics.skipped_count(), poison.len());
        assert_eq!(result.diagnostics.count_of(ErrorKind::Config), poison.len());
        // Failures are attributed to the exact candidates, in order.
        for (fp, &(at, cfg)) in result.diagnostics.failed.iter().zip(poison.iter()) {
            assert_eq!(fp.index, at + poison.iter().filter(|(b, _)| *b < at).count());
            assert_eq!(fp.config, cfg);
            assert_eq!(fp.kind, ErrorKind::Config);
        }
        assert_points_identical(&clean, &result);
    }
}

#[test]
fn runaway_kernel_exhausts_fuel_instead_of_hanging() {
    let _guard = serialize();
    let f = compile(
        "__kernel void spin(__global float* a) {
            int i = get_global_id(0);
            float acc = 0.0f;
            for (int j = 0; j < 1000000; j = j + 1) {
                acc = acc + 1.0f;
            }
            a[i] = acc;
        }",
    );
    let w = Workload { args: vec![KernelArg::FloatBuf(vec![0.0; 64])], global: (64, 1) };
    let platform = Platform::virtex7_adm7v3();
    let opts = DseOptions {
        fuel: ProfileFuel { step_limit: 1_000, trace_limit: 1 << 20, ..ProfileFuel::default() },
        ..DseOptions::default()
    };

    let result = explore_with(&f, &platform, &w, opts).expect("sweep completes");
    // Every family burns through the budget during profiling: no points,
    // every enumerated candidate attributed as a resource-limit failure.
    assert!(result.points.is_empty());
    assert!(!result.diagnostics.is_clean());
    let n = result.diagnostics.skipped_count();
    assert_eq!(result.diagnostics.count_of(ErrorKind::ResourceLimit), n);
    assert!(result.diagnostics.failed[0].message.contains("spin"));
    // The same budget parallelized reports the same failures.
    let par = explore_with(&f, &platform, &w, DseOptions { threads: 3, ..opts })
        .expect("parallel sweep completes");
    assert_eq!(par.diagnostics, result.diagnostics);
}

#[test]
fn corrupt_platform_table_is_rejected_up_front() {
    let _guard = serialize();
    let (f, w) = vadd();
    let no_ports =
        Platform { local_read_ports_per_bank: 0, ..Platform::virtex7_adm7v3() };
    let err = explore_with(&f, &no_ports, &w, DseOptions::default()).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Platform);
    assert!(err.to_string().contains("read port"), "{err}");

    let nan_clock = Platform { frequency_mhz: f64::NAN, ..Platform::virtex7_adm7v3() };
    let err = explore_with(&f, &nan_clock, &w, DseOptions::default()).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Platform);
}

#[test]
fn injected_panic_is_contained_and_attributed() {
    let _guard = serialize();
    let (f, w) = vadd();
    let platform = Platform::virtex7_adm7v3();
    let all = enumerate(&limits_for(&f, &w));
    let survivors: Vec<OptimizationConfig> =
        all.iter().copied().filter(|c| c.work_group != (64, 1)).collect();
    assert!(survivors.len() < all.len(), "the (64,1) family must exist");

    let clean = explore_configs(&f, &platform, &w, &survivors, DseOptions::default())
        .expect("clean sweep");

    for threads in [1, 4] {
        let _disarm = Disarm;
        testhook::arm_panic((64, 1));
        let opts = DseOptions { threads, ..DseOptions::default() };
        let result = explore_with(&f, &platform, &w, opts).expect("sweep survives the panic");
        testhook::disarm();

        let poisoned_family = all.iter().filter(|c| c.work_group == (64, 1)).count();
        assert_eq!(result.diagnostics.skipped_count(), poisoned_family);
        assert_eq!(result.diagnostics.count_of(ErrorKind::Panic), poisoned_family);
        for fp in &result.diagnostics.failed {
            assert_eq!(fp.config.work_group, (64, 1));
            assert!(fp.message.contains("injected panic"), "{}", fp.message);
        }
        // The other families are untouched: bit-identical to a clean sweep
        // over exactly the surviving candidates.
        assert_points_identical(&clean, &result);
    }
}

#[test]
fn estimate_panic_is_isolated_to_one_candidate() {
    let _guard = serialize();
    let (f, w) = vadd();
    let platform = Platform::virtex7_adm7v3();
    let all = enumerate(&limits_for(&f, &w));

    // Poison a candidate from the middle of a family: its chunk must keep
    // evaluating past the panic, and the family's other chunks must be
    // untouched.
    let victim = all.len() / 2;
    let survivors: Vec<OptimizationConfig> = all
        .iter()
        .copied()
        .enumerate()
        .filter(|&(i, _)| i != victim)
        .map(|(_, c)| c)
        .collect();
    let clean = explore_configs(&f, &platform, &w, &survivors, DseOptions::default())
        .expect("clean sweep");

    for threads in [1, 4] {
        // Small chunks so the poisoned family spans many chunks.
        let opts = DseOptions { threads, chunk_size: 7, ..DseOptions::default() };
        let _disarm = Disarm;
        testhook::arm_estimate_panic(victim);
        let result = explore_with(&f, &platform, &w, opts).expect("sweep survives the panic");
        testhook::disarm();

        assert_eq!(result.diagnostics.skipped_count(), 1);
        let fp = &result.diagnostics.failed[0];
        assert_eq!(fp.index, victim);
        assert_eq!(fp.config, all[victim]);
        assert_eq!(fp.kind, ErrorKind::Panic);
        assert!(fp.message.contains("injected panic"), "{}", fp.message);
        // Every other candidate — including the rest of the victim's own
        // chunk and family — is bit-identical to the clean sweep.
        assert_points_identical(&clean, &result);
    }
}

#[test]
fn per_sweep_injected_faults_poison_only_their_own_sweep() {
    let _guard = serialize();
    let (f, w) = vadd();
    let platform = Platform::virtex7_adm7v3();
    let clean = explore_with(&f, &platform, &w, DseOptions::default()).expect("clean sweep");
    assert!(clean.diagnostics.is_clean());

    // An analysis panic armed through DseOptions (the serving layer's
    // per-request fault surface) takes down every family of *that* sweep…
    let opts = DseOptions {
        inject: Some(testhook::InjectedFault::AnalysisPanic),
        ..DseOptions::default()
    };
    let poisoned = explore_with(&f, &platform, &w, opts).expect("sweep survives");
    assert!(poisoned.points.is_empty());
    let n = poisoned.diagnostics.skipped_count();
    assert!(n > 0);
    assert_eq!(poisoned.diagnostics.count_of(ErrorKind::Panic), n);

    // …while a concurrent-in-time clean sweep (same process, nothing
    // armed globally) is untouched — unlike the arm_panic statics, the
    // per-sweep fault cannot leak.
    let after = explore_with(&f, &platform, &w, DseOptions::default()).expect("clean rerun");
    assert!(after.diagnostics.is_clean());
    assert_points_identical(&clean, &after);

    // The estimate-path variant hits exactly one candidate.
    let opts = DseOptions {
        inject: Some(testhook::InjectedFault::EstimatePanic(5)),
        ..DseOptions::default()
    };
    let one = explore_with(&f, &platform, &w, opts).expect("sweep survives");
    assert_eq!(one.diagnostics.skipped_count(), 1);
    assert_eq!(one.diagnostics.failed[0].index, 5);
    assert_eq!(one.diagnostics.failed[0].kind, ErrorKind::Panic);
}

#[test]
fn disarmed_testhook_costs_nothing_and_changes_nothing() {
    let _guard = serialize();
    let (f, w) = vadd();
    let platform = Platform::virtex7_adm7v3();
    let a = explore_with(&f, &platform, &w, DseOptions::default()).expect("sweep");
    assert!(a.diagnostics.is_clean());
    let b = explore_with(&f, &platform, &w, DseOptions::default()).expect("sweep");
    assert_points_identical(&a, &b);
}
