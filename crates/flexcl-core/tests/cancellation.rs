//! Property: cancellation at *any* chunk-claim boundary is safe and
//! leaves no fingerprint on later sweeps.
//!
//! `CancelToken::after_checkpoints(n)` deterministically reproduces "the
//! deadline fired at the n-th chunk boundary". For every trip point the
//! contract is:
//!
//! * a cancelled sweep returns the typed `FlexclError::Deadline` — never
//!   panics, never a truncated `Ok` — carrying partial `DseStats`
//!   bounded by the full sweep's totals;
//! * a fresh uncancelled sweep afterwards is bit-identical to the
//!   reference, i.e. cancellation cannot corrupt shared state (the
//!   process-wide analysis cache, interned analyses);
//! * a token tripped *before* the first claim yields zero-point stats.

use flexcl_core::config::SweepGrid;
use flexcl_core::dse::CancelToken;
use flexcl_core::{
    explore_space, explore_space_deadline, DseOptions, DseResult, ErrorKind, FlexclError,
    Platform, Workload,
};
use flexcl_interp::KernelArg;
use flexcl_ir::Function;
use proptest::prelude::*;
use std::sync::OnceLock;

fn fixture() -> &'static (Function, Workload, Platform) {
    static F: OnceLock<(Function, Workload, Platform)> = OnceLock::new();
    F.get_or_init(|| {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
                int i = get_global_id(0);
                c[i] = a[i] + b[i];
            }",
        )
        .expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        let w = Workload {
            args: vec![
                KernelArg::FloatBuf(vec![1.0; 4096]),
                KernelArg::FloatBuf(vec![2.0; 4096]),
                KernelArg::FloatBuf(vec![0.0; 4096]),
            ],
            global: (4096, 1),
        };
        (f, w, Platform::virtex7_adm7v3())
    })
}

/// Small chunks so the standard grid spans many claim boundaries.
fn opts(threads: usize) -> DseOptions {
    DseOptions { threads, chunk_size: 8, ..DseOptions::default() }
}

fn reference() -> &'static DseResult {
    static R: OnceLock<DseResult> = OnceLock::new();
    R.get_or_init(|| {
        let (f, w, platform) = fixture();
        explore_space(f, platform, w, &SweepGrid::standard(), opts(1)).expect("reference")
    })
}

fn assert_points_identical(a: &DseResult, b: &DseResult) {
    assert_eq!(a.points.len(), b.points.len(), "point counts differ");
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa.config, pb.config);
        assert_eq!(pa.estimate, pb.estimate, "{}", pa.config);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Trip the token at an arbitrary boundary, at various thread
    /// counts: typed error with sane partial stats, and the next
    /// uncancelled sweep is still bit-identical to the reference.
    #[test]
    fn cancelled_sweep_returns_partial_stats_and_leaves_no_residue(
        trip_after in 0u64..60,
        threads in proptest::sample::select(vec![1usize, 2, 4]),
    ) {
        let (f, w, platform) = fixture();
        let full = reference();
        let token = CancelToken::after_checkpoints(trip_after);
        let out = explore_space_deadline(f, platform, w, &SweepGrid::standard(), opts(threads), &token);
        match out {
            Err(FlexclError::Deadline { detail, stats, .. }) => {
                prop_assert!(token.is_cancelled());
                prop_assert_eq!(detail.as_str(), "cancelled");
                prop_assert!(stats.chunks_processed <= full.stats.chunks_processed,
                    "partial {} > full {}", stats.chunks_processed, full.stats.chunks_processed);
                prop_assert!(stats.points_evaluated <= full.stats.points_evaluated);
            }
            // A generous trip point can let the sweep finish; then it
            // must be the full, bit-identical result.
            Ok(result) => assert_points_identical(full, &result),
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
        // Cancellation must not poison shared state for the next caller.
        let rerun = explore_space(f, platform, w, &SweepGrid::standard(), opts(threads))
            .expect("uncancelled rerun");
        assert_points_identical(full, &rerun);
    }
}

#[test]
fn kind_is_deadline_and_error_kind_maps() {
    let (f, w, platform) = fixture();
    let token = CancelToken::after_checkpoints(0);
    let err = explore_space_deadline(f, platform, w, &SweepGrid::standard(), opts(1), &token)
        .expect_err("tripped before the first claim");
    assert_eq!(err.kind(), ErrorKind::Deadline);
    let FlexclError::Deadline { stats, .. } = err else { panic!("wrong variant: {err}") };
    assert_eq!(stats.points_evaluated, 0, "no chunk was claimed");
    assert_eq!(stats.chunks_processed, 0);
}

#[test]
fn explicit_cancel_stops_a_sweep_and_reports_cancelled() {
    let (f, w, platform) = fixture();
    let token = CancelToken::new();
    token.cancel();
    let err = explore_space_deadline(f, platform, w, &SweepGrid::standard(), opts(2), &token)
        .expect_err("pre-cancelled token");
    let FlexclError::Deadline { detail, .. } = &err else { panic!("wrong variant: {err}") };
    assert_eq!(detail, "cancelled");
}

#[test]
fn elapsed_deadline_reports_deadline_exceeded() {
    let (f, w, platform) = fixture();
    let token = CancelToken::with_deadline(std::time::Duration::ZERO);
    let err = explore_space_deadline(f, platform, w, &SweepGrid::standard(), opts(1), &token)
        .expect_err("already-expired deadline");
    let FlexclError::Deadline { detail, .. } = &err else { panic!("wrong variant: {err}") };
    assert_eq!(detail, "deadline exceeded");
}

#[test]
fn far_future_deadline_completes_identically() {
    let (f, w, platform) = fixture();
    let token = CancelToken::with_deadline(std::time::Duration::from_secs(3600));
    let result = explore_space_deadline(f, platform, w, &SweepGrid::standard(), opts(2), &token)
        .expect("sweep under a generous deadline");
    assert_points_identical(reference(), &result);
    assert!(!token.is_cancelled());
}
