//! The process-wide analysis cache honours [`DseOptions::analysis_cache_cap`]:
//! small caps evict FIFO (with the evictions counted), large caps keep a
//! working set resident, and eviction never changes the modelled result.
//!
//! The cache is process-global, so this file holds a single test — its
//! assertions depend on cache state and must not interleave with another
//! sweep in the same process.

use flexcl_core::{explore_with, DseOptions, DseResult, Platform, Workload};
use flexcl_interp::KernelArg;
use flexcl_ir::Function;

fn vadd() -> (Function, Workload) {
    let p = flexcl_frontend::parse_and_check(
        "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
            int i = get_global_id(0);
            c[i] = a[i] + b[i];
        }",
    )
    .expect("frontend");
    let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
    let w = Workload {
        args: vec![
            KernelArg::FloatBuf(vec![1.0; 4096]),
            KernelArg::FloatBuf(vec![2.0; 4096]),
            KernelArg::FloatBuf(vec![0.0; 4096]),
        ],
        global: (4096, 1),
    };
    (f, w)
}

fn assert_points_identical(a: &DseResult, b: &DseResult) {
    assert_eq!(a.points.len(), b.points.len());
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa.config, pb.config);
        assert_eq!(pa.estimate, pb.estimate, "{}", pa.config);
    }
}

#[test]
fn small_cache_caps_evict_fifo_and_account_hit_rates() {
    let (f, w) = vadd();
    let platform = Platform::virtex7_adm7v3();
    let at_cap = |cap: usize| DseOptions { analysis_cache_cap: cap, ..DseOptions::default() };

    // Cold sweep: every family misses and is inserted. vadd's standard
    // space has 5 work-group families, so a cap of 2 can hold at most the
    // two most recent.
    let cold = explore_with(&f, &platform, &w, at_cap(2)).expect("cold sweep");
    let families = cold.stats.families_analyzed;
    assert!(families > 2, "need more families ({families}) than the cap");
    assert_eq!(cold.stats.analysis_cache_hits, 0);
    assert_eq!(cold.stats.analysis_cache_misses, families as u64);
    // FIFO at cap 2: the first two inserts fit, every later one evicts
    // exactly the oldest entry.
    assert_eq!(cold.stats.analysis_cache_evictions, families as u64 - 2);
    assert_eq!(cold.stats.analysis_cache_hit_rate(), 0.0);

    // Re-sweeping under the starved cap is the classic FIFO thrash: the
    // resident tail families are evicted by the head families' inserts
    // just before they would be queried, so every family misses again and
    // every insert evicts.
    let warm_small = explore_with(&f, &platform, &w, at_cap(2)).expect("warm small");
    assert_eq!(warm_small.stats.analysis_cache_hits, 0);
    assert_eq!(warm_small.stats.analysis_cache_misses, families as u64);
    assert_eq!(warm_small.stats.analysis_cache_evictions, families as u64);

    // A cap that fits the working set stops the churn: the two families
    // left resident hit immediately, the rest repopulate without
    // evicting, and from then on every family hits.
    let repopulate = explore_with(&f, &platform, &w, at_cap(64)).expect("repopulate");
    assert_eq!(repopulate.stats.analysis_cache_hits, 2);
    assert_eq!(repopulate.stats.analysis_cache_misses, families as u64 - 2);
    assert_eq!(repopulate.stats.analysis_cache_evictions, 0);
    let warm = explore_with(&f, &platform, &w, at_cap(64)).expect("warm");
    assert_eq!(warm.stats.analysis_cache_hits, families as u64);
    assert_eq!(warm.stats.analysis_cache_misses, 0);
    assert_eq!(warm.stats.analysis_cache_evictions, 0);
    assert_eq!(warm.stats.analysis_cache_hit_rate(), 1.0);

    // Eviction and cache state never touch the modelled result.
    assert_points_identical(&cold, &warm_small);
    assert_points_identical(&cold, &warm);
}
