//! The unified error taxonomy of the estimation pipeline.
//!
//! Every fallible stage — frontend, dynamic profiling, scheduling, the
//! memory model, platform/configuration validation — reports through one
//! typed [`FlexclError`], each variant carrying enough context (kernel
//! name, work-group size, design point) to attribute the failure without
//! a debugger. [`ErrorKind`] is the flat classification the DSE
//! diagnostics aggregate over: a sweep never aborts on a bad candidate,
//! it records the kind and moves on (see [`crate::dse::DiagnosticsReport`]).

use crate::config::OptimizationConfig;
use flexcl_interp::{GeometryError, InterpError};
use std::fmt;

/// Coarse classification of a [`FlexclError`], used by sweep diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Lexing, parsing, semantic analysis or IR lowering failed.
    Frontend,
    /// The named kernel does not exist in the translation unit.
    NoSuchKernel,
    /// The work-group size does not tile the NDRange (or a dimension is
    /// zero).
    Geometry,
    /// Dynamic profiling failed (out-of-bounds access, bad arguments).
    Profiling,
    /// Profiling exhausted its fuel budget (step or trace limit) — a
    /// runaway loop or trip-count explosion.
    ResourceLimit,
    /// Block or modulo scheduling failed (e.g. an op class with a zero
    /// resource budget).
    Scheduling,
    /// The global-memory model produced a non-finite latency table.
    MemoryModel,
    /// A platform description violates its invariants.
    Platform,
    /// An optimization configuration violates its invariants.
    Config,
    /// A worker panicked and the panic was contained by the DSE backstop.
    Panic,
    /// A sweep hit its deadline (or was cancelled) before finishing; the
    /// error carries the partial [`crate::dse::DseStats`] accumulated up
    /// to the stop.
    Deadline,
    /// A service rejected the request under load instead of queueing it
    /// unboundedly; the error carries a retry-after hint.
    Overloaded,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorKind::Frontend => "frontend",
            ErrorKind::NoSuchKernel => "no-such-kernel",
            ErrorKind::Geometry => "geometry",
            ErrorKind::Profiling => "profiling",
            ErrorKind::ResourceLimit => "resource-limit",
            ErrorKind::Scheduling => "scheduling",
            ErrorKind::MemoryModel => "memory-model",
            ErrorKind::Platform => "platform",
            ErrorKind::Config => "config",
            ErrorKind::Panic => "panic",
            ErrorKind::Deadline => "deadline",
            ErrorKind::Overloaded => "overloaded",
        };
        f.write_str(s)
    }
}

/// Any failure of the FlexCL pipeline, with attribution context.
#[derive(Debug, Clone, PartialEq)]
pub enum FlexclError {
    /// Lexing, parsing, semantic analysis or IR lowering failed.
    Frontend(flexcl_frontend::FrontendError),
    /// The named kernel does not exist in the translation unit.
    NoSuchKernel {
        /// The kernel name that was requested.
        name: String,
    },
    /// The work-group size does not tile the NDRange.
    Geometry {
        /// Kernel being analyzed.
        kernel: String,
        /// Offending work-group size.
        work_group: (u32, u32),
        /// The precise geometry violation.
        source: GeometryError,
    },
    /// Dynamic profiling failed.
    Profiling {
        /// Kernel being profiled.
        kernel: String,
        /// Work-group size of the profiling run.
        work_group: (u32, u32),
        /// The interpreter error.
        source: InterpError,
    },
    /// Profiling exhausted its fuel budget (step or trace limit).
    ResourceLimit {
        /// Kernel being profiled.
        kernel: String,
        /// Work-group size of the profiling run.
        work_group: (u32, u32),
        /// Which limit was hit, and its value.
        detail: String,
    },
    /// Block or modulo scheduling failed.
    Scheduling {
        /// Kernel being scheduled.
        kernel: String,
        /// The scheduler's diagnosis.
        detail: String,
    },
    /// The global-memory model produced an unusable latency table.
    MemoryModel {
        /// Kernel being analyzed.
        kernel: String,
        /// What went wrong.
        detail: String,
    },
    /// A platform description violates its invariants.
    Platform {
        /// Platform name.
        platform: String,
        /// The violated invariant.
        detail: String,
    },
    /// An optimization configuration violates its invariants.
    Config {
        /// The offending design point.
        config: OptimizationConfig,
        /// The violated invariant.
        detail: String,
    },
    /// A panic was contained by the DSE backstop.
    Panic {
        /// Where the panic was caught (kernel or sweep stage).
        context: String,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A sweep stopped at its deadline (or an explicit cancellation)
    /// before covering the space. The work already done is not lost to
    /// observability: the partial sweep statistics ride along.
    Deadline {
        /// Wall-clock milliseconds the sweep ran before stopping.
        elapsed_ms: u64,
        /// Why the sweep stopped (`deadline exceeded` or `cancelled`).
        detail: String,
        /// Instrumentation from the chunks completed before the stop
        /// (boxed to keep the error type small on every `Result` path).
        stats: Box<crate::dse::DseStats>,
    },
    /// A service shed the request instead of queueing it unboundedly.
    Overloaded {
        /// Requests already queued when this one arrived.
        queue_depth: usize,
        /// The bounded queue's capacity.
        capacity: usize,
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
}

impl FlexclError {
    /// The flat classification of this error.
    pub fn kind(&self) -> ErrorKind {
        match self {
            FlexclError::Frontend(_) => ErrorKind::Frontend,
            FlexclError::NoSuchKernel { .. } => ErrorKind::NoSuchKernel,
            FlexclError::Geometry { .. } => ErrorKind::Geometry,
            FlexclError::Profiling { .. } => ErrorKind::Profiling,
            FlexclError::ResourceLimit { .. } => ErrorKind::ResourceLimit,
            FlexclError::Scheduling { .. } => ErrorKind::Scheduling,
            FlexclError::MemoryModel { .. } => ErrorKind::MemoryModel,
            FlexclError::Platform { .. } => ErrorKind::Platform,
            FlexclError::Config { .. } => ErrorKind::Config,
            FlexclError::Panic { .. } => ErrorKind::Panic,
            FlexclError::Deadline { .. } => ErrorKind::Deadline,
            FlexclError::Overloaded { .. } => ErrorKind::Overloaded,
        }
    }
}

impl fmt::Display for FlexclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlexclError::Frontend(e) => write!(f, "{e}"),
            FlexclError::NoSuchKernel { name } => write!(f, "no kernel named `{name}`"),
            FlexclError::Geometry { kernel, work_group, source } => write!(
                f,
                "kernel `{kernel}`: bad geometry for work-group {}x{}: {source}",
                work_group.0, work_group.1
            ),
            FlexclError::Profiling { kernel, work_group, source } => write!(
                f,
                "kernel `{kernel}`: profiling failed at work-group {}x{}: {source}",
                work_group.0, work_group.1
            ),
            FlexclError::ResourceLimit { kernel, work_group, detail } => write!(
                f,
                "kernel `{kernel}`: profiling fuel exhausted at work-group {}x{}: {detail}",
                work_group.0, work_group.1
            ),
            FlexclError::Scheduling { kernel, detail } => {
                write!(f, "kernel `{kernel}`: scheduling failed: {detail}")
            }
            FlexclError::MemoryModel { kernel, detail } => {
                write!(f, "kernel `{kernel}`: memory model failed: {detail}")
            }
            FlexclError::Platform { platform, detail } => {
                write!(f, "platform `{platform}`: {detail}")
            }
            FlexclError::Config { config, detail } => {
                write!(f, "config `{config}`: {detail}")
            }
            FlexclError::Panic { context, message } => {
                write!(f, "panic in {context}: {message}")
            }
            FlexclError::Deadline { elapsed_ms, detail, stats } => write!(
                f,
                "sweep stopped after {elapsed_ms} ms: {detail} \
                 ({} points evaluated across {} chunks before the stop)",
                stats.points_evaluated, stats.chunks_processed
            ),
            FlexclError::Overloaded { queue_depth, capacity, retry_after_ms } => write!(
                f,
                "overloaded: queue at {queue_depth}/{capacity}; \
                 retry after {retry_after_ms} ms"
            ),
        }
    }
}

impl std::error::Error for FlexclError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlexclError::Frontend(e) => Some(e),
            FlexclError::Geometry { source, .. } => Some(source),
            FlexclError::Profiling { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<flexcl_frontend::FrontendError> for FlexclError {
    fn from(e: flexcl_frontend::FrontendError) -> Self {
        FlexclError::Frontend(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        let e = FlexclError::Scheduling { kernel: "k".into(), detail: "x".into() };
        assert_eq!(e.kind(), ErrorKind::Scheduling);
        assert_eq!(ErrorKind::ResourceLimit.to_string(), "resource-limit");
    }

    #[test]
    fn display_carries_context() {
        let e = FlexclError::ResourceLimit {
            kernel: "runaway".into(),
            work_group: (64, 1),
            detail: "step limit 100 exceeded".into(),
        };
        let s = e.to_string();
        assert!(s.contains("runaway") && s.contains("64x1") && s.contains("step limit"));
    }

    #[test]
    fn service_kinds_are_stable_and_carry_context() {
        let d = FlexclError::Deadline {
            elapsed_ms: 42,
            detail: "deadline exceeded".into(),
            stats: Box::new(crate::dse::DseStats { points_evaluated: 7, ..Default::default() }),
        };
        assert_eq!(d.kind(), ErrorKind::Deadline);
        assert_eq!(ErrorKind::Deadline.to_string(), "deadline");
        let s = d.to_string();
        assert!(s.contains("42 ms") && s.contains("7 points"), "{s}");

        let o = FlexclError::Overloaded { queue_depth: 9, capacity: 8, retry_after_ms: 25 };
        assert_eq!(o.kind(), ErrorKind::Overloaded);
        assert_eq!(ErrorKind::Overloaded.to_string(), "overloaded");
        let s = o.to_string();
        assert!(s.contains("9/8") && s.contains("25 ms"), "{s}");
    }
}
