//! The FlexCL performance equations (§3.3–§3.5).
//!
//! Given a [`KernelAnalysis`] and an [`OptimizationConfig`], [`estimate`]
//! evaluates:
//!
//! * the **PE model** — Eq. 1 with `II_comp^wi`/`D_comp^PE` from
//!   `MII = max(RecMII, ResMII)` refined by swing modulo scheduling;
//! * the **CU model** — Eq. 5–6, PE parallelism capped by shared local
//!   memory ports and DSPs;
//! * the **kernel model** — Eq. 7–8 with the work-group scheduling
//!   overhead `ΔL`;
//! * the **global memory model** — Eq. 9 over the eight Table-1 patterns;
//! * the **integration** — barrier mode (Eq. 10) or pipeline mode
//!   (Eq. 11–12).
//!
//! Deviation note: Eq. 6 of the paper divides port counts by `N·P`, which
//! is dimensionally inconsistent with its own Eq. 4 (it would *shrink*
//! usable parallelism quadratically). We implement the standard
//! resource-sharing form `N_PE = min(P, Ports/N_read, Ports/N_write,
//! DSPs/DSPs_per_PE)`, with ports scaling with the partition factor the
//! toolchain applies when unrolling.

use crate::analysis::KernelAnalysis;
use crate::config::{CommMode, OptimizationConfig, MAX_CUS, MAX_PES, MAX_VECTOR_WIDTH};
use crate::error::FlexclError;
use flexcl_sched::ResourceBudget;
use std::fmt;

/// Why a configuration does not fit on the device.
///
/// A plain-data enum rather than a formatted `String`: large sweeps visit
/// hundreds of thousands of infeasible points (extreme `P·C` products are
/// DSP-bound), and allocating a message per point dominated the sweep's
/// time before the work-stealing scheduler landed. The human-readable
/// form is produced on demand by the `Display` impl.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InfeasibleReason {
    /// The configuration needs more DSP slices than the device has.
    Dsps {
        /// DSPs the replicated design would consume.
        needed: u64,
        /// DSPs on the device.
        available: u32,
    },
    /// The configuration needs more BRAM than the device has.
    BramBytes {
        /// BRAM bytes the replicated local arrays would consume.
        needed: u64,
        /// BRAM bytes on the device.
        available: u64,
    },
}

impl fmt::Display for InfeasibleReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InfeasibleReason::Dsps { needed, available } => {
                write!(f, "needs {needed} DSPs, device has {available}")
            }
            InfeasibleReason::BramBytes { needed, available } => {
                write!(f, "needs {needed} BRAM bytes, device has {available}")
            }
        }
    }
}

/// A performance estimate for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Total kernel cycles (`T_kernel`). `f64::INFINITY` when infeasible.
    pub cycles: f64,
    /// Work-item initiation interval from the computation model.
    pub ii_comp: u32,
    /// PE pipeline depth `D_comp^PE`.
    pub depth: u32,
    /// Integrated initiation interval `II_wi = max(L_mem^wi, II_comp^wi)`
    /// (pipeline mode only; equals `ii_comp` in barrier mode).
    pub ii_wi: f64,
    /// Per-work-item global-memory latency `L_mem^wi` (Eq. 9).
    pub l_mem_wi: f64,
    /// Work-group latency on one CU (`L_comp^CU`, Eq. 5).
    pub l_cu: f64,
    /// Computation latency of the whole kernel (`L_comp^kernel`, Eq. 7).
    pub l_comp_kernel: f64,
    /// Effective PE parallelism (Eq. 6).
    pub n_pe: u32,
    /// Effective CU parallelism (Eq. 8).
    pub n_cu: u32,
    /// Communication mode used.
    pub mode: CommMode,
    /// Compute share of `cycles` (PE/CU pipeline time across all rounds).
    /// Together with `mem_cycles` and `overhead_cycles` this sums exactly
    /// to `cycles`, so divergence against the simulator can be attributed
    /// per component. Zero when infeasible.
    pub comp_cycles: f64,
    /// Global-memory share of `cycles` (Eq. 9/11 terms across all rounds).
    pub mem_cycles: f64,
    /// Dispatch (`ΔL`) and kernel-launch share of `cycles`.
    pub overhead_cycles: f64,
    /// Whether the configuration fits on the device.
    pub feasible: bool,
    /// Reason when infeasible (render with `Display`).
    pub infeasible_reason: Option<InfeasibleReason>,
}

impl Estimate {
    /// Estimated wall-clock seconds at the platform frequency.
    pub fn seconds(&self, frequency_mhz: f64) -> f64 {
        cycles_to_seconds(self.cycles, frequency_mhz)
    }
}

/// Converts a cycle count to wall-clock seconds at `frequency_mhz`.
///
/// The single conversion shared by the model's [`Estimate`] and the System
/// Run simulator's result type. Guards against `frequency_mhz <= 0` (and
/// NaN/infinite frequencies), returning 0.0 instead of propagating
/// `inf`/NaN into downstream speedup ratios.
pub fn cycles_to_seconds(cycles: f64, frequency_mhz: f64) -> f64 {
    if frequency_mhz > 0.0 && frequency_mhz.is_finite() {
        cycles / (frequency_mhz * 1e6)
    } else {
        0.0
    }
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.feasible {
            write!(
                f,
                "{:.0} cycles (II={}, D={}, L_mem/wi={:.1}, N_PE={}, N_CU={}, {})",
                self.cycles, self.ii_comp, self.depth, self.l_mem_wi, self.n_pe, self.n_cu,
                self.mode
            )
        } else {
            match &self.infeasible_reason {
                Some(reason) => write!(f, "infeasible: {reason}"),
                None => f.write_str("infeasible: unknown"),
            }
        }
    }
}

/// Derives the per-PE scheduling budget for a configuration.
///
/// Unrolling to `P` PEs makes the toolchain partition local arrays `P`
/// ways, so port counts scale with the partition factor; DSP issue slots
/// depend on how many cores fit in the PE's area share.
pub fn pe_budget(analysis: &KernelAnalysis, config: &OptimizationConfig) -> ResourceBudget {
    let platform = &analysis.platform;
    let p_eff = config.effective_pes().max(1);
    // Saturating: `num_cus · effective_pes` can exceed `u32::MAX` for
    // adversarial (but structurally valid) configurations; the correct
    // reading is "replication so extreme each PE gets no DSP share", not
    // a wrapped product handing out an inflated budget.
    let dsps_per_pe_avail =
        platform.total_dsps / config.num_cus.max(1).saturating_mul(p_eff).max(1);
    let dsp_slots = match analysis.static_dsps_per_pe.checked_div(analysis.dsp_op_instances) {
        None => u32::MAX,
        Some(q) => {
            let avg_per_core = q.max(1);
            // Cores that fit in this PE's share; every op having its own
            // core removes the constraint.
            (dsps_per_pe_avail / avg_per_core).clamp(1, analysis.dsp_op_instances)
        }
    };
    ResourceBudget {
        local_read_ports: platform.local_read_ports_per_bank,
        local_write_ports: platform.local_write_ports_per_bank,
        dsps: dsp_slots,
        global_ports: platform.global_ports,
    }
}

/// `RecMII` of a thread-coarsened PE: merging `cf` work-items per coarse
/// item leaves each recurrence's cycle latency `L` intact but makes every
/// initiation advance `cf` work-items, so the constraint tightens from
/// `ceil(L / d)` to `ceil(cf · L / d)` per recurrence. Reduces to
/// [`KernelAnalysis::rec_mii`] exactly at `cf == 1`.
pub fn coarsened_rec_mii(analysis: &KernelAnalysis, cf: u32) -> u32 {
    analysis
        .recurrences
        .iter()
        .map(|r| {
            let scaled = u64::from(cf).saturating_mul(r.cycle_latency);
            scaled.div_ceil(u64::from(r.distance.max(1))).min(u64::from(u32::MAX)) as u32
        })
        .max()
        .unwrap_or(0)
}

/// Re-derives a PE's pipeline parameters for a coarsening factor `cf`
/// from the scheduled base `(ii, depth)` (DESIGN.md §15).
///
/// The coarse item's body is the base body repeated `cf` times, software-
/// pipelined: the recurrence-free portion of the initiation interval
/// (`ii - rec`) is paid once per merged work-item, while the recurrence
/// bound amortizes across the merged items (`rec_cf = ceil(cf·L/d)` ≤
/// `cf · ceil(L/d)`) — the core win thread coarsening buys on FPGAs.
/// Depth grows by the `(cf - 1)` extra initiations the first coarse item
/// absorbs. Exact identity at `cf == 1`: returns `(ii, depth)` unchanged.
pub fn coarsened_pipeline_params(
    analysis: &KernelAnalysis,
    ii: u32,
    depth: u32,
    cf: u32,
) -> (u32, u32) {
    if cf <= 1 {
        return (ii, depth);
    }
    let rec = analysis.rec_mii();
    let rec_cf = coarsened_rec_mii(analysis, cf);
    let ii_cf = cf.saturating_mul(ii.saturating_sub(rec)).saturating_add(rec_cf).max(1);
    let depth_cf = depth.saturating_add((cf - 1).saturating_mul(ii));
    (ii_cf, depth_cf)
}

/// Per-step compute redundancy of a temporal block of depth `tb`
/// (DESIGN.md §15): fusing `tb` stencil steps on chip means step `k`
/// must be computed over a halo-expanded tile — radius `tb - 1 - k`
/// remains for the later steps — so its item count inflates by
/// `rho_k = prod_d (1 + 2·(tb-1-k) / t_d)` over the blocked dimensions
/// (`t_d` = work-group extent where the NDRange extends; dimensions of
/// size 1 are not blocked). `rho_{tb-1} == 1`: the last step computes
/// exactly the tile. At `tb == 1` this is `[1.0]` — no redundancy.
pub fn temporal_step_redundancy(
    work_group: (u32, u32),
    global: (u64, u64),
    tb: u32,
) -> Vec<f64> {
    let tb = tb.max(1);
    (0..tb)
        .map(|k| {
            let halo = f64::from(tb - 1 - k);
            let mut rho = 1.0f64;
            if global.0 > 1 {
                rho *= 1.0 + 2.0 * halo / f64::from(work_group.0.max(1));
            }
            if global.1 > 1 {
                rho *= 1.0 + 2.0 * halo / f64::from(work_group.1.max(1));
            }
            rho
        })
        .collect()
}

/// Evaluates the full model for one configuration.
///
/// Infeasible configurations (device capacity exceeded) are a *successful*
/// estimate with `feasible == false` and infinite cycles; errors are
/// reserved for inputs the model cannot evaluate at all.
///
/// The implementation lives in [`crate::eval::EvalContext`], which this
/// function instantiates per call; batch callers evaluating many
/// configurations against one analysis should hold a context themselves
/// to reuse its budget-keyed schedule caches.
///
/// # Errors
///
/// Returns [`FlexclError::Config`] if `config` violates its structural
/// invariants and [`FlexclError::Scheduling`] if the kernel cannot be
/// scheduled under the configuration's resource budget.
pub fn estimate(
    analysis: &KernelAnalysis,
    config: &OptimizationConfig,
) -> Result<Estimate, FlexclError> {
    crate::eval::EvalContext::new(analysis).estimate(config)
}

/// A cheap monotonic lower bound on [`estimate`]'s `cycles` over every
/// configuration [`crate::config::enumerate`] can generate for this
/// analysis (i.e. this work-group size) and communication mode.
///
/// Used by branch-and-bound pruning in the design-space sweep: if the
/// bound for a `(work_group, comm_mode)` family already exceeds the best
/// feasible cycle count seen so far, no configuration in the family can
/// win and the whole family is skipped without scheduling a single PE.
///
/// Soundness: the bound relaxes every knob to its most optimistic
/// enumerated extreme simultaneously —
///
/// * `L_mem^wi` is a property of the analysis and mode alone (Eq. 9);
///   every configuration pays at least the group's memory volume
///   (barrier mode adds it, pipeline mode floors group time with it);
/// * computation is bounded below by the wave count at maximal PE
///   parallelism (`MAX_PES · MAX_VECTOR_WIDTH` scalar lanes) with
///   `II = 1` and `depth = 0`;
/// * rounds are bounded below with full CU replication (`MAX_CUS`);
/// * the fixed `ΔL`/launch overheads of Eq. 7 and Eq. 10–12 are always
///   paid.
///
/// Infeasible configurations cost `f64::INFINITY`, so any finite bound
/// trivially under-estimates them.
pub fn cycle_lower_bound(analysis: &KernelAnalysis, mode: CommMode) -> f64 {
    let platform = &analysis.platform;
    let n_wi_kernel = (analysis.global.0 * analysis.global.1) as f64;
    let n_wi_wg = (u64::from(analysis.work_group.0) * u64::from(analysis.work_group.1)) as f64;
    // Coarsening can only shrink per-original-work-item memory latency
    // (merged accesses deduplicate and re-coalesce), so the bound takes
    // the minimum over the base analysis and every pre-analyzed level.
    let pipeline = matches!(mode, CommMode::Pipeline);
    let base_l_mem = match mode {
        CommMode::Barrier => analysis.l_mem_wi_phased(),
        CommMode::Pipeline => analysis.l_mem_wi(),
    };
    let l_mem_wi = analysis
        .coarsen_levels
        .iter()
        .map(|lvl| {
            if pipeline {
                lvl.l_mem_wi(&analysis.pattern_latencies)
            } else {
                lvl.l_mem_wi_phased(&analysis.pattern_latencies)
            }
        })
        .fold(base_l_mem, f64::min);
    // The integration scales memory by the contention curve's factor at
    // the configuration's CU count; the curve's minimum keeps the bound
    // under every reachable factor (interpolation never dips below it).
    let mem_group = l_mem_wi * n_wi_wg * analysis.contention.min_factor(pipeline);

    // Best enumerable computation: every wave issues in one cycle, over
    // the fewest issuable items (maximal coarsening merges MAX_COARSEN
    // work-items per coarse item).
    let max_lanes = f64::from(MAX_PES * MAX_VECTOR_WIDTH);
    let items_min = n_wi_wg / f64::from(crate::config::MAX_COARSEN);
    let waves_min = ((items_min - max_lanes) / max_lanes).ceil().max(0.0);

    // Fewest rounds: full CU replication.
    let rounds_min = (n_wi_kernel / (n_wi_wg * f64::from(MAX_CUS))).ceil().max(1.0);

    let dl = f64::from(platform.schedule_overhead);
    let dl_warm = dl * (1.0 - platform.dispatch_overlap).max(0.0);
    let launch = f64::from(platform.launch_overhead);
    let per_round = match mode {
        CommMode::Barrier => mem_group + waves_min,
        CommMode::Pipeline => waves_min.max(mem_group),
    };
    let bound = (per_round + dl_warm) * rounds_min + dl + launch;
    // Temporal blocking amortizes everything across up to
    // MAX_TEMPORAL_DEPTH fused steps on iterative kernels; dividing keeps
    // the bound under every enumerable depth (and trivially under depth 1).
    if crate::config::is_iterative_stencil(&analysis.func.name) {
        bound / f64::from(crate::config::MAX_TEMPORAL_DEPTH)
    } else {
        bound
    }
}

/// Eq. 6 (standard resource-sharing form; see module docs).
pub(crate) fn effective_pe_parallelism(
    analysis: &KernelAnalysis,
    config: &OptimizationConfig,
) -> u32 {
    let platform = &analysis.platform;
    let p_eff = config.effective_pes().max(1);
    // Unrolling partitions local arrays P ways; total CU ports scale.
    let port_read = platform.local_read_ports_per_bank * p_eff;
    let port_write = platform.local_write_ports_per_bank * p_eff;
    let mut cap = p_eff;
    let max_reads = analysis
        .local_reads
        .values()
        .fold(0.0f64, |a, b| a.max(*b));
    if max_reads > 0.0 {
        cap = cap.min(((f64::from(port_read) / max_reads).floor() as u32).max(1));
    }
    let max_writes = analysis
        .local_writes
        .values()
        .fold(0.0f64, |a, b| a.max(*b));
    if max_writes > 0.0 {
        cap = cap.min(((f64::from(port_write) / max_writes).floor() as u32).max(1));
    }
    let dsps_per_cu = platform.total_dsps / config.num_cus.max(1);
    if let Some(q) = dsps_per_cu.checked_div(analysis.static_dsps_per_pe) {
        cap = cap.min(q.max(1));
    }
    cap.max(1)
}

pub(crate) fn infeasible(config: &OptimizationConfig, reason: InfeasibleReason) -> Estimate {
    Estimate {
        cycles: f64::INFINITY,
        ii_comp: 0,
        depth: 0,
        ii_wi: 0.0,
        l_mem_wi: 0.0,
        l_cu: 0.0,
        l_comp_kernel: 0.0,
        n_pe: 0,
        n_cu: 0,
        mode: config.comm_mode,
        comp_cycles: 0.0,
        mem_cycles: 0.0,
        overhead_cycles: 0.0,
        feasible: false,
        infeasible_reason: Some(reason),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Workload;
    use crate::platform::Platform;
    use flexcl_interp::KernelArg;

    fn analyze(src: &str, args: Vec<KernelArg>, global: u64, wg: u32) -> KernelAnalysis {
        let p = flexcl_frontend::parse_and_check(src).expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        KernelAnalysis::analyze(
            &f,
            &Platform::virtex7_adm7v3(),
            &Workload { args, global: (global, 1) },
            (wg, 1),
        )
        .expect("analysis")
    }

    fn vadd_analysis() -> KernelAnalysis {
        analyze(
            "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
                int i = get_global_id(0);
                c[i] = a[i] + b[i];
            }",
            vec![
                KernelArg::FloatBuf(vec![1.0; 1024]),
                KernelArg::FloatBuf(vec![2.0; 1024]),
                KernelArg::FloatBuf(vec![0.0; 1024]),
            ],
            1024,
            64,
        )
    }

    #[test]
    fn pipelining_helps() {
        let a = vadd_analysis();
        let base = OptimizationConfig::baseline((64, 1));
        let piped = OptimizationConfig { work_item_pipeline: true, ..base };
        let t0 = estimate(&a, &base).expect("estimate");
        let t1 = estimate(&a, &piped).expect("estimate");
        assert!(t1.cycles < t0.cycles, "pipeline {} vs base {}", t1.cycles, t0.cycles);
        assert!(t1.ii_comp < t1.depth);
    }

    #[test]
    fn pipeline_mode_beats_barrier_mode_for_streaming() {
        let a = vadd_analysis();
        let barrier = OptimizationConfig {
            work_item_pipeline: true,
            ..OptimizationConfig::baseline((64, 1))
        };
        let pipe = OptimizationConfig { comm_mode: CommMode::Pipeline, ..barrier };
        let tb = estimate(&a, &barrier).expect("estimate");
        let tp = estimate(&a, &pipe).expect("estimate");
        assert!(
            tp.cycles < tb.cycles,
            "pipeline mode {} vs barrier mode {}",
            tp.cycles,
            tb.cycles
        );
    }

    #[test]
    fn more_cus_reduce_computation_time() {
        let a = vadd_analysis();
        let one = OptimizationConfig {
            work_item_pipeline: true,
            comm_mode: CommMode::Pipeline,
            ..OptimizationConfig::baseline((64, 1))
        };
        let four = OptimizationConfig { num_cus: 4, ..one };
        let t1 = estimate(&a, &one).expect("estimate");
        let t4 = estimate(&a, &four).expect("estimate");
        assert!(t4.cycles < t1.cycles);
        assert!(t4.n_cu > t1.n_cu);
    }

    #[test]
    fn pe_parallelism_reduces_cu_latency() {
        let a = vadd_analysis();
        let p1 = OptimizationConfig {
            work_item_pipeline: true,
            ..OptimizationConfig::baseline((64, 1))
        };
        let p4 = OptimizationConfig { num_pes: 4, ..p1 };
        let t1 = estimate(&a, &p1).expect("estimate");
        let t4 = estimate(&a, &p4).expect("estimate");
        assert!(t4.l_cu < t1.l_cu, "P=4 {} vs P=1 {}", t4.l_cu, t1.l_cu);
        assert_eq!(t4.n_pe, 4);
    }

    #[test]
    fn recurrence_limits_pipelining() {
        let a = analyze(
            "__kernel void scan(__global float* b, __global float* x) {
                int i = get_global_id(0);
                b[i + 1] = b[i] + x[i];
            }",
            vec![KernelArg::FloatBuf(vec![0.0; 1100]), KernelArg::FloatBuf(vec![1.0; 1100])],
            1024,
            64,
        );
        let cfg = OptimizationConfig {
            work_item_pipeline: true,
            ..OptimizationConfig::baseline((64, 1))
        };
        let t = estimate(&a, &cfg).expect("estimate");
        assert!(t.ii_comp > 1, "recurrence must keep II > 1, got {}", t.ii_comp);
    }

    #[test]
    fn infeasible_when_dsps_exhausted() {
        // A DSP-heavy kernel at extreme replication must not fit.
        let a = analyze(
            "__kernel void heavy(__global float* x) {
                int i = get_global_id(0);
                float v = x[i];
                v = exp(v) * log(v) * sin(v) * cos(v) * pow(v, 2.5f) * sqrt(v);
                v = v * exp(v * 2.0f) * log(v + 1.0f) * sin(v * 3.0f);
                x[i] = v;
            }",
            vec![KernelArg::FloatBuf(vec![1.5; 1024])],
            1024,
            64,
        );
        let cfg = OptimizationConfig {
            work_item_pipeline: true,
            num_pes: 16,
            num_cus: 4,
            vector_width: 4,
            ..OptimizationConfig::baseline((64, 1))
        };
        let t = estimate(&a, &cfg).expect("estimate");
        assert!(!t.feasible, "{t}");
        assert!(t.cycles.is_infinite());
    }

    #[test]
    fn estimate_scales_with_workload() {
        let small = vadd_analysis();
        let big = analyze(
            "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
                int i = get_global_id(0);
                c[i] = a[i] + b[i];
            }",
            vec![
                KernelArg::FloatBuf(vec![1.0; 4096]),
                KernelArg::FloatBuf(vec![2.0; 4096]),
                KernelArg::FloatBuf(vec![0.0; 4096]),
            ],
            4096,
            64,
        );
        let cfg = OptimizationConfig::baseline((64, 1));
        let ts = estimate(&small, &cfg).expect("estimate");
        let tb = estimate(&big, &cfg).expect("estimate");
        let ratio = tb.cycles / ts.cycles;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn vectorization_acts_like_pe_replication() {
        let a = vadd_analysis();
        let scalar = OptimizationConfig {
            work_item_pipeline: true,
            num_pes: 4,
            ..OptimizationConfig::baseline((64, 1))
        };
        let vectored = OptimizationConfig {
            work_item_pipeline: true,
            num_pes: 1,
            vector_width: 4,
            ..OptimizationConfig::baseline((64, 1))
        };
        let ts = estimate(&a, &scalar).expect("estimate");
        let tv = estimate(&a, &vectored).expect("estimate");
        assert_eq!(ts.n_pe, tv.n_pe, "int4 vectorization == 4 scalar PEs (§3.3.2 fn1)");
        assert!((ts.l_cu - tv.l_cu).abs() < 1e-9);
    }

    #[test]
    fn local_memory_ports_cap_pe_parallelism() {
        // A kernel reading 3 local slots per work-item: with 2 read ports
        // per bank and P-way partitioning, N_PE < P.
        let a = analyze(
            "__kernel void stencil(__global float* in, __global float* out) {
                __local float tile[66];
                int l = get_local_id(0);
                int i = get_global_id(0);
                tile[l + 1] = in[i];
                barrier(CLK_LOCAL_MEM_FENCE);
                out[i] = tile[l] + tile[l + 1] + tile[l + 2];
            }",
            vec![KernelArg::FloatBuf(vec![1.0; 1024]), KernelArg::FloatBuf(vec![0.0; 1024])],
            1024,
            64,
        );
        let cfg = OptimizationConfig {
            work_item_pipeline: true,
            num_pes: 8,
            ..OptimizationConfig::baseline((64, 1))
        };
        let est = estimate(&a, &cfg).expect("estimate");
        assert!(est.n_pe < 8, "3 reads vs 2 ports/bank must cap N_PE, got {}", est.n_pe);
        assert!(est.n_pe >= 1);
    }

    #[test]
    fn barrier_mode_charges_memory_per_group() {
        let a = vadd_analysis();
        let cfg = OptimizationConfig {
            work_item_pipeline: true,
            ..OptimizationConfig::baseline((64, 1))
        };
        let est = estimate(&a, &cfg).expect("estimate");
        // Eq. 10 decomposition: total ≥ memory term alone.
        let mem_total = est.l_mem_wi * 1024.0;
        assert!(est.cycles > mem_total, "cycles {} vs mem {}", est.cycles, mem_total);
    }

    #[test]
    fn lower_bound_never_exceeds_any_estimate() {
        let a = vadd_analysis();
        let limits = crate::config::DesignSpaceLimits {
            global_x: 1024,
            global_y: 1,
            has_barrier: false,
            reqd_work_group: Some((64, 1)),
            vectorizable: true,
            iterative: false,
        };
        let space = crate::config::enumerate(&limits);
        assert!(!space.is_empty());
        for cfg in space {
            let est = estimate(&a, &cfg).expect("estimate");
            let bound = cycle_lower_bound(&a, cfg.comm_mode);
            assert!(
                bound <= est.cycles,
                "{cfg}: bound {bound} exceeds estimate {}",
                est.cycles
            );
        }
    }

    #[test]
    fn extreme_replication_saturates_instead_of_overflowing() {
        // `OptimizationConfig::validate` bounds `num_pes · vector_width`
        // but not `num_cus · effective_pes`, so u32::MAX CUs is a
        // structurally valid input; the budget product in `pe_budget`
        // previously overflowed u32 on it (a debug-build panic, an
        // inflated DSP budget in release).
        let a = vadd_analysis();
        let cfg = OptimizationConfig {
            num_cus: u32::MAX,
            num_pes: 2,
            ..OptimizationConfig::baseline((64, 1))
        };
        cfg.validate().expect("structurally valid");
        let saturated = pe_budget(&a, &cfg);
        let modest = pe_budget(&a, &OptimizationConfig { num_cus: 1, ..cfg });
        assert!(
            saturated.dsps <= modest.dsps,
            "more replication must never raise the per-PE budget: {} > {}",
            saturated.dsps,
            modest.dsps
        );
        let est = estimate(&a, &cfg).expect("extreme config must evaluate, not overflow");
        assert!(est.feasible || est.cycles.is_infinite());
    }

    #[test]
    fn estimate_display() {
        let a = vadd_analysis();
        let t = estimate(&a, &OptimizationConfig::baseline((64, 1))).expect("estimate");
        let s = t.to_string();
        assert!(s.contains("cycles"));
        assert!(s.contains("N_PE=1"));
    }
}
