//! # flexcl-core
//!
//! FlexCL: an analytical performance model for OpenCL workloads on FPGAs —
//! a from-scratch Rust reproduction of Wang, Liang, Zhang (DAC 2017).
//!
//! FlexCL takes an OpenCL kernel plus an optimization configuration and
//! predicts the kernel's execution cycles on an FPGA in microseconds of
//! model time, enabling exhaustive design-space exploration that would
//! take days through synthesis:
//!
//! 1. **Kernel analysis** (§3.2, [`analysis`]) — the kernel is parsed,
//!    lowered to IR, and analyzed statically (CDFG, op latencies, port and
//!    DSP pressure, inter-work-item recurrences) and dynamically (loop trip
//!    counts, the coalesced global-memory trace classified into the eight
//!    Table-1 DRAM patterns).
//! 2. **Computation model** (§3.3, [`model`]) — PE, CU and kernel levels:
//!    `II_comp^wi` from `MII = max(RecMII, ResMII)` refined by swing modulo
//!    scheduling, pipeline depth from the CDFG critical path, Eq. 1–8.
//! 3. **Global memory model** (§3.4) — Eq. 9 over micro-benchmarked
//!    pattern latencies.
//! 4. **Integration** (§3.5) — barrier mode (Eq. 10) or pipeline mode
//!    (Eq. 11–12).
//! 5. **Design-space exploration** (§4.3, [`dse`]) — exhaustive sweeps in
//!    seconds.
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use flexcl_core::{FlexCl, OptimizationConfig, Platform, Workload};
//! use flexcl_interp::KernelArg;
//!
//! let src = "__kernel void scale(__global float* x, float a) {
//!                int i = get_global_id(0);
//!                x[i] = x[i] * a;
//!            }";
//! let flexcl = FlexCl::new(Platform::virtex7_adm7v3());
//! let workload = Workload {
//!     args: vec![KernelArg::FloatBuf(vec![1.0; 1024]), KernelArg::Float(2.0)],
//!     global: (1024, 1),
//! };
//! let config = OptimizationConfig {
//!     work_item_pipeline: true,
//!     ..OptimizationConfig::baseline((64, 1))
//! };
//! let est = flexcl.estimate_source(src, "scale", &workload, &config)?;
//! assert!(est.feasible);
//! assert!(est.cycles > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod area;
pub mod config;
pub mod dse;
pub mod error;
pub mod eval;
pub mod model;
pub mod platform;

pub use analysis::{coarsen_trace, AnalysisScratch, CoarsenLevel, ContentionCurve,
    ContentionProbe, KernelAnalysis, ProfileFuel, ResolvedRecurrence, Workload,
    COARSEN_CANDIDATES};
pub use area::{estimate_area, pareto_frontier, AreaEstimate, ParetoPoint};
pub use config::{
    enumerate, is_iterative_stencil, CommMode, ConfigSpace, DesignSpaceLimits,
    OptimizationConfig, SweepGrid, MAX_COARSEN, MAX_TEMPORAL_DEPTH,
};
pub use dse::{
    explore, explore_configs, explore_space, explore_space_cached, explore_space_deadline,
    explore_with, limits_for, AnalysisCache, CancelToken, DesignPoint, DiagnosticsReport,
    DseOptions, DseResult, DseStats, FailedPoint,
};
pub use error::{ErrorKind, FlexclError};
pub use eval::{EvalContext, EvalStats};
pub use model::{
    cycle_lower_bound, cycles_to_seconds, estimate, pe_budget, Estimate, InfeasibleReason,
};
pub use platform::Platform;

/// The FlexCL model bound to a platform — the main entry point.
#[derive(Debug, Clone)]
pub struct FlexCl {
    platform: Platform,
}

impl FlexCl {
    /// Creates a model instance for `platform`.
    pub fn new(platform: Platform) -> Self {
        FlexCl { platform }
    }

    /// The platform in use.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Compiles `src`, analyzes kernel `name` on `workload` and evaluates
    /// one configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FlexclError`] on frontend, lowering, profiling or
    /// configuration-validation failures.
    pub fn estimate_source(
        &self,
        src: &str,
        name: &str,
        workload: &Workload,
        config: &OptimizationConfig,
    ) -> Result<Estimate, FlexclError> {
        let analysis = self.analyze_source(src, name, workload, config.work_group)?;
        model::estimate(&analysis, config)
    }

    /// Compiles and analyzes a kernel for a given work-group size; the
    /// returned [`KernelAnalysis`] can be reused across configurations with
    /// the same work-group size.
    ///
    /// # Errors
    ///
    /// Returns [`FlexclError`] on frontend, lowering or profiling failures.
    pub fn analyze_source(
        &self,
        src: &str,
        name: &str,
        workload: &Workload,
        work_group: (u32, u32),
    ) -> Result<KernelAnalysis, FlexclError> {
        let program = flexcl_frontend::parse_and_check(src)?;
        let kernel = program
            .kernel(name)
            .ok_or_else(|| FlexclError::NoSuchKernel { name: name.to_string() })?;
        let func = flexcl_ir::lower_kernel(kernel)?;
        KernelAnalysis::analyze(&func, &self.platform, workload, work_group)
    }

    /// Exhaustively explores the design space of a kernel.
    ///
    /// # Errors
    ///
    /// Returns [`FlexclError`] on frontend, lowering or platform-validation
    /// failures. Per-candidate failures during the sweep are recorded in
    /// [`DseResult::diagnostics`] instead of aborting.
    pub fn explore_source(
        &self,
        src: &str,
        name: &str,
        workload: &Workload,
    ) -> Result<DseResult, FlexclError> {
        self.explore_source_with(src, name, workload, DseOptions::default())
    }

    /// [`Self::explore_source`] with explicit sweep options (worker
    /// threads, branch-and-bound pruning, profiling fuel).
    ///
    /// # Errors
    ///
    /// Returns [`FlexclError`] on frontend, lowering or platform-validation
    /// failures. Per-candidate failures during the sweep are recorded in
    /// [`DseResult::diagnostics`] instead of aborting.
    pub fn explore_source_with(
        &self,
        src: &str,
        name: &str,
        workload: &Workload,
        opts: DseOptions,
    ) -> Result<DseResult, FlexclError> {
        let program = flexcl_frontend::parse_and_check(src)?;
        let kernel = program
            .kernel(name)
            .ok_or_else(|| FlexclError::NoSuchKernel { name: name.to_string() })?;
        let func = flexcl_ir::lower_kernel(kernel)?;
        dse::explore_with(&func, &self.platform, workload, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcl_interp::KernelArg;

    const SRC: &str = "__kernel void scale(__global float* x, float a) {
        int i = get_global_id(0);
        x[i] = x[i] * a;
    }";

    fn workload() -> Workload {
        Workload {
            args: vec![KernelArg::FloatBuf(vec![1.0; 256]), KernelArg::Float(2.0)],
            global: (256, 1),
        }
    }

    #[test]
    fn unknown_kernel_is_reported() {
        let flexcl = FlexCl::new(Platform::virtex7_adm7v3());
        let err = flexcl
            .estimate_source(SRC, "missing", &workload(), &OptimizationConfig::default())
            .unwrap_err();
        assert!(matches!(err, FlexclError::NoSuchKernel { .. }));
        assert_eq!(err.kind(), ErrorKind::NoSuchKernel);
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn frontend_errors_propagate() {
        let flexcl = FlexCl::new(Platform::virtex7_adm7v3());
        let err = flexcl
            .estimate_source("not opencl at all", "k", &workload(), &OptimizationConfig::default())
            .unwrap_err();
        assert!(matches!(err, FlexclError::Frontend(_)));
        assert_eq!(err.kind(), ErrorKind::Frontend);
    }

    #[test]
    fn analysis_errors_propagate() {
        let flexcl = FlexCl::new(Platform::virtex7_adm7v3());
        // Out-of-bounds workload: buffer shorter than the NDRange.
        let bad = Workload {
            args: vec![KernelArg::FloatBuf(vec![1.0; 4]), KernelArg::Float(2.0)],
            global: (256, 1),
        };
        let err = flexcl
            .estimate_source(SRC, "scale", &bad, &OptimizationConfig::default())
            .unwrap_err();
        assert!(matches!(err, FlexclError::Profiling { .. }), "{err:?}");
        assert_eq!(err.kind(), ErrorKind::Profiling);
        assert!(err.to_string().contains("scale"), "{err}");
    }

    #[test]
    fn explore_source_round_trips() {
        let flexcl = FlexCl::new(Platform::virtex7_adm7v3());
        let result = flexcl.explore_source(SRC, "scale", &workload()).expect("explore");
        assert!(result.feasible_count() > 0);
        // The constraint query returns a point meeting the bound.
        let analysis = flexcl
            .analyze_source(SRC, "scale", &workload(), (64, 1))
            .expect("analysis");
        let best = result.best().expect("best");
        let relaxed = result
            .cheapest_meeting(&analysis, best.estimate.cycles * 4.0)
            .expect("constraint met");
        assert!(relaxed.estimate.cycles <= best.estimate.cycles * 4.0);
        let tight_area = estimate_area(&analysis, &relaxed.config);
        let best_area = estimate_area(&analysis, &best.config);
        assert!(
            tight_area.cost(flexcl.platform()) <= best_area.cost(flexcl.platform()),
            "relaxing the deadline must not cost more area"
        );
        // Pareto frontier is non-empty and within the explored set.
        let frontier = result.pareto(&analysis);
        assert!(!frontier.is_empty());
    }
}
