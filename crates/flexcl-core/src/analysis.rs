//! Kernel analysis (§3.2): the bridge between IR and the analytical model.
//!
//! For one kernel, one workload and one work-group size this module
//! combines static analysis (CDFG structure, operation latencies, local
//! memory port pressure, DSP usage, inter-work-item recurrences) with
//! dynamic profiling (loop trip counts and the coalesced, bank-classified
//! global-memory pattern counts of Table 1). The result — a
//! [`KernelAnalysis`] — contains everything the PE/CU/kernel computation
//! models and the global memory model consume, so that sweeping hundreds
//! of optimization configurations only re-evaluates closed-form equations
//! and small schedules.

use crate::error::FlexclError;
use crate::platform::Platform;
use flexcl_dram::{coalesce, microbench, AccessKind, Burst, DramConfig, DramSim, ElementAccess,
    PatternTable, Request};
use flexcl_interp::{run, GroupSampling, InterpError, KernelArg, MemAccess, NdRange, Profile,
    RunOptions};
use flexcl_ir::{build_deps, find_recurrences, DepEdge, Function, InstId, MemRoot, Op, Region,
    Value};
use flexcl_sched::{list, sms, NodeId, ResourceBudget, ResourceClass, SchedGraph, SchedScratch};
use std::collections::HashMap;
use std::sync::Arc;

/// Implementation draws averaged by [`KernelAnalysis::pipeline_params_with`]
/// to estimate the expected synthesized pipeline parameters. Memoized per
/// resource budget by the evaluation context, so the ensemble runs once per
/// budget, not once per configuration.
const SYNTH_ENSEMBLE: u32 = 16;

/// Base byte address assigned to pointer parameter `p` when turning element
/// indices into DRAM addresses (16 MiB apart, so distinct buffers never
/// alias and start bank-aligned, as a real allocator would).
fn param_base(p: u32) -> u64 {
    u64::from(p) << 24
}

/// A coalesced global-memory burst attributed to the work-item whose
/// access opened it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OwnedBurst {
    /// The coalesced transaction.
    pub burst: Burst,
    /// Linear id of the owning work-item.
    pub work_item: u64,
}

/// Reusable buffers for repeated analyses (one per DSE worker thread).
///
/// A design-space sweep re-runs [`KernelAnalysis::analyze_interned`] once
/// per work-group size; the intermediate allocations (trace staging, the
/// coalescing element buffer and the DRAM replay simulator) are identical
/// in shape each time, so a sweep holds one scratch per worker and reuses
/// it instead of reallocating. A fresh `AnalysisScratch::default()` gives
/// bit-identical results to a reused one: every buffer is cleared (and the
/// simulator fully [`DramSim::reset`]) before use.
#[derive(Debug, Default)]
pub struct AnalysisScratch {
    /// Trace staging: `(work_group, param, work_item, access)`.
    entries: Vec<(u64, u32, u64, ElementAccess)>,
    /// Per-stream element buffer handed to `coalesce`.
    elements: Vec<ElementAccess>,
    /// DRAM replay simulator, reset between uses.
    replay: Option<DramSim>,
    /// Pool of replay simulators for the multi-stream contention replays,
    /// reset between uses.
    replay_pool: Vec<DramSim>,
}

impl AnalysisScratch {
    /// A fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// A freshly-reset simulator for `config`, reusing the held one when
    /// the configuration matches ([`DramSim::reset`] restores the exact
    /// initial state, so reuse is bit-identical to construction).
    fn dram(&mut self, config: DramConfig) -> &mut DramSim {
        let reusable = matches!(&self.replay, Some(sim) if *sim.config() == config);
        if reusable {
            let sim = self.replay.as_mut().expect("checked above");
            sim.reset();
            sim
        } else {
            self.replay.insert(DramSim::new(config))
        }
    }

    /// `n` freshly-reset simulators for `config`, reused like
    /// [`AnalysisScratch::dram`].
    fn dram_pool(&mut self, config: DramConfig, n: usize) -> &mut [DramSim] {
        let reusable = self.replay_pool.len() >= n
            && self.replay_pool.iter().take(n).all(|s| *s.config() == config);
        if !reusable {
            self.replay_pool.clear();
            self.replay_pool.extend((0..n).map(|_| DramSim::new(config)));
        }
        let pool = &mut self.replay_pool[..n];
        for sim in pool.iter_mut() {
            sim.reset();
        }
        pool
    }
}

/// Converts an interpreter trace into per-work-group burst lists.
///
/// Within each work-group, each global buffer's access stream is coalesced
/// independently (SDAccel infers one AXI burst engine per buffer) and the
/// resulting bursts are interleaved in work-item order — the order in which
/// the pipelined hardware emits them. Both the analytical memory model and
/// the System Run simulator consume this same representation, so they
/// disagree only where the model genuinely approximates (average pattern
/// latencies vs per-access bank state).
pub fn trace_to_group_bursts(trace: &[MemAccess], unit_bytes: u32) -> Vec<(u64, Vec<OwnedBurst>)> {
    trace_to_group_bursts_into(trace, unit_bytes, &mut AnalysisScratch::new())
}

/// [`trace_to_group_bursts`] with caller-provided scratch buffers.
///
/// Streams are segmented by a single stable sort on `(work_group, param)`:
/// stability preserves trace order within each stream, parameters come out
/// ascending per group and groups ascending overall, so the output is
/// bit-identical to grouping via nested maps.
pub fn trace_to_group_bursts_into(
    trace: &[MemAccess],
    unit_bytes: u32,
    scratch: &mut AnalysisScratch,
) -> Vec<(u64, Vec<OwnedBurst>)> {
    let AnalysisScratch { entries, elements, .. } = scratch;
    entries.clear();
    entries.reserve(trace.len());
    for a in trace {
        let addr =
            (param_base(a.param) as i64 + a.elem_index * i64::from(a.bytes)).max(0) as u64;
        entries.push((
            a.work_group,
            a.param,
            a.work_item,
            ElementAccess {
                addr,
                bytes: a.bytes,
                kind: if a.write { AccessKind::Write } else { AccessKind::Read },
            },
        ));
    }
    entries.sort_by_key(|(g, p, _, _)| (*g, *p));

    let mut out: Vec<(u64, Vec<OwnedBurst>)> = Vec::new();
    let mut i = 0usize;
    while i < entries.len() {
        let g = entries[i].0;
        let mut bursts = Vec::new();
        while i < entries.len() && entries[i].0 == g {
            let p = entries[i].1;
            let start = i;
            while i < entries.len() && entries[i].0 == g && entries[i].1 == p {
                i += 1;
            }
            let stream = &entries[start..i];
            elements.clear();
            elements.extend(stream.iter().map(|(_, _, _, e)| *e));
            let mut cursor = 0usize;
            for b in coalesce(elements, unit_bytes) {
                let owner = stream[cursor].2;
                cursor += b.merged as usize;
                bursts.push(OwnedBurst { burst: b, work_item: owner });
            }
        }
        bursts.sort_by_key(|b| b.work_item);
        out.push((g, bursts));
    }
    out
}

/// A kernel workload: argument values plus the global NDRange.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Kernel arguments (buffers are cloned for profiling runs).
    pub args: Vec<KernelArg>,
    /// Global work size (x, y).
    pub global: (u64, u64),
}

impl Workload {
    /// Total number of work-items.
    pub fn total_work_items(&self) -> u64 {
        self.global.0 * self.global.1
    }
}

/// The fuel budget of one dynamic-profiling run.
///
/// Profiling interprets the kernel, so a runaway loop or a trip-count
/// explosion would otherwise hang the analysis (and, in a sweep, a worker
/// thread). Both limits degrade to a typed
/// [`FlexclError::ResourceLimit`] instead: `step_limit` bounds the
/// interpreter steps per work-item, `trace_limit` bounds the recorded
/// global-memory trace across the profiled work-groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileFuel {
    /// Interpreter steps allowed per work-item.
    pub step_limit: u64,
    /// Total recorded memory accesses allowed per profiling run.
    pub trace_limit: usize,
    /// Work-groups profiled per run (strata of the NDRange). Part of the
    /// analysis-cache fingerprint via [`ProfileFuel`]'s `Eq`: changing the
    /// budget changes the profile, so cached analyses must not be shared
    /// across budgets.
    pub group_budget: u64,
}

impl Default for ProfileFuel {
    fn default() -> Self {
        let d = RunOptions::default();
        ProfileFuel {
            step_limit: d.step_limit,
            trace_limit: d.trace_limit,
            // 12 strata: enough interior samples for the odd-stride fill to
            // cover every residue class of an 8-bank channel (see
            // `select_profiled_groups`), at ~1/5 the cost of full profiling
            // on the evaluation NDRanges.
            group_budget: 12,
        }
    }
}

/// How the scalar [`KernelAnalysis::channel_contention`] diagnostic was
/// obtained — surfaced so callers can tell a measured pairing from a
/// synthetic fallback instead of silently trusting the wrong one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentionProbe {
    /// The true co-running pair was profiled: group 0's stream replayed
    /// against group `pair`'s (the group dispatched onto the CU that
    /// shares channel 0).
    PairedGroups {
        /// Linear id of the co-running group.
        pair: u64,
    },
    /// The intended co-runner was not among the profiled groups
    /// (`dram_channels >=` profiled groups, or stratified sampling skipped
    /// it); group 0's stream was replayed against itself offset by one
    /// full row sweep.
    SelfOffset,
    /// The kernel issues no global-memory traffic; contention is
    /// vacuously 1.
    NoTraffic,
}

/// Per-CU-count memory contention factors, measured by replaying the
/// profiled group streams the way `C` compute units would emit them:
/// the stream partitions round-robin over `C` DRAM channel states (CU
/// dispatch hands group `k` to CU `k mod C`), so each channel sees only
/// every C-th group and loses the cross-group row locality a single
/// stream enjoys. The factor is the ratio of the pattern-weighted memory
/// cost at `C` streams to the cost at one stream, per communication mode
/// (pipeline work-item order vs barrier phased order), clamped to
/// [0.5, 2].
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionCurve {
    /// `(cus, pipeline_factor, barrier_factor)`, ascending by `cus`.
    points: Vec<(u32, f64, f64)>,
}

impl ContentionCurve {
    /// A curve with no measured contention (factor 1 everywhere).
    pub fn flat() -> Self {
        ContentionCurve { points: vec![(1, 1.0, 1.0)] }
    }

    /// The measured `(cus, pipeline_factor, barrier_factor)` points.
    pub fn points(&self) -> &[(u32, f64, f64)] {
        &self.points
    }

    /// The contention factor at `cus` compute units, linearly interpolated
    /// between measured CU counts and clamped to the measured range.
    pub fn factor(&self, cus: u32, pipeline: bool) -> f64 {
        let pick = |p: &(u32, f64, f64)| if pipeline { p.1 } else { p.2 };
        let Some(first) = self.points.first() else { return 1.0 };
        if cus <= first.0 {
            return pick(first);
        }
        for w in self.points.windows(2) {
            let (lo, hi) = (&w[0], &w[1]);
            if cus <= hi.0 {
                let span = f64::from(hi.0 - lo.0).max(1.0);
                let frac = f64::from(cus - lo.0) / span;
                return pick(lo) + (pick(hi) - pick(lo)) * frac;
            }
        }
        self.points.last().map(pick).unwrap_or(1.0)
    }

    /// The smallest factor on the curve for a mode — interpolation never
    /// goes below it, so scaling a lower bound by this keeps it sound.
    pub fn min_factor(&self, pipeline: bool) -> f64 {
        self.points
            .iter()
            .map(|p| if pipeline { p.1 } else { p.2 })
            .fold(1.0f64, f64::min)
    }
}

/// Thread-coarsening factors pre-analyzed for every kernel (filtered per
/// work-group size to the values dividing it) — the values the preset
/// [`crate::config::SweepGrid`]s sweep. Each level costs two C=1 DRAM
/// replays of the merged trace at analysis time, so levels are computed
/// eagerly and configurations only read closed-form summaries.
pub const COARSEN_CANDIDATES: [u32; 3] = [2, 4, 8];

/// Memory-model summaries of the kernel's representative trace after
/// merging `factor` consecutive work-items into one coarse item
/// ([`coarsen_trace`]): the merged stream is re-coalesced per buffer, so
/// overlapping stencil windows collapse into fewer, wider bursts. All
/// per-work-item quantities stay normalized per *original* work-item
/// (divided by the same weighted work-item count as the base analysis),
/// which keeps the Eq. 9–12 algebra of the integration unchanged.
#[derive(Debug, Clone)]
pub struct CoarsenLevel {
    /// The coarsening factor this level models.
    pub factor: u32,
    /// Table-1 pattern counts per original work-item, work-item burst
    /// order (pipeline mode).
    pub pattern_counts: PatternTable<f64>,
    /// Pattern counts per original work-item, phased reads-first
    /// (barrier mode).
    pub pattern_counts_phased: PatternTable<f64>,
    /// Coalesced global transactions per original work-item.
    pub global_accesses_per_wi: f64,
    /// Multi-beat transfer cycles per original work-item.
    pub mem_extra_wi: f64,
    /// Distinct burst-owner runs per group over the merged stream (owners
    /// are coarse items).
    pub burst_owners_per_group: f64,
    /// Memory service cycles of the heaviest merged group, work-item order.
    pub mem_group_max: f64,
    /// Heaviest merged group, phased order.
    pub mem_group_max_phased: f64,
}

impl CoarsenLevel {
    /// `L_mem` per original work-item at this coarsening level (Eq. 9 over
    /// the merged trace), pipeline-order bursts.
    pub fn l_mem_wi(&self, latencies: &PatternTable<f64>) -> f64 {
        latencies.iter().map(|(p, dt)| dt * self.pattern_counts[p]).sum::<f64>()
            + self.mem_extra_wi
    }

    /// Phased (barrier-mode) variant of [`Self::l_mem_wi`].
    pub fn l_mem_wi_phased(&self, latencies: &PatternTable<f64>) -> f64 {
        latencies.iter().map(|(p, dt)| dt * self.pattern_counts_phased[p]).sum::<f64>()
            + self.mem_extra_wi
    }
}

/// Merges each run of `factor` consecutive work-items of a profiled trace
/// into one coarse item: work-item ids are rescaled (`wi / factor`) and
/// accesses a coarse item repeats — the same buffer element touched by
/// more than one of its merged work-items, the common case for stencil
/// windows — are deduplicated (the coarse item keeps the value in a
/// register). Trace order is preserved, so downstream coalescing sees the
/// merged stream exactly as a coarsened datapath would emit it.
pub fn coarsen_trace(trace: &[MemAccess], factor: u32) -> Vec<MemAccess> {
    if factor <= 1 {
        return trace.to_vec();
    }
    let cf = u64::from(factor);
    let mut seen: std::collections::HashSet<(u64, u64, u32, i64, u32, bool)> =
        std::collections::HashSet::with_capacity(trace.len());
    let mut out = Vec::with_capacity(trace.len());
    for a in trace {
        let coarse = a.work_item / cf;
        if seen.insert((a.work_group, coarse, a.param, a.elem_index, a.bytes, a.write)) {
            out.push(MemAccess { work_item: coarse, ..*a });
        }
    }
    out
}

/// An inter-work-item recurrence with its resolved cycle latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedRecurrence {
    /// Work-item distance.
    pub distance: u32,
    /// Total latency around the dependence cycle, in cycles.
    pub cycle_latency: u64,
    /// The load instruction.
    pub load: InstId,
    /// The store instruction.
    pub store: InstId,
}

/// Everything the model needs to know about one (kernel, workload,
/// work-group size) combination.
#[derive(Debug, Clone)]
pub struct KernelAnalysis {
    /// The analyzed kernel, shared by reference: a sweep produces one
    /// `KernelAnalysis` per work-group size against the same function, and
    /// interning keeps them all pointing at a single allocation.
    pub func: Arc<Function>,
    /// Target platform, shared by reference (see `func`).
    pub platform: Arc<Platform>,
    /// Work-group size used for profiling (x, y).
    pub work_group: (u32, u32),
    /// Global NDRange of the workload.
    pub global: (u64, u64),
    /// Dynamic profile (loop trips, memory trace) over a few work-groups.
    pub profile: Profile,
    /// Per-work-item Table-1 pattern counts `N`, after coalescing, with
    /// bursts in work-item order (the order the pipelined datapath emits
    /// them — used by pipeline communication mode).
    pub pattern_counts: PatternTable<f64>,
    /// Pattern counts with each group's bursts phased reads-first (the
    /// order barrier communication mode emits them: load phase, compute,
    /// store phase). Phasing avoids read/write bus turnarounds and row
    /// thrashing, so barrier mode can have *cheaper* per-access memory.
    pub pattern_counts_phased: PatternTable<f64>,
    /// Per-work-item Table-1 pattern latencies `ΔT`, micro-benchmarked on
    /// this platform's DRAM.
    pub pattern_latencies: PatternTable<f64>,
    /// Global memory transactions per work-item after coalescing.
    pub global_accesses_per_wi: f64,
    /// Per-work-item multi-beat transfer cycles: bursts longer than one
    /// interleave chunk stream `extra · t_burst` cycles beyond their
    /// pattern's ΔT (the micro-benchmark measures single-chunk requests).
    /// Added into [`Self::l_mem_wi`] / [`Self::l_mem_wi_phased`].
    pub mem_extra_wi: f64,
    /// Weighted mean of distinct burst-owner runs per group — how finely
    /// the coalesced burst stream interleaves with the group's work-items
    /// (1.0 = one burst covers the whole group). Drives the pipeline-mode
    /// wave-overlap correction in the integration.
    pub burst_owners_per_group: f64,
    /// Trip-weighted per-work-item local-memory reads, per array.
    pub local_reads: HashMap<MemRoot, f64>,
    /// Trip-weighted per-work-item local-memory writes, per array.
    pub local_writes: HashMap<MemRoot, f64>,
    /// Trip-weighted DSP-mapped operations issued per work-item.
    pub dsp_ops_per_wi: f64,
    /// DSP slices consumed by one PE instance (static area).
    pub static_dsps_per_pe: u32,
    /// Number of DSP-mapped instruction instances in the kernel body.
    pub dsp_op_instances: u32,
    /// `__local` bytes per CU.
    pub local_bytes: u64,
    /// Inter-work-item recurrences with cycle latencies.
    pub recurrences: Vec<ResolvedRecurrence>,
    /// Measured per-CU memory slowdown when two CUs share a DDR channel
    /// (1.0 = streams interleave without conflict, 2.0 = full
    /// serialization). Obtained by replaying two profiled group streams
    /// concurrently against the banked DRAM — the same profiling
    /// methodology §3.4 uses for the ΔT table. A diagnostic scalar; the
    /// model applies [`KernelAnalysis::contention`] instead.
    pub channel_contention: f64,
    /// How [`KernelAnalysis::channel_contention`] was measured.
    pub contention_probe: ContentionProbe,
    /// Per-CU-count contention curve applied to `L_mem^wi` in the Eq. 9/11
    /// integration.
    pub contention: ContentionCurve,
    /// Memory service cycles of the *heaviest* profiled group streamed
    /// alone (work-item burst order, including multi-beat transfer
    /// cycles). `L_mem^wi` is a mean over groups; when groups are
    /// heterogeneous (wavefront kernels leave some groups memory-silent)
    /// and CUs outnumber rounds, the kernel's critical path is its
    /// heaviest group, not the average one — the integration uses this as
    /// a floor.
    pub mem_group_max: f64,
    /// Like [`KernelAnalysis::mem_group_max`], with each group's bursts
    /// phased reads-first (barrier communication mode).
    pub mem_group_max_phased: f64,
    /// Memory summaries of the coarsened trace for each
    /// [`COARSEN_CANDIDATES`] factor dividing the work-group size,
    /// ascending by factor. Factor 1 is the base analysis itself.
    pub coarsen_levels: Vec<CoarsenLevel>,
    /// Per-instruction execution multiplier (product of enclosing trip
    /// counts), used for resource-pressure weighting.
    multipliers: Vec<f64>,
}

impl KernelAnalysis {
    /// Runs the full §3.2 analysis with the default [`ProfileFuel`].
    ///
    /// # Errors
    ///
    /// Returns [`FlexclError::Geometry`] if the work-group does not tile
    /// the NDRange, [`FlexclError::Profiling`] if dynamic profiling fails
    /// (out-of-bounds kernel), and [`FlexclError::ResourceLimit`] if
    /// profiling exhausts its fuel (runaway loop, trace explosion).
    pub fn analyze(
        func: &Function,
        platform: &Platform,
        workload: &Workload,
        work_group: (u32, u32),
    ) -> Result<KernelAnalysis, FlexclError> {
        Self::analyze_interned(
            Arc::new(func.clone()),
            Arc::new(platform.clone()),
            workload,
            work_group,
            ProfileFuel::default(),
            &mut AnalysisScratch::new(),
        )
    }

    /// [`Self::analyze`] with interned inputs, an explicit fuel budget and
    /// reusable scratch buffers.
    ///
    /// The sweep path: the caller holds the kernel and platform in [`Arc`]s
    /// (so five work-group analyses share one `Function` allocation instead
    /// of cloning it five times) and keeps one [`AnalysisScratch`] per
    /// worker thread. Results are bit-identical to [`Self::analyze`].
    ///
    /// # Errors
    ///
    /// As [`Self::analyze`].
    pub fn analyze_interned(
        func: Arc<Function>,
        platform: Arc<Platform>,
        workload: &Workload,
        work_group: (u32, u32),
        fuel: ProfileFuel,
        scratch: &mut AnalysisScratch,
    ) -> Result<KernelAnalysis, FlexclError> {
        let nd = NdRange {
            global: [workload.global.0, workload.global.1, 1],
            local: [u64::from(work_group.0), u64::from(work_group.1), 1],
        };
        nd.validate().map_err(|source| FlexclError::Geometry {
            kernel: func.name.clone(),
            work_group,
            source,
        })?;

        // Dynamic profiling over a few work-groups (the paper: "only a few
        // work-groups are profiled in practice"). Stratified sampling picks
        // representative groups (first/middle/last plus NDRange-boundary
        // groups) and weights each by how many groups it stands in for.
        let mut args = workload.args.clone();
        let groups = nd.num_groups();
        let opts = RunOptions {
            profile_groups: Some(groups.min(fuel.group_budget.max(1))),
            profile_sampling: GroupSampling::Stratified,
            step_limit: fuel.step_limit,
            trace_limit: fuel.trace_limit,
            ..RunOptions::default()
        };
        let profile = run(&func, &mut args, nd, opts).map_err(|e| match e {
            InterpError::StepLimit(_) | InterpError::TraceLimit(_) => {
                FlexclError::ResourceLimit {
                    kernel: func.name.clone(),
                    work_group,
                    detail: e.to_string(),
                }
            }
            other => FlexclError::Profiling {
                kernel: func.name.clone(),
                work_group,
                source: other,
            },
        })?;

        // ---- memory: coalesce per buffer, interleave in work-item order,
        // and classify against the banked DRAM (Table 1). Each profiled
        // group's pattern-count delta enters the totals multiplied by its
        // stratum weight, and per-work-item averages divide by the weighted
        // work-item count — a weighted mixture over the strata that is
        // bit-identical to the plain average when every weight is 1.
        let unit_bytes = platform.mem_access_unit_bits / 8;
        let group_bursts = trace_to_group_bursts_into(&profile.trace, unit_bytes, scratch);
        let eff_wi = profile.weighted_work_items().max(1.0);

        let (pipe_totals, weighted_bursts, weighted_extra, mem_group_max) =
            replay_weighted(&platform, &group_bursts, &profile, 1, false, scratch);
        let (phased_totals, _, _, mem_group_max_phased) =
            replay_weighted(&platform, &group_bursts, &profile, 1, true, scratch);
        let mut pattern_counts = PatternTable::new();
        let mut pattern_counts_phased = PatternTable::new();
        for (p, c) in pipe_totals.iter() {
            pattern_counts[p] = c / eff_wi;
        }
        for (p, c) in phased_totals.iter() {
            pattern_counts_phased[p] = c / eff_wi;
        }
        let global_accesses_per_wi = weighted_bursts / eff_wi;
        let mem_extra_wi = weighted_extra / eff_wi;

        // Distinct burst-owner runs per group (weighted): how finely the
        // group's coalesced bursts interleave with its work-items. A fully
        // coalesced group (one burst covering all work-items) has one
        // owner; the pipeline integration uses this to model how much of
        // the wave schedule the memory stream can actually overlap.
        let mut owner_runs_weighted = 0.0f64;
        let mut owner_weight_total = 0.0f64;
        for (g, bursts) in group_bursts.iter() {
            if bursts.is_empty() {
                continue;
            }
            let mut runs = 0u64;
            let mut last: Option<u64> = None;
            for ob in bursts {
                if last != Some(ob.work_item) {
                    runs += 1;
                    last = Some(ob.work_item);
                }
            }
            let w = profile.group_weight(*g);
            owner_runs_weighted += w * runs as f64;
            owner_weight_total += w;
        }
        let burst_owners_per_group = if owner_weight_total > 0.0 {
            owner_runs_weighted / owner_weight_total
        } else {
            0.0
        };
        // ---- thread-coarsening levels: re-derive the same memory
        // summaries over the merged trace for every candidate factor that
        // tiles the work-group. The merged stream is re-coalesced from
        // scratch, so a factor-cf stencil window turns cf overlapping
        // per-item bursts into one wider burst; normalization stays per
        // original work-item (same `eff_wi`), so the evaluation's
        // `l_mem_wi · n_wi_wg` algebra holds unchanged at every level.
        let wg_size = u64::from(work_group.0) * u64::from(work_group.1);
        let mut coarsen_levels = Vec::new();
        for cf in COARSEN_CANDIDATES {
            if !wg_size.is_multiple_of(u64::from(cf)) {
                continue;
            }
            let merged = coarsen_trace(&profile.trace, cf);
            let merged_bursts = trace_to_group_bursts_into(&merged, unit_bytes, scratch);
            let (cf_pipe, cf_bursts, cf_extra, cf_group_max) =
                replay_weighted(&platform, &merged_bursts, &profile, 1, false, scratch);
            let (cf_phased, _, _, cf_group_max_phased) =
                replay_weighted(&platform, &merged_bursts, &profile, 1, true, scratch);
            let mut counts = PatternTable::new();
            let mut counts_phased = PatternTable::new();
            for (p, c) in cf_pipe.iter() {
                counts[p] = c / eff_wi;
            }
            for (p, c) in cf_phased.iter() {
                counts_phased[p] = c / eff_wi;
            }
            let mut cf_owner_runs = 0.0f64;
            let mut cf_owner_weight = 0.0f64;
            for (g, bursts) in merged_bursts.iter() {
                if bursts.is_empty() {
                    continue;
                }
                let mut runs = 0u64;
                let mut last: Option<u64> = None;
                for ob in bursts {
                    if last != Some(ob.work_item) {
                        runs += 1;
                        last = Some(ob.work_item);
                    }
                }
                let w = profile.group_weight(*g);
                cf_owner_runs += w * runs as f64;
                cf_owner_weight += w;
            }
            coarsen_levels.push(CoarsenLevel {
                factor: cf,
                pattern_counts: counts,
                pattern_counts_phased: counts_phased,
                global_accesses_per_wi: cf_bursts / eff_wi,
                mem_extra_wi: cf_extra / eff_wi,
                burst_owners_per_group: if cf_owner_weight > 0.0 {
                    cf_owner_runs / cf_owner_weight
                } else {
                    0.0
                },
                mem_group_max: cf_group_max,
                mem_group_max_phased: cf_group_max_phased,
            });
        }

        let pattern_latencies = microbench::profile_cached(platform.dram);
        if pattern_latencies.iter().any(|(_, dt)| !dt.is_finite() || dt < 0.0) {
            return Err(FlexclError::MemoryModel {
                kernel: func.name.clone(),
                detail: "micro-benchmarked pattern latency table contains a non-finite or \
                         negative entry (corrupt DRAM configuration?)"
                    .into(),
            });
        }

        // Per-CU-count contention curve: replay the same streams as C CUs
        // would emit them (round-robin partition over C channel states) and
        // take the pattern-weighted cost ratio against the 1-stream replay.
        // Cost includes the order-independent multi-beat transfer cycles:
        // they dilute the ratio exactly as they dilute the real slowdown.
        let cost = |totals: &PatternTable<f64>| -> f64 {
            pattern_latencies.iter().map(|(p, dt)| dt * totals[p]).sum::<f64>() + weighted_extra
        };
        let (base_pipe, base_phased) = (cost(&pipe_totals), cost(&phased_totals));
        let mut curve_points = vec![(1u32, 1.0f64, 1.0f64)];
        for c in [2u32, 4, 8] {
            let (tp, _, _, _) =
                replay_weighted(&platform, &group_bursts, &profile, c, false, scratch);
            let (tb, _, _, _) =
                replay_weighted(&platform, &group_bursts, &profile, c, true, scratch);
            let fp = if base_pipe > 0.0 { (cost(&tp) / base_pipe).clamp(0.5, 2.0) } else { 1.0 };
            let fb =
                if base_phased > 0.0 { (cost(&tb) / base_phased).clamp(0.5, 2.0) } else { 1.0 };
            curve_points.push((c, fp, fb));
        }
        let contention = ContentionCurve { points: curve_points };
        let (channel_contention, contention_probe) =
            measure_channel_contention(&platform, &group_bursts, scratch);

        // ---- static analysis with trip-count weighting.
        let multipliers = instruction_multipliers(&func, &profile);
        let mut local_reads: HashMap<MemRoot, f64> = HashMap::new();
        let mut local_writes: HashMap<MemRoot, f64> = HashMap::new();
        let mut dsp_ops_per_wi = 0.0;
        let mut static_dsps_per_pe = 0u32;
        let mut dsp_op_instances = 0u32;
        for inst in &func.insts {
            let m = multipliers[inst.id.0 as usize];
            match &inst.op {
                Op::Load { space: flexcl_frontend::types::AddressSpace::Local, root } => {
                    *local_reads.entry(*root).or_insert(0.0) += m;
                }
                Op::Store { space: flexcl_frontend::types::AddressSpace::Local, root } => {
                    *local_writes.entry(*root).or_insert(0.0) += m;
                }
                _ => {}
            }
            let dsps = platform.op_dsps(&inst.op, &inst.ty);
            if dsps > 0 {
                dsp_ops_per_wi += m;
                static_dsps_per_pe += dsps;
                dsp_op_instances += 1;
            }
        }

        // ---- recurrences with resolved cycle latencies.
        let recurrences = find_recurrences(&func)
            .into_iter()
            .map(|r| ResolvedRecurrence {
                distance: r.distance,
                cycle_latency: dep_path_latency(&func, &platform, r.load, r.store),
                load: r.load,
                store: r.store,
            })
            .collect();

        let local_bytes = func.local_bytes();
        Ok(KernelAnalysis {
            func,
            platform,
            work_group,
            global: workload.global,
            profile,
            pattern_counts,
            pattern_counts_phased,
            pattern_latencies,
            global_accesses_per_wi,
            mem_extra_wi,
            burst_owners_per_group,
            local_reads,
            local_writes,
            dsp_ops_per_wi,
            static_dsps_per_pe,
            dsp_op_instances,
            local_bytes,
            recurrences,
            channel_contention,
            contention_probe,
            contention,
            mem_group_max,
            mem_group_max_phased,
            coarsen_levels,
            multipliers,
        })
    }

    /// The pre-analyzed [`CoarsenLevel`] for `factor`, if the factor was a
    /// candidate dividing this work-group (factor 1 — the base analysis —
    /// returns `None`; callers use the base fields directly).
    pub fn coarsen_level(&self, factor: u32) -> Option<&CoarsenLevel> {
        self.coarsen_levels.iter().find(|l| l.factor == factor)
    }

    /// Per-work-item global-memory latency `L_mem^wi` (Eq. 9), with
    /// bursts in the pipeline-mode (work-item) order.
    pub fn l_mem_wi(&self) -> f64 {
        self.pattern_latencies
            .iter()
            .map(|(p, dt)| dt * self.pattern_counts[p])
            .sum::<f64>()
            + self.mem_extra_wi
    }

    /// `L_mem^wi` with barrier-mode phasing (reads first, then writes).
    pub fn l_mem_wi_phased(&self) -> f64 {
        self.pattern_latencies
            .iter()
            .map(|(p, dt)| dt * self.pattern_counts_phased[p])
            .sum::<f64>()
            + self.mem_extra_wi
    }

    /// `RecMII`: the recurrence-constrained lower bound of the work-item
    /// initiation interval.
    pub fn rec_mii(&self) -> u32 {
        self.recurrences
            .iter()
            .map(|r| {
                (r.cycle_latency as f64 / f64::from(r.distance.max(1))).ceil() as u32
            })
            .max()
            .unwrap_or(1)
            .max(1)
    }

    /// `ResMII` under a PE resource budget (Eq. 3–4), using trip-weighted
    /// per-work-item counts.
    pub fn res_mii(&self, budget: &ResourceBudget) -> u32 {
        let mut mii = 1u32;
        for (root, reads) in &self.local_reads {
            let ports = budget.local_read_ports.max(1) as f64;
            mii = mii.max((reads / ports).ceil() as u32);
            let _ = root;
        }
        for writes in self.local_writes.values() {
            let ports = budget.local_write_ports.max(1) as f64;
            mii = mii.max((writes / ports).ceil() as u32);
        }
        if self.dsp_ops_per_wi > 0.0 {
            let dsps = budget.dsps.max(1) as f64;
            mii = mii.max((self.dsp_ops_per_wi / dsps).ceil() as u32);
        }
        mii
    }

    /// One work-item's end-to-end latency through the CDFG (the critical
    /// path, i.e. the non-pipelined execution time and the floor of the
    /// pipeline depth `D_comp^PE`).
    ///
    /// # Errors
    ///
    /// Returns [`FlexclError::Scheduling`] if a basic block cannot be
    /// scheduled under `budget` (an op class with a zero budget).
    pub fn work_item_latency(&self, budget: &ResourceBudget) -> Result<f64, FlexclError> {
        self.work_item_latency_with(budget, &mut SchedScratch::new())
    }

    /// [`KernelAnalysis::work_item_latency`] reusing scheduler scratch
    /// buffers across calls. Bit-identical to the plain form.
    ///
    /// # Errors
    ///
    /// Same as [`KernelAnalysis::work_item_latency`].
    pub fn work_item_latency_with(
        &self,
        budget: &ResourceBudget,
        scratch: &mut SchedScratch,
    ) -> Result<f64, FlexclError> {
        self.region_latency(&self.func.region, budget, scratch)
    }

    fn sched_error(&self, e: flexcl_sched::SchedError) -> FlexclError {
        FlexclError::Scheduling { kernel: self.func.name.clone(), detail: e.to_string() }
    }

    fn block_latency(
        &self,
        block: flexcl_ir::BlockId,
        budget: &ResourceBudget,
        scratch: &mut SchedScratch,
    ) -> Result<f64, FlexclError> {
        let insts = &self.func.block(block).insts;
        if insts.is_empty() {
            return Ok(0.0);
        }
        let mut g = scratch.take_graph();
        let mut map: HashMap<InstId, NodeId> = HashMap::new();
        for id in insts {
            let inst = self.func.inst(*id);
            let node = g.add_node(
                self.platform.op_latency(&inst.op, &inst.ty),
                self.platform.op_resource(&inst.op, &inst.ty),
            );
            map.insert(*id, node);
        }
        for e in build_deps(&self.func, insts) {
            g.add_edge(map[&e.from], map[&e.to]);
        }
        let sched = list::schedule_with(&g, budget, scratch);
        scratch.put_graph(g);
        sched.map(|s| f64::from(s.length)).map_err(|e| self.sched_error(e))
    }

    fn region_latency(
        &self,
        region: &Region,
        budget: &ResourceBudget,
        scratch: &mut SchedScratch,
    ) -> Result<f64, FlexclError> {
        match region {
            Region::Block(b) => self.block_latency(*b, budget, scratch),
            Region::Seq(rs) => {
                let mut total = 0.0;
                for r in rs {
                    total += self.region_latency(r, budget, scratch)?;
                }
                Ok(total)
            }
            Region::If { cond_block, then_region, else_region } => {
                // Independent branches execute in parallel circuits (§3.2);
                // the merged node costs the longer branch.
                Ok(self.block_latency(*cond_block, budget, scratch)?
                    + self
                        .region_latency(then_region, budget, scratch)?
                        .max(self.region_latency(else_region, budget, scratch)?))
            }
            Region::Loop { id, header, body, latch } => {
                let meta = &self.func.loops[id.0 as usize];
                let trip = self.profile.trip_count(&self.func, *id).max(0.0);
                let header_lat = self.block_latency(*header, budget, scratch)?;
                let latch_lat = match latch {
                    Some(l) => self.block_latency(*l, budget, scratch)?,
                    None => 0.0,
                };
                let body_lat =
                    self.region_latency(body, budget, scratch)? + latch_lat + header_lat;
                if meta.pipeline {
                    return Ok(self
                        .pipelined_loop_latency(*header, body, *latch, trip, budget, scratch));
                }
                let unroll = match meta.unroll {
                    Some(0) => trip.max(1.0) as u32, // full unroll
                    Some(u) => u.max(1),
                    None => 1,
                };
                if unroll <= 1 {
                    Ok(header_lat + trip * body_lat)
                } else {
                    // Unrolled iterations share PE resources; the iteration
                    // latency cannot beat the resource floor.
                    let floor = self.unroll_resource_floor(body, budget, unroll);
                    let iters = (trip / f64::from(unroll)).ceil();
                    Ok(header_lat + iters * body_lat.max(floor))
                }
            }
        }
    }

    /// Latency of a `#pragma pipeline` loop: iterations overlap at the
    /// initiation interval found by modulo-scheduling the iteration body
    /// with its loop-carried dependences (values carried through private
    /// slots and same-array accesses across iterations):
    /// `L = II·(trip − 1) + depth`.
    fn pipelined_loop_latency(
        &self,
        header: flexcl_ir::BlockId,
        body: &Region,
        latch: Option<flexcl_ir::BlockId>,
        trip: f64,
        budget: &ResourceBudget,
        scratch: &mut SchedScratch,
    ) -> f64 {
        // One iteration = header + body blocks + latch, in program order.
        let mut seq: Vec<InstId> = Vec::new();
        seq.extend(self.func.block(header).insts.iter().copied());
        for b in body.blocks() {
            seq.extend(self.func.block(b).insts.iter().copied());
        }
        if let Some(l) = latch {
            seq.extend(self.func.block(l).insts.iter().copied());
        }
        if seq.is_empty() {
            return 0.0;
        }
        let mut g = scratch.take_graph();
        let mut map: HashMap<InstId, NodeId> = HashMap::new();
        for id in &seq {
            let inst = self.func.inst(*id);
            let node = g.add_node(
                self.platform.op_latency(&inst.op, &inst.ty),
                self.platform.op_resource(&inst.op, &inst.ty),
            );
            map.insert(*id, node);
        }
        for e in build_deps(&self.func, &seq) {
            g.add_edge(map[&e.from], map[&e.to]);
        }
        // Loop-carried dependences: a store in iteration k feeds loads that
        // appear *earlier* in iteration k+1 through the same root.
        let pos: HashMap<InstId, usize> =
            seq.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        for &sid in &seq {
            let s = self.func.inst(sid);
            let Op::Store { root: s_root, .. } = &s.op else { continue };
            for &lid in &seq {
                let l = self.func.inst(lid);
                let Op::Load { root: l_root, .. } = &l.op else { continue };
                if s_root != l_root || pos[&lid] >= pos[&sid] {
                    continue;
                }
                // Provably distinct constant indices never conflict.
                let (si, li) = (s.args[0].as_const_int(), l.args[0].as_const_int());
                if let (Some(a), Some(b)) = (si, li) {
                    if a != b {
                        continue;
                    }
                }
                g.add_edge_with_distance(map[&sid], map[&lid], 1);
            }
        }
        let sched = sms::schedule_with(&g, budget, 0, scratch);
        scratch.put_graph(g);
        f64::from(sched.ii) * (trip - 1.0).max(0.0) + f64::from(sched.depth)
    }

    /// Lower bound on the latency of `unroll` merged loop bodies given the
    /// resource budget (issue-rate bound).
    fn unroll_resource_floor(
        &self,
        body: &Region,
        budget: &ResourceBudget,
        unroll: u32,
    ) -> f64 {
        let mut uses: HashMap<ResourceClass, u32> = HashMap::new();
        for b in body.blocks() {
            for inst in self.func.block_insts(b) {
                let class = self.platform.op_resource(&inst.op, &inst.ty);
                *uses.entry(class).or_insert(0) += 1;
            }
        }
        let mut floor = 0f64;
        for (class, n) in uses {
            let limit = budget.limit(class);
            if limit == 0 || limit == u32::MAX {
                continue;
            }
            floor = floor.max(f64::from(n * unroll) / f64::from(limit));
        }
        floor.ceil()
    }

    /// Builds the work-item-level scheduling graph: top-level straight-line
    /// instructions as individual nodes, control regions (ifs, loops)
    /// collapsed into macro nodes, recurrence edges attached.
    ///
    /// # Errors
    ///
    /// Returns [`FlexclError::Scheduling`] if a collapsed region cannot be
    /// scheduled under `budget`.
    pub fn work_item_graph(
        &self,
        budget: &ResourceBudget,
    ) -> Result<(SchedGraph, Vec<Option<NodeId>>), FlexclError> {
        self.work_item_graph_with(budget, &self.work_item_deps(), &mut SchedScratch::new())
    }

    /// The dependence edges over the whole instruction sequence, the
    /// budget-independent half of [`KernelAnalysis::work_item_graph`].
    ///
    /// Evaluation layers compute this once per analysis and feed it to
    /// [`KernelAnalysis::work_item_graph_with`] /
    /// [`KernelAnalysis::pipeline_params_with`] for every budget.
    pub fn work_item_deps(&self) -> Vec<DepEdge> {
        let all: Vec<InstId> = self.func.insts.iter().map(|i| i.id).collect();
        build_deps(&self.func, &all)
    }

    /// [`KernelAnalysis::work_item_graph`] with precomputed dependence
    /// edges (from [`KernelAnalysis::work_item_deps`]) and reusable
    /// scheduler scratch. Bit-identical to the plain form.
    ///
    /// # Errors
    ///
    /// Same as [`KernelAnalysis::work_item_graph`].
    pub fn work_item_graph_with(
        &self,
        budget: &ResourceBudget,
        deps: &[DepEdge],
        scratch: &mut SchedScratch,
    ) -> Result<(SchedGraph, Vec<Option<NodeId>>), FlexclError> {
        let mut g = SchedGraph::new();
        let mut inst_node: Vec<Option<NodeId>> = vec![None; self.func.insts.len()];

        let top_items: Vec<&Region> = match &self.func.region {
            Region::Seq(items) => items.iter().collect(),
            other => vec![other],
        };
        for item in top_items {
            match item {
                Region::Block(b) => {
                    for inst in self.func.block_insts(*b) {
                        let node = g.add_node(
                            self.platform.op_latency(&inst.op, &inst.ty),
                            self.platform.op_resource(&inst.op, &inst.ty),
                        );
                        inst_node[inst.id.0 as usize] = Some(node);
                    }
                }
                region => {
                    let lat = self
                        .region_latency(region, budget, scratch)?
                        .min(f64::from(u32::MAX / 4));
                    let node = g.add_node(lat.round() as u32, ResourceClass::Fabric);
                    for b in region.blocks() {
                        for inst in self.func.block_insts(b) {
                            inst_node[inst.id.0 as usize] = Some(node);
                        }
                    }
                }
            }
        }

        // Dependence edges mapped onto nodes.
        let mut seen = std::collections::HashSet::new();
        for e in deps {
            let (Some(from), Some(to)) =
                (inst_node[e.from.0 as usize], inst_node[e.to.0 as usize])
            else {
                continue;
            };
            if from != to && seen.insert((from, to)) {
                g.add_edge(from, to);
            }
        }
        // Inter-work-item recurrence edges.
        for r in &self.recurrences {
            let (Some(from), Some(to)) =
                (inst_node[r.store.0 as usize], inst_node[r.load.0 as usize])
            else {
                continue;
            };
            g.add_edge_with_distance(from, to, r.distance);
        }
        Ok((g, inst_node))
    }

    /// The PE pipeline parameters: `(II_comp^wi, D_comp^PE)` via
    /// `MII = max(RecMII, ResMII)` refined by swing modulo scheduling.
    ///
    /// # Errors
    ///
    /// Returns [`FlexclError::Scheduling`] if the work-item graph cannot be
    /// scheduled under `budget`.
    pub fn pipeline_params(&self, budget: &ResourceBudget) -> Result<(u32, u32), FlexclError> {
        self.pipeline_params_with(budget, &self.work_item_deps(), &mut SchedScratch::new())
    }

    /// [`KernelAnalysis::pipeline_params`] with precomputed dependence
    /// edges and reusable scheduler scratch. Bit-identical to the plain
    /// form.
    ///
    /// # Errors
    ///
    /// Same as [`KernelAnalysis::pipeline_params`].
    pub fn pipeline_params_with(
        &self,
        budget: &ResourceBudget,
        deps: &[DepEdge],
        scratch: &mut SchedScratch,
    ) -> Result<(u32, u32), FlexclError> {
        let (g, _) = self.work_item_graph_with(budget, deps, scratch)?;
        let latency = self.work_item_latency_with(budget, scratch)?;
        let rec = self.rec_mii();
        let res = self.res_mii(budget);
        // Expected synthesized parameters: schedule a fixed ensemble of
        // implementation draws and average. Scheduling the mean-latency
        // graph instead would underestimate — the pipeline depth is a max
        // over paths, so depth(E[latency]) ≤ E[depth] (Jensen), and the
        // synthesis population the System Run samples from is exactly
        // [`flexcl_sched::IMPL_FACTORS`]. The ensemble seed is a constant:
        // the model cannot know which implementation a given synthesis run
        // picks, only the population's expectation.
        let weight_total = u64::from(flexcl_sched::impl_factor_weight_total());
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut draw = move || {
            // xorshift64*: deterministic, dependency-free, well-mixed.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let bits = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            flexcl_sched::impl_factor(((bits >> 33) % weight_total) as u32)
        };
        let mut sum_ii = 0.0f64;
        let mut sum_depth = 0.0f64;
        for _ in 0..SYNTH_ENSEMBLE {
            let pg = flexcl_sched::perturb_graph_with(&g, &mut draw);
            let n = g.len().max(1);
            let agg = (0..n).map(|_| draw()).sum::<f64>() / n as f64;
            let floor = (latency * agg).round() as u32;
            let s = sms::schedule_with(&pg, budget, floor, scratch);
            sum_ii += f64::from(s.ii.max(rec).max(res));
            sum_depth += f64::from(s.depth);
        }
        let k = f64::from(SYNTH_ENSEMBLE);
        Ok((
            (sum_ii / k).round().max(1.0) as u32,
            (sum_depth / k).round().max(1.0) as u32,
        ))
    }

    /// Execution multiplier of an instruction (product of enclosing loop
    /// trip counts).
    pub fn multiplier(&self, id: InstId) -> f64 {
        self.multipliers[id.0 as usize]
    }
}

/// Replays the profiled group streams round-robin across `streams` DRAM
/// channel states — each with its own serial clock, the way `streams`
/// co-running CUs emit them — and returns the stratum-weighted pattern
/// totals, the weighted burst count, and the weighted multi-beat transfer
/// cycles (a burst longer than one interleave chunk streams
/// `extra · t_burst` cycles on top of its pattern's ΔT, which the
/// micro-benchmark measures with single-chunk requests), and the service
/// cycles of the heaviest single group (unweighted max over groups,
/// including its transfer beats). With one stream this is the plain serial
/// replay the pattern counts have always used.
fn replay_weighted(
    platform: &Platform,
    group_bursts: &[(u64, Vec<OwnedBurst>)],
    profile: &Profile,
    streams: u32,
    phased: bool,
    scratch: &mut AnalysisScratch,
) -> (PatternTable<f64>, f64, f64, f64) {
    let pool = scratch.dram_pool(platform.dram, streams.max(1) as usize);
    let mut clocks = vec![0u64; pool.len()];
    let mut totals = PatternTable::new();
    let mut weighted_bursts = 0.0f64;
    let mut weighted_extra = 0.0f64;
    let mut max_group = 0.0f64;
    let chunk = platform.dram.interleave_bytes.max(1);
    let beat = u64::from(platform.dram.timing.t_burst);
    for (g, bursts) in group_bursts.iter() {
        // Lane by group-id residue: the dispatcher hands group `g` to CU
        // `g mod C`, so channel `r`'s stream is the ids `≡ r (mod C)` in
        // order. Position-based round-robin would instead split the
        // profiled strata (and their warm-up predecessors) arbitrarily,
        // severing genuine id-adjacency the sample does contain and
        // overstating the handoff cost.
        let lane = (*g % pool.len() as u64) as usize;
        let sim = &mut pool[lane];
        let before = *sim.counts();
        let entered = clocks[lane];
        let mut t = entered;
        let mut extra = 0u64;
        if phased {
            // Barrier mode: per group, reads then writes.
            for pass in [AccessKind::Read, AccessKind::Write] {
                for ob in bursts.iter().filter(|b| b.burst.kind == pass) {
                    t = serve_burst(sim, ob, t);
                }
            }
        } else {
            // Pipeline mode: work-item order.
            for ob in bursts {
                t = serve_burst(sim, ob, t);
            }
        }
        for ob in bursts {
            extra += (u64::from(ob.burst.bytes).saturating_sub(1)) / chunk * beat;
        }
        clocks[lane] = t;
        max_group = max_group.max((t - entered + extra) as f64);
        let w = profile.group_weight(*g);
        for (p, c) in sim.counts().iter() {
            totals[p] += w * (c - before[p]) as f64;
        }
        weighted_bursts += w * bursts.len() as f64;
        weighted_extra += w * extra as f64;
    }
    (totals, weighted_bursts, weighted_extra, max_group)
}

/// Services one coalesced burst arriving at `t`, returning its finish time.
fn serve_burst(sim: &mut DramSim, ob: &OwnedBurst, t: u64) -> u64 {
    sim.access(Request {
        addr: ob.burst.addr,
        bytes: ob.burst.bytes,
        kind: ob.burst.kind,
        arrival: t,
    })
    .finish
}

/// Replays one profiled group's burst stream alone and two streams
/// concurrently, returning the per-stream slowdown caused by sharing the
/// channel's banks (clamped to [1, 2]) and how the pairing was obtained.
fn measure_channel_contention(
    platform: &Platform,
    group_bursts: &[(u64, Vec<OwnedBurst>)],
    scratch: &mut AnalysisScratch,
) -> (f64, ContentionProbe) {
    let Some((_, g0)) = group_bursts.first() else {
        return (1.0, ContentionProbe::NoTraffic);
    };
    if g0.is_empty() {
        return (1.0, ContentionProbe::NoTraffic);
    }
    // With C CUs on `channels` channels the dispatcher pairs CU 0 with
    // CU `channels` on channel 0, so the streams that actually co-run are
    // those of group 0 and group `channels` — measure exactly that pair,
    // looked up by *group id* (the profiled subset is not contiguous, so
    // positional indexing would pick an arbitrary stratum).
    let pair_id = u64::from(platform.dram_channels.max(1));
    let paired = group_bursts
        .iter()
        .find(|(g, b)| *g == pair_id && !b.is_empty());
    let (g1, offset, probe) = match paired {
        Some((g, b)) => (b.as_slice(), 0u64, ContentionProbe::PairedGroups { pair: *g }),
        // Co-runner not profiled (single-group kernels, or the pair id not
        // among the strata): replay the same stream one row-sweep away.
        None => (
            g0.as_slice(),
            platform.dram.row_bytes * u64::from(platform.dram.num_banks),
            ContentionProbe::SelfOffset,
        ),
    };

    // Solo replay.
    let dram = scratch.dram(platform.dram);
    let mut t = 0u64;
    for ob in g0 {
        let info = dram.access(Request {
            addr: ob.burst.addr,
            bytes: ob.burst.bytes,
            kind: ob.burst.kind,
            arrival: t,
        });
        t = info.finish;
    }
    let t1 = t.max(1);

    // Concurrent replay: two serial engines, shared banks.
    let dram = scratch.dram(platform.dram);
    let (mut a_free, mut b_free) = (0u64, 0u64);
    let (mut ai, mut bi) = (0usize, 0usize);
    while ai < g0.len() || bi < g1.len() {
        let take_a = bi >= g1.len() || (ai < g0.len() && a_free <= b_free);
        if take_a {
            let ob = &g0[ai];
            let info = dram.access(Request {
                addr: ob.burst.addr,
                bytes: ob.burst.bytes,
                kind: ob.burst.kind,
                arrival: a_free,
            });
            a_free = info.finish;
            ai += 1;
        } else {
            let ob = &g1[bi];
            let info = dram.access(Request {
                addr: ob.burst.addr + offset,
                bytes: ob.burst.bytes,
                kind: ob.burst.kind,
                arrival: b_free,
            });
            b_free = info.finish;
            bi += 1;
        }
    }
    let t2 = a_free.max(b_free).max(1);
    ((t2 as f64 / t1 as f64).clamp(1.0, 2.0), probe)
}

/// Computes per-instruction execution multipliers from the region tree and
/// observed trip counts.
fn instruction_multipliers(func: &Function, profile: &Profile) -> Vec<f64> {
    let mut out = vec![0.0; func.insts.len()];
    fill_multipliers(func, profile, &func.region, 1.0, &mut out);
    out
}

fn fill_multipliers(
    func: &Function,
    profile: &Profile,
    region: &Region,
    mult: f64,
    out: &mut Vec<f64>,
) {
    match region {
        Region::Block(b) => {
            for id in &func.block(*b).insts {
                out[id.0 as usize] = mult;
            }
        }
        Region::Seq(rs) => rs.iter().for_each(|r| fill_multipliers(func, profile, r, mult, out)),
        Region::If { cond_block, then_region, else_region } => {
            for id in &func.block(*cond_block).insts {
                out[id.0 as usize] = mult;
            }
            // Branch bodies execute at most once per region entry.
            fill_multipliers(func, profile, then_region, mult, out);
            fill_multipliers(func, profile, else_region, mult, out);
        }
        Region::Loop { id, header, body, latch } => {
            let trip = profile.trip_count(func, *id).max(0.0);
            for iid in &func.block(*header).insts {
                out[iid.0 as usize] = mult * (trip + 1.0);
            }
            if let Some(l) = latch {
                for iid in &func.block(*l).insts {
                    out[iid.0 as usize] = mult * trip;
                }
            }
            fill_multipliers(func, profile, body, mult * trip, out);
        }
    }
}

/// Longest def-use path latency from `from` to `to` (inclusive of both),
/// used as the recurrence cycle latency.
fn dep_path_latency(
    func: &Function,
    platform: &Platform,
    from: InstId,
    to: InstId,
) -> u64 {
    let n = func.insts.len();
    let mut dist = vec![i64::MIN; n];
    let lat = |id: InstId| {
        let inst = func.inst(id);
        i64::from(platform.op_latency(&inst.op, &inst.ty))
    };
    dist[from.0 as usize] = lat(from);
    // Data edges always point forward in arena order.
    for i in from.0..=to.0.min(n as u32 - 1) {
        let d = dist[i as usize];
        if d == i64::MIN {
            continue;
        }
        let inst = func.inst(InstId(i));
        let _ = inst;
        for later in (i + 1)..n as u32 {
            let cand = func.inst(InstId(later));
            let depends = cand.args.iter().any(|a| matches!(a, Value::Inst(x) if *x == InstId(i)));
            if depends {
                let nd = d + lat(InstId(later));
                if nd > dist[later as usize] {
                    dist[later as usize] = nd;
                }
            }
        }
    }
    let d = dist[to.0 as usize];
    if d == i64::MIN {
        // No def-use path (dependence flows through memory only): charge
        // the two endpoint latencies.
        (lat(from) + lat(to)).max(1) as u64
    } else {
        d.max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str, args: Vec<KernelArg>, global: (u64, u64), wg: (u32, u32)) -> KernelAnalysis {
        let p = flexcl_frontend::parse_and_check(src).expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        let platform = Platform::virtex7_adm7v3();
        let workload = Workload { args, global };
        KernelAnalysis::analyze(&f, &platform, &workload, wg).expect("analysis")
    }

    #[test]
    fn elementwise_kernel_analysis() {
        let a = analyze(
            "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
                int i = get_global_id(0);
                c[i] = a[i] + b[i];
            }",
            vec![
                KernelArg::FloatBuf(vec![1.0; 256]),
                KernelArg::FloatBuf(vec![2.0; 256]),
                KernelArg::FloatBuf(vec![0.0; 256]),
            ],
            (256, 1),
            (64, 1),
        );
        assert_eq!(a.rec_mii(), 1);
        // Perfectly consecutive accesses coalesce 16:1 (512-bit unit, f32).
        assert!(a.global_accesses_per_wi < 3.0 / 4.0, "{}", a.global_accesses_per_wi);
        assert!(a.l_mem_wi() > 0.0);
        let budget = ResourceBudget::unconstrained();
        let (ii, depth) = a.pipeline_params(&budget).expect("pipeline params");
        assert!(ii >= 1);
        assert!(depth >= 4, "fadd latency must show up in depth, got {depth}");
    }

    #[test]
    fn recurrence_kernel_has_rec_mii() {
        let a = analyze(
            "__kernel void scan(__global float* b, __global float* a) {
                int i = get_global_id(0);
                b[i + 1] = b[i] + a[i];
            }",
            vec![KernelArg::FloatBuf(vec![0.0; 300]), KernelArg::FloatBuf(vec![1.0; 300])],
            (256, 1),
            (64, 1),
        );
        assert_eq!(a.recurrences.len(), 1);
        assert!(a.rec_mii() > 1, "rec_mii = {}", a.rec_mii());
    }

    #[test]
    fn local_port_pressure_raises_res_mii() {
        let a = analyze(
            "__kernel void stencil(__global float* in, __global float* out) {
                __local float tile[66];
                int l = get_local_id(0);
                int i = get_global_id(0);
                tile[l + 1] = in[i + 1];
                barrier(CLK_LOCAL_MEM_FENCE);
                out[i] = tile[l] + tile[l + 1] + tile[l + 2];
            }",
            vec![KernelArg::FloatBuf(vec![1.0; 300]), KernelArg::FloatBuf(vec![0.0; 300])],
            (256, 1),
            (64, 1),
        );
        // Three reads of `tile` per work-item against 2 read ports.
        let budget = ResourceBudget {
            local_read_ports: 2,
            local_write_ports: 1,
            dsps: 1024,
            global_ports: 4,
        };
        assert_eq!(a.res_mii(&budget), 2);
        let reads: f64 = a.local_reads.values().sum();
        assert_eq!(reads, 3.0);
    }

    #[test]
    fn loop_weighting_multiplies_counts() {
        let a = analyze(
            "__kernel void k(__global float* x, __global float* y) {
                int i = get_global_id(0);
                float s = 0.0f;
                for (int j = 0; j < 8; j++) {
                    s = s * 1.5f + y[j];
                }
                x[i] = s;
            }",
            vec![KernelArg::FloatBuf(vec![0.0; 64]), KernelArg::FloatBuf(vec![1.0; 64])],
            (64, 1),
            (64, 1),
        );
        // The fmul executes 8 times per work-item.
        assert!(a.dsp_ops_per_wi >= 8.0, "dsp ops {}", a.dsp_ops_per_wi);
    }

    #[test]
    fn work_item_latency_reflects_loop_trip() {
        let short = analyze(
            "__kernel void k(__global float* x) {
                float s = 0.0f;
                for (int j = 0; j < 4; j++) { s += x[j]; }
                x[get_global_id(0)] = s;
            }",
            vec![KernelArg::FloatBuf(vec![1.0; 64])],
            (64, 1),
            (64, 1),
        );
        let long = analyze(
            "__kernel void k(__global float* x) {
                float s = 0.0f;
                for (int j = 0; j < 64; j++) { s += x[j % 4]; }
                x[get_global_id(0)] = s;
            }",
            vec![KernelArg::FloatBuf(vec![1.0; 64])],
            (64, 1),
            (64, 1),
        );
        let budget = ResourceBudget::unconstrained();
        let long_lat = long.work_item_latency(&budget).expect("latency");
        let short_lat = short.work_item_latency(&budget).expect("latency");
        assert!(long_lat > 4.0 * short_lat);
    }

    #[test]
    fn strided_access_hurts_memory_model() {
        let seq = analyze(
            "__kernel void k(__global float* a, __global float* b) {
                int i = get_global_id(0);
                b[i] = a[i];
            }",
            vec![KernelArg::FloatBuf(vec![1.0; 4096]), KernelArg::FloatBuf(vec![0.0; 4096])],
            (256, 1),
            (64, 1),
        );
        let strided = analyze(
            "__kernel void k(__global float* a, __global float* b) {
                int i = get_global_id(0);
                b[i] = a[i * 16];
            }",
            vec![KernelArg::FloatBuf(vec![1.0; 4096]), KernelArg::FloatBuf(vec![0.0; 4096])],
            (256, 1),
            (64, 1),
        );
        assert!(
            strided.l_mem_wi() > seq.l_mem_wi(),
            "strided {} vs sequential {}",
            strided.l_mem_wi(),
            seq.l_mem_wi()
        );
    }

    #[test]
    fn pipelined_loop_is_faster_than_serial() {
        let serial = analyze(
            "__kernel void k(__global float* a, __global float* b) {
                int i = get_global_id(0);
                float acc = 0.0f;
                for (int j = 0; j < 32; j++) { acc = acc + (float)j * 0.5f; }
                b[i] = acc + a[i];
            }",
            vec![KernelArg::FloatBuf(vec![1.0; 64]), KernelArg::FloatBuf(vec![0.0; 64])],
            (64, 1),
            (64, 1),
        );
        let piped = analyze(
            "__kernel void k(__global float* a, __global float* b) {
                int i = get_global_id(0);
                float acc = 0.0f;
                #pragma pipeline
                for (int j = 0; j < 32; j++) { acc = acc + (float)j * 0.5f; }
                b[i] = acc + a[i];
            }",
            vec![KernelArg::FloatBuf(vec![1.0; 64]), KernelArg::FloatBuf(vec![0.0; 64])],
            (64, 1),
            (64, 1),
        );
        let budget = ResourceBudget::unconstrained();
        let ls = serial.work_item_latency(&budget).expect("latency");
        let lp = piped.work_item_latency(&budget).expect("latency");
        assert!(
            lp < ls * 0.7,
            "pipelined loop {lp} should beat serial {ls}"
        );
        // The accumulation `acc += ...` is a loop-carried recurrence: the
        // loop II cannot be 1 (fadd latency is 4 cycles), so the pipelined
        // latency must stay above trip × 4.
        assert!(lp >= 32.0 * 4.0, "recurrence floor violated: {lp}");
    }

    #[test]
    fn independent_pipelined_loop_reaches_low_ii() {
        // A loop whose iterations are independent (element-wise writes)
        // pipelines down to the resource floor.
        let piped = analyze(
            "__kernel void k(__global float* a) {
                int i = get_global_id(0);
                #pragma pipeline
                for (int j = 0; j < 32; j++) { a[i * 32 + j] = (float)j * 2.0f; }
            }",
            vec![KernelArg::FloatBuf(vec![0.0; 64 * 32])],
            (64, 1),
            (64, 1),
        );
        let budget = ResourceBudget::unconstrained();
        let lp = piped.work_item_latency(&budget).expect("latency");
        // The loop induction variable is itself a slot-carried recurrence
        // (j += 1, integer add, latency 1): II floor is small but not the
        // serial body latency.
        assert!(lp < 32.0 * 8.0, "independent loop pipelines: {lp}");
    }

    #[test]
    fn bad_geometry_is_rejected() {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void k(__global int* a) { a[get_global_id(0)] = 1; }",
        )
        .expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        let platform = Platform::virtex7_adm7v3();
        let workload =
            Workload { args: vec![KernelArg::IntBuf(vec![0; 100])], global: (100, 1) };
        let err = KernelAnalysis::analyze(&f, &platform, &workload, (64, 1)).unwrap_err();
        assert_eq!(err.kind(), crate::error::ErrorKind::Geometry);
        assert!(matches!(err, FlexclError::Geometry { work_group: (64, 1), .. }));
        assert!(err.to_string().contains('k'), "error names the kernel: {err}");
    }

    #[test]
    fn runaway_loop_degrades_to_resource_limit() {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void spin(__global int* a) {
                int i = get_global_id(0);
                int s = 0;
                for (int j = 0; j < 1000000; j++) { s = s + j; }
                a[i] = s;
            }",
        )
        .expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        let platform = Platform::virtex7_adm7v3();
        let workload =
            Workload { args: vec![KernelArg::IntBuf(vec![0; 64])], global: (64, 1) };
        let fuel =
            ProfileFuel { step_limit: 1000, trace_limit: 1 << 20, ..ProfileFuel::default() };
        let err = KernelAnalysis::analyze_interned(
            Arc::new(f),
            Arc::new(platform),
            &workload,
            (64, 1),
            fuel,
            &mut AnalysisScratch::new(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), crate::error::ErrorKind::ResourceLimit);
        assert!(err.to_string().contains("spin"), "error names the kernel: {err}");
    }
}
