//! Design-space exploration (§4.3).
//!
//! FlexCL's raison d'être: because one estimate costs microseconds rather
//! than the hours of a synthesis run, the *entire* optimization space of a
//! kernel — hundreds of configurations — can be ranked exhaustively within
//! seconds. Kernel analysis is shared across all configurations with the
//! same work-group size, so the sweep re-runs only the closed-form model.

use crate::analysis::{AnalysisError, KernelAnalysis, Workload};
use crate::config::{self, DesignSpaceLimits, OptimizationConfig};
use crate::model::{estimate, Estimate};
use crate::platform::Platform;
use flexcl_frontend::types::Type;
use flexcl_ir::Function;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One explored configuration with its estimate.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// The configuration.
    pub config: OptimizationConfig,
    /// Its FlexCL estimate.
    pub estimate: Estimate,
}

/// The outcome of an exhaustive sweep.
#[derive(Debug, Clone)]
pub struct DseResult {
    /// All evaluated points, in enumeration order.
    pub points: Vec<DesignPoint>,
    /// Wall-clock time of the sweep (including kernel analyses).
    pub elapsed: Duration,
}

impl DseResult {
    /// The fastest feasible point.
    pub fn best(&self) -> Option<&DesignPoint> {
        self.points
            .iter()
            .filter(|p| p.estimate.feasible)
            .min_by(|a, b| a.estimate.cycles.total_cmp(&b.estimate.cycles))
    }

    /// Number of feasible points.
    pub fn feasible_count(&self) -> usize {
        self.points.iter().filter(|p| p.estimate.feasible).count()
    }

    /// Among configurations meeting a cycle budget, the one with the
    /// smallest estimated area — the paper's "solutions subject to a user
    /// defined performance constraint" query (§1).
    pub fn cheapest_meeting(
        &self,
        analysis: &KernelAnalysis,
        max_cycles: f64,
    ) -> Option<DesignPoint> {
        self.points
            .iter()
            .filter(|p| p.estimate.feasible && p.estimate.cycles <= max_cycles)
            .min_by(|a, b| {
                let ca = crate::area::estimate_area(analysis, &a.config)
                    .cost(&analysis.platform);
                let cb = crate::area::estimate_area(analysis, &b.config)
                    .cost(&analysis.platform);
                ca.total_cmp(&cb)
            })
            .cloned()
    }

    /// The performance/area Pareto frontier of the explored space.
    pub fn pareto(&self, analysis: &KernelAnalysis) -> Vec<crate::area::ParetoPoint> {
        let pts = self.points.iter().filter(|p| p.estimate.feasible).map(|p| {
            crate::area::ParetoPoint {
                config: p.config,
                cycles: p.estimate.cycles,
                area: crate::area::estimate_area(analysis, &p.config),
            }
        });
        crate::area::pareto_frontier(&analysis.platform, pts)
    }

    /// Speedup of the best point over the unoptimized baseline
    /// configuration (the §4.3 "273× on average" metric).
    pub fn speedup_over_baseline(&self) -> Option<f64> {
        let best = self.best()?;
        let baseline = self
            .points
            .iter()
            .filter(|p| {
                p.estimate.feasible
                    && !p.config.work_item_pipeline
                    && p.config.num_pes == 1
                    && p.config.num_cus == 1
                    && p.config.vector_width == 1
            })
            .max_by(|a, b| a.estimate.cycles.total_cmp(&b.estimate.cycles))?;
        Some(baseline.estimate.cycles / best.estimate.cycles)
    }
}

/// Derives the design-space limits for a kernel/workload pair.
pub fn limits_for(func: &Function, workload: &Workload) -> DesignSpaceLimits {
    let vector_params = func.params.iter().any(|p| match &p.ty {
        Type::Pointer(elem, _) => elem.lanes() > 1,
        t => t.lanes() > 1,
    });
    DesignSpaceLimits {
        global_x: workload.global.0,
        global_y: workload.global.1,
        has_barrier: func.has_barrier(),
        reqd_work_group: func.reqd_work_group_size.map(|(x, y, _)| (x, y)),
        vectorizable: !vector_params && !func.has_barrier(),
    }
}

/// Exhaustively explores the design space of `func` on `workload`.
///
/// # Errors
///
/// Propagates kernel-analysis failures (profiling errors). Work-group
/// sizes that do not tile the workload are skipped silently.
pub fn explore(
    func: &Function,
    platform: &Platform,
    workload: &Workload,
) -> Result<DseResult, AnalysisError> {
    let start = Instant::now();
    let limits = limits_for(func, workload);
    let configs = config::enumerate(&limits);

    let mut analyses: HashMap<(u32, u32), KernelAnalysis> = HashMap::new();
    let mut points = Vec::with_capacity(configs.len());
    for cfg in configs {
        let wg = cfg.work_group;
        if !analyses.contains_key(&wg) {
            match KernelAnalysis::analyze(func, platform, workload, wg) {
                Ok(a) => {
                    analyses.insert(wg, a);
                }
                Err(AnalysisError::BadGeometry(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        let analysis = &analyses[&wg];
        points.push(DesignPoint { config: cfg, estimate: estimate(analysis, &cfg) });
    }
    Ok(DseResult { points, elapsed: start.elapsed() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcl_interp::KernelArg;

    fn vadd() -> (Function, Workload) {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
                int i = get_global_id(0);
                c[i] = a[i] + b[i];
            }",
        )
        .expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        let w = Workload {
            args: vec![
                KernelArg::FloatBuf(vec![1.0; 4096]),
                KernelArg::FloatBuf(vec![2.0; 4096]),
                KernelArg::FloatBuf(vec![0.0; 4096]),
            ],
            global: (4096, 1),
        };
        (f, w)
    }

    #[test]
    fn sweep_covers_hundreds_of_points_quickly() {
        let (f, w) = vadd();
        let result = explore(&f, &Platform::virtex7_adm7v3(), &w).expect("dse");
        assert!(result.points.len() >= 100, "{} points", result.points.len());
        assert!(result.feasible_count() > result.points.len() / 2);
        assert!(
            result.elapsed.as_secs() < 30,
            "DSE must run in seconds, took {:?}",
            result.elapsed
        );
    }

    #[test]
    fn best_point_beats_baseline() {
        let (f, w) = vadd();
        let result = explore(&f, &Platform::virtex7_adm7v3(), &w).expect("dse");
        let speedup = result.speedup_over_baseline().expect("speedup");
        assert!(speedup > 5.0, "speedup {speedup}");
        let best = result.best().expect("best");
        assert!(best.config.work_item_pipeline, "best config should pipeline");
    }

    #[test]
    fn barrier_kernel_space_restricted() {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void k(__global float* a) {
                __local float t[256];
                int l = get_local_id(0);
                t[l] = a[get_global_id(0)];
                barrier(CLK_LOCAL_MEM_FENCE);
                a[get_global_id(0)] = t[l];
            }",
        )
        .expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        let w = Workload { args: vec![KernelArg::FloatBuf(vec![0.0; 1024])], global: (1024, 1) };
        let result = explore(&f, &Platform::virtex7_adm7v3(), &w).expect("dse");
        assert!(result
            .points
            .iter()
            .all(|p| p.config.comm_mode == crate::config::CommMode::Barrier));
    }
}
