//! Design-space exploration (§4.3).
//!
//! FlexCL's raison d'être: because one estimate costs microseconds rather
//! than the hours of a synthesis run, the *entire* optimization space of a
//! kernel — hundreds of configurations — can be ranked exhaustively within
//! seconds. Kernel analysis is shared across all configurations with the
//! same work-group size, so the sweep re-runs only the closed-form model.
//!
//! The sweep engine is organised around **families**: the contiguous runs
//! of enumerated configurations that share one work-group size and hence
//! one [`KernelAnalysis`]. Families are independent, which gives the four
//! levers [`DseOptions`] exposes:
//!
//! * **Parallelism** — families are distributed over `threads` scoped
//!   worker threads ([`std::thread::scope`], no external dependencies);
//!   results are merged back in enumeration order, so the returned
//!   [`DseResult`] is bit-identical to the serial sweep.
//! * **Memoization** — kernel and platform are interned behind [`Arc`]s,
//!   DRAM micro-benchmark profiles are cached per configuration, each
//!   worker reuses one [`AnalysisScratch`] across its families, each
//!   family evaluates through one [`EvalContext`] (schedules computed once
//!   per distinct resource budget, not once per candidate), and completed
//!   analyses are kept in a small process-wide content-keyed cache
//!   ([`DseOptions::reuse_analysis`]) so repeated sweeps skip profiling.
//!   [`DseResult::stats`] reports where the time went and how the caches
//!   performed.
//! * **Pruning** — optionally, a family/mode whose cheap monotonic lower
//!   bound ([`cycle_lower_bound`]) already exceeds the best feasible cycle
//!   count seen so far is skipped without evaluating its configurations.
//!   Every point tied for the global minimum always survives (its family's
//!   bound can never exceed the incumbent), so [`DseResult::best`] is
//!   identical to the exhaustive sweep; the exhaustive sweep remains the
//!   default.
//! * **Fault tolerance** — a candidate that fails (typed [`FlexclError`]
//!   on the normal path, a panic contained by [`std::panic::catch_unwind`]
//!   as a backstop) is recorded in the sweep's [`DiagnosticsReport`] and
//!   the sweep continues; the surviving points are bit-identical to a
//!   clean sweep over the same subset. Profiling runs under the
//!   [`ProfileFuel`] budget in [`DseOptions::fuel`], so a runaway kernel
//!   costs a bounded amount of work, not a hung worker.

use crate::analysis::{AnalysisScratch, KernelAnalysis, ProfileFuel, Workload};
use crate::config::{self, CommMode, DesignSpaceLimits, OptimizationConfig};
use crate::error::{ErrorKind, FlexclError};
use crate::eval::EvalContext;
use crate::model::{cycle_lower_bound, Estimate};
use crate::platform::Platform;
use flexcl_frontend::types::Type;
use flexcl_ir::Function;
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Knobs of the sweep engine. The default — one thread, no pruning,
/// default fuel — is the exhaustive serial sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DseOptions {
    /// Worker threads. `1` runs the classic serial sweep on the calling
    /// thread; larger values fan families out over scoped threads. The
    /// explored points are bit-identical either way.
    pub threads: usize,
    /// Branch-and-bound pruning. When enabled, whole `(work_group,
    /// comm_mode)` families may be skipped once the incumbent proves they
    /// cannot contain the fastest point; [`DseResult::best`] is unchanged,
    /// but dominated points may be missing from [`DseResult::points`].
    pub prune: bool,
    /// Fuel budget for each family's dynamic-profiling run. A kernel that
    /// exhausts it fails that family with
    /// [`ErrorKind::ResourceLimit`] instead of hanging the sweep.
    pub fuel: ProfileFuel,
    /// Reuse kernel analyses across sweeps of the same
    /// `(kernel, platform, workload, work_group, fuel)` through a small
    /// process-wide cache. Repeated sweeps (parameter studies, benchmark
    /// harnesses) then skip re-profiling entirely; the estimates are
    /// bit-identical because the cached analysis is the same value the
    /// sweep would recompute. Disable to force every sweep to re-analyze.
    pub reuse_analysis: bool,
}

impl Default for DseOptions {
    fn default() -> Self {
        DseOptions {
            threads: 1,
            prune: false,
            fuel: ProfileFuel::default(),
            reuse_analysis: true,
        }
    }
}

impl DseOptions {
    /// An exhaustive sweep over `threads` workers.
    pub fn parallel(threads: usize) -> Self {
        DseOptions { threads: threads.max(1), ..Self::default() }
    }
}

/// One explored configuration with its estimate.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// The configuration.
    pub config: OptimizationConfig,
    /// Its FlexCL estimate.
    pub estimate: Estimate,
}

/// One candidate the sweep had to skip, with the typed reason.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedPoint {
    /// Enumeration index of the candidate in the swept configuration list.
    pub index: usize,
    /// The configuration that failed.
    pub config: OptimizationConfig,
    /// Classification of the failure.
    pub kind: ErrorKind,
    /// Human-readable detail (the error's display form, or the panic
    /// payload).
    pub message: String,
}

/// Per-sweep failure accounting: which candidates were skipped and why.
///
/// A fault-tolerant sweep never aborts on a bad candidate; it records the
/// failure here and keeps going. An empty report means every enumerated
/// candidate was evaluated (modulo branch-and-bound pruning, which is not
/// a failure).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiagnosticsReport {
    /// Failed candidates in enumeration order.
    pub failed: Vec<FailedPoint>,
}

impl DiagnosticsReport {
    /// Number of candidates skipped because of failures.
    pub fn skipped_count(&self) -> usize {
        self.failed.len()
    }

    /// `true` when no candidate failed.
    pub fn is_clean(&self) -> bool {
        self.failed.is_empty()
    }

    /// Number of failures of a given kind.
    pub fn count_of(&self, kind: ErrorKind) -> usize {
        self.failed.iter().filter(|f| f.kind == kind).count()
    }
}

/// Instrumentation counters for one sweep: where the time went and how
/// effective the two cache layers were.
///
/// The counters are diagnostics, not part of the modelled result: two
/// sweeps with different cache behaviour report different stats but
/// bit-identical [`DseResult::points`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DseStats {
    /// Families whose kernel analysis ran or was fetched from cache.
    pub families_analyzed: usize,
    /// Candidate configurations successfully evaluated.
    pub points_evaluated: usize,
    /// Families served by the process-wide analysis cache
    /// ([`DseOptions::reuse_analysis`]).
    pub analysis_cache_hits: u64,
    /// Families that ran the full analysis (profiling included).
    pub analysis_cache_misses: u64,
    /// Estimates served by a family's budget-keyed schedule cache
    /// ([`crate::eval::EvalContext`]).
    pub sched_cache_hits: u64,
    /// Estimates that had to run the schedulers.
    pub sched_cache_misses: u64,
    /// Wall-clock nanoseconds in kernel analysis (cache hits included).
    pub analysis_nanos: u64,
    /// Wall-clock nanoseconds in the candidate-evaluation loops.
    pub estimate_nanos: u64,
    /// Wall-clock nanoseconds inside scheduler calls (subset of
    /// `estimate_nanos`).
    pub sched_nanos: u64,
}

impl DseStats {
    /// Fraction of estimates served from the schedule caches.
    pub fn sched_cache_hit_rate(&self) -> f64 {
        let total = self.sched_cache_hits + self.sched_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.sched_cache_hits as f64 / total as f64
        }
    }

    /// Fraction of families served from the analysis cache.
    pub fn analysis_cache_hit_rate(&self) -> f64 {
        let total = self.analysis_cache_hits + self.analysis_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.analysis_cache_hits as f64 / total as f64
        }
    }

    fn merge(&mut self, other: &DseStats) {
        self.families_analyzed += other.families_analyzed;
        self.points_evaluated += other.points_evaluated;
        self.analysis_cache_hits += other.analysis_cache_hits;
        self.analysis_cache_misses += other.analysis_cache_misses;
        self.sched_cache_hits += other.sched_cache_hits;
        self.sched_cache_misses += other.sched_cache_misses;
        self.analysis_nanos += other.analysis_nanos;
        self.estimate_nanos += other.estimate_nanos;
        self.sched_nanos += other.sched_nanos;
    }
}

/// The outcome of a sweep.
#[derive(Debug, Clone)]
pub struct DseResult {
    /// All evaluated points, in enumeration order.
    pub points: Vec<DesignPoint>,
    /// Wall-clock time of the sweep (including kernel analyses).
    pub elapsed: Duration,
    /// Candidates that failed and were skipped.
    pub diagnostics: DiagnosticsReport,
    /// Timing and cache instrumentation for the sweep.
    pub stats: DseStats,
}

impl DseResult {
    /// The fastest feasible point.
    ///
    /// Ties on the cycle count are broken toward the earliest enumerated
    /// configuration, so the answer is a deterministic function of the
    /// explored set — independent of thread count, pruning, or iteration
    /// internals.
    pub fn best(&self) -> Option<&DesignPoint> {
        self.points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.estimate.feasible)
            .min_by(|(ia, a), (ib, b)| {
                a.estimate.cycles.total_cmp(&b.estimate.cycles).then(ia.cmp(ib))
            })
            .map(|(_, p)| p)
    }

    /// Number of feasible points.
    pub fn feasible_count(&self) -> usize {
        self.points.iter().filter(|p| p.estimate.feasible).count()
    }

    /// Among configurations meeting a cycle budget, the one with the
    /// smallest estimated area — the paper's "solutions subject to a user
    /// defined performance constraint" query (§1). Each candidate's area
    /// is costed once; ties break toward the earliest enumerated point.
    pub fn cheapest_meeting(
        &self,
        analysis: &KernelAnalysis,
        max_cycles: f64,
    ) -> Option<DesignPoint> {
        self.points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.estimate.feasible && p.estimate.cycles <= max_cycles)
            .map(|(i, p)| {
                let cost =
                    crate::area::estimate_area(analysis, &p.config).cost(&analysis.platform);
                (i, p, cost)
            })
            .min_by(|(ia, _, ca), (ib, _, cb)| ca.total_cmp(cb).then(ia.cmp(ib)))
            .map(|(_, p, _)| p.clone())
    }

    /// The performance/area Pareto frontier of the explored space.
    pub fn pareto(&self, analysis: &KernelAnalysis) -> Vec<crate::area::ParetoPoint> {
        let pts = self.points.iter().filter(|p| p.estimate.feasible).map(|p| {
            crate::area::ParetoPoint {
                config: p.config,
                cycles: p.estimate.cycles,
                area: crate::area::estimate_area(analysis, &p.config),
            }
        });
        crate::area::pareto_frontier(&analysis.platform, pts)
    }

    /// Speedup of the best point over the unoptimized baseline
    /// configuration (the §4.3 "273× on average" metric).
    ///
    /// Baseline selection rule: among feasible points with every knob at
    /// its default (no work-item pipelining, one scalar PE, one CU, no
    /// vectorization — work-group size and communication mode free), the
    /// *slowest* is the baseline: it represents the naive port before any
    /// optimization attention. Ties on the cycle count break toward the
    /// earliest enumerated configuration.
    pub fn speedup_over_baseline(&self) -> Option<f64> {
        let best = self.best()?;
        let baseline = self
            .points
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                p.estimate.feasible
                    && !p.config.work_item_pipeline
                    && p.config.num_pes == 1
                    && p.config.num_cus == 1
                    && p.config.vector_width == 1
            })
            .max_by(|(ia, a), (ib, b)| {
                a.estimate.cycles.total_cmp(&b.estimate.cycles).then(ib.cmp(ia))
            })
            .map(|(_, p)| p)?;
        Some(baseline.estimate.cycles / best.estimate.cycles)
    }
}

/// Derives the design-space limits for a kernel/workload pair.
pub fn limits_for(func: &Function, workload: &Workload) -> DesignSpaceLimits {
    let vector_params = func.params.iter().any(|p| match &p.ty {
        Type::Pointer(elem, _) => elem.lanes() > 1,
        t => t.lanes() > 1,
    });
    DesignSpaceLimits {
        global_x: workload.global.0,
        global_y: workload.global.1,
        has_barrier: func.has_barrier(),
        reqd_work_group: func.reqd_work_group_size.map(|(x, y, _)| (x, y)),
        vectorizable: !vector_params && !func.has_barrier(),
    }
}

/// A contiguous run of enumerated configurations sharing one work-group
/// size (hence one kernel analysis), tagged with enumeration indices so
/// results can be merged back in order.
struct Family {
    work_group: (u32, u32),
    entries: Vec<(usize, OptimizationConfig)>,
}

/// Best feasible cycle count seen so far across all workers, stored as the
/// bit pattern of a positive `f64` (for which integer ordering coincides
/// with float ordering, so `fetch_min` maintains the float minimum).
struct Incumbent(AtomicU64);

impl Incumbent {
    fn new() -> Self {
        Incumbent(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn offer(&self, cycles: f64) {
        if cycles.is_finite() && cycles >= 0.0 {
            self.0.fetch_min(cycles.to_bits(), Ordering::Relaxed);
        }
    }
}

/// What one family contributed to the sweep: evaluated points plus any
/// failures, both tagged with enumeration indices.
#[derive(Default)]
struct FamilyOutcome {
    points: Vec<(usize, DesignPoint)>,
    failed: Vec<FailedPoint>,
    stats: DseStats,
}

/// Process-wide memoization of kernel analyses, keyed by the *content* of
/// everything the analysis depends on.
///
/// A sweep's families already share one analysis each; this layer shares
/// them across sweeps, so a benchmark harness or parameter study that
/// re-explores the same kernel skips interpretation/profiling entirely.
/// The key fingerprints the kernel IR, the platform tables and the
/// workload (shape *and* argument values — profiling executes the kernel,
/// so trip counts and the memory trace can depend on data). Two 64-bit
/// hashes with independent seeds make an accidental collision across the
/// ≤ [`analysis_cache::CAP`] resident entries implausible.
mod analysis_cache {
    use super::*;
    use flexcl_interp::KernelArg;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Identity of one analysis: content fingerprint plus the analysis
    /// parameters that are not part of the fingerprinted inputs.
    #[derive(Debug, Clone, PartialEq)]
    pub(super) struct Key {
        pub fingerprint: (u64, u64),
        pub work_group: (u32, u32),
        pub fuel: ProfileFuel,
    }

    /// Resident entries before the cache is reset. The benchmark suite
    /// sweeps a handful of kernels with up to ~10 work-group families
    /// each; 64 keeps them all resident while bounding memory held by
    /// profiling artifacts.
    pub(super) const CAP: usize = 64;

    static CACHE: Mutex<Vec<(Key, Arc<KernelAnalysis>)>> = Mutex::new(Vec::new());

    fn seeded(seed: u64) -> DefaultHasher {
        let mut h = DefaultHasher::new();
        h.write_u64(seed);
        h
    }

    /// Content fingerprint of `(func, platform, workload)`.
    pub(super) fn fingerprint(
        func: &Function,
        platform: &Platform,
        workload: &Workload,
    ) -> (u64, u64) {
        // The IR and platform are plain data with derived `Debug`; their
        // debug forms are injective enough to serve as a structural
        // serialization. Argument payloads are hashed numerically (a large
        // FloatBuf would be quadratic to format).
        let structural = format!("{func:?}|{platform:?}|{:?}", workload.global);
        let mut a = seeded(0x9e37_79b9_7f4a_7c15);
        let mut b = seeded(0xc2b2_ae3d_27d4_eb4f);
        for h in [&mut a, &mut b] {
            structural.hash(h);
            h.write_usize(workload.args.len());
            for arg in &workload.args {
                match arg {
                    KernelArg::Int(v) => {
                        h.write_u8(0);
                        h.write_i64(*v);
                    }
                    KernelArg::Float(v) => {
                        h.write_u8(1);
                        h.write_u64(v.to_bits());
                    }
                    KernelArg::IntBuf(v) => {
                        h.write_u8(2);
                        h.write_usize(v.len());
                        for x in v {
                            h.write_i64(*x);
                        }
                    }
                    KernelArg::FloatBuf(v) => {
                        h.write_u8(3);
                        h.write_usize(v.len());
                        for x in v {
                            h.write_u64(x.to_bits());
                        }
                    }
                }
            }
        }
        (a.finish(), b.finish())
    }

    pub(super) fn lookup(key: &Key) -> Option<Arc<KernelAnalysis>> {
        let cache = CACHE.lock().unwrap_or_else(|e| e.into_inner());
        cache.iter().find(|(k, _)| k == key).map(|(_, a)| Arc::clone(a))
    }

    pub(super) fn insert(key: Key, analysis: &Arc<KernelAnalysis>) {
        let mut cache = CACHE.lock().unwrap_or_else(|e| e.into_inner());
        if cache.iter().any(|(k, _)| *k == key) {
            return; // racing workers computed the same analysis
        }
        if cache.len() >= CAP {
            cache.clear();
        }
        cache.push((key, Arc::clone(analysis)));
    }
}

/// Renders a caught panic payload for the diagnostics report.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// The sweep-wide inputs shared by every family: what to analyze, how,
/// and the precomputed analysis-cache fingerprint (if caching is on).
#[derive(Clone, Copy)]
struct SweepInputs<'a> {
    func: &'a Arc<Function>,
    platform: &'a Arc<Platform>,
    workload: &'a Workload,
    opts: DseOptions,
    fingerprint: Option<(u64, u64)>,
}

/// Analyzes one family and evaluates its configurations.
///
/// Never aborts the sweep: a geometry mismatch (work-group does not tile
/// the NDRange) skips the family silently, matching the serial sweep's
/// historical behaviour; every other failure — typed error or contained
/// panic — is recorded per candidate in the outcome.
fn run_family(
    sweep: &SweepInputs<'_>,
    family: &Family,
    incumbent: &Incumbent,
    scratch: &mut AnalysisScratch,
) -> FamilyOutcome {
    let SweepInputs { func, platform, workload, opts, fingerprint } = *sweep;
    let mut out = FamilyOutcome::default();
    let fail_all = |out: &mut FamilyOutcome, kind: ErrorKind, message: String| {
        for &(idx, cfg) in &family.entries {
            out.failed.push(FailedPoint { index: idx, config: cfg, kind, message: message.clone() });
        }
    };
    let cache_key = fingerprint.map(|fingerprint| analysis_cache::Key {
        fingerprint,
        work_group: family.work_group,
        fuel: opts.fuel,
    });
    let t_analysis = Instant::now();
    out.stats.families_analyzed = 1;
    let analysis = match catch_unwind(AssertUnwindSafe(|| {
        testhook::maybe_panic(family.work_group);
        if let Some(key) = &cache_key {
            if let Some(hit) = analysis_cache::lookup(key) {
                return (Ok(hit), true);
            }
        }
        let fresh = KernelAnalysis::analyze_interned(
            Arc::clone(func),
            Arc::clone(platform),
            workload,
            family.work_group,
            opts.fuel,
            scratch,
        )
        .map(Arc::new);
        if let (Some(key), Ok(a)) = (&cache_key, &fresh) {
            analysis_cache::insert(key.clone(), a);
        }
        (fresh, false)
    })) {
        Ok((result, from_cache)) => {
            out.stats.analysis_nanos = t_analysis.elapsed().as_nanos() as u64;
            if from_cache {
                out.stats.analysis_cache_hits = 1;
            } else {
                out.stats.analysis_cache_misses = 1;
            }
            match result {
                Ok(a) => a,
                // Work-group sizes that do not tile the workload are not
                // failures: the enumerated space is generated before
                // geometry is checked.
                Err(e) if e.kind() == ErrorKind::Geometry => return out,
                Err(e) => {
                    fail_all(&mut out, e.kind(), e.to_string());
                    return out;
                }
            }
        }
        Err(payload) => {
            out.stats.analysis_nanos = t_analysis.elapsed().as_nanos() as u64;
            out.stats.analysis_cache_misses = 1;
            let msg = panic_message(payload);
            fail_all(&mut out, ErrorKind::Panic, format!("analysis panicked: {msg}"));
            return out;
        }
    };

    // Branch-and-bound: a mode whose optimistic bound cannot beat the
    // incumbent is skipped wholesale. The comparison is strict, so any
    // family containing a point tied with the global minimum survives
    // (its bound is ≤ that minimum ≤ the incumbent at all times).
    let skip = |mode: CommMode| {
        opts.prune && cycle_lower_bound(&analysis, mode) > incumbent.get()
    };
    let (skip_barrier, skip_pipeline) = (skip(CommMode::Barrier), skip(CommMode::Pipeline));

    // One evaluation context for the whole family: the budget-keyed
    // schedule caches and the scheduler scratch live exactly as long as
    // the analysis they memoize, on this worker thread.
    let mut ctx = EvalContext::new(&analysis);
    let t_estimate = Instant::now();
    for &(idx, cfg) in &family.entries {
        let skipped = match cfg.comm_mode {
            CommMode::Barrier => skip_barrier,
            CommMode::Pipeline => skip_pipeline,
        };
        if skipped {
            continue;
        }
        match catch_unwind(AssertUnwindSafe(|| ctx.estimate(&cfg))) {
            Ok(Ok(est)) => {
                if est.feasible {
                    incumbent.offer(est.cycles);
                }
                out.stats.points_evaluated += 1;
                out.points.push((idx, DesignPoint { config: cfg, estimate: est }));
            }
            Ok(Err(e)) => out.failed.push(FailedPoint {
                index: idx,
                config: cfg,
                kind: e.kind(),
                message: e.to_string(),
            }),
            Err(payload) => out.failed.push(FailedPoint {
                index: idx,
                config: cfg,
                kind: ErrorKind::Panic,
                message: format!("estimate panicked: {}", panic_message(payload)),
            }),
        }
    }
    out.stats.estimate_nanos = t_estimate.elapsed().as_nanos() as u64;
    out.stats.sched_cache_hits = ctx.stats.sched_cache_hits;
    out.stats.sched_cache_misses = ctx.stats.sched_cache_misses;
    out.stats.sched_nanos = ctx.stats.sched_nanos;
    out
}

/// Exhaustively explores the design space of `func` on `workload` with the
/// default [`DseOptions`] (serial, no pruning).
///
/// # Errors
///
/// Returns [`FlexclError::Platform`] if the platform description is
/// invalid. Per-candidate failures do not abort the sweep; they are
/// recorded in [`DseResult::diagnostics`].
pub fn explore(
    func: &Function,
    platform: &Platform,
    workload: &Workload,
) -> Result<DseResult, FlexclError> {
    explore_with(func, platform, workload, DseOptions::default())
}

/// Explores the design space of `func` on `workload` under `opts`.
///
/// With `opts.prune == false` the explored points are exactly the
/// enumerated space in enumeration order (minus failed candidates),
/// bit-identical for every thread count. With pruning, dominated families
/// may be absent but [`DseResult::best`] matches the exhaustive sweep.
///
/// # Errors
///
/// Returns [`FlexclError::Platform`] if the platform description is
/// invalid. Per-candidate failures do not abort the sweep; they are
/// recorded in [`DseResult::diagnostics`].
pub fn explore_with(
    func: &Function,
    platform: &Platform,
    workload: &Workload,
    opts: DseOptions,
) -> Result<DseResult, FlexclError> {
    let limits = limits_for(func, workload);
    let configs = config::enumerate(&limits);
    explore_configs(func, platform, workload, &configs, opts)
}

/// Explores an explicit list of candidate configurations under `opts`.
///
/// This is the fault-injection surface: unlike [`explore_with`], the
/// candidates need not come from [`config::enumerate`] — invalid entries
/// are diagnosed per candidate ([`ErrorKind::Config`]) and skipped, and
/// the surviving points are bit-identical to a sweep over only the valid
/// subset. `DseResult::points` preserves the order of `configs`.
///
/// # Errors
///
/// Returns [`FlexclError::Platform`] if the platform description is
/// invalid — a corrupt platform table poisons every candidate, so it is
/// rejected up front rather than reported a hundred times.
pub fn explore_configs(
    func: &Function,
    platform: &Platform,
    workload: &Workload,
    configs: &[OptimizationConfig],
    opts: DseOptions,
) -> Result<DseResult, FlexclError> {
    let start = Instant::now();
    platform.validate()?;

    // Intern the kernel and platform once; every family's analysis shares
    // these allocations instead of cloning them.
    let func = Arc::new(func.clone());
    let platform = Arc::new(platform.clone());

    // Validate candidates up front (an invalid config must not drag a
    // whole family down), then partition the valid ones into
    // per-work-group families, remembering each config's enumeration
    // index for the ordered merge.
    let mut failed: Vec<FailedPoint> = Vec::new();
    let mut families: Vec<Family> = Vec::new();
    for (idx, cfg) in configs.iter().copied().enumerate() {
        if let Err(e) = cfg.validate() {
            failed.push(FailedPoint {
                index: idx,
                config: cfg,
                kind: e.kind(),
                message: e.to_string(),
            });
            continue;
        }
        match families.iter_mut().find(|f| f.work_group == cfg.work_group) {
            Some(f) => f.entries.push((idx, cfg)),
            None => families
                .push(Family { work_group: cfg.work_group, entries: vec![(idx, cfg)] }),
        }
    }

    // One content fingerprint covers the whole sweep: families differ only
    // in work-group size, which is part of the cache key, not the hash.
    let fingerprint = opts
        .reuse_analysis
        .then(|| analysis_cache::fingerprint(&func, &platform, workload));

    let incumbent = Incumbent::new();
    let mut indexed: Vec<(usize, DesignPoint)> = Vec::new();
    let mut stats = DseStats::default();
    let sweep = SweepInputs { func: &func, platform: &platform, workload, opts, fingerprint };

    if opts.threads <= 1 || families.len() <= 1 {
        let mut scratch = AnalysisScratch::new();
        for family in &families {
            let outcome = run_family(&sweep, family, &incumbent, &mut scratch);
            indexed.extend(outcome.points);
            failed.extend(outcome.failed);
            stats.merge(&outcome.stats);
        }
    } else {
        let workers = opts.threads.min(families.len());
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<FamilyOutcome>>> =
            families.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let mut scratch = AnalysisScratch::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(family) = families.get(i) else { break };
                        let outcome = run_family(&sweep, family, &incumbent, &mut scratch);
                        // Panics inside run_family are contained, so the
                        // lock can only be poisoned by a crash in this
                        // bookkeeping itself; recover the data either way.
                        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
                    }
                });
            }
        });
        // Merge in family order; the final sort restores enumeration order
        // exactly as the serial loop produces it.
        for slot in slots {
            let outcome = slot
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every family index was claimed by a worker");
            indexed.extend(outcome.points);
            failed.extend(outcome.failed);
            stats.merge(&outcome.stats);
        }
    }

    indexed.sort_by_key(|(idx, _)| *idx);
    failed.sort_by_key(|f| f.index);
    let points = indexed.into_iter().map(|(_, p)| p).collect();
    Ok(DseResult {
        points,
        elapsed: start.elapsed(),
        diagnostics: DiagnosticsReport { failed },
        stats,
    })
}

/// Test-only fault injection for the DSE panic backstop.
///
/// Hidden from docs and not part of the public API contract: the
/// fault-injection suite arms a panic for a specific work-group size and
/// asserts the sweep survives, attributes the failure, and leaves every
/// other family bit-identical. Disarmed state (the default) is a single
/// relaxed atomic load on the sweep path.
#[doc(hidden)]
pub mod testhook {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// `0` = disarmed; otherwise the packed work-group to panic on.
    static ARMED: AtomicU64 = AtomicU64::new(0);

    fn pack(wg: (u32, u32)) -> u64 {
        (u64::from(wg.0) << 32) | u64::from(wg.1)
    }

    /// Arms an injected panic for analyses of work-group `wg`.
    pub fn arm_panic(wg: (u32, u32)) {
        ARMED.store(pack(wg), Ordering::SeqCst);
    }

    /// Disarms the injected panic.
    pub fn disarm() {
        ARMED.store(0, Ordering::SeqCst);
    }

    pub(crate) fn maybe_panic(wg: (u32, u32)) {
        if pack(wg) != 0 && ARMED.load(Ordering::Relaxed) == pack(wg) {
            panic!("testhook: injected panic for work-group {}x{}", wg.0, wg.1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcl_interp::KernelArg;

    fn vadd() -> (Function, Workload) {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
                int i = get_global_id(0);
                c[i] = a[i] + b[i];
            }",
        )
        .expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        let w = Workload {
            args: vec![
                KernelArg::FloatBuf(vec![1.0; 4096]),
                KernelArg::FloatBuf(vec![2.0; 4096]),
                KernelArg::FloatBuf(vec![0.0; 4096]),
            ],
            global: (4096, 1),
        };
        (f, w)
    }

    fn barrier_kernel() -> (Function, Workload) {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void k(__global float* a) {
                __local float t[256];
                int l = get_local_id(0);
                t[l] = a[get_global_id(0)];
                barrier(CLK_LOCAL_MEM_FENCE);
                a[get_global_id(0)] = t[l];
            }",
        )
        .expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        let w = Workload { args: vec![KernelArg::FloatBuf(vec![0.0; 1024])], global: (1024, 1) };
        (f, w)
    }

    fn assert_points_identical(a: &DseResult, b: &DseResult) {
        assert_eq!(a.points.len(), b.points.len());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.config, pb.config);
            assert_eq!(pa.estimate, pb.estimate, "{}", pa.config);
        }
    }

    #[test]
    fn sweep_covers_hundreds_of_points_quickly() {
        let (f, w) = vadd();
        let result = explore(&f, &Platform::virtex7_adm7v3(), &w).expect("dse");
        assert!(result.points.len() >= 100, "{} points", result.points.len());
        assert!(result.feasible_count() > result.points.len() / 2);
        assert!(result.diagnostics.is_clean(), "{:?}", result.diagnostics);
        assert!(
            result.elapsed.as_secs() < 30,
            "DSE must run in seconds, took {:?}",
            result.elapsed
        );
    }

    #[test]
    fn best_point_beats_baseline() {
        let (f, w) = vadd();
        let result = explore(&f, &Platform::virtex7_adm7v3(), &w).expect("dse");
        let speedup = result.speedup_over_baseline().expect("speedup");
        assert!(speedup > 5.0, "speedup {speedup}");
        let best = result.best().expect("best");
        assert!(best.config.work_item_pipeline, "best config should pipeline");
    }

    #[test]
    fn barrier_kernel_space_restricted() {
        let (f, w) = barrier_kernel();
        let result = explore(&f, &Platform::virtex7_adm7v3(), &w).expect("dse");
        assert!(result
            .points
            .iter()
            .all(|p| p.config.comm_mode == crate::config::CommMode::Barrier));
    }

    #[test]
    fn parallel_sweep_is_bit_identical_for_pipeline_kernel() {
        // vadd has no barrier, so its space includes pipeline-mode points.
        let (f, w) = vadd();
        let platform = Platform::virtex7_adm7v3();
        let serial = explore(&f, &platform, &w).expect("serial");
        let parallel =
            explore_with(&f, &platform, &w, DseOptions::parallel(4)).expect("parallel");
        assert!(serial
            .points
            .iter()
            .any(|p| p.config.comm_mode == CommMode::Pipeline));
        assert_points_identical(&serial, &parallel);
    }

    #[test]
    fn parallel_sweep_is_bit_identical_for_barrier_kernel() {
        let (f, w) = barrier_kernel();
        let platform = Platform::virtex7_adm7v3();
        let serial = explore(&f, &platform, &w).expect("serial");
        let parallel =
            explore_with(&f, &platform, &w, DseOptions::parallel(3)).expect("parallel");
        assert_points_identical(&serial, &parallel);
    }

    #[test]
    fn pruned_sweep_finds_the_same_best() {
        let (f, w) = vadd();
        let platform = Platform::virtex7_adm7v3();
        let full = explore(&f, &platform, &w).expect("exhaustive");
        let pruned = explore_with(
            &f,
            &platform,
            &w,
            DseOptions { prune: true, ..DseOptions::default() },
        )
        .expect("pruned");
        assert!(pruned.points.len() <= full.points.len());
        let (fb, pb) = (full.best().expect("full best"), pruned.best().expect("pruned best"));
        assert_eq!(fb.config, pb.config);
        assert_eq!(fb.estimate.cycles, pb.estimate.cycles);
        // Every surviving point carries the same estimate as in the full
        // sweep (pruning may drop points but never alters them).
        let mut fi = full.points.iter();
        for p in &pruned.points {
            let twin = fi
                .by_ref()
                .find(|q| q.config == p.config)
                .expect("pruned point present in exhaustive sweep, in order");
            assert_eq!(twin.estimate, p.estimate);
        }
    }

    #[test]
    fn tie_breaks_are_deterministic() {
        let (f, w) = vadd();
        let result = explore(&f, &Platform::virtex7_adm7v3(), &w).expect("dse");
        // best() must return the earliest enumerated point among minima.
        let best = result.best().expect("best");
        let min_cycles = best.estimate.cycles;
        let first_min = result
            .points
            .iter()
            .find(|p| p.estimate.feasible && p.estimate.cycles == min_cycles)
            .expect("minimum exists");
        assert_eq!(first_min.config, best.config);
    }

    #[test]
    fn invalid_platform_is_rejected_up_front() {
        let (f, w) = vadd();
        let bad = Platform { global_ports: 0, ..Platform::virtex7_adm7v3() };
        let err = explore(&f, &bad, &w).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Platform);
    }

    #[test]
    fn explore_configs_preserves_candidate_order() {
        let (f, w) = vadd();
        let platform = Platform::virtex7_adm7v3();
        let configs = vec![
            OptimizationConfig::baseline((64, 1)),
            OptimizationConfig { work_item_pipeline: true, ..OptimizationConfig::baseline((32, 1)) },
            OptimizationConfig { work_item_pipeline: true, ..OptimizationConfig::baseline((64, 1)) },
        ];
        let r = explore_configs(&f, &platform, &w, &configs, DseOptions::default())
            .expect("sweep");
        assert!(r.diagnostics.is_clean());
        let got: Vec<_> = r.points.iter().map(|p| p.config).collect();
        assert_eq!(got, configs);
    }
}
