//! Design-space exploration (§4.3).
//!
//! FlexCL's raison d'être: because one estimate costs microseconds rather
//! than the hours of a synthesis run, the *entire* optimization space of a
//! kernel — up to millions of configurations over a fine knob grid — can
//! be ranked exhaustively within seconds. Kernel analysis is shared
//! across all configurations with the same work-group size, so the sweep
//! re-runs only the closed-form model.
//!
//! The sweep engine schedules **chunks**: fixed-size slices of a
//! *family* (the contiguous run of enumerated configurations sharing one
//! work-group size and hence one [`KernelAnalysis`]). Chunks are claimed
//! by workers from a single atomic counter over a fixed schedule order,
//! which gives the levers [`DseOptions`] exposes:
//!
//! * **Parallelism** — workers steal the next unclaimed chunk regardless
//!   of family, so a sweep parallelizes even when one family dominates
//!   the space. Per-worker [`EvalContext`]s persist across stolen chunks
//!   keyed by family id, so the budget-keyed schedule memoization keeps
//!   its hit rate no matter which worker lands on a chunk. The schedule
//!   order is fixed up front: each family's tail chunk first (the
//!   high-parallelism corner of the space, which both starts every
//!   analysis in parallel and seeds the pruning incumbent with strong
//!   candidates), then the remaining chunks per family from tail to head.
//! * **Lazy materialization** — when sweeping a [`ConfigSpace`]
//!   ([`explore_space`]), candidates are decoded per chunk by index
//!   arithmetic; the full candidate list is never allocated, which is
//!   what lets the space grow to 10⁶+ points per kernel.
//! * **Memoization** — kernel and platform are interned behind [`Arc`]s,
//!   each family is analyzed once behind a [`OnceLock`] (whichever worker
//!   touches it first), and completed analyses are kept in a bounded
//!   process-wide content-keyed cache ([`DseOptions::reuse_analysis`],
//!   capacity [`DseOptions::analysis_cache_cap`]) so repeated sweeps skip
//!   profiling. [`DseResult::stats`] reports where the time went and how
//!   the caches performed.
//! * **Pruning with deterministic replay** — optionally, a chunk's mode
//!   whose cheap monotonic lower bound ([`cycle_lower_bound`]) exceeds
//!   the shared atomic incumbent is skipped without evaluating. The
//!   incumbent tightens globally across all workers, but reading it
//!   concurrently is racy, so the claim phase treats it as a *hint*: a
//!   serial replay pass afterwards recomputes every skip decision against
//!   the deterministic prefix incumbent (the best feasible point among
//!   chunks earlier in schedule order), re-evaluating chunks the racy
//!   incumbent over-pruned and dropping points it under-pruned. The
//!   returned result is therefore bit-identical at any thread count,
//!   chunk size, and timing; and since a chunk containing a point tied
//!   with the global minimum has a bound ≤ that minimum ≤ every prefix
//!   incumbent (the comparison is strict), [`DseResult::best`] always
//!   matches the exhaustive sweep.
//! * **Fault tolerance** — a candidate that fails (typed [`FlexclError`]
//!   on the normal path, a panic contained by [`std::panic::catch_unwind`]
//!   as a backstop) is recorded in the sweep's [`DiagnosticsReport`] and
//!   the sweep continues; a panicking candidate poisons neither its chunk
//!   nor its family's other chunks. Profiling runs under the
//!   [`ProfileFuel`] budget in [`DseOptions::fuel`], so a runaway kernel
//!   costs a bounded amount of work, not a hung worker.

use crate::analysis::{AnalysisScratch, KernelAnalysis, ProfileFuel, Workload};
use crate::config::{CommMode, ConfigSpace, DesignSpaceLimits, OptimizationConfig, SweepGrid};
use crate::error::{ErrorKind, FlexclError};
use crate::eval::EvalContext;
use crate::model::{cycle_lower_bound, Estimate};
use crate::platform::Platform;
use flexcl_frontend::types::Type;
use flexcl_ir::Function;
use flexcl_obs::{metrics, trace};
use std::any::Any;
use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Process-wide sweep counters in the global metrics registry
/// ([`flexcl_obs::metrics::global`]): cumulative across every sweep this
/// process ran, complementing the per-sweep [`DseStats`]. Handles are
/// resolved once; the hot path touches only relaxed atomics.
struct DseMetrics {
    sweeps: metrics::Counter,
    chunks: metrics::Counter,
    steals: metrics::Counter,
    points: metrics::Counter,
    pruned_modes: metrics::Counter,
    repaired_chunks: metrics::Counter,
}

fn dse_metrics() -> &'static DseMetrics {
    static M: OnceLock<DseMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let g = metrics::global();
        DseMetrics {
            sweeps: g.counter("dse.sweeps"),
            chunks: g.counter("dse.chunks_processed"),
            steals: g.counter("dse.steals"),
            points: g.counter("dse.points_evaluated"),
            pruned_modes: g.counter("dse.pruned_modes"),
            repaired_chunks: g.counter("dse.repaired_chunks"),
        }
    })
}

/// Cooperative cancellation for a sweep: an optional wall-clock deadline
/// plus an explicit cancel flag, shared between the sweep's workers and
/// whoever is waiting on the result (a serving thread, a signal handler).
///
/// The token is checked at **chunk-claim boundaries**: an expired or
/// cancelled sweep stops claiming new work, lets in-flight chunks finish
/// (a chunk is the unit of isolation — bounded work, never a hung
/// worker), and returns [`FlexclError::Deadline`] carrying the partial
/// [`DseStats`] accumulated before the stop. A sweep observes the token
/// only through [`explore_space_deadline`]; the plain entry points never
/// cancel.
///
/// Cloning shares the token: `cancel()` through any clone stops every
/// sweep holding one.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    /// Wall-clock stop time, fixed at construction.
    deadline: Option<Instant>,
    /// Deterministic trip wire for tests: remaining checkpoint passes
    /// before the token self-cancels. `u64::MAX` disables it.
    trip_after: AtomicU64,
}

impl Default for CancelInner {
    fn default() -> Self {
        CancelInner {
            cancelled: AtomicBool::new(false),
            deadline: None,
            trip_after: AtomicU64::new(u64::MAX),
        }
    }
}

impl CancelToken {
    /// A token that never fires unless [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that fires once `timeout` has elapsed from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        Self::at(Instant::now() + timeout)
    }

    /// A token that fires at the absolute instant `deadline`.
    pub fn at(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(CancelInner { deadline: Some(deadline), ..CancelInner::default() }),
        }
    }

    /// A token that lets `n` checkpoint passes through and cancels on the
    /// next one — a deterministic stand-in for "the deadline fired at an
    /// arbitrary chunk boundary", used by the cancellation tests.
    pub fn after_checkpoints(n: u64) -> Self {
        let t = CancelToken::new();
        t.inner.trip_after.store(n, Ordering::SeqCst);
        t
    }

    /// Cancels the token; every sweep sharing it stops at its next
    /// chunk-claim boundary.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// `true` once the token has been cancelled or its deadline passed.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The sweep-side check, called before each chunk claim. Latches the
    /// cancelled flag (so `is_cancelled` stays true afterwards) and
    /// drives the deterministic trip wire.
    pub(crate) fn checkpoint(&self) -> bool {
        if self.is_cancelled() {
            self.inner.cancelled.store(true, Ordering::Relaxed);
            return true;
        }
        let tripped = self
            .inner
            .trip_after
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| match v {
                u64::MAX => None, // trip wire disabled
                0 => None,        // already tripped; latch below
                v => Some(v - 1),
            })
            .is_err_and(|v| v == 0);
        if tripped {
            self.inner.cancelled.store(true, Ordering::Relaxed);
        }
        tripped
    }

    /// Why the token fired, for the typed error's detail field.
    fn reason(&self) -> &'static str {
        if self.inner.deadline.is_some() {
            "deadline exceeded"
        } else {
            "cancelled"
        }
    }
}

/// Knobs of the sweep engine. The default — one thread, no pruning,
/// default fuel — is the exhaustive serial sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DseOptions {
    /// Worker threads. `1` runs the chunk loop on the calling thread;
    /// larger values fan chunks out over scoped threads. The explored
    /// points are bit-identical either way.
    pub threads: usize,
    /// Branch-and-bound pruning. When enabled, whole `(chunk, comm_mode)`
    /// units may be skipped once the incumbent proves they cannot contain
    /// the fastest point; [`DseResult::best`] is unchanged, but dominated
    /// points may be missing from [`DseResult::points`]. The deterministic
    /// replay pass guarantees the surviving set depends only on the
    /// schedule order, never on thread timing.
    pub prune: bool,
    /// Fuel budget for each family's dynamic-profiling run. A kernel that
    /// exhausts it fails that family with
    /// [`ErrorKind::ResourceLimit`] instead of hanging the sweep.
    pub fuel: ProfileFuel,
    /// Reuse kernel analyses across sweeps of the same
    /// `(kernel, platform, workload, work_group, fuel)` through a small
    /// process-wide cache. Repeated sweeps (parameter studies, benchmark
    /// harnesses) then skip re-profiling entirely; the estimates are
    /// bit-identical because the cached analysis is the same value the
    /// sweep would recompute. Disable to force every sweep to re-analyze.
    pub reuse_analysis: bool,
    /// Candidates per work unit. `0` picks an automatic size that gives
    /// each worker ~32 chunks of slack (clamped to `16..=2048`). The
    /// explored points are bit-identical for every chunk size; smaller
    /// chunks balance better, larger chunks amortize claiming overhead.
    pub chunk_size: usize,
    /// Capacity of the process-wide analysis cache (resident entries
    /// before FIFO eviction). Only consulted when inserting; sweeps with
    /// different caps share the one cache. **`0` disables the cache for
    /// this sweep** — no lookups and no inserts, exactly as if
    /// [`DseOptions::reuse_analysis`] were `false` — rather than behaving
    /// as some accidental tiny capacity.
    pub analysis_cache_cap: usize,
    /// Per-sweep fault injection for the robustness test surface: unlike
    /// the process-global [`testhook`] arming, a fault injected here is
    /// scoped to this one sweep, so concurrent sweeps (a serving batch)
    /// can prove isolation. Production callers leave it `None`.
    #[doc(hidden)]
    pub inject: Option<testhook::InjectedFault>,
}

impl Default for DseOptions {
    fn default() -> Self {
        DseOptions {
            threads: 1,
            prune: false,
            fuel: ProfileFuel::default(),
            reuse_analysis: true,
            chunk_size: 0,
            analysis_cache_cap: analysis_cache::DEFAULT_CAP,
            inject: None,
        }
    }
}

impl DseOptions {
    /// An exhaustive sweep over `threads` workers.
    pub fn parallel(threads: usize) -> Self {
        DseOptions { threads: threads.max(1), ..Self::default() }
    }

    /// The chunk size a sweep over `total` candidates will use.
    fn effective_chunk_size(&self, total: usize) -> usize {
        if self.chunk_size > 0 {
            self.chunk_size
        } else {
            (total / (self.threads.max(1) * 32)).clamp(16, 2048)
        }
    }
}

/// One explored configuration with its estimate.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// The configuration.
    pub config: OptimizationConfig,
    /// Its FlexCL estimate.
    pub estimate: Estimate,
}

/// One candidate the sweep had to skip, with the typed reason.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedPoint {
    /// Enumeration index of the candidate in the swept configuration list.
    pub index: usize,
    /// The configuration that failed.
    pub config: OptimizationConfig,
    /// Classification of the failure.
    pub kind: ErrorKind,
    /// Human-readable detail (the error's display form, or the panic
    /// payload).
    pub message: String,
}

/// Per-sweep failure accounting: which candidates were skipped and why.
///
/// A fault-tolerant sweep never aborts on a bad candidate; it records the
/// failure here and keeps going. An empty report means every enumerated
/// candidate was evaluated (modulo branch-and-bound pruning, which is not
/// a failure).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiagnosticsReport {
    /// Failed candidates in enumeration order.
    pub failed: Vec<FailedPoint>,
}

impl DiagnosticsReport {
    /// Number of candidates skipped because of failures.
    pub fn skipped_count(&self) -> usize {
        self.failed.len()
    }

    /// `true` when no candidate failed.
    pub fn is_clean(&self) -> bool {
        self.failed.is_empty()
    }

    /// Number of failures of a given kind.
    pub fn count_of(&self, kind: ErrorKind) -> usize {
        self.failed.iter().filter(|f| f.kind == kind).count()
    }

    /// Failure counts grouped by [`ErrorKind`], most frequent first (ties
    /// break on first occurrence) — what a CLI or server prints instead
    /// of a hundred per-candidate lines.
    pub fn kind_counts(&self) -> Vec<(ErrorKind, usize)> {
        let mut counts: Vec<(ErrorKind, usize)> = Vec::new();
        for f in &self.failed {
            match counts.iter_mut().find(|(k, _)| *k == f.kind) {
                Some((_, n)) => *n += 1,
                None => counts.push((f.kind, 1)),
            }
        }
        counts.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        counts
    }

    /// Human-readable one-line breakdown, e.g. `config x3, panic x1`;
    /// empty string when the report is clean.
    pub fn summary(&self) -> String {
        self.kind_counts()
            .iter()
            .map(|(k, n)| format!("{k} x{n}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl fmt::Display for DiagnosticsReport {
    /// A one-line human-readable verdict: `clean` for an empty report,
    /// otherwise the skipped count, the per-kind breakdown and the first
    /// failure's detail.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "clean (no candidates skipped)");
        }
        write!(
            f,
            "{} candidate(s) skipped [{}]; first: {}",
            self.skipped_count(),
            self.summary(),
            self.failed[0].message
        )
    }
}

/// Instrumentation counters for one sweep: where the time went, how
/// effective the cache layers were, and how the scheduler behaved.
///
/// The counters are diagnostics, not part of the modelled result: two
/// sweeps with different cache or stealing behaviour report different
/// stats but bit-identical [`DseResult::points`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DseStats {
    /// Families whose kernel analysis ran or was fetched from cache.
    pub families_analyzed: usize,
    /// Candidate configurations successfully evaluated (including any
    /// re-evaluated by the deterministic replay pass).
    pub points_evaluated: usize,
    /// Families served by the process-wide analysis cache
    /// ([`DseOptions::reuse_analysis`]).
    pub analysis_cache_hits: u64,
    /// Families that ran the full analysis (profiling included).
    pub analysis_cache_misses: u64,
    /// Entries evicted from the analysis cache by this sweep's inserts.
    pub analysis_cache_evictions: u64,
    /// Estimates served by a family's budget-keyed schedule cache
    /// ([`crate::eval::EvalContext`]).
    pub sched_cache_hits: u64,
    /// Estimates that had to run the schedulers.
    pub sched_cache_misses: u64,
    /// Wall-clock nanoseconds in kernel analysis (cache hits included).
    pub analysis_nanos: u64,
    /// Wall-clock nanoseconds in the candidate-evaluation loops.
    pub estimate_nanos: u64,
    /// Wall-clock nanoseconds inside scheduler calls (subset of
    /// `estimate_nanos`).
    pub sched_nanos: u64,
    /// Work units the scheduler dispatched.
    pub chunks_processed: usize,
    /// Chunks a worker claimed from a different family than its previous
    /// chunk (each such claim switches the worker's evaluation context).
    pub steals: u64,
    /// Chunks the replay pass re-evaluated because the racy incumbent
    /// over-pruned them.
    pub repaired_chunks: usize,
    /// Candidates per work unit actually used
    /// ([`DseOptions::effective_chunk_size`] resolution of
    /// [`DseOptions::chunk_size`]).
    pub chunk_size: usize,
}

impl DseStats {
    /// Fraction of estimates served from the schedule caches.
    pub fn sched_cache_hit_rate(&self) -> f64 {
        let total = self.sched_cache_hits + self.sched_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.sched_cache_hits as f64 / total as f64
        }
    }

    /// Fraction of families served from the analysis cache.
    pub fn analysis_cache_hit_rate(&self) -> f64 {
        let total = self.analysis_cache_hits + self.analysis_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.analysis_cache_hits as f64 / total as f64
        }
    }

    fn merge(&mut self, other: &DseStats) {
        self.families_analyzed += other.families_analyzed;
        self.points_evaluated += other.points_evaluated;
        self.analysis_cache_hits += other.analysis_cache_hits;
        self.analysis_cache_misses += other.analysis_cache_misses;
        self.analysis_cache_evictions += other.analysis_cache_evictions;
        self.sched_cache_hits += other.sched_cache_hits;
        self.sched_cache_misses += other.sched_cache_misses;
        self.analysis_nanos += other.analysis_nanos;
        self.estimate_nanos += other.estimate_nanos;
        self.sched_nanos += other.sched_nanos;
        self.chunks_processed += other.chunks_processed;
        self.steals += other.steals;
        self.repaired_chunks += other.repaired_chunks;
        // chunk_size is configuration, not a counter; the engine sets it.
    }
}

impl fmt::Display for DseStats {
    /// A human-readable summary table — what the `dse` and `flexcl`
    /// binaries print under `--verbose` instead of a raw field dump.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = |ns: u64| ns as f64 / 1e6;
        writeln!(f, "  points evaluated : {}", self.points_evaluated)?;
        writeln!(
            f,
            "  chunks processed : {} (size {}, {} steals, {} repaired)",
            self.chunks_processed, self.chunk_size, self.steals, self.repaired_chunks
        )?;
        writeln!(
            f,
            "  families         : {} ({} analysis-cache hits / {} misses, {} evictions)",
            self.families_analyzed,
            self.analysis_cache_hits,
            self.analysis_cache_misses,
            self.analysis_cache_evictions
        )?;
        writeln!(
            f,
            "  sched cache      : {:.1}% hit ({} hits / {} misses)",
            self.sched_cache_hit_rate() * 100.0,
            self.sched_cache_hits,
            self.sched_cache_misses
        )?;
        write!(
            f,
            "  phase time       : analysis {:.2} ms, estimate {:.2} ms (sched {:.2} ms)",
            ms(self.analysis_nanos),
            ms(self.estimate_nanos),
            ms(self.sched_nanos)
        )
    }
}

/// The outcome of a sweep.
#[derive(Debug, Clone)]
pub struct DseResult {
    /// All evaluated points, in enumeration order.
    pub points: Vec<DesignPoint>,
    /// Wall-clock time of the sweep (including kernel analyses).
    pub elapsed: Duration,
    /// Candidates that failed and were skipped.
    pub diagnostics: DiagnosticsReport,
    /// Timing and cache instrumentation for the sweep.
    pub stats: DseStats,
}

impl DseResult {
    /// The fastest feasible point.
    ///
    /// Ties on the cycle count are broken toward the earliest enumerated
    /// configuration, so the answer is a deterministic function of the
    /// explored set — independent of thread count, pruning, or iteration
    /// internals.
    pub fn best(&self) -> Option<&DesignPoint> {
        self.points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.estimate.feasible)
            .min_by(|(ia, a), (ib, b)| {
                a.estimate.cycles.total_cmp(&b.estimate.cycles).then(ia.cmp(ib))
            })
            .map(|(_, p)| p)
    }

    /// Number of feasible points.
    pub fn feasible_count(&self) -> usize {
        self.points.iter().filter(|p| p.estimate.feasible).count()
    }

    /// Among configurations meeting a cycle budget, the one with the
    /// smallest estimated area — the paper's "solutions subject to a user
    /// defined performance constraint" query (§1). Each candidate's area
    /// is costed once; ties break toward the earliest enumerated point.
    pub fn cheapest_meeting(
        &self,
        analysis: &KernelAnalysis,
        max_cycles: f64,
    ) -> Option<DesignPoint> {
        self.points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.estimate.feasible && p.estimate.cycles <= max_cycles)
            .map(|(i, p)| {
                let cost =
                    crate::area::estimate_area(analysis, &p.config).cost(&analysis.platform);
                (i, p, cost)
            })
            .min_by(|(ia, _, ca), (ib, _, cb)| ca.total_cmp(cb).then(ia.cmp(ib)))
            .map(|(_, p, _)| p.clone())
    }

    /// The performance/area Pareto frontier of the explored space.
    pub fn pareto(&self, analysis: &KernelAnalysis) -> Vec<crate::area::ParetoPoint> {
        let pts = self.points.iter().filter(|p| p.estimate.feasible).map(|p| {
            crate::area::ParetoPoint {
                config: p.config,
                cycles: p.estimate.cycles,
                area: crate::area::estimate_area(analysis, &p.config),
            }
        });
        crate::area::pareto_frontier(&analysis.platform, pts)
    }

    /// Speedup of the best point over the unoptimized baseline
    /// configuration (the §4.3 "273× on average" metric).
    ///
    /// Baseline selection rule: among feasible points with every knob at
    /// its default (no work-item pipelining, one scalar PE, one CU, no
    /// vectorization — work-group size and communication mode free), the
    /// *slowest* is the baseline: it represents the naive port before any
    /// optimization attention. Ties on the cycle count break toward the
    /// earliest enumerated configuration.
    pub fn speedup_over_baseline(&self) -> Option<f64> {
        let best = self.best()?;
        let baseline = self
            .points
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                p.estimate.feasible
                    && !p.config.work_item_pipeline
                    && p.config.num_pes == 1
                    && p.config.num_cus == 1
                    && p.config.vector_width == 1
            })
            .max_by(|(ia, a), (ib, b)| {
                a.estimate.cycles.total_cmp(&b.estimate.cycles).then(ib.cmp(ia))
            })
            .map(|(_, p)| p)?;
        Some(baseline.estimate.cycles / best.estimate.cycles)
    }
}

/// Derives the design-space limits for a kernel/workload pair.
pub fn limits_for(func: &Function, workload: &Workload) -> DesignSpaceLimits {
    let vector_params = func.params.iter().any(|p| match &p.ty {
        Type::Pointer(elem, _) => elem.lanes() > 1,
        t => t.lanes() > 1,
    });
    DesignSpaceLimits {
        global_x: workload.global.0,
        global_y: workload.global.1,
        has_barrier: func.has_barrier(),
        reqd_work_group: func.reqd_work_group_size.map(|(x, y, _)| (x, y)),
        vectorizable: !vector_params && !func.has_barrier(),
        iterative: crate::config::is_iterative_stencil(&func.name),
    }
}

/// A contiguous run of explicit candidate configurations sharing one
/// work-group size (hence one kernel analysis), tagged with enumeration
/// indices so results can be merged back in order.
struct Family {
    work_group: (u32, u32),
    entries: Vec<(usize, OptimizationConfig)>,
}

/// What the engine sweeps: either a lazy [`ConfigSpace`] (chunks decoded
/// on demand, nothing materialized up front) or an explicit pre-validated
/// candidate list partitioned into families.
enum CandidateSet<'a> {
    Space(&'a ConfigSpace),
    Explicit(Vec<Family>),
}

impl CandidateSet<'_> {
    fn family_count(&self) -> usize {
        match self {
            CandidateSet::Space(s) => s.family_count(),
            CandidateSet::Explicit(fams) => fams.len(),
        }
    }

    fn family_work_group(&self, f: usize) -> (u32, u32) {
        match self {
            CandidateSet::Space(s) => s.family_work_group(f),
            CandidateSet::Explicit(fams) => fams[f].work_group,
        }
    }

    fn family_len(&self, f: usize) -> usize {
        match self {
            CandidateSet::Space(s) => s.family_len(f),
            CandidateSet::Explicit(fams) => fams[f].entries.len(),
        }
    }

    /// Appends family `f`'s candidates `[start, start + len)` to `out` as
    /// `(enumeration index, config)` pairs.
    fn fill(&self, f: usize, start: usize, len: usize, out: &mut Vec<(usize, OptimizationConfig)>) {
        match self {
            CandidateSet::Space(s) => s.fill_family_range(f, start, len, out),
            CandidateSet::Explicit(fams) => {
                let entries = &fams[f].entries;
                let end = (start + len).min(entries.len());
                out.extend_from_slice(&entries[start..end]);
            }
        }
    }
}

/// Best feasible cycle count seen so far across all workers, stored as the
/// bit pattern of a positive `f64` (for which integer ordering coincides
/// with float ordering, so `fetch_min` maintains the float minimum).
///
/// During the claim phase this is a pruning *hint* only; the replay pass
/// recomputes all decisions against the deterministic prefix incumbent.
struct Incumbent(AtomicU64);

impl Incumbent {
    fn new() -> Self {
        Incumbent(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn offer(&self, cycles: f64) {
        if cycles.is_finite() && cycles >= 0.0 {
            let bits = cycles.to_bits();
            // Cheap load first: most offers lose, and a read avoids
            // bouncing the cache line exclusive across workers.
            if bits < self.0.load(Ordering::Relaxed) {
                self.0.fetch_min(bits, Ordering::Relaxed);
            }
        }
    }
}

/// `[barrier, pipeline]` array index of a communication mode.
fn mode_idx(mode: CommMode) -> usize {
    match mode {
        CommMode::Barrier => 0,
        CommMode::Pipeline => 1,
    }
}

/// One work unit: a slice of one family, in family-local candidate
/// coordinates.
#[derive(Debug, Clone, Copy)]
struct ChunkRef {
    family: usize,
    start: usize,
    len: usize,
}

/// Builds the fixed schedule order the atomic claim counter walks.
///
/// Round 0 is every family's tail chunk in family order: the tail of a
/// family holds its highest-parallelism configurations (largest PE / CU /
/// vector counts enumerate last), so this both kicks off all kernel
/// analyses in parallel and seeds the incumbent with strong candidates
/// before the bulk of the space is touched. The remaining chunks follow
/// family-major, tail-1 down to the head, so consecutive claims usually
/// stay within one family and reuse the worker's evaluation context.
fn build_schedule(family_lens: &[usize], chunk_size: usize) -> Vec<ChunkRef> {
    let n_chunks: Vec<usize> = family_lens.iter().map(|&l| l.div_ceil(chunk_size)).collect();
    let mut sched = Vec::with_capacity(n_chunks.iter().sum());
    for (f, (&len, &n)) in family_lens.iter().zip(&n_chunks).enumerate() {
        if n > 0 {
            let start = (n - 1) * chunk_size;
            sched.push(ChunkRef { family: f, start, len: len - start });
        }
    }
    for (f, &n) in n_chunks.iter().enumerate() {
        for c in (0..n.saturating_sub(1)).rev() {
            sched.push(ChunkRef { family: f, start: c * chunk_size, len: chunk_size });
        }
    }
    sched
}

/// What one chunk contributed to the sweep: evaluated points plus any
/// failures, both tagged with enumeration indices, and the pruning
/// decision the claim phase applied (so replay can audit it).
#[derive(Default)]
struct ChunkOutcome {
    points: Vec<(usize, DesignPoint)>,
    failed: Vec<FailedPoint>,
    /// Per-mode `[barrier, pipeline]`: `true` if the claim phase skipped
    /// that mode's candidates against the racy incumbent.
    skipped: [bool; 2],
    /// `true` if the claiming worker's previous chunk was a different
    /// family (the claim switched its evaluation context).
    stole: bool,
    stats: DseStats,
}

/// Per-family shared state: the analysis is computed once by whichever
/// worker claims one of the family's chunks first; every other chunk
/// reads the settled value.
struct FamilyState {
    work_group: (u32, u32),
    analysis: OnceLock<FamilyAnalysis>,
}

/// The settled result of analyzing one family.
enum FamilyAnalysis {
    Ready {
        analysis: Arc<KernelAnalysis>,
        /// `cycle_lower_bound` per mode `[barrier, pipeline]`.
        bounds: [f64; 2],
        from_cache: bool,
        evictions: u64,
        nanos: u64,
    },
    /// The work-group does not tile the NDRange; the family is skipped
    /// silently (the enumerated space is generated before geometry is
    /// checked).
    Geometry { nanos: u64 },
    /// Analysis failed (typed error or contained panic); every candidate
    /// of the family is reported with this reason.
    Failed { kind: ErrorKind, message: String, nanos: u64 },
}

/// Memoization of kernel analyses, keyed by the *content* of everything
/// the analysis depends on.
///
/// A sweep's families already share one analysis each; this layer shares
/// them across sweeps, so a benchmark harness or parameter study that
/// re-explores the same kernel skips interpretation/profiling entirely.
/// The key fingerprints the kernel IR, the platform tables and the
/// workload (shape *and* argument values — profiling executes the kernel,
/// so trip counts and the memory trace can depend on data). Two 64-bit
/// hashes with independent seeds make an accidental collision across the
/// resident entries implausible. Capacity is per-insert
/// ([`DseOptions::analysis_cache_cap`]); eviction is FIFO, oldest entry
/// first, so a parameter study cycling through kernels keeps its working
/// set instead of dropping everything at once.
///
/// The default entry points share one process-wide [`AnalysisCache`];
/// callers that need an isolated lifetime (a server scoping reuse to its
/// own instance, a test proving cold-start behaviour) own an
/// `AnalysisCache` and thread it through [`explore_space_cached`].
mod analysis_cache {
    use super::*;
    use flexcl_interp::KernelArg;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Identity of one analysis: content fingerprint plus the analysis
    /// parameters that are not part of the fingerprinted inputs.
    #[derive(Debug, Clone, PartialEq)]
    pub(super) struct Key {
        pub fingerprint: (u64, u64),
        pub work_group: (u32, u32),
        pub fuel: ProfileFuel,
    }

    /// Default resident entries before eviction. The benchmark suite
    /// sweeps a handful of kernels with up to ~10 work-group families
    /// each; 64 keeps them all resident while bounding memory held by
    /// profiling artifacts.
    pub(super) const DEFAULT_CAP: usize = 64;

    /// A content-keyed store of settled [`KernelAnalysis`] values,
    /// shareable across sweeps. All methods take `&self`; the store is a
    /// single mutex over a small FIFO vector (lookups are off the
    /// estimation hot loop — one per family per sweep).
    ///
    /// [`explore_space`](super::explore_space) and friends use a hidden
    /// process-wide instance; [`explore_space_cached`](super::explore_space_cached)
    /// takes a caller-owned one, which is how a serving deployment scopes
    /// per-family reuse to the server's lifetime and capacity instead of
    /// the whole process.
    #[derive(Debug, Default)]
    pub struct AnalysisCache {
        entries: Mutex<Vec<(Key, Arc<KernelAnalysis>)>>,
    }

    /// The process-wide instance behind the default entry points.
    pub(super) fn global() -> &'static AnalysisCache {
        static GLOBAL: AnalysisCache = AnalysisCache { entries: Mutex::new(Vec::new()) };
        &GLOBAL
    }

    fn seeded(seed: u64) -> DefaultHasher {
        let mut h = DefaultHasher::new();
        h.write_u64(seed);
        h
    }

    /// Content fingerprint of `(func, platform, workload)`.
    pub(super) fn fingerprint(
        func: &Function,
        platform: &Platform,
        workload: &Workload,
    ) -> (u64, u64) {
        // The IR and platform are plain data with derived `Debug`; their
        // debug forms are injective enough to serve as a structural
        // serialization. Argument payloads are hashed numerically (a large
        // FloatBuf would be quadratic to format).
        let structural = format!("{func:?}|{platform:?}|{:?}", workload.global);
        let mut a = seeded(0x9e37_79b9_7f4a_7c15);
        let mut b = seeded(0xc2b2_ae3d_27d4_eb4f);
        for h in [&mut a, &mut b] {
            structural.hash(h);
            h.write_usize(workload.args.len());
            for arg in &workload.args {
                match arg {
                    KernelArg::Int(v) => {
                        h.write_u8(0);
                        h.write_i64(*v);
                    }
                    KernelArg::Float(v) => {
                        h.write_u8(1);
                        h.write_u64(v.to_bits());
                    }
                    KernelArg::IntBuf(v) => {
                        h.write_u8(2);
                        h.write_usize(v.len());
                        for x in v {
                            h.write_i64(*x);
                        }
                    }
                    KernelArg::FloatBuf(v) => {
                        h.write_u8(3);
                        h.write_usize(v.len());
                        for x in v {
                            h.write_u64(x.to_bits());
                        }
                    }
                }
            }
        }
        (a.finish(), b.finish())
    }

    impl AnalysisCache {
        /// An empty cache. Capacity is supplied per insert (it follows
        /// [`DseOptions::analysis_cache_cap`](super::DseOptions), not the
        /// store), so there is nothing to configure here.
        #[must_use]
        pub fn new() -> Self {
            Self::default()
        }

        /// Resident entry count (diagnostics / tests).
        #[must_use]
        pub fn len(&self) -> usize {
            self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// True when no analysis is resident.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        pub(super) fn lookup(&self, key: &Key) -> Option<Arc<KernelAnalysis>> {
            let cache = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            cache.iter().find(|(k, _)| k == key).map(|(_, a)| Arc::clone(a))
        }

        /// Inserts under a FIFO policy bounded by `cap`; returns how many
        /// resident entries were evicted to make room.
        pub(super) fn insert(&self, key: Key, analysis: &Arc<KernelAnalysis>, cap: usize) -> u64 {
            let mut cache = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            if cache.iter().any(|(k, _)| *k == key) {
                return 0; // racing workers computed the same analysis
            }
            let cap = cap.max(1);
            let mut evicted = 0;
            while cache.len() >= cap {
                cache.remove(0);
                evicted += 1;
            }
            cache.push((key, Arc::clone(analysis)));
            evicted
        }
    }
}

pub use analysis_cache::AnalysisCache;

/// Renders a caught panic payload for the diagnostics report.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// The sweep-wide inputs shared by every chunk: what to analyze, how,
/// and the precomputed analysis-cache fingerprint (if caching is on).
#[derive(Clone, Copy)]
struct SweepInputs<'a> {
    func: &'a Arc<Function>,
    platform: &'a Arc<Platform>,
    workload: &'a Workload,
    opts: DseOptions,
    fingerprint: Option<(u64, u64)>,
    /// Which analysis store this sweep reuses from — the process-wide
    /// one for the default entry points, a caller-owned one for
    /// [`explore_space_cached`].
    cache: &'a AnalysisCache,
    /// Trace id of the enclosing `dse.sweep` span (`0` when tracing is
    /// off) — the explicit parent for spans opened on worker threads,
    /// which do not inherit the sweep thread's span stack.
    span: u64,
}

/// The parent for a span opened inside sweep machinery: the innermost
/// open span if this thread has one (the serial path, or a live sampled
/// chunk span), else the sweep's root span (worker threads).
fn sweep_parent(sweep: &SweepInputs<'_>) -> u64 {
    match trace::current_span_id() {
        0 => sweep.span,
        p => p,
    }
}

/// Analyzes one family (cache-aware, panic-contained) and settles its
/// [`FamilyAnalysis`].
fn analyze_family(
    sweep: &SweepInputs<'_>,
    work_group: (u32, u32),
    scratch: &mut AnalysisScratch,
) -> FamilyAnalysis {
    let SweepInputs { func, platform, workload, opts, fingerprint, cache, .. } = *sweep;
    let mut span = trace::span_with_parent("dse.analysis", sweep_parent(sweep));
    span.attr_u64("wg_x", u64::from(work_group.0));
    span.attr_u64("wg_y", u64::from(work_group.1));
    let cache_key = fingerprint.map(|fingerprint| analysis_cache::Key {
        fingerprint,
        work_group,
        fuel: opts.fuel,
    });
    let t = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        testhook::maybe_panic(work_group);
        if opts.inject == Some(testhook::InjectedFault::AnalysisPanic) {
            panic!(
                "testhook: injected per-sweep panic analyzing work-group {}x{}",
                work_group.0, work_group.1
            );
        }
        if let Some(key) = &cache_key {
            if let Some(hit) = cache.lookup(key) {
                return (Ok(hit), true, 0);
            }
        }
        let fresh = KernelAnalysis::analyze_interned(
            Arc::clone(func),
            Arc::clone(platform),
            workload,
            work_group,
            opts.fuel,
            scratch,
        )
        .map(Arc::new);
        let mut evictions = 0;
        if let (Some(key), Ok(a)) = (&cache_key, &fresh) {
            evictions = cache.insert(key.clone(), a, opts.analysis_cache_cap);
        }
        (fresh, false, evictions)
    }));
    let nanos = t.elapsed().as_nanos() as u64;
    match outcome {
        Ok((Ok(analysis), from_cache, evictions)) => {
            span.attr_u64("from_cache", u64::from(from_cache));
            let bounds = [
                cycle_lower_bound(&analysis, CommMode::Barrier),
                cycle_lower_bound(&analysis, CommMode::Pipeline),
            ];
            FamilyAnalysis::Ready { analysis, bounds, from_cache, evictions, nanos }
        }
        Ok((Err(e), _, _)) if e.kind() == ErrorKind::Geometry => FamilyAnalysis::Geometry { nanos },
        Ok((Err(e), _, _)) => {
            FamilyAnalysis::Failed { kind: e.kind(), message: e.to_string(), nanos }
        }
        Err(payload) => FamilyAnalysis::Failed {
            kind: ErrorKind::Panic,
            message: format!("analysis panicked: {}", panic_message(payload)),
            nanos,
        },
    }
}

/// Evaluates `entries` (those whose mode is kept) through `ctx`,
/// accumulating points, failures and instrumentation into `out`.
///
/// Shared by the claim phase and the replay repair pass, so a repaired
/// chunk is bit-identical to what the claim phase would have produced:
/// the estimates are pure functions of `(analysis, config)`.
fn evaluate_entries<A: Borrow<KernelAnalysis>>(
    ctx: &mut EvalContext<A>,
    entries: &[(usize, OptimizationConfig)],
    keep: [bool; 2],
    incumbent: &Incumbent,
    inject: Option<testhook::InjectedFault>,
    out: &mut ChunkOutcome,
) {
    let before = ctx.stats;
    let points_before = out.stats.points_evaluated;
    let t = Instant::now();
    for &(idx, cfg) in entries {
        if !keep[mode_idx(cfg.comm_mode)] {
            continue;
        }
        match catch_unwind(AssertUnwindSafe(|| {
            testhook::maybe_panic_estimate(idx);
            if inject == Some(testhook::InjectedFault::EstimatePanic(idx)) {
                panic!("testhook: injected per-sweep panic for candidate {idx}");
            }
            ctx.estimate(&cfg)
        })) {
            Ok(Ok(est)) => {
                if est.feasible {
                    incumbent.offer(est.cycles);
                }
                out.stats.points_evaluated += 1;
                out.points.push((idx, DesignPoint { config: cfg, estimate: est }));
            }
            Ok(Err(e)) => out.failed.push(FailedPoint {
                index: idx,
                config: cfg,
                kind: e.kind(),
                message: e.to_string(),
            }),
            Err(payload) => out.failed.push(FailedPoint {
                index: idx,
                config: cfg,
                kind: ErrorKind::Panic,
                message: format!("estimate panicked: {}", panic_message(payload)),
            }),
        }
    }
    out.stats.estimate_nanos += t.elapsed().as_nanos() as u64;
    out.stats.sched_cache_hits += ctx.stats.sched_cache_hits - before.sched_cache_hits;
    out.stats.sched_cache_misses += ctx.stats.sched_cache_misses - before.sched_cache_misses;
    out.stats.sched_nanos += ctx.stats.sched_nanos - before.sched_nanos;
    // One registry update per batch, not per point: live process-wide
    // progress at negligible hot-loop cost.
    dse_metrics().points.add((out.stats.points_evaluated - points_before) as u64);
}

/// Processes one claimed chunk: settles its family's analysis if first,
/// applies the racy pruning hint, and evaluates the surviving candidates.
#[allow(clippy::too_many_arguments)]
fn process_chunk(
    sweep: &SweepInputs<'_>,
    set: &CandidateSet<'_>,
    states: &[FamilyState],
    chunk: ChunkRef,
    incumbent: &Incumbent,
    ctxs: &mut HashMap<usize, EvalContext<Arc<KernelAnalysis>>>,
    scratch: &mut AnalysisScratch,
    buf: &mut Vec<(usize, OptimizationConfig)>,
) -> ChunkOutcome {
    let mut out = ChunkOutcome::default();
    let state = &states[chunk.family];
    let fam = state.analysis.get_or_init(|| analyze_family(sweep, state.work_group, scratch));
    match fam {
        FamilyAnalysis::Geometry { .. } => {}
        FamilyAnalysis::Failed { kind, message, .. } => {
            buf.clear();
            set.fill(chunk.family, chunk.start, chunk.len, buf);
            for &(idx, cfg) in buf.iter() {
                out.failed.push(FailedPoint {
                    index: idx,
                    config: cfg,
                    kind: *kind,
                    message: message.clone(),
                });
            }
        }
        FamilyAnalysis::Ready { analysis, bounds, .. } => {
            // Branch-and-bound hint: a mode whose optimistic bound cannot
            // beat the incumbent is skipped. The comparison is strict, so
            // any chunk containing a point tied with the global minimum
            // survives (its bound is ≤ that minimum ≤ the incumbent at
            // all times); replay audits the rest.
            let inc = incumbent.get();
            let keep = [
                !sweep.opts.prune || bounds[0] <= inc,
                !sweep.opts.prune || bounds[1] <= inc,
            ];
            out.skipped = [!keep[0], !keep[1]];
            let pruned = u64::from(out.skipped[0]) + u64::from(out.skipped[1]);
            if pruned > 0 {
                dse_metrics().pruned_modes.add(pruned);
            }
            if keep[0] || keep[1] {
                buf.clear();
                set.fill(chunk.family, chunk.start, chunk.len, buf);
                let ctx = ctxs
                    .entry(chunk.family)
                    .or_insert_with(|| EvalContext::new(Arc::clone(analysis)));
                evaluate_entries(ctx, buf, keep, incumbent, sweep.opts.inject, &mut out);
            }
        }
    }
    out
}

/// The claim loop every worker runs: grab the next unclaimed chunk from
/// the shared counter, process it, park the outcome in its slot. The
/// cancellation token is consulted before every claim — the boundary at
/// which a deadline-bounded sweep stops stealing work mid-flight.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    sweep: &SweepInputs<'_>,
    set: &CandidateSet<'_>,
    states: &[FamilyState],
    sched: &[ChunkRef],
    next: &AtomicUsize,
    incumbent: &Incumbent,
    slots: &[Mutex<Option<ChunkOutcome>>],
    cancel: Option<&CancelToken>,
) {
    let mut scratch = AnalysisScratch::new();
    let mut ctxs: HashMap<usize, EvalContext<Arc<KernelAnalysis>>> = HashMap::new();
    let mut buf: Vec<(usize, OptimizationConfig)> = Vec::new();
    let mut last_family: Option<usize> = None;
    loop {
        if cancel.is_some_and(|c| c.checkpoint()) {
            break;
        }
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(&chunk) = sched.get(i) else { break };
        let stole = last_family.is_some_and(|f| f != chunk.family);
        last_family = Some(chunk.family);
        // Sampled per-chunk span: 1-in-N keeps tracing affordable across
        // the tens of thousands of chunks a fine-grid sweep claims.
        let mut chunk_span = trace::span_sampled("dse.chunk", sweep.span);
        if chunk_span.is_live() {
            chunk_span.attr_u64("family", chunk.family as u64);
            chunk_span.attr_u64("len", chunk.len as u64);
            chunk_span.attr_u64("stole", u64::from(stole));
        }
        let mut out =
            process_chunk(sweep, set, states, chunk, incumbent, &mut ctxs, &mut scratch, &mut buf);
        out.stole = stole;
        drop(chunk_span);
        let m = dse_metrics();
        m.chunks.inc();
        if stole {
            m.steals.inc();
        }
        // Panics inside process_chunk are contained, so the lock can only
        // be poisoned by a crash in this bookkeeping itself; recover the
        // data either way.
        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
    }
}

/// Runs the chunked sweep over `set` and merges the outcome in
/// enumeration order. `failed` carries upfront validation failures from
/// the explicit path. With a cancellation token, a deadline or explicit
/// cancel stops the claim loop and the call returns
/// [`FlexclError::Deadline`] carrying the partial [`DseStats`].
#[allow(clippy::too_many_arguments)]
fn run_sweep(
    func: &Function,
    platform: &Platform,
    workload: &Workload,
    set: &CandidateSet<'_>,
    mut failed: Vec<FailedPoint>,
    opts: DseOptions,
    start: Instant,
    cancel: Option<&CancelToken>,
    cache: &AnalysisCache,
) -> Result<DseResult, FlexclError> {
    // Intern the kernel and platform once; every family's analysis shares
    // these allocations instead of cloning them.
    let func = Arc::new(func.clone());
    let platform = Arc::new(platform.clone());

    // One content fingerprint covers the whole sweep: families differ only
    // in work-group size, which is part of the cache key, not the hash.
    // Capacity 0 is the documented no-cache mode: no lookups, no inserts.
    let fingerprint = (opts.reuse_analysis && opts.analysis_cache_cap > 0)
        .then(|| analysis_cache::fingerprint(&func, &platform, workload));

    let family_lens: Vec<usize> = (0..set.family_count()).map(|f| set.family_len(f)).collect();
    let total: usize = family_lens.iter().sum();
    let chunk_size = opts.effective_chunk_size(total);

    dse_metrics().sweeps.inc();
    let mut sweep_span = trace::span("dse.sweep");
    sweep_span.attr_str("kernel", &func.name);
    sweep_span.attr_u64("points", total as u64);
    sweep_span.attr_u64("families", family_lens.len() as u64);
    sweep_span.attr_u64("threads", opts.threads.max(1) as u64);
    sweep_span.attr_u64("chunk_size", chunk_size as u64);
    let sweep = SweepInputs {
        func: &func,
        platform: &platform,
        workload,
        opts,
        fingerprint,
        cache,
        span: sweep_span.id(),
    };
    let sched = build_schedule(&family_lens, chunk_size);
    let states: Vec<FamilyState> = (0..set.family_count())
        .map(|f| FamilyState { work_group: set.family_work_group(f), analysis: OnceLock::new() })
        .collect();

    let incumbent = Incumbent::new();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ChunkOutcome>>> =
        sched.iter().map(|_| Mutex::new(None)).collect();

    let workers = opts.threads.max(1).min(sched.len().max(1));
    if workers <= 1 {
        worker_loop(&sweep, set, &states, &sched, &next, &incumbent, &slots, cancel);
    } else {
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    worker_loop(&sweep, set, &states, &sched, &next, &incumbent, &slots, cancel)
                });
            }
        });
    }

    // A tripped token means some tail of the schedule was never claimed:
    // the design points are incomplete and are discarded, but the
    // instrumentation from the chunks that did finish rides out on the
    // typed error so callers can see how far the sweep got.
    if cancel.is_some_and(|c| c.checkpoint()) {
        let mut stats = DseStats { chunk_size, ..DseStats::default() };
        for slot in &slots {
            let Some(out) = slot.lock().unwrap_or_else(|e| e.into_inner()).take() else {
                continue;
            };
            stats.chunks_processed += 1;
            stats.steals += u64::from(out.stole);
            stats.merge(&out.stats);
        }
        account_families(&states, &mut stats);
        sweep_span.attr_str("outcome", cancel.map_or("cancelled", |c| c.reason()));
        return Err(FlexclError::Deadline {
            elapsed_ms: start.elapsed().as_millis() as u64,
            detail: cancel.map_or("cancelled", |c| c.reason()).to_string(),
            stats: Box::new(stats),
        });
    }

    // Deterministic replay: walk the chunks in schedule order, maintaining
    // the prefix incumbent (best feasible cycle count among *kept* points
    // of earlier chunks), and recompute every pruning decision against it.
    // Chunks the racy incumbent over-pruned are re-evaluated; points it
    // under-pruned are dropped. The surviving set is a pure function of
    // the schedule order and the model — identical at any thread count,
    // chunk size, and timing.
    let mut replay_span = trace::span("dse.replay");
    let mut stats = DseStats { chunks_processed: sched.len(), chunk_size, ..DseStats::default() };
    let mut indexed: Vec<(usize, DesignPoint)> = Vec::new();
    let mut prefix_best = f64::INFINITY;
    let mut repair_ctxs: HashMap<usize, EvalContext<Arc<KernelAnalysis>>> = HashMap::new();
    let mut buf: Vec<(usize, OptimizationConfig)> = Vec::new();
    for (i, &chunk) in sched.iter().enumerate() {
        let mut out = slots[i]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("every chunk index was claimed by a worker");
        stats.steals += u64::from(out.stole);
        if let Some(FamilyAnalysis::Ready { analysis, bounds, .. }) =
            states[chunk.family].analysis.get()
        {
            let keep = [
                !opts.prune || bounds[0] <= prefix_best,
                !opts.prune || bounds[1] <= prefix_best,
            ];
            // Drop what the racy hint under-pruned...
            out.points.retain(|(_, p)| keep[mode_idx(p.config.comm_mode)]);
            out.failed.retain(|f| keep[mode_idx(f.config.comm_mode)]);
            // ...and repair what it over-pruned.
            let need = [keep[0] && out.skipped[0], keep[1] && out.skipped[1]];
            if need[0] || need[1] {
                buf.clear();
                set.fill(chunk.family, chunk.start, chunk.len, &mut buf);
                let entries: Vec<(usize, OptimizationConfig)> = buf
                    .iter()
                    .copied()
                    .filter(|(_, c)| need[mode_idx(c.comm_mode)])
                    .collect();
                if !entries.is_empty() {
                    let ctx = repair_ctxs
                        .entry(chunk.family)
                        .or_insert_with(|| EvalContext::new(Arc::clone(analysis)));
                    evaluate_entries(ctx, &entries, [true, true], &incumbent, opts.inject, &mut out);
                    stats.repaired_chunks += 1;
                }
            }
            for (_, p) in &out.points {
                if p.estimate.feasible {
                    prefix_best = prefix_best.min(p.estimate.cycles);
                }
            }
        }
        indexed.append(&mut out.points);
        failed.append(&mut out.failed);
        stats.merge(&out.stats);
    }

    replay_span.attr_u64("repaired_chunks", stats.repaired_chunks as u64);
    drop(replay_span);
    dse_metrics().repaired_chunks.add(stats.repaired_chunks as u64);
    account_families(&states, &mut stats);

    indexed.sort_by_key(|(idx, _)| *idx);
    failed.sort_by_key(|f| f.index);
    let points = indexed.into_iter().map(|(_, p)| p).collect();
    Ok(DseResult {
        points,
        elapsed: start.elapsed(),
        diagnostics: DiagnosticsReport { failed },
        stats,
    })
}

/// Family-level accounting, once per family regardless of chunk count.
fn account_families(states: &[FamilyState], stats: &mut DseStats) {
    for state in states {
        if let Some(fam) = state.analysis.get() {
            stats.families_analyzed += 1;
            match fam {
                FamilyAnalysis::Ready { from_cache, evictions, nanos, .. } => {
                    if *from_cache {
                        stats.analysis_cache_hits += 1;
                    } else {
                        stats.analysis_cache_misses += 1;
                    }
                    stats.analysis_cache_evictions += evictions;
                    stats.analysis_nanos += nanos;
                }
                FamilyAnalysis::Geometry { nanos } | FamilyAnalysis::Failed { nanos, .. } => {
                    stats.analysis_cache_misses += 1;
                    stats.analysis_nanos += nanos;
                }
            }
        }
    }
}

/// Exhaustively explores the design space of `func` on `workload` with the
/// default [`DseOptions`] (serial, no pruning).
///
/// # Errors
///
/// Returns [`FlexclError::Platform`] if the platform description is
/// invalid. Per-candidate failures do not abort the sweep; they are
/// recorded in [`DseResult::diagnostics`].
pub fn explore(
    func: &Function,
    platform: &Platform,
    workload: &Workload,
) -> Result<DseResult, FlexclError> {
    explore_with(func, platform, workload, DseOptions::default())
}

/// Explores the design space of `func` on `workload` under `opts`, over
/// the [`SweepGrid::standard`] grid.
///
/// With `opts.prune == false` the explored points are exactly the
/// enumerated space in enumeration order (minus failed candidates),
/// bit-identical for every thread count and chunk size. With pruning,
/// dominated points may be absent, but the surviving set is still
/// deterministic and [`DseResult::best`] matches the exhaustive sweep.
///
/// # Errors
///
/// Returns [`FlexclError::Platform`] if the platform description is
/// invalid. Per-candidate failures do not abort the sweep; they are
/// recorded in [`DseResult::diagnostics`].
pub fn explore_with(
    func: &Function,
    platform: &Platform,
    workload: &Workload,
    opts: DseOptions,
) -> Result<DseResult, FlexclError> {
    explore_space(func, platform, workload, &SweepGrid::standard(), opts)
}

/// Explores the design space of `func` on `workload` over an explicit
/// knob [`SweepGrid`] under `opts`.
///
/// This is the large-sweep entry point: the [`ConfigSpace`] is decoded
/// chunk by chunk, so a [`SweepGrid::fine`] or [`SweepGrid::ultra`] grid
/// with 10⁵–10⁶⁺ candidates never materializes its candidate list. The
/// determinism guarantees of [`explore_with`] apply unchanged.
///
/// # Errors
///
/// Returns [`FlexclError::Platform`] if the platform description is
/// invalid. Per-candidate failures do not abort the sweep; they are
/// recorded in [`DseResult::diagnostics`].
pub fn explore_space(
    func: &Function,
    platform: &Platform,
    workload: &Workload,
    grid: &SweepGrid,
    opts: DseOptions,
) -> Result<DseResult, FlexclError> {
    explore_space_cached(func, platform, workload, grid, opts, None, analysis_cache::global())
}

/// [`explore_space`] with an explicit cancellation token and analysis
/// store — the fully-general sweep entry point the others delegate to.
///
/// `cancel` bounds the sweep exactly as in [`explore_space_deadline`]
/// (pass `None` for an unbounded sweep). `cache` names the
/// [`AnalysisCache`] the sweep reuses per-family analyses from: the
/// default entry points share one process-wide store, while a serving
/// deployment passes its own so warm-path reuse is scoped to the server
/// instance (and dies with it) instead of leaking across tenants of the
/// process. The cache only changes *where* settled analyses are found —
/// explored points are bit-identical whichever store is supplied.
///
/// # Errors
///
/// As [`explore_space_deadline`]: [`FlexclError::Platform`] for an
/// invalid platform description, [`FlexclError::Deadline`] when a
/// supplied token trips mid-sweep.
pub fn explore_space_cached(
    func: &Function,
    platform: &Platform,
    workload: &Workload,
    grid: &SweepGrid,
    opts: DseOptions,
    cancel: Option<&CancelToken>,
    cache: &AnalysisCache,
) -> Result<DseResult, FlexclError> {
    let start = Instant::now();
    platform.validate()?;
    let limits = limits_for(func, workload);
    let space = ConfigSpace::new(&limits, grid);
    run_sweep(
        func,
        platform,
        workload,
        &CandidateSet::Space(&space),
        Vec::new(),
        opts,
        start,
        cancel,
        cache,
    )
}

/// Explores a knob grid like [`explore_space`], but bounded by a
/// [`CancelToken`]: the token is consulted at every chunk-claim boundary,
/// so an expired deadline or an explicit [`CancelToken::cancel`] stops
/// the sweep mid-flight instead of letting it run to completion.
///
/// A stopped sweep returns [`FlexclError::Deadline`] carrying the partial
/// [`DseStats`] accumulated before the stop; the (incomplete) design
/// points are discarded so callers can never mistake a truncated Pareto
/// set for a full one. A sweep that finishes before the token trips is
/// bit-identical to [`explore_space`] with the same options.
///
/// # Errors
///
/// Returns [`FlexclError::Platform`] for an invalid platform description
/// and [`FlexclError::Deadline`] when the token trips before the sweep
/// covers the space. Per-candidate failures still do not abort the sweep.
pub fn explore_space_deadline(
    func: &Function,
    platform: &Platform,
    workload: &Workload,
    grid: &SweepGrid,
    opts: DseOptions,
    cancel: &CancelToken,
) -> Result<DseResult, FlexclError> {
    explore_space_cached(func, platform, workload, grid, opts, Some(cancel), analysis_cache::global())
}

/// Explores an explicit list of candidate configurations under `opts`.
///
/// This is the fault-injection surface: unlike [`explore_with`], the
/// candidates need not come from [`crate::config::enumerate`] — invalid entries
/// are diagnosed per candidate ([`ErrorKind::Config`]) and skipped, and
/// the surviving points are bit-identical to a sweep over only the valid
/// subset. `DseResult::points` preserves the order of `configs`.
///
/// # Errors
///
/// Returns [`FlexclError::Platform`] if the platform description is
/// invalid — a corrupt platform table poisons every candidate, so it is
/// rejected up front rather than reported a hundred times.
pub fn explore_configs(
    func: &Function,
    platform: &Platform,
    workload: &Workload,
    configs: &[OptimizationConfig],
    opts: DseOptions,
) -> Result<DseResult, FlexclError> {
    let start = Instant::now();
    platform.validate()?;

    // Validate candidates up front (an invalid config must not drag a
    // whole family down), then partition the valid ones into
    // per-work-group families, remembering each config's enumeration
    // index for the ordered merge. Validation is kernel-aware: temporal
    // blocking is rejected here for non-iterative kernels instead of
    // erroring one estimate at a time inside the sweep.
    let limits = limits_for(func, workload);
    let mut failed: Vec<FailedPoint> = Vec::new();
    let mut families: Vec<Family> = Vec::new();
    for (idx, cfg) in configs.iter().copied().enumerate() {
        if let Err(e) = cfg.validate_for(&limits) {
            failed.push(FailedPoint {
                index: idx,
                config: cfg,
                kind: e.kind(),
                message: e.to_string(),
            });
            continue;
        }
        match families.iter_mut().find(|f| f.work_group == cfg.work_group) {
            Some(f) => f.entries.push((idx, cfg)),
            None => families
                .push(Family { work_group: cfg.work_group, entries: vec![(idx, cfg)] }),
        }
    }

    run_sweep(
        func,
        platform,
        workload,
        &CandidateSet::Explicit(families),
        failed,
        opts,
        start,
        None,
        analysis_cache::global(),
    )
}

/// Test-only fault injection for the DSE panic backstop.
///
/// Hidden from docs and not part of the public API contract: the
/// fault-injection suite arms a panic for a specific work-group size (the
/// analysis path) or a specific candidate index (the estimate path) and
/// asserts the sweep survives, attributes the failure, and leaves every
/// other point bit-identical. Disarmed state (the default) is a single
/// relaxed atomic load on the sweep path.
#[doc(hidden)]
pub mod testhook {
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    /// `0` = disarmed; otherwise the packed work-group to panic on.
    static ARMED: AtomicU64 = AtomicU64::new(0);

    /// `usize::MAX` = disarmed; otherwise the enumeration index whose
    /// estimate panics.
    static ESTIMATE_ARMED: AtomicUsize = AtomicUsize::new(usize::MAX);

    fn pack(wg: (u32, u32)) -> u64 {
        (u64::from(wg.0) << 32) | u64::from(wg.1)
    }

    /// Arms an injected panic for analyses of work-group `wg`.
    pub fn arm_panic(wg: (u32, u32)) {
        ARMED.store(pack(wg), Ordering::SeqCst);
    }

    /// Arms an injected panic for the estimate of the candidate at
    /// enumeration index `index`.
    pub fn arm_estimate_panic(index: usize) {
        ESTIMATE_ARMED.store(index, Ordering::SeqCst);
    }

    /// Disarms all injected panics.
    pub fn disarm() {
        ARMED.store(0, Ordering::SeqCst);
        ESTIMATE_ARMED.store(usize::MAX, Ordering::SeqCst);
    }

    pub(crate) fn maybe_panic(wg: (u32, u32)) {
        if pack(wg) != 0 && ARMED.load(Ordering::Relaxed) == pack(wg) {
            panic!("testhook: injected panic for work-group {}x{}", wg.0, wg.1);
        }
    }

    pub(crate) fn maybe_panic_estimate(index: usize) {
        if ESTIMATE_ARMED.load(Ordering::Relaxed) == index {
            panic!("testhook: injected panic for candidate {index}");
        }
    }

    /// A fault armed for a *single sweep* via
    /// [`DseOptions::inject`](super::DseOptions), as opposed to the
    /// process-global `arm_*` hooks above. Per-sweep injection is what the
    /// serving layer uses to poison one request while concurrent sweeps in
    /// the same process stay clean — the global hooks would leak across
    /// requests.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum InjectedFault {
        /// Panic inside the family analysis of every work-group in this
        /// sweep (caught by the per-family backstop; the whole sweep
        /// degrades to `ErrorKind::Panic` diagnostics).
        AnalysisPanic,
        /// Panic inside the estimate of the candidate at this enumeration
        /// index (caught by the per-chunk backstop; only that candidate is
        /// skipped).
        EstimatePanic(usize),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcl_interp::KernelArg;

    fn vadd() -> (Function, Workload) {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
                int i = get_global_id(0);
                c[i] = a[i] + b[i];
            }",
        )
        .expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        let w = Workload {
            args: vec![
                KernelArg::FloatBuf(vec![1.0; 4096]),
                KernelArg::FloatBuf(vec![2.0; 4096]),
                KernelArg::FloatBuf(vec![0.0; 4096]),
            ],
            global: (4096, 1),
        };
        (f, w)
    }

    fn barrier_kernel() -> (Function, Workload) {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void k(__global float* a) {
                __local float t[256];
                int l = get_local_id(0);
                t[l] = a[get_global_id(0)];
                barrier(CLK_LOCAL_MEM_FENCE);
                a[get_global_id(0)] = t[l];
            }",
        )
        .expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        let w = Workload { args: vec![KernelArg::FloatBuf(vec![0.0; 1024])], global: (1024, 1) };
        (f, w)
    }

    fn assert_points_identical(a: &DseResult, b: &DseResult) {
        assert_eq!(a.points.len(), b.points.len());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.config, pb.config);
            assert_eq!(pa.estimate, pb.estimate, "{}", pa.config);
        }
    }

    #[test]
    fn sweep_covers_hundreds_of_points_quickly() {
        let (f, w) = vadd();
        let result = explore(&f, &Platform::virtex7_adm7v3(), &w).expect("dse");
        assert!(result.points.len() >= 100, "{} points", result.points.len());
        assert!(result.feasible_count() > result.points.len() / 2);
        assert!(result.diagnostics.is_clean(), "{:?}", result.diagnostics);
        assert!(
            result.elapsed.as_secs() < 30,
            "DSE must run in seconds, took {:?}",
            result.elapsed
        );
    }

    #[test]
    fn best_point_beats_baseline() {
        let (f, w) = vadd();
        let result = explore(&f, &Platform::virtex7_adm7v3(), &w).expect("dse");
        let speedup = result.speedup_over_baseline().expect("speedup");
        assert!(speedup > 5.0, "speedup {speedup}");
        let best = result.best().expect("best");
        assert!(best.config.work_item_pipeline, "best config should pipeline");
    }

    #[test]
    fn barrier_kernel_space_restricted() {
        let (f, w) = barrier_kernel();
        let result = explore(&f, &Platform::virtex7_adm7v3(), &w).expect("dse");
        assert!(result
            .points
            .iter()
            .all(|p| p.config.comm_mode == crate::config::CommMode::Barrier));
    }

    #[test]
    fn parallel_sweep_is_bit_identical_for_pipeline_kernel() {
        // vadd has no barrier, so its space includes pipeline-mode points.
        let (f, w) = vadd();
        let platform = Platform::virtex7_adm7v3();
        let serial = explore(&f, &platform, &w).expect("serial");
        let parallel =
            explore_with(&f, &platform, &w, DseOptions::parallel(4)).expect("parallel");
        assert!(serial
            .points
            .iter()
            .any(|p| p.config.comm_mode == CommMode::Pipeline));
        assert_points_identical(&serial, &parallel);
    }

    #[test]
    fn parallel_sweep_is_bit_identical_for_barrier_kernel() {
        let (f, w) = barrier_kernel();
        let platform = Platform::virtex7_adm7v3();
        let serial = explore(&f, &platform, &w).expect("serial");
        let parallel =
            explore_with(&f, &platform, &w, DseOptions::parallel(3)).expect("parallel");
        assert_points_identical(&serial, &parallel);
    }

    #[test]
    fn tiny_chunks_are_bit_identical_to_serial() {
        // Chunk size 5 forces many chunks per family and plenty of context
        // switches; the merged result must not care.
        let (f, w) = vadd();
        let platform = Platform::virtex7_adm7v3();
        let serial = explore(&f, &platform, &w).expect("serial");
        let chunked = explore_with(
            &f,
            &platform,
            &w,
            DseOptions { threads: 4, chunk_size: 5, ..DseOptions::default() },
        )
        .expect("chunked");
        assert_points_identical(&serial, &chunked);
        assert!(chunked.stats.chunks_processed > serial.stats.chunks_processed);
    }

    #[test]
    fn explore_space_standard_grid_matches_explore_with() {
        let (f, w) = vadd();
        let platform = Platform::virtex7_adm7v3();
        let via_enumerate = explore(&f, &platform, &w).expect("explore");
        let via_space = explore_space(
            &f,
            &platform,
            &w,
            &SweepGrid::standard(),
            DseOptions::default(),
        )
        .expect("explore_space");
        assert_points_identical(&via_enumerate, &via_space);
    }

    #[test]
    fn pruned_sweep_finds_the_same_best() {
        let (f, w) = vadd();
        let platform = Platform::virtex7_adm7v3();
        let full = explore(&f, &platform, &w).expect("exhaustive");
        let pruned = explore_with(
            &f,
            &platform,
            &w,
            DseOptions { prune: true, ..DseOptions::default() },
        )
        .expect("pruned");
        assert!(pruned.points.len() <= full.points.len());
        let (fb, pb) = (full.best().expect("full best"), pruned.best().expect("pruned best"));
        assert_eq!(fb.config, pb.config);
        assert_eq!(fb.estimate.cycles, pb.estimate.cycles);
        // Every surviving point carries the same estimate as in the full
        // sweep (pruning may drop points but never alters them).
        let mut fi = full.points.iter();
        for p in &pruned.points {
            let twin = fi
                .by_ref()
                .find(|q| q.config == p.config)
                .expect("pruned point present in exhaustive sweep, in order");
            assert_eq!(twin.estimate, p.estimate);
        }
    }

    #[test]
    fn pruned_sweep_is_deterministic_across_thread_counts() {
        // The replay pass makes even the *pruned* survivor set a pure
        // function of the schedule order, not of thread timing.
        let (f, w) = vadd();
        let platform = Platform::virtex7_adm7v3();
        let reference = explore_with(
            &f,
            &platform,
            &w,
            DseOptions { prune: true, threads: 1, ..DseOptions::default() },
        )
        .expect("reference");
        for threads in [2, 4, 8] {
            let parallel = explore_with(
                &f,
                &platform,
                &w,
                DseOptions { prune: true, threads, ..DseOptions::default() },
            )
            .expect("parallel pruned");
            assert_points_identical(&reference, &parallel);
        }
    }

    #[test]
    fn tie_breaks_are_deterministic() {
        let (f, w) = vadd();
        let result = explore(&f, &Platform::virtex7_adm7v3(), &w).expect("dse");
        // best() must return the earliest enumerated point among minima.
        let best = result.best().expect("best");
        let min_cycles = best.estimate.cycles;
        let first_min = result
            .points
            .iter()
            .find(|p| p.estimate.feasible && p.estimate.cycles == min_cycles)
            .expect("minimum exists");
        assert_eq!(first_min.config, best.config);
    }

    #[test]
    fn invalid_platform_is_rejected_up_front() {
        let (f, w) = vadd();
        let bad = Platform { global_ports: 0, ..Platform::virtex7_adm7v3() };
        let err = explore(&f, &bad, &w).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Platform);
    }

    #[test]
    fn dse_stats_display_is_a_readable_table() {
        let stats = DseStats {
            families_analyzed: 10,
            points_evaluated: 121_600,
            analysis_cache_hits: 8,
            analysis_cache_misses: 2,
            analysis_cache_evictions: 1,
            sched_cache_hits: 118_000,
            sched_cache_misses: 3_600,
            analysis_nanos: 12_300_000,
            estimate_nanos: 40_100_000,
            sched_nanos: 8_200_000,
            chunks_processed: 60,
            steals: 3,
            repaired_chunks: 2,
            chunk_size: 2048,
        };
        let s = stats.to_string();
        assert!(s.contains("points evaluated : 121600"), "{s}");
        assert!(s.contains("chunks processed : 60 (size 2048, 3 steals, 2 repaired)"), "{s}");
        assert!(s.contains("families         : 10 (8 analysis-cache hits / 2 misses"), "{s}");
        assert!(s.contains("sched cache      : 97.0% hit"), "{s}");
        assert!(s.contains("analysis 12.30 ms, estimate 40.10 ms (sched 8.20 ms)"), "{s}");
        // Every line is indented so the table slots under a header line.
        assert!(s.lines().all(|l| l.starts_with("  ")), "{s}");
    }

    #[test]
    fn diagnostics_display_covers_clean_and_failing_reports() {
        let clean = DiagnosticsReport::default();
        assert_eq!(clean.to_string(), "clean (no candidates skipped)");

        let mut failing = DiagnosticsReport::default();
        for (i, kind) in
            [ErrorKind::Config, ErrorKind::Config, ErrorKind::Panic].into_iter().enumerate()
        {
            failing.failed.push(FailedPoint {
                index: i,
                config: OptimizationConfig::baseline((64, 1)),
                kind,
                message: format!("failure {i}"),
            });
        }
        let s = failing.to_string();
        assert_eq!(s, "3 candidate(s) skipped [config x2, panic x1]; first: failure 0");
    }

    #[test]
    fn explore_configs_preserves_candidate_order() {
        let (f, w) = vadd();
        let platform = Platform::virtex7_adm7v3();
        let configs = vec![
            OptimizationConfig::baseline((64, 1)),
            OptimizationConfig { work_item_pipeline: true, ..OptimizationConfig::baseline((32, 1)) },
            OptimizationConfig { work_item_pipeline: true, ..OptimizationConfig::baseline((64, 1)) },
        ];
        let r = explore_configs(&f, &platform, &w, &configs, DseOptions::default())
            .expect("sweep");
        assert!(r.diagnostics.is_clean());
        let got: Vec<_> = r.points.iter().map(|p| p.config).collect();
        assert_eq!(got, configs);
    }
}
