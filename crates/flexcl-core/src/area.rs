//! Area estimation and performance/area trade-off queries.
//!
//! The paper motivates FlexCL as a tool to "quickly identify the solutions
//! subject to a user defined performance constraint" (§1): among the
//! configurations that meet a deadline, a designer wants the *cheapest*
//! one, and more generally the performance/area Pareto frontier. This
//! module provides the resource estimate behind those queries.
//!
//! The estimate mirrors how SDAccel composes designs: each PE instantiates
//! one IP core per DSP-mapped operation, local arrays are partitioned
//! across PEs, and the whole CU is replicated `C` times. LUT usage is
//! approximated from the non-DSP operation mix — coarse, but area
//! feasibility on these devices is dominated by DSPs and BRAM, which are
//! counted exactly from the instruction stream.

use crate::analysis::KernelAnalysis;
use crate::config::OptimizationConfig;
use flexcl_ir::Op;
use std::fmt;

/// Estimated device resources consumed by one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaEstimate {
    /// DSP slices.
    pub dsps: u64,
    /// On-chip BRAM bytes (local arrays × partitioning × CUs).
    pub bram_bytes: u64,
    /// Approximate LUTs (fabric operations × replication).
    pub luts: u64,
}

impl AreaEstimate {
    /// Whether this estimate fits the platform's capacity.
    pub fn fits(&self, platform: &crate::platform::Platform) -> bool {
        self.dsps <= u64::from(platform.total_dsps)
            && self.bram_bytes <= platform.total_bram_bytes
    }

    /// A scalar cost for ranking (normalised resource shares summed).
    pub fn cost(&self, platform: &crate::platform::Platform) -> f64 {
        let dsp = self.dsps as f64 / f64::from(platform.total_dsps.max(1));
        let bram = self.bram_bytes as f64 / platform.total_bram_bytes.max(1) as f64;
        // LUT capacity is roughly 433k for the XC7VX690T; use a fixed
        // reference so costs are comparable across platforms.
        let lut = self.luts as f64 / 433_000.0;
        dsp + bram + lut
    }
}

impl fmt::Display for AreaEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} DSPs, {:.1} KiB BRAM, ~{}k LUTs",
            self.dsps,
            self.bram_bytes as f64 / 1024.0,
            self.luts / 1000
        )
    }
}

/// Rough LUT cost of one non-DSP operation instance.
fn lut_cost(op: &Op, ty: &flexcl_frontend::types::Type) -> u64 {
    use flexcl_frontend::ast::BinOp;
    let wide = ty.element_scalar().is_some_and(|s| s.bits() == 64);
    let scale = if wide { 2 } else { 1 };
    let base: u64 = match op {
        Op::Bin(BinOp::Div | BinOp::Rem) => 1200, // iterative divider
        Op::Bin(BinOp::Add | BinOp::Sub) => 40,
        Op::Bin(_) => 30,
        Op::Un(_) => 20,
        Op::Select => 35,
        Op::Convert => 80,
        Op::Math(_) => 150, // control around the DSP datapath
        Op::Load { .. } | Op::Store { .. } => 60,
        Op::Extract(_) | Op::Insert(_) | Op::Splat => 10,
        Op::WorkItem(_) | Op::Alloca { .. } | Op::Barrier => 15,
    };
    base * scale * u64::from(ty.lanes())
}

/// On-chip buffer bytes temporal blocking needs per CU (DESIGN.md §15).
///
/// Fusing `tb` stencil steps keeps the intermediate layers of the tile on
/// chip: each of the `tb - 1` non-final steps buffers one halo-inclusive
/// tile layer, whose extent per blocked dimension (where the NDRange
/// extends) is `wg_d + 2·(tb - 1)`. Cells are costed at 8 bytes — one
/// double-buffered `float` — a documented approximation matching the
/// stencil suites the axis is gated to. Exactly zero at `tb <= 1`.
pub fn temporal_bram_bytes(work_group: (u32, u32), global: (u64, u64), tb: u32) -> u64 {
    if tb <= 1 {
        return 0;
    }
    let halo = u64::from(tb - 1);
    let mut layer: u64 = 1;
    if global.0 > 1 {
        layer = layer.saturating_mul(u64::from(work_group.0).saturating_add(2 * halo));
    }
    if global.1 > 1 {
        layer = layer.saturating_mul(u64::from(work_group.1).saturating_add(2 * halo));
    }
    halo.saturating_mul(layer).saturating_mul(8)
}

/// Estimates the resources a configuration consumes.
pub fn estimate_area(analysis: &KernelAnalysis, config: &OptimizationConfig) -> AreaEstimate {
    let p_eff = u64::from(config.effective_pes().max(1));
    let c = u64::from(config.num_cus.max(1));

    let dsps = u64::from(analysis.static_dsps_per_pe) * p_eff * c;
    // Unrolling partitions local arrays (bounded: the toolchain caps the
    // partition factor). Temporal blocking adds its per-CU tile buffers.
    let bram_bytes = (analysis.local_bytes * p_eff.min(4))
        .saturating_add(temporal_bram_bytes(
            analysis.work_group,
            analysis.global,
            config.temporal_block_depth.max(1),
        ))
        .saturating_mul(c);
    let luts_per_pe: u64 = analysis
        .func
        .insts
        .iter()
        .filter(|i| analysis.platform.op_dsps(&i.op, &i.ty) == 0)
        .map(|i| lut_cost(&i.op, &i.ty))
        .sum();
    // Pipeline registers grow with depth when work-item pipelining is on.
    let pipeline_overhead = if config.work_item_pipeline { 5 } else { 4 };
    let luts = luts_per_pe * p_eff * c * pipeline_overhead / 4;

    AreaEstimate { dsps, bram_bytes, luts }
}

/// A point on the performance/area Pareto frontier.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// The configuration.
    pub config: OptimizationConfig,
    /// Predicted cycles.
    pub cycles: f64,
    /// Estimated area.
    pub area: AreaEstimate,
}

/// Extracts the performance/area Pareto frontier from `(config, cycles,
/// area)` triples: points where no other point is both faster and cheaper.
pub fn pareto_frontier(
    platform: &crate::platform::Platform,
    points: impl IntoIterator<Item = ParetoPoint>,
) -> Vec<ParetoPoint> {
    // Decorate each point with its cost once; `cost` is three normalised
    // divisions and the comparator would otherwise recompute it O(n log n)
    // times.
    let mut pts: Vec<(f64, ParetoPoint)> =
        points.into_iter().map(|p| (p.area.cost(platform), p)).collect();
    pts.sort_by(|(ca, a), (cb, b)| a.cycles.total_cmp(&b.cycles).then(ca.total_cmp(cb)));
    let mut frontier: Vec<ParetoPoint> = Vec::new();
    let mut best_cost = f64::INFINITY;
    for (cost, p) in pts {
        if cost < best_cost {
            best_cost = cost;
            frontier.push(p);
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Workload;
    use crate::platform::Platform;
    use flexcl_interp::KernelArg;

    fn analysis() -> KernelAnalysis {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void fma_chain(__global float* x, __global float* y) {
                int i = get_global_id(0);
                float v = x[i];
                y[i] = v * v * 1.5f + v * 0.5f + 2.0f;
            }",
        )
        .expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        KernelAnalysis::analyze(
            &f,
            &Platform::virtex7_adm7v3(),
            &Workload {
                args: vec![
                    KernelArg::FloatBuf(vec![1.0; 512]),
                    KernelArg::FloatBuf(vec![0.0; 512]),
                ],
                global: (512, 1),
            },
            (64, 1),
        )
        .expect("analysis")
    }

    #[test]
    fn area_scales_with_replication() {
        let a = analysis();
        let base = OptimizationConfig::baseline((64, 1));
        let wide = OptimizationConfig {
            work_item_pipeline: true,
            num_pes: 4,
            num_cus: 2,
            ..base
        };
        let small = estimate_area(&a, &base);
        let big = estimate_area(&a, &wide);
        assert_eq!(big.dsps, small.dsps * 8);
        assert!(big.luts > small.luts * 7);
    }

    #[test]
    fn area_fits_reasonable_configs() {
        let a = analysis();
        let platform = Platform::virtex7_adm7v3();
        let area = estimate_area(&a, &OptimizationConfig::baseline((64, 1)));
        assert!(area.fits(&platform));
        assert!(area.dsps > 0, "fmul chain uses DSPs");
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let a = analysis();
        let platform = Platform::virtex7_adm7v3();
        let limits = crate::config::DesignSpaceLimits {
            global_x: 512,
            global_y: 1,
            has_barrier: false,
            reqd_work_group: None,
            vectorizable: true,
            iterative: false,
        };
        let pts: Vec<ParetoPoint> = crate::config::enumerate(&limits)
            .into_iter()
            .filter_map(|cfg| {
                let est = crate::model::estimate(&a, &cfg).expect("estimate");
                est.feasible.then(|| ParetoPoint {
                    config: cfg,
                    cycles: est.cycles,
                    area: estimate_area(&a, &cfg),
                })
            })
            .collect();
        let frontier = pareto_frontier(&platform, pts.clone());
        assert!(!frontier.is_empty());
        assert!(frontier.len() < pts.len(), "frontier prunes dominated points");
        // Monotone: cycles increase, cost decreases along the frontier.
        for w in frontier.windows(2) {
            assert!(w[0].cycles <= w[1].cycles);
            assert!(w[0].area.cost(&platform) > w[1].area.cost(&platform));
        }
        // No frontier point is dominated by any other point.
        for f in &frontier {
            for p in &pts {
                let dominates = p.cycles < f.cycles
                    && p.area.cost(&platform) < f.area.cost(&platform);
                assert!(!dominates, "{} dominated by {}", f.config, p.config);
            }
        }
    }

    #[test]
    fn temporal_bram_is_zero_at_depth_one_and_grows_with_depth() {
        assert_eq!(temporal_bram_bytes((16, 4), (32, 32), 1), 0);
        // Depth 2 on a 16x4 tile of a 2-D NDRange: one buffered layer of
        // (16+2)x(4+2) cells at 8 bytes.
        assert_eq!(temporal_bram_bytes((16, 4), (32, 32), 2), 18 * 6 * 8);
        // 1-D NDRange ignores the unit dimension.
        assert_eq!(temporal_bram_bytes((64, 1), (1024, 1), 2), 66 * 8);
        let d2 = temporal_bram_bytes((16, 4), (32, 32), 2);
        let d4 = temporal_bram_bytes((16, 4), (32, 32), 4);
        assert!(d4 > d2, "deeper blocks buffer more layers: {d4} vs {d2}");
    }

    #[test]
    fn temporal_depth_inflates_area_estimate() {
        let a = analysis();
        let base = OptimizationConfig::baseline((64, 1));
        let blocked = OptimizationConfig { temporal_block_depth: 4, ..base };
        let a0 = estimate_area(&a, &base);
        let a1 = estimate_area(&a, &blocked);
        assert!(a1.bram_bytes > a0.bram_bytes);
        assert_eq!(a1.dsps, a0.dsps);
    }

    #[test]
    fn display_is_informative() {
        let a = analysis();
        let area = estimate_area(&a, &OptimizationConfig::baseline((64, 1)));
        let s = area.to_string();
        assert!(s.contains("DSPs"));
        assert!(s.contains("BRAM"));
    }
}
