//! Optimization configurations and the design space FlexCL explores.
//!
//! A configuration fixes the knobs the paper sweeps in §4: work-group
//! size, work-item pipelining, PE parallelism (loop unrolling /
//! vectorization), CU replication, and the communication mode.

use std::fmt;

/// How computation communicates with global memory (§3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CommMode {
    /// Computation and global transfers are separated by barriers and do
    /// not overlap (Eq. 10).
    #[default]
    Barrier,
    /// Global transfers overlap computation through the work-item pipeline
    /// (Eq. 11–12).
    Pipeline,
}

impl fmt::Display for CommMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommMode::Barrier => f.write_str("barrier"),
            CommMode::Pipeline => f.write_str("pipeline"),
        }
    }
}

/// One point of the optimization design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptimizationConfig {
    /// Work-group size (x, y); `N_wi^wg = x · y`.
    pub work_group: (u32, u32),
    /// Whether work-items are pipelined within a PE.
    pub work_item_pipeline: bool,
    /// PE replication inside each CU (`P` of Eq. 6).
    pub num_pes: u32,
    /// CU replication (`C` of Eq. 7–8).
    pub num_cus: u32,
    /// Kernel vectorization width (scalar PEs per vector lane; §3.3.2 fn 1).
    pub vector_width: u32,
    /// Communication mode.
    pub comm_mode: CommMode,
}

impl OptimizationConfig {
    /// The unoptimized baseline: one scalar PE, one CU, no pipelining,
    /// barrier communication.
    pub fn baseline(work_group: (u32, u32)) -> Self {
        OptimizationConfig {
            work_group,
            work_item_pipeline: false,
            num_pes: 1,
            num_cus: 1,
            vector_width: 1,
            comm_mode: CommMode::Barrier,
        }
    }

    /// Work-items per work-group.
    pub fn work_group_size(&self) -> u64 {
        u64::from(self.work_group.0) * u64::from(self.work_group.1)
    }

    /// Effective scalar-PE count (`P · vector width`).
    pub fn effective_pes(&self) -> u32 {
        self.num_pes * self.vector_width
    }

    /// Checks the configuration's structural invariants (non-zero
    /// work-group dimensions and replication factors).
    ///
    /// [`enumerate`] only generates valid configurations; this guards the
    /// hand-built ones entering through [`crate::dse::explore_configs`] or
    /// the public [`crate::estimate`] API.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::FlexclError::Config`] naming the first
    /// violated invariant.
    pub fn validate(&self) -> Result<(), crate::error::FlexclError> {
        let fail = |detail: &str| {
            Err(crate::error::FlexclError::Config { config: *self, detail: detail.into() })
        };
        if self.work_group.0 == 0 || self.work_group.1 == 0 {
            return fail("work-group dimensions must be non-zero");
        }
        if self.num_pes == 0 {
            return fail("PE replication must be at least 1");
        }
        if self.num_cus == 0 {
            return fail("CU replication must be at least 1");
        }
        if self.vector_width == 0 {
            return fail("vector width must be at least 1");
        }
        if self.num_pes.checked_mul(self.vector_width).is_none() {
            return fail("PE replication times vector width overflows");
        }
        Ok(())
    }
}

impl Default for OptimizationConfig {
    fn default() -> Self {
        OptimizationConfig::baseline((64, 1))
    }
}

impl fmt::Display for OptimizationConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wg={}x{} pipe={} P={} C={} V={} mode={}",
            self.work_group.0,
            self.work_group.1,
            u8::from(self.work_item_pipeline),
            self.num_pes,
            self.num_cus,
            self.vector_width,
            self.comm_mode
        )
    }
}

/// Properties of the kernel/workload that prune the design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignSpaceLimits {
    /// Global size in x (work-group x must divide it).
    pub global_x: u64,
    /// Global size in y.
    pub global_y: u64,
    /// Whether the kernel contains `barrier()` — such kernels always use
    /// barrier communication (the toolchain cannot stream across barriers).
    pub has_barrier: bool,
    /// Work-group size required by a source attribute, if any.
    pub reqd_work_group: Option<(u32, u32)>,
    /// Whether the kernel's data types permit vectorization (pure
    /// elementwise access, no vector types already in use).
    pub vectorizable: bool,
}

/// Largest PE replication factor [`enumerate`] generates.
pub const MAX_PES: u32 = 16;

/// Largest CU replication factor [`enumerate`] generates.
pub const MAX_CUS: u32 = 4;

/// Largest vectorization width [`enumerate`] generates.
pub const MAX_VECTOR_WIDTH: u32 = 4;

/// Enumerates the design space the experiments sweep.
///
/// The defaults produce 100–200 configurations per kernel, matching the
/// "#Designs" column of Table 2.
pub fn enumerate(limits: &DesignSpaceLimits) -> Vec<OptimizationConfig> {
    let wg_candidates: Vec<(u32, u32)> = match limits.reqd_work_group {
        Some(wg) => vec![wg],
        None => {
            if limits.global_y > 1 {
                vec![(4, 4), (8, 8), (16, 8), (16, 16), (32, 8)]
            } else {
                vec![(16, 1), (32, 1), (64, 1), (128, 1), (256, 1)]
            }
        }
    };
    let pes = [1u32, 2, 4, 8, MAX_PES];
    let cus = [1u32, 2, MAX_CUS];
    let vecs: &[u32] = if limits.vectorizable { &[1, MAX_VECTOR_WIDTH] } else { &[1] };
    let modes: &[CommMode] = if limits.has_barrier {
        &[CommMode::Barrier]
    } else {
        &[CommMode::Barrier, CommMode::Pipeline]
    };

    let mut out = Vec::new();
    for &wg in &wg_candidates {
        if u64::from(wg.0) > limits.global_x || u64::from(wg.1) > limits.global_y.max(1) {
            continue;
        }
        if !limits.global_x.is_multiple_of(u64::from(wg.0)) {
            continue;
        }
        if limits.global_y > 1 && !limits.global_y.is_multiple_of(u64::from(wg.1)) {
            continue;
        }
        for pipe in [false, true] {
            for &p in &pes {
                if !pipe && p > 1 {
                    // PE replication without pipelining is dominated and not
                    // generated by the toolchain.
                    continue;
                }
                if u64::from(p) > wg.0 as u64 * wg.1 as u64 {
                    continue;
                }
                for &c in &cus {
                    for &v in vecs {
                        for &mode in modes {
                            // Pipeline communication overlaps transfers with
                            // computation *through* the work-item pipeline;
                            // it requires pipelining to be on.
                            if mode == CommMode::Pipeline && !pipe {
                                continue;
                            }
                            out.push(OptimizationConfig {
                                work_group: wg,
                                work_item_pipeline: pipe,
                                num_pes: p,
                                num_cus: c,
                                vector_width: v,
                                comm_mode: mode,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits_1d() -> DesignSpaceLimits {
        DesignSpaceLimits {
            global_x: 4096,
            global_y: 1,
            has_barrier: false,
            reqd_work_group: None,
            vectorizable: true,
        }
    }

    #[test]
    fn space_has_hundreds_of_points() {
        let space = enumerate(&limits_1d());
        assert!(space.len() >= 100, "got {}", space.len());
        assert!(space.len() <= 400, "got {}", space.len());
    }

    #[test]
    fn barrier_kernels_never_get_pipeline_mode() {
        let space = enumerate(&DesignSpaceLimits { has_barrier: true, ..limits_1d() });
        assert!(space.iter().all(|c| c.comm_mode == CommMode::Barrier));
    }

    #[test]
    fn reqd_work_group_pins_wg() {
        let space = enumerate(&DesignSpaceLimits {
            reqd_work_group: Some((64, 1)),
            ..limits_1d()
        });
        assert!(space.iter().all(|c| c.work_group == (64, 1)));
    }

    #[test]
    fn two_dimensional_kernels_get_2d_groups() {
        let space = enumerate(&DesignSpaceLimits {
            global_x: 256,
            global_y: 256,
            ..limits_1d()
        });
        assert!(space.iter().all(|c| c.work_group.1 > 1));
    }

    #[test]
    fn pe_parallelism_requires_pipelining() {
        let space = enumerate(&limits_1d());
        assert!(space.iter().all(|c| c.work_item_pipeline || c.num_pes == 1));
    }

    #[test]
    fn pes_never_exceed_work_group() {
        let space = enumerate(&DesignSpaceLimits { global_x: 64, ..limits_1d() });
        assert!(space.iter().all(|c| u64::from(c.num_pes) <= c.work_group_size()));
    }

    #[test]
    fn config_display_is_readable() {
        let c = OptimizationConfig::default();
        assert_eq!(c.to_string(), "wg=64x1 pipe=0 P=1 C=1 V=1 mode=barrier");
    }

    #[test]
    fn every_enumerated_config_validates() {
        for cfg in enumerate(&limits_1d()) {
            cfg.validate().expect("enumerated configs are always valid");
        }
    }

    #[test]
    fn invalid_configs_are_rejected_with_context() {
        use crate::error::ErrorKind;
        let zero_wg = OptimizationConfig { work_group: (0, 1), ..Default::default() };
        let err = zero_wg.validate().unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Config);
        assert!(err.to_string().contains("work-group"));

        let zero_pes = OptimizationConfig { num_pes: 0, ..Default::default() };
        assert_eq!(zero_pes.validate().unwrap_err().kind(), ErrorKind::Config);

        let overflow = OptimizationConfig {
            num_pes: u32::MAX,
            vector_width: u32::MAX,
            ..Default::default()
        };
        assert!(overflow.validate().is_err());
    }
}
