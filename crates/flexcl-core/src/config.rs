//! Optimization configurations and the design space FlexCL explores.
//!
//! A configuration fixes the knobs the paper sweeps in §4: work-group
//! size, work-item pipelining, PE parallelism (loop unrolling /
//! vectorization), CU replication, and the communication mode.

use std::fmt;

/// How computation communicates with global memory (§3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CommMode {
    /// Computation and global transfers are separated by barriers and do
    /// not overlap (Eq. 10).
    #[default]
    Barrier,
    /// Global transfers overlap computation through the work-item pipeline
    /// (Eq. 11–12).
    Pipeline,
}

impl fmt::Display for CommMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommMode::Barrier => f.write_str("barrier"),
            CommMode::Pipeline => f.write_str("pipeline"),
        }
    }
}

/// One point of the optimization design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptimizationConfig {
    /// Work-group size (x, y); `N_wi^wg = x · y`.
    pub work_group: (u32, u32),
    /// Whether work-items are pipelined within a PE.
    pub work_item_pipeline: bool,
    /// PE replication inside each CU (`P` of Eq. 6).
    pub num_pes: u32,
    /// CU replication (`C` of Eq. 7–8).
    pub num_cus: u32,
    /// Kernel vectorization width (scalar PEs per vector lane; §3.3.2 fn 1).
    pub vector_width: u32,
    /// Communication mode.
    pub comm_mode: CommMode,
    /// Thread-coarsening factor: each PE executes `coarsen_factor`
    /// consecutive work-items as one coarse item (1 = no coarsening).
    /// Must divide the work-group size. Coarsening rescales the NDRange
    /// seen by a PE, amortizes loop recurrences across the merged items,
    /// and re-groups the merged memory trace so overlapping stencil reads
    /// coalesce into fewer, wider bursts (DESIGN.md §15).
    pub coarsen_factor: u32,
    /// Temporal-blocking depth for iterative stencil kernels: the number
    /// of stencil time-steps fused on chip per DRAM round trip
    /// (1 = no temporal blocking). Depth `t` trades `(t-1)` halo-expanded
    /// compute layers held in BRAM for a `1/t` cut in global traffic
    /// (DESIGN.md §15). Only valid on iterative kernels.
    pub temporal_block_depth: u32,
}

impl OptimizationConfig {
    /// The unoptimized baseline: one scalar PE, one CU, no pipelining,
    /// barrier communication.
    pub fn baseline(work_group: (u32, u32)) -> Self {
        OptimizationConfig {
            work_group,
            work_item_pipeline: false,
            num_pes: 1,
            num_cus: 1,
            vector_width: 1,
            comm_mode: CommMode::Barrier,
            coarsen_factor: 1,
            temporal_block_depth: 1,
        }
    }

    /// Work-items per work-group.
    pub fn work_group_size(&self) -> u64 {
        u64::from(self.work_group.0) * u64::from(self.work_group.1)
    }

    /// Effective scalar-PE count (`P · vector width`).
    pub fn effective_pes(&self) -> u32 {
        self.num_pes * self.vector_width
    }

    /// Checks the configuration's structural invariants (non-zero
    /// work-group dimensions and replication factors).
    ///
    /// [`enumerate`] only generates valid configurations; this guards the
    /// hand-built ones entering through [`crate::dse::explore_configs`] or
    /// the public [`crate::estimate`] API.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::FlexclError::Config`] naming the first
    /// violated invariant.
    pub fn validate(&self) -> Result<(), crate::error::FlexclError> {
        let fail = |detail: &str| {
            Err(crate::error::FlexclError::Config { config: *self, detail: detail.into() })
        };
        if self.work_group.0 == 0 || self.work_group.1 == 0 {
            return fail("work-group dimensions must be non-zero");
        }
        if self.num_pes == 0 {
            return fail("PE replication must be at least 1");
        }
        if self.num_cus == 0 {
            return fail("CU replication must be at least 1");
        }
        if self.vector_width == 0 {
            return fail("vector width must be at least 1");
        }
        if self.num_pes.checked_mul(self.vector_width).is_none() {
            return fail("PE replication times vector width overflows");
        }
        if self.coarsen_factor == 0 {
            return fail("coarsening factor must be at least 1");
        }
        if self.temporal_block_depth == 0 {
            return fail("temporal blocking depth must be at least 1");
        }
        if !self.work_group_size().is_multiple_of(u64::from(self.coarsen_factor)) {
            return fail("coarsening factor must divide the work-group size");
        }
        Ok(())
    }

    /// Validates against both the structural invariants *and* a kernel's
    /// [`DesignSpaceLimits`] — the checks [`ConfigSpace`] enforces by
    /// construction but hand-built configurations (e.g. via
    /// [`crate::dse::explore_configs`]) can violate. Today that is the
    /// temporal-blocking gate: depth > 1 is only meaningful on iterative
    /// stencil kernels, where successive launches re-consume the previous
    /// step's output.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::FlexclError::Config`] naming the violated
    /// invariant.
    pub fn validate_for(
        &self,
        limits: &DesignSpaceLimits,
    ) -> Result<(), crate::error::FlexclError> {
        self.validate()?;
        if self.temporal_block_depth > 1 && !limits.iterative {
            return Err(crate::error::FlexclError::Config {
                config: *self,
                detail: "temporal blocking requires an iterative stencil kernel".into(),
            });
        }
        Ok(())
    }
}

impl Default for OptimizationConfig {
    fn default() -> Self {
        OptimizationConfig::baseline((64, 1))
    }
}

impl fmt::Display for OptimizationConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wg={}x{} pipe={} P={} C={} V={} mode={}",
            self.work_group.0,
            self.work_group.1,
            u8::from(self.work_item_pipeline),
            self.num_pes,
            self.num_cus,
            self.vector_width,
            self.comm_mode
        )?;
        // Identity values stay silent so logs/goldens from before the
        // coarsening/temporal-blocking axes render unchanged.
        if self.coarsen_factor != 1 || self.temporal_block_depth != 1 {
            write!(f, " cf={} tb={}", self.coarsen_factor, self.temporal_block_depth)?;
        }
        Ok(())
    }
}

/// Properties of the kernel/workload that prune the design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignSpaceLimits {
    /// Global size in x (work-group x must divide it).
    pub global_x: u64,
    /// Global size in y.
    pub global_y: u64,
    /// Whether the kernel contains `barrier()` — such kernels always use
    /// barrier communication (the toolchain cannot stream across barriers).
    pub has_barrier: bool,
    /// Work-group size required by a source attribute, if any.
    pub reqd_work_group: Option<(u32, u32)>,
    /// Whether the kernel's data types permit vectorization (pure
    /// elementwise access, no vector types already in use).
    pub vectorizable: bool,
    /// Whether the kernel is an iterative stencil (host re-launches it,
    /// feeding each step's output back as the next step's input) — the
    /// only shape where temporal blocking depth > 1 is meaningful.
    pub iterative: bool,
}

/// Largest PE replication factor [`SweepGrid::standard`] generates.
pub const MAX_PES: u32 = 16;

/// Largest CU replication factor [`SweepGrid::standard`] generates.
pub const MAX_CUS: u32 = 4;

/// Largest vectorization width [`SweepGrid::standard`] generates.
pub const MAX_VECTOR_WIDTH: u32 = 4;

/// Largest thread-coarsening factor any preset grid generates.
pub const MAX_COARSEN: u32 = 8;

/// Largest temporal-blocking depth any preset grid generates.
pub const MAX_TEMPORAL_DEPTH: u32 = 8;

/// Whether a kernel (by name) is one of the suite's iterative stencils —
/// the kernels the host launches repeatedly with each step's output fed
/// back as the next step's input (jacobi2d, hotspot/hotspot3D, srad).
/// These are the only kernels where a
/// [`OptimizationConfig::temporal_block_depth`] above 1 is meaningful;
/// [`crate::dse::limits_for`] uses this to gate the temporal axis per
/// kernel so non-stencils don't multiply the space.
pub fn is_iterative_stencil(kernel_name: &str) -> bool {
    matches!(kernel_name, "jacobi2d" | "hotspot" | "hotspot3D" | "srad" | "srad2")
}

/// The knob grids a sweep enumerates: the cross product of these axes
/// (filtered by [`DesignSpaceLimits`]) is the design space.
///
/// Axis values must be ascending and deduplicated, and each replication
/// axis must contain `1` (the baseline); the presets guarantee this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepGrid {
    /// Work-group candidates for 1-D NDRanges.
    pub work_groups_1d: Vec<(u32, u32)>,
    /// Work-group candidates for 2-D NDRanges.
    pub work_groups_2d: Vec<(u32, u32)>,
    /// PE replication factors (`P`).
    pub pes: Vec<u32>,
    /// CU replication factors (`C`).
    pub cus: Vec<u32>,
    /// Vectorization widths (dropped to `[1]` for non-vectorizable
    /// kernels).
    pub vector_widths: Vec<u32>,
    /// Thread-coarsening factors (filtered per work-group family to the
    /// values dividing the work-group size).
    pub coarsen_factors: Vec<u32>,
    /// Temporal-blocking depths (dropped to `[1]` for non-iterative
    /// kernels).
    pub temporal_depths: Vec<u32>,
}

impl SweepGrid {
    /// The paper-scale grid: 100–400 configurations per kernel, matching
    /// the "#Designs" column of Table 2. This is what [`enumerate`] and
    /// [`crate::dse::explore_with`] sweep.
    pub fn standard() -> Self {
        SweepGrid {
            work_groups_1d: vec![(16, 1), (32, 1), (64, 1), (128, 1), (256, 1)],
            work_groups_2d: vec![(4, 4), (8, 8), (16, 8), (16, 16), (32, 8)],
            pes: vec![1, 2, 4, 8, MAX_PES],
            cus: vec![1, 2, MAX_CUS],
            vector_widths: vec![1, MAX_VECTOR_WIDTH],
            // The paper's Table 2 space has neither axis; keeping the
            // standard grid at the identity preserves its 100–400-point
            // size and the published comparison.
            coarsen_factors: vec![1],
            temporal_depths: vec![1],
        }
    }

    /// A fine-grained grid: every PE count up to 64, every CU count up to
    /// 16 and eight vector widths, giving ~10⁵ configurations per kernel
    /// (more work-group shapes, all integer `P`). Meant for the scaled
    /// sweep; the bound-based pruning and lazy chunk materialization in
    /// [`crate::dse`] keep it interactive.
    pub fn fine() -> Self {
        SweepGrid {
            work_groups_1d: (3..=10).map(|s| (1u32 << s, 1)).collect(),
            work_groups_2d: vec![
                (4, 4),
                (8, 4),
                (4, 8),
                (8, 8),
                (16, 4),
                (16, 8),
                (8, 16),
                (16, 16),
                (32, 8),
                (32, 16),
                (16, 32),
                (32, 32),
            ],
            pes: (1..=64).collect(),
            cus: (1..=16).collect(),
            vector_widths: vec![1, 2, 3, 4, 5, 6, 8, 10, 12, 16],
            coarsen_factors: vec![1, 2, 4],
            temporal_depths: vec![1, 2, 4],
        }
    }

    /// The stress grid: toward 10⁶+ configurations per kernel (every `P`
    /// up to 128, every `C` up to 32, twelve vector widths). Sweeping it
    /// exhaustively allocates on the order of a few hundred MB of design
    /// points; prefer `prune: true`.
    pub fn ultra() -> Self {
        SweepGrid {
            work_groups_1d: (3..=10).map(|s| (1u32 << s, 1)).collect(),
            work_groups_2d: vec![
                (4, 4),
                (8, 4),
                (4, 8),
                (8, 8),
                (16, 4),
                (4, 16),
                (16, 8),
                (8, 16),
                (16, 16),
                (32, 8),
                (8, 32),
                (32, 16),
                (16, 32),
                (32, 32),
                (64, 8),
                (64, 16),
            ],
            pes: (1..=128).collect(),
            cus: (1..=32).collect(),
            vector_widths: vec![1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32],
            coarsen_factors: vec![1, 2, 4, MAX_COARSEN],
            temporal_depths: vec![1, 2, 4, MAX_TEMPORAL_DEPTH],
        }
    }

    /// Looks a preset up by name (`standard`, `fine`, `ultra`) — the
    /// spelling the `dse` binary's `--grid` flag accepts.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "standard" => Some(Self::standard()),
            "fine" => Some(Self::fine()),
            "ultra" => Some(Self::ultra()),
            _ => None,
        }
    }

    /// The next-cheaper preset on the degradation ladder the serving
    /// layer walks under queue pressure: `ultra` → `fine` → `standard` →
    /// (none). `standard` is the floor — a degraded request is still a
    /// full paper-scale sweep, never an empty one. Returns `None` for the
    /// floor and for unknown names.
    pub fn coarser(name: &str) -> Option<&'static str> {
        match name {
            "ultra" => Some("fine"),
            "fine" => Some("standard"),
            _ => None,
        }
    }
}

impl Default for SweepGrid {
    fn default() -> Self {
        SweepGrid::standard()
    }
}

/// One `(work_item_pipeline, num_pes)` block of a family: a contiguous
/// index range whose candidates differ only in `(C, V, mode)`.
#[derive(Debug, Clone, Copy)]
struct Block {
    pipe: bool,
    num_pes: u32,
    /// Index of the block's first candidate within its family.
    offset: usize,
    len: usize,
}

/// One work-group family of a [`ConfigSpace`]: a contiguous run of
/// enumeration indices sharing one work-group size (hence one kernel
/// analysis).
#[derive(Debug, Clone)]
struct FamilySpace {
    work_group: (u32, u32),
    /// Global enumeration index of the family's first candidate.
    offset: usize,
    len: usize,
    blocks: Vec<Block>,
    /// Coarsening factors valid for this family (grid values dividing the
    /// work-group size; always contains 1).
    cfs: Vec<u32>,
}

/// A lazily-materialized design space: the filtered cross product of a
/// [`SweepGrid`] under [`DesignSpaceLimits`], addressable by enumeration
/// index without ever allocating the full candidate list.
///
/// The enumeration order is identical to the nested-loop order the
/// original `enumerate` used (work-group → pipelining → `P` → `C` → `V` →
/// mode), so [`ConfigSpace::get`] is a pure index-arithmetic decode: the
/// sweep engine materializes fixed-size chunks on demand, which is what
/// lets it scale to 10⁶+ points per kernel with bounded memory.
#[derive(Debug, Clone)]
pub struct ConfigSpace {
    families: Vec<FamilySpace>,
    cus: Vec<u32>,
    vecs: Vec<u32>,
    /// Modes available with work-item pipelining on (`[Barrier]` or
    /// `[Barrier, Pipeline]`); pipelining off always leaves `[Barrier]`.
    modes_pipe: Vec<CommMode>,
    /// Temporal-blocking depths (`[1]` unless the kernel is iterative).
    tbs: Vec<u32>,
    total: usize,
}

impl ConfigSpace {
    /// Builds the space for `limits` over `grid`.
    pub fn new(limits: &DesignSpaceLimits, grid: &SweepGrid) -> Self {
        let wg_candidates: Vec<(u32, u32)> = match limits.reqd_work_group {
            Some(wg) => vec![wg],
            None => {
                if limits.global_y > 1 {
                    grid.work_groups_2d.clone()
                } else {
                    grid.work_groups_1d.clone()
                }
            }
        };
        let vecs: Vec<u32> =
            if limits.vectorizable { grid.vector_widths.clone() } else { vec![1] };
        let modes_pipe: Vec<CommMode> = if limits.has_barrier {
            vec![CommMode::Barrier]
        } else {
            vec![CommMode::Barrier, CommMode::Pipeline]
        };
        let tbs: Vec<u32> = if limits.iterative {
            grid.temporal_depths.clone()
        } else {
            vec![1]
        };

        let mut families = Vec::new();
        let mut total = 0usize;
        for &wg in &wg_candidates {
            if u64::from(wg.0) > limits.global_x || u64::from(wg.1) > limits.global_y.max(1) {
                continue;
            }
            if !limits.global_x.is_multiple_of(u64::from(wg.0)) {
                continue;
            }
            if limits.global_y > 1 && !limits.global_y.is_multiple_of(u64::from(wg.1)) {
                continue;
            }
            let wg_size = u64::from(wg.0) * u64::from(wg.1);
            // Coarsening merges whole work-items, so only factors that
            // tile the group evenly are generated for this family.
            let cfs: Vec<u32> = grid
                .coarsen_factors
                .iter()
                .copied()
                .filter(|&cf| cf >= 1 && wg_size.is_multiple_of(u64::from(cf)))
                .collect();
            let mut blocks = Vec::new();
            let mut fam_len = 0usize;
            for pipe in [false, true] {
                for &p in &grid.pes {
                    if !pipe && p > 1 {
                        // PE replication without pipelining is dominated and
                        // not generated by the toolchain.
                        continue;
                    }
                    if u64::from(p) > wg_size {
                        continue;
                    }
                    // Pipeline communication overlaps transfers with
                    // computation *through* the work-item pipeline; without
                    // pipelining only barrier mode remains.
                    let n_modes = if pipe { modes_pipe.len() } else { 1 };
                    let len = grid.cus.len() * vecs.len() * n_modes * cfs.len() * tbs.len();
                    blocks.push(Block { pipe, num_pes: p, offset: fam_len, len });
                    fam_len += len;
                }
            }
            if fam_len == 0 {
                continue;
            }
            families.push(FamilySpace {
                work_group: wg,
                offset: total,
                len: fam_len,
                blocks,
                cfs,
            });
            total += fam_len;
        }
        ConfigSpace { families, cus: grid.cus.clone(), vecs, modes_pipe, tbs, total }
    }

    /// Number of candidates in the space.
    pub fn len(&self) -> usize {
        self.total
    }

    /// `true` when the space is empty (no work-group candidate survived
    /// the limits).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of work-group families.
    pub fn family_count(&self) -> usize {
        self.families.len()
    }

    /// Work-group size of family `f`.
    pub fn family_work_group(&self, f: usize) -> (u32, u32) {
        self.families[f].work_group
    }

    /// Number of candidates in family `f`.
    pub fn family_len(&self, f: usize) -> usize {
        self.families[f].len
    }

    /// Global enumeration index of family `f`'s first candidate.
    pub fn family_offset(&self, f: usize) -> usize {
        self.families[f].offset
    }

    /// Decodes the candidate at enumeration index `i` (`i < len()`).
    pub fn get(&self, i: usize) -> OptimizationConfig {
        assert!(i < self.total, "index {i} out of bounds for space of {}", self.total);
        let f = self.families.partition_point(|fam| fam.offset + fam.len <= i);
        let fam = &self.families[f];
        self.decode(fam, i - fam.offset)
    }

    /// Decodes candidate `local` of family `fam` by index arithmetic over
    /// the family's `(pipe, P)` blocks.
    fn decode(&self, fam: &FamilySpace, local: usize) -> OptimizationConfig {
        let b = fam.blocks.partition_point(|b| b.offset + b.len <= local);
        let block = &fam.blocks[b];
        let rem = local - block.offset;
        let n_modes = if block.pipe { self.modes_pipe.len() } else { 1 };
        // Axis strides, innermost last: C → V → mode → cf → tb. With the
        // identity axes ([1]/[1]) every new stride is 1 and the decode is
        // bit-for-bit the pre-axis enumeration order.
        let per_mode = fam.cfs.len() * self.tbs.len();
        let per_vec = n_modes * per_mode;
        let per_cu = self.vecs.len() * per_vec;
        OptimizationConfig {
            work_group: fam.work_group,
            work_item_pipeline: block.pipe,
            num_pes: block.num_pes,
            num_cus: self.cus[rem / per_cu],
            vector_width: self.vecs[(rem / per_vec) % self.vecs.len()],
            comm_mode: if block.pipe {
                self.modes_pipe[(rem / per_mode) % n_modes]
            } else {
                CommMode::Barrier
            },
            coarsen_factor: fam.cfs[(rem / self.tbs.len()) % fam.cfs.len()],
            temporal_block_depth: self.tbs[rem % self.tbs.len()],
        }
    }

    /// Materializes the candidates `[start, start + len)` of family `f`
    /// into `out` as `(enumeration index, config)` pairs, appending.
    ///
    /// This is the sweep engine's chunk loader: each work unit calls it
    /// with its own subrange, so no more than a chunk of the space is ever
    /// resident per worker.
    pub fn fill_family_range(
        &self,
        f: usize,
        start: usize,
        len: usize,
        out: &mut Vec<(usize, OptimizationConfig)>,
    ) {
        let fam = &self.families[f];
        let end = (start + len).min(fam.len);
        out.reserve(end.saturating_sub(start));
        for local in start..end {
            out.push((fam.offset + local, self.decode(fam, local)));
        }
    }

    /// Iterates the whole space in enumeration order.
    pub fn iter(&self) -> impl Iterator<Item = OptimizationConfig> + '_ {
        self.families.iter().flat_map(move |fam| {
            (0..fam.len).map(move |local| self.decode(fam, local))
        })
    }
}

/// Enumerates the design space the experiments sweep, over the
/// [`SweepGrid::standard`] grid.
///
/// The defaults produce 100–400 configurations per kernel, matching the
/// "#Designs" column of Table 2. Large sweeps should prefer
/// [`ConfigSpace`] (via [`crate::dse::explore_space`]), which never
/// materializes the candidate list.
pub fn enumerate(limits: &DesignSpaceLimits) -> Vec<OptimizationConfig> {
    ConfigSpace::new(limits, &SweepGrid::standard()).iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits_1d() -> DesignSpaceLimits {
        DesignSpaceLimits {
            global_x: 4096,
            global_y: 1,
            has_barrier: false,
            reqd_work_group: None,
            vectorizable: true,
            iterative: false,
        }
    }

    #[test]
    fn space_has_hundreds_of_points() {
        let space = enumerate(&limits_1d());
        assert!(space.len() >= 100, "got {}", space.len());
        assert!(space.len() <= 400, "got {}", space.len());
    }

    #[test]
    fn barrier_kernels_never_get_pipeline_mode() {
        let space = enumerate(&DesignSpaceLimits { has_barrier: true, ..limits_1d() });
        assert!(space.iter().all(|c| c.comm_mode == CommMode::Barrier));
    }

    #[test]
    fn reqd_work_group_pins_wg() {
        let space = enumerate(&DesignSpaceLimits {
            reqd_work_group: Some((64, 1)),
            ..limits_1d()
        });
        assert!(space.iter().all(|c| c.work_group == (64, 1)));
    }

    #[test]
    fn two_dimensional_kernels_get_2d_groups() {
        let space = enumerate(&DesignSpaceLimits {
            global_x: 256,
            global_y: 256,
            ..limits_1d()
        });
        assert!(space.iter().all(|c| c.work_group.1 > 1));
    }

    #[test]
    fn pe_parallelism_requires_pipelining() {
        let space = enumerate(&limits_1d());
        assert!(space.iter().all(|c| c.work_item_pipeline || c.num_pes == 1));
    }

    #[test]
    fn pes_never_exceed_work_group() {
        let space = enumerate(&DesignSpaceLimits { global_x: 64, ..limits_1d() });
        assert!(space.iter().all(|c| u64::from(c.num_pes) <= c.work_group_size()));
    }

    #[test]
    fn degradation_ladder_descends_to_standard_floor() {
        assert_eq!(SweepGrid::coarser("ultra"), Some("fine"));
        assert_eq!(SweepGrid::coarser("fine"), Some("standard"));
        assert_eq!(SweepGrid::coarser("standard"), None);
        assert_eq!(SweepGrid::coarser("bogus"), None);
        // Every rung names a real preset.
        let mut name = "ultra";
        while let Some(next) = SweepGrid::coarser(name) {
            assert!(SweepGrid::by_name(next).is_some(), "{next}");
            name = next;
        }
    }

    #[test]
    fn config_space_get_matches_enumeration_order() {
        let limits = limits_1d();
        let listed = enumerate(&limits);
        let space = ConfigSpace::new(&limits, &SweepGrid::standard());
        assert_eq!(space.len(), listed.len());
        for (i, cfg) in listed.iter().enumerate() {
            assert_eq!(space.get(i), *cfg, "index {i}");
        }
        // Families are contiguous, contiguous-offset runs of one work-group.
        let mut next_offset = 0usize;
        for f in 0..space.family_count() {
            assert_eq!(space.family_offset(f), next_offset);
            for local in 0..space.family_len(f) {
                assert_eq!(
                    listed[next_offset + local].work_group,
                    space.family_work_group(f)
                );
            }
            next_offset += space.family_len(f);
        }
        assert_eq!(next_offset, space.len());
    }

    #[test]
    fn config_space_fill_family_range_matches_get() {
        let limits = DesignSpaceLimits { global_x: 256, global_y: 256, ..limits_1d() };
        let space = ConfigSpace::new(&limits, &SweepGrid::fine());
        let f = space.family_count() / 2;
        let mut buf = Vec::new();
        space.fill_family_range(f, 7, 13, &mut buf);
        assert_eq!(buf.len(), 13.min(space.family_len(f).saturating_sub(7)));
        for (idx, cfg) in &buf {
            assert_eq!(space.get(*idx), *cfg);
        }
        // Out-of-range tails are clipped, not panicked.
        buf.clear();
        space.fill_family_range(f, space.family_len(f) - 2, 100, &mut buf);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn fine_grid_reaches_a_hundred_thousand_points() {
        let space = ConfigSpace::new(&limits_1d(), &SweepGrid::fine());
        assert!(space.len() >= 100_000, "fine grid has {} points", space.len());
        // Lazy decode agrees with iteration over the whole space.
        let mut n = 0usize;
        for (i, cfg) in space.iter().enumerate() {
            if i % 9973 == 0 {
                assert_eq!(space.get(i), cfg);
            }
            n += 1;
        }
        assert_eq!(n, space.len());
    }

    #[test]
    fn ultra_grid_reaches_toward_a_million_points() {
        let space = ConfigSpace::new(&limits_1d(), &SweepGrid::ultra());
        assert!(space.len() >= 400_000, "ultra 1-D grid has {} points", space.len());
        let space_2d = ConfigSpace::new(
            &DesignSpaceLimits { global_x: 256, global_y: 256, ..limits_1d() },
            &SweepGrid::ultra(),
        );
        assert!(
            space_2d.len() >= 1_000_000,
            "ultra 2-D grid has {} points",
            space_2d.len()
        );
        for cfg in [space.get(0), space.get(space.len() / 2), space.get(space.len() - 1)] {
            cfg.validate().expect("generated configs are valid");
        }
    }

    #[test]
    fn config_display_is_readable() {
        let c = OptimizationConfig::default();
        assert_eq!(c.to_string(), "wg=64x1 pipe=0 P=1 C=1 V=1 mode=barrier");
        // The new axes only render away from the identity, so pre-axis
        // logs and goldens keep their exact strings.
        let c = OptimizationConfig { coarsen_factor: 4, ..Default::default() };
        assert_eq!(c.to_string(), "wg=64x1 pipe=0 P=1 C=1 V=1 mode=barrier cf=4 tb=1");
        let c = OptimizationConfig { temporal_block_depth: 2, ..Default::default() };
        assert_eq!(c.to_string(), "wg=64x1 pipe=0 P=1 C=1 V=1 mode=barrier cf=1 tb=2");
    }

    #[test]
    fn coarsen_axis_respects_work_group_divisibility() {
        // wg=(16,1) with grid cfs [1,2,4,8]: all divide 16. A wg of 24
        // would drop 16 if present; use a custom grid with a non-divisor.
        let mut grid = SweepGrid::standard();
        grid.work_groups_1d = vec![(16, 1), (64, 1)];
        grid.coarsen_factors = vec![1, 3, 4];
        let space = ConfigSpace::new(&limits_1d(), &grid);
        for cfg in space.iter() {
            assert!(
                cfg.work_group_size().is_multiple_of(u64::from(cfg.coarsen_factor)),
                "{cfg}"
            );
            assert_ne!(cfg.coarsen_factor, 3, "3 divides neither 16 nor 64: {cfg}");
        }
        assert!(space.iter().any(|c| c.coarsen_factor == 4));
    }

    #[test]
    fn temporal_axis_is_gated_on_iterative_kernels() {
        let grid = SweepGrid::fine();
        let flat = ConfigSpace::new(&limits_1d(), &grid);
        assert!(flat.iter().all(|c| c.temporal_block_depth == 1));
        let iter_space =
            ConfigSpace::new(&DesignSpaceLimits { iterative: true, ..limits_1d() }, &grid);
        assert!(iter_space.iter().any(|c| c.temporal_block_depth > 1));
        assert_eq!(
            iter_space.len(),
            flat.len() * grid.temporal_depths.len(),
            "temporal depth multiplies the space uniformly"
        );
        // Lazy decode still agrees with iteration over the enlarged space.
        for (i, cfg) in iter_space.iter().enumerate().step_by(9973) {
            assert_eq!(iter_space.get(i), cfg);
        }
    }

    #[test]
    fn new_axis_zero_values_are_rejected() {
        use crate::error::ErrorKind;
        let zero_cf = OptimizationConfig { coarsen_factor: 0, ..Default::default() };
        let err = zero_cf.validate().unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Config);
        assert!(err.to_string().contains("coarsening"));

        let zero_tb = OptimizationConfig { temporal_block_depth: 0, ..Default::default() };
        let err = zero_tb.validate().unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Config);
        assert!(err.to_string().contains("temporal"));
    }

    #[test]
    fn coarsen_factor_must_divide_work_group_size() {
        use crate::error::ErrorKind;
        let bad = OptimizationConfig { coarsen_factor: 3, ..Default::default() }; // wg=64
        let err = bad.validate().unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Config);
        assert!(err.to_string().contains("divide"));
        let ok = OptimizationConfig { coarsen_factor: 8, ..Default::default() };
        ok.validate().expect("8 divides 64");
    }

    #[test]
    fn temporal_blocking_rejected_on_non_iterative_kernels() {
        use crate::error::ErrorKind;
        let cfg = OptimizationConfig { temporal_block_depth: 2, ..Default::default() };
        let err = cfg.validate_for(&limits_1d()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Config);
        assert!(err.to_string().contains("iterative"));
        cfg.validate_for(&DesignSpaceLimits { iterative: true, ..limits_1d() })
            .expect("iterative kernels accept depth > 1");
        // validate_for still enforces the structural invariants.
        let zero = OptimizationConfig { coarsen_factor: 0, ..Default::default() };
        assert!(zero.validate_for(&limits_1d()).is_err());
    }

    #[test]
    fn iterative_stencils_are_recognized_by_name() {
        for name in ["jacobi2d", "hotspot", "hotspot3D", "srad", "srad2"] {
            assert!(is_iterative_stencil(name), "{name}");
        }
        for name in ["vadd", "gemm", "nw1", "bfs_1", ""] {
            assert!(!is_iterative_stencil(name), "{name}");
        }
    }

    #[test]
    fn every_enumerated_config_validates() {
        for cfg in enumerate(&limits_1d()) {
            cfg.validate().expect("enumerated configs are always valid");
        }
    }

    #[test]
    fn invalid_configs_are_rejected_with_context() {
        use crate::error::ErrorKind;
        let zero_wg = OptimizationConfig { work_group: (0, 1), ..Default::default() };
        let err = zero_wg.validate().unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Config);
        assert!(err.to_string().contains("work-group"));

        let zero_pes = OptimizationConfig { num_pes: 0, ..Default::default() };
        assert_eq!(zero_pes.validate().unwrap_err().kind(), ErrorKind::Config);

        let overflow = OptimizationConfig {
            num_pes: u32::MAX,
            vector_width: u32::MAX,
            ..Default::default()
        };
        assert!(overflow.validate().is_err());
    }
}
