//! Budget-keyed evaluation context for the DSE hot path.
//!
//! [`crate::estimate`] re-derives the expensive sub-models — list/SMS
//! scheduling for `(II_comp^wi, D_comp^PE)` and the work-item dependence
//! graph — for every candidate, yet those sub-models depend on the
//! configuration only through its [`ResourceBudget`] (a function of
//! `effective_pes()` and `num_cus`). A family of ~330 enumerated
//! configurations collapses to a handful of distinct budgets, so the sweep
//! was paying for the same schedules hundreds of times.
//!
//! [`EvalContext`] is the layer between `dse::run_family` and the model
//! equations that exploits this:
//!
//! * the work-item dependence edges ([`KernelAnalysis::work_item_deps`])
//!   are built **once per analysis** instead of once per candidate;
//! * `(budget → pipeline_params)` and `(budget → work_item_latency)` are
//!   memoized, so SMS and list scheduling run **once per distinct
//!   budget**;
//! * one [`SchedScratch`] is reused across all scheduler calls, so the
//!   misses themselves stop allocating;
//! * the mode-dependent memory constants (`L_mem^wi` in both burst
//!   orders) and the warm-dispatch terms are hoisted into precomputed
//!   fields, leaving pure arithmetic as the per-candidate residue.
//!
//! The context IS the model: [`crate::estimate`] constructs a fresh
//! context per call and evaluates through it, so the cached and uncached
//! paths share one implementation and are bit-identical by construction.
//! A context borrows its analysis and lives for one family on one worker
//! thread; see DESIGN.md §9 for why cross-thread sharing is unnecessary.

use crate::analysis::KernelAnalysis;
use crate::config::{CommMode, OptimizationConfig};
use crate::error::FlexclError;
use crate::model::{effective_pe_parallelism, infeasible, pe_budget, Estimate};
use flexcl_ir::DepEdge;
use flexcl_sched::{ResourceBudget, SchedScratch};
use std::collections::HashMap;
use std::time::Instant;

/// Counters describing what one [`EvalContext`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Estimates served from the budget-keyed schedule caches.
    pub sched_cache_hits: u64,
    /// Estimates that had to run the schedulers.
    pub sched_cache_misses: u64,
    /// Wall-clock nanoseconds spent inside scheduler calls (miss path).
    pub sched_nanos: u64,
}

/// Memoizing evaluation context for one [`KernelAnalysis`].
///
/// Create one per family (or one per batch of configurations sharing an
/// analysis) and call [`EvalContext::estimate`] per candidate. Results are
/// bit-identical to [`crate::estimate`] in any call order: the cached
/// values are pure functions of `(analysis, budget)`.
pub struct EvalContext<'a> {
    analysis: &'a KernelAnalysis,
    /// Budget-independent dependence edges for the work-item graph.
    deps: Vec<DepEdge>,
    /// `budget → (II_comp^wi, D_comp^PE)` (work-item pipelining on).
    pipe_cache: HashMap<ResourceBudget, Result<(u32, u32), FlexclError>>,
    /// `budget → L_wi` (work-item pipelining off).
    lat_cache: HashMap<ResourceBudget, Result<f64, FlexclError>>,
    scratch: SchedScratch,
    // Hoisted per-family constants (pure functions of the analysis).
    l_mem_wi_pipeline: f64,
    l_mem_wi_barrier: f64,
    n_wi_kernel: f64,
    dl: f64,
    dl_warm: f64,
    launch: f64,
    /// Counters for the instrumented sweep.
    pub stats: EvalStats,
}

impl<'a> EvalContext<'a> {
    /// Prepares a context: precomputes the dependence edges and the
    /// mode-dependent memory/dispatch constants.
    pub fn new(analysis: &'a KernelAnalysis) -> Self {
        let platform = &analysis.platform;
        let dl = f64::from(platform.schedule_overhead);
        EvalContext {
            deps: analysis.work_item_deps(),
            pipe_cache: HashMap::new(),
            lat_cache: HashMap::new(),
            scratch: SchedScratch::new(),
            l_mem_wi_pipeline: analysis.l_mem_wi(),
            l_mem_wi_barrier: analysis.l_mem_wi_phased(),
            n_wi_kernel: (analysis.global.0 * analysis.global.1) as f64,
            dl,
            // Steady-state dispatch cost per group (scheduler overlap hides
            // most of ΔL once a CU is warm); `C·ΔL` pays the cold starts.
            dl_warm: dl * (1.0 - platform.dispatch_overlap).max(0.0),
            launch: f64::from(platform.launch_overhead),
            stats: EvalStats::default(),
            analysis,
        }
    }

    /// The analysis this context evaluates against.
    pub fn analysis(&self) -> &KernelAnalysis {
        self.analysis
    }

    fn pipeline_params(&mut self, budget: &ResourceBudget) -> Result<(u32, u32), FlexclError> {
        if let Some(r) = self.pipe_cache.get(budget) {
            self.stats.sched_cache_hits += 1;
            return r.clone();
        }
        self.stats.sched_cache_misses += 1;
        let t0 = Instant::now();
        let r = self.analysis.pipeline_params_with(budget, &self.deps, &mut self.scratch);
        self.stats.sched_nanos += t0.elapsed().as_nanos() as u64;
        self.pipe_cache.insert(*budget, r.clone());
        r
    }

    fn work_item_latency(&mut self, budget: &ResourceBudget) -> Result<f64, FlexclError> {
        if let Some(r) = self.lat_cache.get(budget) {
            self.stats.sched_cache_hits += 1;
            return r.clone();
        }
        self.stats.sched_cache_misses += 1;
        let t0 = Instant::now();
        let r = self.analysis.work_item_latency_with(budget, &mut self.scratch);
        self.stats.sched_nanos += t0.elapsed().as_nanos() as u64;
        self.lat_cache.insert(*budget, r.clone());
        r
    }

    /// Evaluates the full model for one configuration (the implementation
    /// behind [`crate::estimate`]; see its docs for the contract).
    ///
    /// # Errors
    ///
    /// Returns [`FlexclError::Config`] if `config` violates its structural
    /// invariants and [`FlexclError::Scheduling`] if the kernel cannot be
    /// scheduled under the configuration's resource budget.
    pub fn estimate(&mut self, config: &OptimizationConfig) -> Result<Estimate, FlexclError> {
        config.validate()?;
        let analysis = self.analysis;
        let platform = &analysis.platform;
        let n_wi_kernel = self.n_wi_kernel;
        let n_wi_wg = config.work_group_size() as f64;
        let p_eff = config.effective_pes().max(1);
        let c = config.num_cus.max(1);

        // ---- feasibility -------------------------------------------------
        // Saturating: extreme replication factors must read as "too big for
        // the device", not overflow.
        let dsps_needed = u64::from(analysis.static_dsps_per_pe)
            .saturating_mul(u64::from(p_eff))
            .saturating_mul(u64::from(c));
        if dsps_needed > u64::from(platform.total_dsps) {
            return Ok(infeasible(
                config,
                format!("needs {dsps_needed} DSPs, device has {}", platform.total_dsps),
            ));
        }
        let bram_needed = analysis
            .local_bytes
            .saturating_mul(u64::from(c))
            .saturating_mul(u64::from(p_eff.min(4)));
        if bram_needed > platform.total_bram_bytes {
            return Ok(infeasible(
                config,
                format!(
                    "needs {bram_needed} BRAM bytes, device has {}",
                    platform.total_bram_bytes
                ),
            ));
        }

        // ---- PE model (Eq. 1–4 + SMS), memoized per budget ---------------
        let budget = pe_budget(analysis, config);
        let (ii_comp, depth) = if config.work_item_pipeline {
            self.pipeline_params(&budget)?
        } else {
            // Without work-item pipelining a PE processes one work-item at a
            // time: the initiation interval is the full work-item latency.
            let d = self.work_item_latency(&budget)?.round().max(1.0) as u32;
            (d, d)
        };

        // ---- CU model (Eq. 5–6) ------------------------------------------
        let n_pe = effective_pe_parallelism(analysis, config);
        let waves = ((n_wi_wg - f64::from(n_pe)) / f64::from(n_pe)).ceil().max(0.0);
        let l_cu = f64::from(ii_comp) * waves + f64::from(depth);

        // ---- memory model (Eq. 9), hoisted per family --------------------
        // Pattern counts follow the burst order the chosen communication
        // mode produces: work-item-interleaved for pipeline mode, phased
        // reads-then-writes for barrier mode (§3.5: integration depends on
        // how computation communicates with global memory).
        let l_mem_wi = match config.comm_mode {
            CommMode::Barrier => self.l_mem_wi_barrier,
            CommMode::Pipeline => self.l_mem_wi_pipeline,
        };

        // ---- kernel model (Eq. 7–8) --------------------------------------
        // Eq. 8 compares the work a CU does per group against the
        // scheduling overhead; in barrier mode the group occupies its CU
        // for memory and computation, so the full duration bounds the
        // useful CU parallelism.
        let dl = self.dl;
        let dl_warm = self.dl_warm;
        let group_duration = match config.comm_mode {
            CommMode::Barrier => l_mem_wi * n_wi_wg + l_cu,
            CommMode::Pipeline => l_cu.max(l_mem_wi * n_wi_wg),
        };
        let n_cu =
            (f64::from(c)).min((group_duration / dl_warm.max(1.0)).ceil().max(1.0)) as u32;
        let wg_rounds = (n_wi_kernel / (n_wi_wg * f64::from(n_cu))).ceil().max(1.0);
        // Cold dispatches to the C CUs proceed in parallel, so one ΔL of
        // latency reaches the critical path (the paper's `C·ΔL` reading of
        // Eq. 7 models a serialized dispatcher; measured behaviour
        // overlaps).
        let l_comp_kernel = (l_cu + dl_warm) * wg_rounds + dl;

        // ---- integration (Eq. 10–12) -------------------------------------
        // Multi-CU adaptation: the paper states Eq. 10 for the single-CU
        // case, where all global transfers serialize behind the CU's burst
        // engine; `L_mem^wi · N_wi^kernel + L_comp^kernel` then counts
        // every work-item's memory once. Each CU has its own engine, so
        // with `N_CU` concurrent CUs the serialized memory is per-group:
        // the equation is applied at group granularity and multiplied by
        // the rounds each CU executes. For C = 1 this is algebraically
        // identical to Eq. 10.
        let launch = self.launch;
        // Multi-bank DDR interleaves independent CU streams, so CU
        // replication does not scale the per-group memory term;
        // `analysis.channel_contention` remains available as a diagnostic
        // upper bound for placements where CUs would share one bank group.
        let mem_scale = 1.0;
        let (cycles, ii_wi) = match config.comm_mode {
            CommMode::Barrier => {
                let mem_per_group = l_mem_wi * n_wi_wg * mem_scale;
                let t = (mem_per_group + l_cu + dl_warm) * wg_rounds + dl + launch;
                (t, f64::from(ii_comp))
            }
            CommMode::Pipeline => {
                // Eq. 11–12, with the group's total transfer volume as a
                // floor: even when PE replication removes all waves
                // (`waves → 0`), the work-group's memory must still stream
                // through the CU.
                let ii_wi = (l_mem_wi * mem_scale).max(f64::from(ii_comp));
                let mem_group = l_mem_wi * n_wi_wg * mem_scale;
                let group_time = (ii_wi * waves).max(mem_group) + f64::from(depth);
                let t = (group_time + dl_warm) * wg_rounds + dl + launch;
                (t, ii_wi)
            }
        };

        Ok(Estimate {
            cycles,
            ii_comp,
            depth,
            ii_wi,
            l_mem_wi,
            l_cu,
            l_comp_kernel,
            n_pe,
            n_cu,
            mode: config.comm_mode,
            feasible: true,
            infeasible_reason: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Workload;
    use crate::config::{enumerate, DesignSpaceLimits};
    use crate::platform::Platform;
    use flexcl_interp::KernelArg;

    fn vadd_analysis() -> KernelAnalysis {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
                int i = get_global_id(0);
                c[i] = a[i] + b[i];
            }",
        )
        .expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        KernelAnalysis::analyze(
            &f,
            &Platform::virtex7_adm7v3(),
            &Workload {
                args: vec![
                    KernelArg::FloatBuf(vec![1.0; 1024]),
                    KernelArg::FloatBuf(vec![2.0; 1024]),
                    KernelArg::FloatBuf(vec![0.0; 1024]),
                ],
                global: (1024, 1),
            },
            (64, 1),
        )
        .expect("analysis")
    }

    #[test]
    fn context_matches_uncached_estimate_over_the_enumerated_space() {
        let a = vadd_analysis();
        let space = enumerate(&DesignSpaceLimits {
            global_x: 1024,
            global_y: 1,
            has_barrier: false,
            reqd_work_group: Some((64, 1)),
            vectorizable: true,
        });
        assert!(space.len() > 50);
        let mut ctx = EvalContext::new(&a);
        for cfg in &space {
            let cached = ctx.estimate(cfg).expect("ctx estimate");
            let fresh = crate::model::estimate(&a, cfg).expect("fresh estimate");
            assert_eq!(cached, fresh, "{cfg}");
        }
        assert!(ctx.stats.sched_cache_hits > 0, "sweep must hit the cache");
        assert!(
            ctx.stats.sched_cache_misses < space.len() as u64 / 4,
            "{} misses over {} configs: budgets did not collapse",
            ctx.stats.sched_cache_misses,
            space.len()
        );
    }

    #[test]
    fn invalid_config_is_rejected_before_caching() {
        let a = vadd_analysis();
        let mut ctx = EvalContext::new(&a);
        let bad = OptimizationConfig { num_pes: 0, ..OptimizationConfig::default() };
        assert!(ctx.estimate(&bad).is_err());
        assert_eq!(ctx.stats.sched_cache_misses, 0);
    }
}
