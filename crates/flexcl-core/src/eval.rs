//! Budget-keyed evaluation context for the DSE hot path.
//!
//! [`crate::estimate`] re-derives the expensive sub-models — list/SMS
//! scheduling for `(II_comp^wi, D_comp^PE)` and the work-item dependence
//! graph — for every candidate, yet those sub-models depend on the
//! configuration only through its [`ResourceBudget`] (a function of
//! `effective_pes()` and `num_cus`). A family of ~330 enumerated
//! configurations collapses to a handful of distinct budgets, so the sweep
//! was paying for the same schedules hundreds of times.
//!
//! [`EvalContext`] is the layer between `dse::run_family` and the model
//! equations that exploits this:
//!
//! * the work-item dependence edges ([`KernelAnalysis::work_item_deps`])
//!   are built **once per analysis** instead of once per candidate;
//! * `(budget → pipeline_params)` and `(budget → work_item_latency)` are
//!   memoized, so SMS and list scheduling run **once per distinct
//!   budget**;
//! * one [`SchedScratch`] is reused across all scheduler calls, so the
//!   misses themselves stop allocating;
//! * the mode-dependent memory constants (`L_mem^wi` in both burst
//!   orders) and the warm-dispatch terms are hoisted into precomputed
//!   fields, leaving pure arithmetic as the per-candidate residue.
//!
//! The context IS the model: [`crate::estimate`] constructs a fresh
//! context per call and evaluates through it, so the cached and uncached
//! paths share one implementation and are bit-identical by construction.
//! A context borrows its analysis and lives for one family on one worker
//! thread; see DESIGN.md §9 for why cross-thread sharing is unnecessary.

use crate::analysis::KernelAnalysis;
use crate::config::{CommMode, OptimizationConfig};
use crate::error::FlexclError;
use crate::model::{
    effective_pe_parallelism, infeasible, pe_budget, Estimate, InfeasibleReason,
};
use flexcl_ir::DepEdge;
use flexcl_obs::metrics;
use flexcl_sched::{ResourceBudget, SchedScratch};
use std::borrow::Borrow;
use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::Instant;

/// Process-wide schedule-cache counters: every context reports its
/// lookups here (one relaxed, sharded `fetch_add` each) so a live
/// metrics snapshot shows cumulative hit rates across sweeps, not just
/// the per-sweep [`EvalStats`].
fn cache_counters() -> &'static (metrics::Counter, metrics::Counter) {
    static C: OnceLock<(metrics::Counter, metrics::Counter)> = OnceLock::new();
    C.get_or_init(|| {
        let g = metrics::global();
        (g.counter("eval.sched_cache_hits"), g.counter("eval.sched_cache_misses"))
    })
}

/// Counters describing what one [`EvalContext`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Estimates served from the budget-keyed schedule caches.
    pub sched_cache_hits: u64,
    /// Estimates that had to run the schedulers.
    pub sched_cache_misses: u64,
    /// Wall-clock nanoseconds spent inside scheduler calls (miss path).
    pub sched_nanos: u64,
}

/// Memoizing evaluation context for one [`KernelAnalysis`].
///
/// Create one per family (or one per batch of configurations sharing an
/// analysis) and call [`EvalContext::estimate`] per candidate. Results are
/// bit-identical to [`crate::estimate`] in any call order: the cached
/// values are pure functions of `(analysis, budget)`.
///
/// The context is generic over how it holds the analysis: a borrowed
/// `&KernelAnalysis` for one-shot evaluation ([`crate::estimate`]'s
/// path), or an owned `Arc<KernelAnalysis>` so a sweep worker can keep
/// one long-lived context per family it has stolen chunks from, without
/// tying the context's lifetime to a stack frame.
pub struct EvalContext<A: Borrow<KernelAnalysis>> {
    analysis: A,
    /// Budget-independent dependence edges for the work-item graph.
    deps: Vec<DepEdge>,
    /// `budget → (II_comp^wi, D_comp^PE)` (work-item pipelining on).
    pipe_cache: HashMap<ResourceBudget, Result<(u32, u32), FlexclError>>,
    /// `budget → L_wi` (work-item pipelining off).
    lat_cache: HashMap<ResourceBudget, Result<f64, FlexclError>>,
    /// `(num_cus, is_pipeline) → contention factor` from the analysis's
    /// per-CU-count curve, memoized so candidates sharing a CU count skip
    /// the interpolation.
    mem_scale_cache: HashMap<(u32, bool), f64>,
    scratch: SchedScratch,
    // Hoisted per-family constants (pure functions of the analysis).
    l_mem_wi_pipeline: f64,
    l_mem_wi_barrier: f64,
    n_wi_kernel: f64,
    dl: f64,
    dl_warm: f64,
    launch: f64,
    /// Counters for the instrumented sweep.
    pub stats: EvalStats,
}

impl<A: Borrow<KernelAnalysis>> EvalContext<A> {
    /// Prepares a context: precomputes the dependence edges and the
    /// mode-dependent memory/dispatch constants.
    pub fn new(analysis: A) -> Self {
        Self::with_scratch(analysis, SchedScratch::new())
    }

    /// [`EvalContext::new`] reusing a recycled [`SchedScratch`] (from
    /// [`EvalContext::into_scratch`]) so per-family contexts created in
    /// sequence — the sweep's repair pass, a server's request loop —
    /// keep one set of scheduler buffers alive instead of reallocating.
    pub fn with_scratch(analysis: A, scratch: SchedScratch) -> Self {
        let a = analysis.borrow();
        let platform = &a.platform;
        let dl = f64::from(platform.schedule_overhead);
        let deps = a.work_item_deps();
        let l_mem_wi_pipeline = a.l_mem_wi();
        let l_mem_wi_barrier = a.l_mem_wi_phased();
        let n_wi_kernel = (a.global.0 * a.global.1) as f64;
        // Steady-state dispatch cost per group (scheduler overlap hides
        // most of ΔL once a CU is warm); `C·ΔL` pays the cold starts.
        let dl_warm = dl * (1.0 - platform.dispatch_overlap).max(0.0);
        let launch = f64::from(platform.launch_overhead);
        EvalContext {
            deps,
            pipe_cache: HashMap::new(),
            lat_cache: HashMap::new(),
            mem_scale_cache: HashMap::new(),
            scratch,
            l_mem_wi_pipeline,
            l_mem_wi_barrier,
            n_wi_kernel,
            dl,
            dl_warm,
            launch,
            stats: EvalStats::default(),
            analysis,
        }
    }

    /// Dissolves the context, handing its scheduler scratch back for the
    /// next context to reuse.
    pub fn into_scratch(self) -> SchedScratch {
        self.scratch
    }

    /// The analysis this context evaluates against.
    pub fn analysis(&self) -> &KernelAnalysis {
        self.analysis.borrow()
    }

    fn pipeline_params(&mut self, budget: &ResourceBudget) -> Result<(u32, u32), FlexclError> {
        if let Some(r) = self.pipe_cache.get(budget) {
            self.stats.sched_cache_hits += 1;
            cache_counters().0.inc();
            return r.clone();
        }
        self.stats.sched_cache_misses += 1;
        cache_counters().1.inc();
        let t0 = Instant::now();
        let r = self
            .analysis
            .borrow()
            .pipeline_params_with(budget, &self.deps, &mut self.scratch);
        self.stats.sched_nanos += t0.elapsed().as_nanos() as u64;
        self.pipe_cache.insert(*budget, r.clone());
        r
    }

    fn work_item_latency(&mut self, budget: &ResourceBudget) -> Result<f64, FlexclError> {
        if let Some(r) = self.lat_cache.get(budget) {
            self.stats.sched_cache_hits += 1;
            cache_counters().0.inc();
            return r.clone();
        }
        self.stats.sched_cache_misses += 1;
        cache_counters().1.inc();
        let t0 = Instant::now();
        let r = self.analysis.borrow().work_item_latency_with(budget, &mut self.scratch);
        self.stats.sched_nanos += t0.elapsed().as_nanos() as u64;
        self.lat_cache.insert(*budget, r.clone());
        r
    }

    /// Evaluates the full model for one configuration (the implementation
    /// behind [`crate::estimate`]; see its docs for the contract).
    ///
    /// # Errors
    ///
    /// Returns [`FlexclError::Config`] if `config` violates its structural
    /// invariants and [`FlexclError::Scheduling`] if the kernel cannot be
    /// scheduled under the configuration's resource budget.
    pub fn estimate(&mut self, config: &OptimizationConfig) -> Result<Estimate, FlexclError> {
        config.validate()?;
        let analysis = self.analysis.borrow();
        let platform = &analysis.platform;
        let n_wi_kernel = self.n_wi_kernel;
        let n_wi_wg = config.work_group_size() as f64;
        let p_eff = config.effective_pes().max(1);
        let c = config.num_cus.max(1);
        let cf = config.coarsen_factor.max(1);
        let tb = config.temporal_block_depth.max(1);

        // ---- new-axis gating ---------------------------------------------
        // Temporal blocking models cross-iteration reuse; it is undefined
        // for kernels that are not iterative stencils.
        if tb > 1 && !crate::config::is_iterative_stencil(&analysis.func.name) {
            return Err(FlexclError::Config {
                config: *config,
                detail: format!(
                    "temporal blocking (depth {tb}) requires an iterative stencil \
                     kernel; `{}` is not one",
                    analysis.func.name
                ),
            });
        }
        // Coarsening replays the merged memory trace at analysis time; a
        // factor with no pre-analyzed level cannot be evaluated.
        if cf > 1 && analysis.coarsen_level(cf).is_none() {
            return Err(FlexclError::Config {
                config: *config,
                detail: format!(
                    "coarsening factor {cf} has no analyzed memory level for \
                     this kernel/work-group (supported factors divide the \
                     work-group size and are at most {})",
                    crate::config::MAX_COARSEN
                ),
            });
        }

        // ---- feasibility -------------------------------------------------
        // Saturating: extreme replication factors must read as "too big for
        // the device", not overflow. Temporal blocking adds its per-CU tile
        // buffers (zero at depth 1).
        let dsps_needed = u64::from(analysis.static_dsps_per_pe)
            .saturating_mul(u64::from(p_eff))
            .saturating_mul(u64::from(c));
        if dsps_needed > u64::from(platform.total_dsps) {
            return Ok(infeasible(
                config,
                InfeasibleReason::Dsps { needed: dsps_needed, available: platform.total_dsps },
            ));
        }
        let bram_needed = analysis
            .local_bytes
            .saturating_mul(u64::from(c))
            .saturating_mul(u64::from(p_eff.min(4)))
            .saturating_add(
                crate::area::temporal_bram_bytes(analysis.work_group, analysis.global, tb)
                    .saturating_mul(u64::from(c)),
            );
        if bram_needed > platform.total_bram_bytes {
            return Ok(infeasible(
                config,
                InfeasibleReason::BramBytes {
                    needed: bram_needed,
                    available: platform.total_bram_bytes,
                },
            ));
        }

        // ---- PE model (Eq. 1–4 + SMS), memoized per budget ---------------
        let budget = pe_budget(analysis, config);
        let (ii_base, depth_base) = if config.work_item_pipeline {
            self.pipeline_params(&budget)?
        } else {
            // Without work-item pipelining a PE processes one work-item at a
            // time: the initiation interval is the full work-item latency.
            let d = self.work_item_latency(&budget)?.round().max(1.0) as u32;
            (d, d)
        };
        // Re-borrow: the scheduler calls above needed `&mut self`.
        let analysis = self.analysis.borrow();
        // Present whenever cf > 1: the gate above rejected missing levels.
        let level = if cf > 1 { analysis.coarsen_level(cf) } else { None };
        // Thread coarsening merges `cf` work-items per coarse item: the
        // pipelined PE re-derives (II, D) analytically from the scheduled
        // base (DESIGN.md §15); the unpipelined PE simply serializes the
        // merged bodies. Exact pass-through at cf == 1.
        let (ii_comp, depth) = if cf > 1 {
            if config.work_item_pipeline {
                crate::model::coarsened_pipeline_params(analysis, ii_base, depth_base, cf)
            } else {
                let d = ii_base.saturating_mul(cf).max(1);
                (d, d)
            }
        } else {
            (ii_base, depth_base)
        };

        // ---- CU model (Eq. 5–6) ------------------------------------------
        // Coarse items, not work-items, are what a CU issues: `cf` divides
        // the work-group size (validated), so the wave count shrinks.
        let n_pe = effective_pe_parallelism(analysis, config);
        let items = n_wi_wg / f64::from(cf);
        let waves = ((items - f64::from(n_pe)) / f64::from(n_pe)).ceil().max(0.0);
        let l_cu = f64::from(ii_comp) * waves + f64::from(depth);

        // ---- memory model (Eq. 9), hoisted per family --------------------
        // Pattern counts follow the burst order the chosen communication
        // mode produces: work-item-interleaved for pipeline mode, phased
        // reads-then-writes for barrier mode (§3.5: integration depends on
        // how computation communicates with global memory). At cf > 1 the
        // constants come from the pre-analyzed merged-trace level, still
        // normalized per *original* work-item so the `L_mem·N_wi` algebra
        // below is unchanged.
        let l_mem_wi = match (config.comm_mode, level) {
            (CommMode::Barrier, None) => self.l_mem_wi_barrier,
            (CommMode::Pipeline, None) => self.l_mem_wi_pipeline,
            (CommMode::Barrier, Some(l)) => l.l_mem_wi_phased(&analysis.pattern_latencies),
            (CommMode::Pipeline, Some(l)) => l.l_mem_wi(&analysis.pattern_latencies),
        };
        let owners_group =
            level.map_or(analysis.burst_owners_per_group, |l| l.burst_owners_per_group);
        let hvy_mem_pipe = level.map_or(analysis.mem_group_max, |l| l.mem_group_max);
        let hvy_mem_phased =
            level.map_or(analysis.mem_group_max_phased, |l| l.mem_group_max_phased);

        // ---- kernel model (Eq. 7–8) --------------------------------------
        // The paper reads Eq. 8 as a serialized dispatcher capping the
        // useful CU replication when groups are shorter than the
        // scheduling overhead. The runtime the System Run implements
        // prepares the next group *per CU* while the current one drains
        // (see `dispatch_overlap`), so no cross-CU dispatch serialization
        // exists and the cap never binds: every replicated CU contributes,
        // and Eq. 8's overhead term survives as the `ΔL_warm` each CU pays
        // per round below. (The old `group_duration / ΔL_warm` cap priced
        // short-group kernels at a single CU and overshot them ~4× at
        // C = 4.)
        let dl = self.dl;
        let dl_warm = self.dl_warm;
        let n_cu = c;
        let wg_rounds = (n_wi_kernel / (n_wi_wg * f64::from(n_cu))).ceil().max(1.0);
        // Cold dispatches to the C CUs proceed in parallel, so one ΔL of
        // latency reaches the critical path (the paper's `C·ΔL` reading of
        // Eq. 7 models a serialized dispatcher; measured behaviour
        // overlaps).
        let l_comp_kernel = (l_cu + dl_warm) * wg_rounds + dl;

        // ---- integration (Eq. 10–12) -------------------------------------
        // Multi-CU adaptation: the paper states Eq. 10 for the single-CU
        // case, where all global transfers serialize behind the CU's burst
        // engine; `L_mem^wi · N_wi^kernel + L_comp^kernel` then counts
        // every work-item's memory once. Each CU has its own engine, so
        // with `N_CU` concurrent CUs the serialized memory is per-group:
        // the equation is applied at group granularity and multiplied by
        // the rounds each CU executes. For C = 1 this is algebraically
        // identical to Eq. 10.
        let launch = self.launch;
        // Replicated CUs split the group stream across the DDR channels:
        // each channel sees only every C-th group and loses cross-group row
        // locality. The analysis measures this as a per-CU-count contention
        // curve (pattern-cost ratio at C co-running streams vs one); its
        // factor at `num_cus` scales `L_mem^wi` in the integration.
        let pipeline = matches!(config.comm_mode, CommMode::Pipeline);
        let mem_scale = *self
            .mem_scale_cache
            .entry((c, pipeline))
            .or_insert_with(|| analysis.contention.factor(c, pipeline));
        // Alongside the total, the estimate decomposes into compute, memory
        // and dispatch/launch cycles (summing exactly to `cycles`) so the
        // triage harness can attribute model-vs-sim divergence per term.
        // Heaviest-group floor: `L_mem^wi` is a mean over (possibly
        // heterogeneous) groups, so `wg_rounds · mean` under-counts the
        // critical CU once CUs outnumber rounds — wavefront kernels leave
        // whole groups memory-silent, and no CU count makes the kernel
        // finish before its heaviest single group has streamed. The
        // analysis measures that group's solo service; it bounds the
        // memory term from below (inactive whenever rounds · mean covers
        // it, i.e. for homogeneous kernels or small C).
        let hvy_scale = n_wi_wg / f64::from(analysis.work_group.0.max(1))
            / f64::from(analysis.work_group.1.max(1));
        let (cycles, ii_wi, comp_cycles, mem_cycles, overhead_cycles) = if tb > 1 {
            // ---- temporal blocking (DESIGN.md §15) -----------------------
            // `tb` stencil steps fuse into one on-chip block: the tile's
            // DRAM traffic is paid ONCE per block (the reuse win in the
            // Eq. 10–12 terms), while step k re-runs the CU pipeline over a
            // halo-expanded tile (`rho_k` × the items). The block models
            // `tb` kernel invocations, so every component is amortized by
            // `/tb` to stay comparable with unblocked estimates; compute is
            // recomputed as `cycles - mem - overhead` after the division so
            // the decomposition still sums exactly to `cycles`.
            let tbf = f64::from(tb);
            let rho =
                crate::model::temporal_step_redundancy(analysis.work_group, analysis.global, tb);
            let wave_count = |r: f64| -> f64 {
                ((items * r - f64::from(n_pe)) / f64::from(n_pe)).ceil().max(0.0)
            };
            let comp_step = |r: f64| -> f64 {
                f64::from(ii_comp) * wave_count(r) + f64::from(depth)
            };
            // Steps after the first run out of BRAM — pure compute.
            let rest: f64 = rho[1..].iter().map(|&r| comp_step(r)).sum();
            match config.comm_mode {
                CommMode::Barrier => {
                    let mem_per_group = l_mem_wi * n_wi_wg * mem_scale;
                    let comp_block = comp_step(rho[0]) + rest;
                    let t = (mem_per_group + comp_block + dl_warm) * wg_rounds + dl + launch;
                    let floor =
                        hvy_mem_phased * hvy_scale + comp_block + dl_warm + dl + launch;
                    let t_final = t.max(floor);
                    let cycles = t_final / tbf;
                    let mem = (mem_per_group * wg_rounds + (t_final - t)) / tbf;
                    let overhead = (dl_warm * wg_rounds + dl + launch) / tbf;
                    (cycles, f64::from(ii_comp), cycles - mem - overhead, mem, overhead)
                }
                CommMode::Pipeline => {
                    // Only step 0 overlaps with the tile's single memory
                    // stream (same owner-gated structure as the unblocked
                    // path). The memory-limited interval `ii_wi` gates only
                    // the real tile items — the stream happens once per
                    // block — while the halo-expanded wave count of step 0
                    // is gated by the compute interval alone (halo items
                    // read on-chip data, not DRAM).
                    let waves0 = wave_count(rho[0]);
                    let ii_wi =
                        (f64::from(cf) * l_mem_wi * mem_scale).max(f64::from(ii_comp));
                    let mem_group = l_mem_wi * n_wi_wg * mem_scale;
                    let w_total = waves0 + 1.0;
                    let owners = owners_group.clamp(1.0, w_total);
                    let last_gated = ((owners - 1.0) * w_total / owners).floor();
                    let trailing = (waves0 - last_gated).max(0.0);
                    let serial_tail = mem_group + f64::from(ii_comp) * trailing;
                    let ramp = mem_group / owners + f64::from(ii_comp) * waves0;
                    let group0 = (ii_wi * waves)
                        .max(f64::from(ii_comp) * waves0)
                        .max(serial_tail)
                        .max(ramp)
                        + f64::from(depth);
                    let group_block = group0 + rest;
                    let t = (group_block + dl_warm) * wg_rounds + dl + launch;
                    let hvy = hvy_mem_pipe * hvy_scale;
                    let hvy_tail = hvy + f64::from(ii_comp) * trailing;
                    let hvy_ramp = hvy / owners + f64::from(ii_comp) * waves0;
                    let hvy_time = (f64::from(ii_comp) * waves0)
                        .max(hvy_tail)
                        .max(hvy_ramp)
                        + f64::from(depth)
                        + rest;
                    let floor = hvy_time + dl_warm + dl + launch;
                    let t_final = t.max(floor);
                    let comp_group = comp_step(rho[0]) + rest;
                    let cycles = t_final / tbf;
                    let mem =
                        ((group_block - comp_group) * wg_rounds + (t_final - t)) / tbf;
                    let overhead = (dl_warm * wg_rounds + dl + launch) / tbf;
                    (cycles, ii_wi, cycles - mem - overhead, mem, overhead)
                }
            }
        } else {
            match config.comm_mode {
            CommMode::Barrier => {
                let mem_per_group = l_mem_wi * n_wi_wg * mem_scale;
                let t = (mem_per_group + l_cu + dl_warm) * wg_rounds + dl + launch;
                let floor =
                    hvy_mem_phased * hvy_scale + l_cu + dl_warm + dl + launch;
                let t_final = t.max(floor);
                (
                    t_final,
                    f64::from(ii_comp),
                    l_cu * wg_rounds,
                    mem_per_group * wg_rounds + (t_final - t),
                    dl_warm * wg_rounds + dl + launch,
                )
            }
            CommMode::Pipeline => {
                // Eq. 11–12, with the group's total transfer volume as a
                // floor: even when PE replication removes all waves
                // (`waves → 0`), the work-group's memory must still stream
                // through the CU. A coarse item owns its `cf` merged
                // work-items' memory, so its per-initiation latency is
                // `cf · L_mem` (exactly `L_mem` at cf == 1).
                let ii_wi =
                    (f64::from(cf) * l_mem_wi * mem_scale).max(f64::from(ii_comp));
                let mem_group = l_mem_wi * n_wi_wg * mem_scale;
                // Wave-overlap correction: a wave can only initiate once
                // the bursts its work-items own have returned. With B
                // owner runs per group, owner o (data ready at
                // ~mem·(o+1)/B) gates wave floor(o·W/B) of the W wave
                // fronts; the end of the issue chain is the max over
                // owners of `ready_o + II_comp·(waves - wave_o)`, linear
                // in o, so its endpoints bound it: the last owner leaves
                // `trailing` waves draining after the memory stream, and
                // the first owner delays the whole chain by mem/B. A
                // fully coalesced group (B = 1) serializes memory and
                // compute; finely interleaved owners (B ≥ W) recover the
                // plain max() overlap.
                let w_total = waves + 1.0;
                let owners = owners_group.clamp(1.0, w_total);
                let last_gated = ((owners - 1.0) * w_total / owners).floor();
                let trailing = (waves - last_gated).max(0.0);
                let serial_tail = mem_group + f64::from(ii_comp) * trailing;
                let ramp = mem_group / owners + f64::from(ii_comp) * waves;
                let group_time =
                    (ii_wi * waves).max(serial_tail).max(ramp) + f64::from(depth);
                let t = (group_time + dl_warm) * wg_rounds + dl + launch;
                // The heaviest group's time follows the same overlap
                // structure with its solo memory service in place of the
                // mean (it runs alone on its CU, so no contention scale).
                let hvy = hvy_mem_pipe * hvy_scale;
                let hvy_tail = hvy + f64::from(ii_comp) * trailing;
                let hvy_ramp = hvy / owners + f64::from(ii_comp) * waves;
                let hvy_time = (f64::from(ii_comp) * waves)
                    .max(hvy_tail)
                    .max(hvy_ramp)
                    + f64::from(depth);
                let floor = hvy_time + dl_warm + dl + launch;
                let t_final = t.max(floor);
                // Compute is what the group would take memory-free
                // (`II_comp·waves + depth`); the rest of the group time is
                // memory stall (non-negative since `ii_wi ≥ II_comp`).
                let comp_group = f64::from(ii_comp) * waves + f64::from(depth);
                (
                    t_final,
                    ii_wi,
                    comp_group * wg_rounds,
                    (group_time - comp_group) * wg_rounds + (t_final - t),
                    dl_warm * wg_rounds + dl + launch,
                )
            }
            }
        };

        Ok(Estimate {
            cycles,
            ii_comp,
            depth,
            ii_wi,
            l_mem_wi,
            l_cu,
            l_comp_kernel,
            n_pe,
            n_cu,
            mode: config.comm_mode,
            comp_cycles,
            mem_cycles,
            overhead_cycles,
            feasible: true,
            infeasible_reason: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Workload;
    use crate::config::{enumerate, DesignSpaceLimits};
    use crate::platform::Platform;
    use flexcl_interp::KernelArg;

    fn vadd_analysis() -> KernelAnalysis {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
                int i = get_global_id(0);
                c[i] = a[i] + b[i];
            }",
        )
        .expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        KernelAnalysis::analyze(
            &f,
            &Platform::virtex7_adm7v3(),
            &Workload {
                args: vec![
                    KernelArg::FloatBuf(vec![1.0; 1024]),
                    KernelArg::FloatBuf(vec![2.0; 1024]),
                    KernelArg::FloatBuf(vec![0.0; 1024]),
                ],
                global: (1024, 1),
            },
            (64, 1),
        )
        .expect("analysis")
    }

    #[test]
    fn context_matches_uncached_estimate_over_the_enumerated_space() {
        let a = vadd_analysis();
        let space = enumerate(&DesignSpaceLimits {
            global_x: 1024,
            global_y: 1,
            has_barrier: false,
            reqd_work_group: Some((64, 1)),
            vectorizable: true,
            iterative: false,
        });
        assert!(space.len() > 50);
        let mut ctx = EvalContext::new(&a);
        for cfg in &space {
            let cached = ctx.estimate(cfg).expect("ctx estimate");
            let fresh = crate::model::estimate(&a, cfg).expect("fresh estimate");
            assert_eq!(cached, fresh, "{cfg}");
        }
        assert!(ctx.stats.sched_cache_hits > 0, "sweep must hit the cache");
        assert!(
            ctx.stats.sched_cache_misses < space.len() as u64 / 4,
            "{} misses over {} configs: budgets did not collapse",
            ctx.stats.sched_cache_misses,
            space.len()
        );
    }

    #[test]
    fn invalid_config_is_rejected_before_caching() {
        let a = vadd_analysis();
        let mut ctx = EvalContext::new(&a);
        let bad = OptimizationConfig { num_pes: 0, ..OptimizationConfig::default() };
        assert!(ctx.estimate(&bad).is_err());
        assert_eq!(ctx.stats.sched_cache_misses, 0);
    }
}
