//! FPGA platform profiles: operation latencies, DSP usage and resource
//! capacities.
//!
//! FlexCL associates each IR operation with the latency of the IP core that
//! implements it, "obtained through micro-benchmark profiling" (§3.2). On
//! real hardware SDAccel may pick among several implementations; FlexCL
//! uses the average — which the paper names as one of its two residual
//! error sources. Our tables carry the published Vivado-HLS-class latencies
//! at 200 MHz for a Virtex-7 (the ADM-PCIE-7V3 board of the evaluation) and
//! an UltraScale KU060 profile for the robustness experiment.

use flexcl_dram::DramConfig;
use flexcl_frontend::ast::{BinOp, UnOp};
use flexcl_frontend::builtins::MathOp;
use flexcl_frontend::types::Type;
use flexcl_ir::Op;
use flexcl_sched::ResourceClass;

/// A complete platform description.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Human-readable name.
    pub name: String,
    /// Kernel clock in MHz (cycles → seconds conversions).
    pub frequency_mhz: f64,
    /// Total DSP slices on the device.
    pub total_dsps: u32,
    /// Total on-chip BRAM capacity in bytes.
    pub total_bram_bytes: u64,
    /// Read ports per local-memory array bank (BRAM is true dual ported;
    /// one port is reserved for writes in the common 1W-many-R usage).
    pub local_read_ports_per_bank: u32,
    /// Write ports per local-memory array bank.
    pub local_write_ports_per_bank: u32,
    /// Global memory access unit, in bits (SDAccel uses 512-bit AXI).
    pub mem_access_unit_bits: u32,
    /// Concurrent outstanding global-memory requests per CU.
    pub global_ports: u32,
    /// Independent DDR channels on the board; SDAccel assigns CUs to
    /// channels round-robin, so CUs only contend when they outnumber
    /// channels (the ADM-PCIE-7V3 carries two SODIMMs).
    pub dram_channels: u32,
    /// Work-group scheduling overhead `ΔL_comp^schedule`, in cycles.
    pub schedule_overhead: u32,
    /// Fixed kernel-launch overhead (host command path), in cycles.
    pub launch_overhead: u32,
    /// Fraction of the dispatch overhead hidden behind a running group:
    /// the scheduler prepares the next work-group while the current one
    /// drains, so warm dispatches cost `(1 − overlap) · ΔL`.
    pub dispatch_overlap: f64,
    /// Latency scale relative to the Virtex-7 reference tables (UltraScale
    /// fabric closes timing faster, so its effective latencies are lower).
    pub latency_scale: f64,
    /// Off-chip DRAM configuration.
    pub dram: DramConfig,
}

impl Platform {
    /// The paper's evaluation platform: ADM-PCIE-7V3 with a Virtex-7
    /// XC7VX690T and 16 GB DDR3 (8 banks, 1 KB row buffers), 200 MHz kernel
    /// clock.
    pub fn virtex7_adm7v3() -> Platform {
        Platform {
            name: "ADM-PCIE-7V3 (Virtex-7 XC7VX690T)".into(),
            frequency_mhz: 200.0,
            total_dsps: 3600,
            total_bram_bytes: 1470 * 36 * 1024 / 8, // 1470 BRAM36 blocks
            local_read_ports_per_bank: 2,
            local_write_ports_per_bank: 1,
            mem_access_unit_bits: 512,
            global_ports: 4,
            dram_channels: 2,
            schedule_overhead: 64,
            launch_overhead: 500,
            dispatch_overlap: 0.8,
            latency_scale: 1.0,
            dram: DramConfig::adm_pcie_7v3(),
        }
    }

    /// The robustness platform of §4.2: NAS-120A board with an UltraScale
    /// KU060.
    pub fn ku060_nas120a() -> Platform {
        Platform {
            name: "NAS-120A (Kintex UltraScale KU060)".into(),
            frequency_mhz: 200.0,
            total_dsps: 2760,
            total_bram_bytes: 1080 * 36 * 1024 / 8,
            local_read_ports_per_bank: 2,
            local_write_ports_per_bank: 1,
            mem_access_unit_bits: 512,
            global_ports: 4,
            dram_channels: 2,
            schedule_overhead: 48,
            launch_overhead: 400,
            dispatch_overlap: 0.8,
            latency_scale: 0.8,
            dram: DramConfig::nas_120a_ku060(),
        }
    }

    /// Latency in cycles of one IR operation on this platform.
    pub fn op_latency(&self, op: &Op, ty: &Type) -> u32 {
        let base = f64::from(reference_latency(op, ty));
        (base * self.latency_scale).round().max(0.0) as u32
    }

    /// DSP slices consumed by one instance of the operation.
    pub fn op_dsps(&self, op: &Op, ty: &Type) -> u32 {
        reference_dsps(op, ty)
    }

    /// The scheduler resource class of an operation.
    pub fn op_resource(&self, op: &Op, ty: &Type) -> ResourceClass {
        use flexcl_frontend::types::AddressSpace;
        match op {
            Op::Load { space: AddressSpace::Local, .. } => ResourceClass::LocalRead,
            Op::Store { space: AddressSpace::Local, .. } => ResourceClass::LocalWrite,
            Op::Load { space: AddressSpace::Global | AddressSpace::Constant, .. }
            | Op::Store { space: AddressSpace::Global, .. } => ResourceClass::GlobalPort,
            _ => {
                if self.op_dsps(op, ty) > 0 {
                    ResourceClass::Dsp
                } else {
                    ResourceClass::Fabric
                }
            }
        }
    }

    /// Converts a cycle count into seconds on this platform.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.frequency_mhz * 1e6)
    }

    /// Checks the platform description's invariants.
    ///
    /// A hand-edited or corrupted platform table (zero port counts, NaN
    /// frequency) would otherwise surface deep inside the scheduler or the
    /// memory model; the sweep engine validates up front and reports a
    /// typed [`FlexclError::Platform`].
    ///
    /// # Errors
    ///
    /// Returns [`FlexclError::Platform`] naming the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), crate::error::FlexclError> {
        let fail = |detail: String| {
            Err(crate::error::FlexclError::Platform { platform: self.name.clone(), detail })
        };
        if !self.frequency_mhz.is_finite() || self.frequency_mhz <= 0.0 {
            return fail(format!("frequency must be finite and positive, got {}", self.frequency_mhz));
        }
        if self.total_dsps == 0 {
            return fail("device must have at least one DSP slice".into());
        }
        if self.total_bram_bytes == 0 {
            return fail("device must have BRAM capacity".into());
        }
        if self.local_read_ports_per_bank == 0 {
            return fail("local memory banks need at least one read port".into());
        }
        if self.local_write_ports_per_bank == 0 {
            return fail("local memory banks need at least one write port".into());
        }
        if self.mem_access_unit_bits < 8 || !self.mem_access_unit_bits.is_multiple_of(8) {
            return fail(format!(
                "global access unit must be a positive multiple of 8 bits, got {}",
                self.mem_access_unit_bits
            ));
        }
        if self.global_ports == 0 {
            return fail("CUs need at least one global memory port".into());
        }
        if self.dram_channels == 0 {
            return fail("the board needs at least one DRAM channel".into());
        }
        if !(0.0..=1.0).contains(&self.dispatch_overlap) {
            return fail(format!("dispatch overlap must lie in [0, 1], got {}", self.dispatch_overlap));
        }
        if !self.latency_scale.is_finite() || self.latency_scale <= 0.0 {
            return fail(format!("latency scale must be finite and positive, got {}", self.latency_scale));
        }
        Ok(())
    }
}

impl Default for Platform {
    fn default() -> Self {
        Platform::virtex7_adm7v3()
    }
}

/// Reference (Virtex-7, 200 MHz) latency table.
fn reference_latency(op: &Op, ty: &Type) -> u32 {
    use flexcl_frontend::types::AddressSpace;
    let is_float = ty.is_float();
    let wide = ty.element_scalar().is_some_and(|s| s.bits() == 64);
    let scale64 = |v: u32| if wide { v + v / 2 } else { v };
    match op {
        Op::Bin(b) => {
            let v = match b {
                BinOp::Add | BinOp::Sub => {
                    if is_float {
                        4
                    } else {
                        1
                    }
                }
                // DSP-mapped multiplies pipeline to the same latency for
                // int32 and fp32 on 7-series (3 register stages).
                BinOp::Mul => 3,
                BinOp::Div | BinOp::Rem => {
                    if is_float {
                        14
                    } else {
                        18
                    }
                }
                BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr => 1,
                BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                    if is_float {
                        2
                    } else {
                        1
                    }
                }
                BinOp::LogAnd | BinOp::LogOr => 1,
            };
            scale64(v)
        }
        Op::Un(u) => match u {
            UnOp::Neg => {
                if is_float {
                    2
                } else {
                    1
                }
            }
            UnOp::Not | UnOp::BitNot => 1,
        },
        Op::Select => 1,
        Op::Convert => {
            if is_float {
                4 // int↔float conversion cores
            } else {
                1
            }
        }
        Op::Math(m) => {
            let v = match m {
                MathOp::Sqrt | MathOp::Rsqrt => 14,
                MathOp::Exp | MathOp::Exp2 | MathOp::Log | MathOp::Log2 => 20,
                MathOp::Sin | MathOp::Cos | MathOp::Tan => 25,
                MathOp::Pow => 34,
                MathOp::Atan2 | MathOp::Hypot => 28,
                MathOp::Fmod => 16,
                MathOp::Fabs | MathOp::Floor | MathOp::Ceil | MathOp::Round | MathOp::Trunc => 2,
                MathOp::Fmin | MathOp::Fmax | MathOp::Min | MathOp::Max | MathOp::Abs => 1,
                MathOp::Mad | MathOp::Fma => 5,
                MathOp::Clamp | MathOp::Mix => 3,
                MathOp::Mul24 | MathOp::Mad24 => 2,
                MathOp::Select => 1,
            };
            scale64(v)
        }
        Op::WorkItem(_) => 0, // wired from the dispatch logic
        Op::Alloca { .. } => 0,
        Op::Load { space, .. } => match space {
            AddressSpace::Local => 2,                        // BRAM read
            AddressSpace::Private => 0,                      // registers
            AddressSpace::Global | AddressSpace::Constant => 1, // AXI issue
        },
        Op::Store { space, .. } => match space {
            AddressSpace::Local => 1,
            AddressSpace::Private => 0,
            AddressSpace::Global | AddressSpace::Constant => 1,
        },
        Op::Extract(_) | Op::Insert(_) | Op::Splat => 0,
        Op::Barrier => 1,
    }
}

/// Reference DSP usage table.
fn reference_dsps(op: &Op, ty: &Type) -> u32 {
    let is_float = ty.is_float();
    let lanes = ty.lanes();
    let per_lane = match op {
        Op::Bin(BinOp::Mul) if is_float => 3,
        Op::Bin(BinOp::Mul) => 1,
        Op::Bin(BinOp::Add | BinOp::Sub) if is_float => 2,
        Op::Bin(BinOp::Add | BinOp::Sub) => 0,
        Op::Math(MathOp::Mad | MathOp::Fma) => 4,
        Op::Math(MathOp::Sqrt | MathOp::Rsqrt) => 2,
        Op::Math(MathOp::Exp | MathOp::Exp2 | MathOp::Log | MathOp::Log2) => 6,
        Op::Math(MathOp::Sin | MathOp::Cos | MathOp::Tan) => 8,
        Op::Math(MathOp::Pow) => 12,
        Op::Math(MathOp::Atan2 | MathOp::Hypot) => 8,
        Op::Convert if is_float => 1,
        _ => 0,
    };
    per_lane * lanes
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcl_frontend::types::{AddressSpace, Scalar};
    use flexcl_ir::MemRoot;

    #[test]
    fn float_ops_slower_than_int() {
        let p = Platform::virtex7_adm7v3();
        let fadd = p.op_latency(&Op::Bin(BinOp::Add), &Type::float());
        let iadd = p.op_latency(&Op::Bin(BinOp::Add), &Type::int());
        assert!(fadd > iadd);
    }

    #[test]
    fn ku060_is_faster() {
        let v7 = Platform::virtex7_adm7v3();
        let ku = Platform::ku060_nas120a();
        let op = Op::Math(MathOp::Exp);
        assert!(ku.op_latency(&op, &Type::float()) < v7.op_latency(&op, &Type::float()));
    }

    #[test]
    fn resource_classes() {
        let p = Platform::virtex7_adm7v3();
        let local_load =
            Op::Load { space: AddressSpace::Local, root: MemRoot::Param(0) };
        assert_eq!(p.op_resource(&local_load, &Type::float()), ResourceClass::LocalRead);
        let fmul = Op::Bin(BinOp::Mul);
        assert_eq!(p.op_resource(&fmul, &Type::float()), ResourceClass::Dsp);
        let iadd = Op::Bin(BinOp::Add);
        assert_eq!(p.op_resource(&iadd, &Type::int()), ResourceClass::Fabric);
    }

    #[test]
    fn double_precision_costs_more() {
        let p = Platform::virtex7_adm7v3();
        let f32_div = p.op_latency(&Op::Bin(BinOp::Div), &Type::float());
        let f64_div = p.op_latency(&Op::Bin(BinOp::Div), &Type::Scalar(Scalar::F64));
        assert!(f64_div > f32_div);
    }

    #[test]
    fn vector_ops_use_lane_scaled_dsps() {
        let p = Platform::virtex7_adm7v3();
        let scalar = p.op_dsps(&Op::Bin(BinOp::Mul), &Type::float());
        let vec4 = p.op_dsps(&Op::Bin(BinOp::Mul), &Type::Vector(Scalar::F32, 4));
        assert_eq!(vec4, 4 * scalar);
    }

    #[test]
    fn cycles_to_seconds() {
        let p = Platform::virtex7_adm7v3();
        assert!((p.cycles_to_seconds(200e6) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stock_platforms_validate() {
        Platform::virtex7_adm7v3().validate().expect("virtex7");
        Platform::ku060_nas120a().validate().expect("ku060");
    }

    #[test]
    fn poisoned_platform_is_rejected_with_context() {
        use crate::error::{ErrorKind, FlexclError};
        let zero_ports = Platform { local_read_ports_per_bank: 0, ..Platform::default() };
        let err = zero_ports.validate().unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Platform);
        assert!(matches!(err, FlexclError::Platform { .. }));
        assert!(err.to_string().contains("read port"));

        let nan_freq = Platform { frequency_mhz: f64::NAN, ..Platform::default() };
        assert_eq!(nan_freq.validate().unwrap_err().kind(), ErrorKind::Platform);

        let bad_unit = Platform { mem_access_unit_bits: 12, ..Platform::default() };
        assert!(bad_unit.validate().is_err());
    }
}
