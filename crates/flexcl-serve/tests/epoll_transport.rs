//! Epoll transport over real TCP sockets: framing round-trips,
//! pipelining, malformed and oversize frames, idle-timeout reaping,
//! and multi-listener `SO_REUSEPORT` mode.

#![cfg(target_os = "linux")]

use flexcl_serve::net::epoll::{EpollOptions, EpollTransport};
use flexcl_serve::protocol::{read_frame, write_frame, MAX_FRAME_LEN};
use flexcl_serve::server::ServerConfig;
use flexcl_serve::Server;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const VADD: &str = "__kernel void vadd(__global float* a, __global float* b, \
                    __global float* c) { int i = get_global_id(0); c[i] = a[i] + b[i]; }";

fn request(id: &str) -> String {
    let src_json = VADD.replace('\\', "\\\\").replace('"', "\\\"");
    format!(r#"{{"id":"{id}","src":"{src_json}","global":256,"grid":"standard"}}"#)
}

fn start(opts: EpollOptions) -> (EpollTransport, std::net::SocketAddrV4) {
    let (server, _) = Server::start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("start server");
    let transport =
        EpollTransport::bind(Arc::new(server), "127.0.0.1:0", opts).expect("bind epoll");
    let addr = transport.local_addr();
    (transport, addr)
}

#[test]
fn frames_round_trip_and_pipelined_requests_all_answer() {
    let (transport, addr) = start(EpollOptions::default());
    let mut stream = TcpStream::connect(addr).expect("connect");

    // Two requests written back-to-back before reading either reply.
    write_frame(&mut stream, &request("p1")).expect("write p1");
    write_frame(&mut stream, &request("p2")).expect("write p2");
    let mut ids = Vec::new();
    for _ in 0..2 {
        let reply = read_frame(&mut stream).expect("read").expect("frame");
        assert!(reply.contains("\"status\":\"ok\""), "{reply}");
        for id in ["p1", "p2"] {
            if reply.contains(&format!("\"id\":\"{id}\"")) {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    assert_eq!(ids, ["p1", "p2"], "each pipelined request answered exactly once");

    // A metrics frame on the same connection reports live counters.
    write_frame(&mut stream, "{\"metrics\":\"json\"}").expect("write metrics");
    let metrics = read_frame(&mut stream).expect("read").expect("frame");
    assert!(metrics.contains("\"serve.completed\":2"), "{metrics}");
    drop(stream);
    transport.shutdown().expect("shutdown");
}

#[test]
fn malformed_json_is_answered_in_band_but_bad_framing_drops_the_connection() {
    let (transport, addr) = start(EpollOptions::default());

    // Malformed JSON inside a well-formed frame: typed error, conn lives.
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_frame(&mut stream, "{\"id\":\"broken\"").expect("write");
    let reply = read_frame(&mut stream).expect("read").expect("frame");
    assert!(reply.contains("\"kind\":\"malformed\""), "{reply}");
    write_frame(&mut stream, &request("after-garbage")).expect("write");
    let reply = read_frame(&mut stream).expect("read").expect("frame");
    assert!(reply.contains("\"status\":\"ok\""), "{reply}");

    // A length prefix beyond MAX_FRAME_LEN is a framing violation: the
    // server hangs up rather than buffering it.
    let mut bad = TcpStream::connect(addr).expect("connect");
    bad.write_all(&((MAX_FRAME_LEN as u32) + 1).to_be_bytes()).expect("write prefix");
    bad.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let mut buf = [0u8; 1];
    assert_eq!(bad.read(&mut buf).expect("read EOF"), 0, "connection must be closed");

    transport.shutdown().expect("shutdown");
}

#[test]
fn idle_connections_are_reaped_after_the_timeout() {
    let (transport, addr) = start(EpollOptions {
        idle_timeout: Duration::from_millis(200),
        ..EpollOptions::default()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");
    // Activity first, so the reap isn't just the accept timestamp.
    write_frame(&mut stream, "{\"metrics\":\"json\"}").expect("write");
    read_frame(&mut stream).expect("read").expect("frame");

    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let mut buf = [0u8; 1];
    match stream.read(&mut buf) {
        Ok(0) => {} // reaped: clean EOF
        Ok(n) => panic!("unexpected {n} bytes from an idle connection"),
        Err(e) if e.kind() == ErrorKind::ConnectionReset => {}
        Err(e) => panic!("expected idle close, got {e}"),
    }
    transport.shutdown().expect("shutdown");
}

#[test]
fn zero_idle_timeout_disables_reaping() {
    // Regression: a zero idle timeout used to make the reap predicate
    // `now - last >= 0` trivially true, so every quiescent connection was
    // closed on the very first loop tick. Zero must mean "never reap".
    let (transport, addr) = start(EpollOptions {
        idle_timeout: Duration::ZERO,
        ..EpollOptions::default()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_frame(&mut stream, "{\"metrics\":\"json\"}").expect("write");
    read_frame(&mut stream).expect("read").expect("frame");

    // Sit idle for well over several loop ticks (the buggy tick was the
    // 10ms clamp floor; the disabled-reap tick is 200ms), then prove the
    // connection still answers.
    std::thread::sleep(Duration::from_millis(700));
    write_frame(&mut stream, "{\"metrics\":\"json\"}").expect("write after idle");
    let reply = read_frame(&mut stream)
        .expect("connection must survive idling with reaping disabled")
        .expect("frame");
    assert!(reply.contains("serve."), "{reply}");
    transport.shutdown().expect("shutdown");
}

#[test]
fn reuseport_listeners_share_one_resolved_port() {
    let (transport, addr) = start(EpollOptions {
        listeners: 3,
        ..EpollOptions::default()
    });
    assert_ne!(addr.port(), 0, "port 0 must resolve");
    // Every connection lands on the same address; the kernel shards
    // them across the three loops.
    for i in 0..6 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write_frame(&mut stream, &request(&format!("lb-{i}"))).expect("write");
        let reply = read_frame(&mut stream).expect("read").expect("frame");
        assert!(reply.contains("\"status\":\"ok\""), "{reply}");
    }
    transport.shutdown().expect("shutdown");
}
