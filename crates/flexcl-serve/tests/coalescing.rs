//! In-flight request coalescing: N identical concurrent requests run
//! exactly one sweep, every fanned-out answer is bit-identical to the
//! leader's result, and a waiter expiring mid-coalesce gets its own
//! typed `deadline` without cancelling the shared sweep.

use flexcl_serve::server::ServerConfig;
use flexcl_serve::{Response, Server};
use std::sync::mpsc;
use std::sync::Mutex;

const VADD: &str = "__kernel void vadd(__global float* a, __global float* b, \
                    __global float* c) { int i = get_global_id(0); c[i] = a[i] + b[i]; }";

const BLOCKER: &str = "__kernel void blocker(__global float* a) { \
                       int i = get_global_id(0); a[i] = a[i] * 3.0f; }";

fn request(id: &str, src: &str, extra: &str) -> String {
    let src_json = src.replace('\\', "\\\\").replace('"', "\\\"");
    format!(r#"{{"id":"{id}","src":"{src_json}","global":1024{extra}}}"#)
}

/// The shared-result portion of an Ok response's wire form — everything
/// that must be bit-identical between the leader and its waiters
/// (identity, timing and the `coalesced` marker legitimately differ).
fn result_bytes(json: &str) -> &str {
    let start = json.find("\"result\":").expect("result field");
    let end = json.find(",\"degraded\"").expect("degraded field");
    &json[start..end]
}

/// Both tests read the process-global `dse.sweeps` counter, so they
/// must not interleave with each other.
static SWEEP_COUNTER_GUARD: Mutex<()> = Mutex::new(());

/// One busy worker, then N identical requests: the first becomes the
/// queued leader, the other N-1 park on it. The sweep counter moves by
/// exactly two (blocker + leader), every answer is ok, and the shared
/// result bytes are identical across all N.
#[test]
fn n_identical_concurrent_requests_run_one_sweep_and_share_bytes() {
    let _guard = SWEEP_COUNTER_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let sweeps = flexcl_obs::metrics::global().counter("dse.sweeps");
    let before = sweeps.get();

    let (server, _) = Server::start(ServerConfig {
        workers: 1,
        queue_cap: 64,
        degrade_at: usize::MAX,
        ..ServerConfig::default()
    })
    .expect("start");

    const N: usize = 6;
    let (tx, rx) = mpsc::channel::<Response>();
    // Occupy the sole worker so the identical burst below cannot start
    // executing until every member has been admitted or parked.
    server.handle_frame_async(
        &request("blocker", BLOCKER, r#","grid":"fine""#),
        Box::new({
            let tx = tx.clone();
            move |r| {
                let _ = tx.send(r);
            }
        }),
    );
    for i in 0..N {
        let tx = tx.clone();
        server.handle_frame_async(
            &request(&format!("dup-{i}"), VADD, ""),
            Box::new(move |r| {
                let _ = tx.send(r);
            }),
        );
    }
    drop(tx);

    let responses: Vec<Response> = rx.iter().collect();
    assert_eq!(responses.len(), N + 1);
    let dups: Vec<&Response> = responses.iter().filter(|r| r.id().starts_with("dup-")).collect();
    assert_eq!(dups.len(), N);
    for r in &dups {
        assert_eq!(r.kind(), "ok", "{}", r.to_json());
    }

    // Exactly one sweep served all N duplicates (plus the blocker's).
    assert_eq!(sweeps.get() - before, 2, "expected blocker + one shared sweep");

    // Shared result bytes are identical; exactly N-1 carry the marker.
    let jsons: Vec<String> = dups.iter().map(|r| r.to_json()).collect();
    for j in &jsons[1..] {
        assert_eq!(result_bytes(&jsons[0]), result_bytes(j), "fan-out must be bit-identical");
    }
    let marked = jsons.iter().filter(|j| j.contains("\"coalesced\":true")).count();
    assert_eq!(marked, N - 1, "one leader, N-1 coalesced waiters");

    let c = server.shutdown();
    assert_eq!(c.coalesced, (N - 1) as u64);
    assert_eq!(c.completed, (N + 1) as u64);
    assert_eq!(c.shed, 0);
}

/// A waiter whose deadline lapses while parked is rejected with its own
/// typed `deadline` at fan-out; the shared sweep still completes and
/// the leader still gets its result.
#[test]
fn waiter_expiring_mid_coalesce_gets_typed_deadline_without_cancelling_the_sweep() {
    let _guard = SWEEP_COUNTER_GUARD.lock().unwrap_or_else(|e| e.into_inner());

    let (server, _) = Server::start(ServerConfig {
        workers: 1,
        queue_cap: 64,
        degrade_at: usize::MAX,
        ..ServerConfig::default()
    })
    .expect("start");

    let (tx, rx) = mpsc::channel::<Response>();
    // The blocker's fine-grid sweep holds the worker well past the
    // waiter's 1 ms budget.
    server.handle_frame_async(
        &request("blocker", BLOCKER, r#","grid":"fine""#),
        Box::new({
            let tx = tx.clone();
            move |r| {
                let _ = tx.send(r);
            }
        }),
    );
    server.handle_frame_async(
        &request("leader", VADD, r#","grid":"fine""#),
        Box::new({
            let tx = tx.clone();
            move |r| {
                let _ = tx.send(r);
            }
        }),
    );
    server.handle_frame_async(
        &request("hasty", VADD, r#","grid":"fine","deadline_ms":1"#),
        Box::new({
            let tx = tx.clone();
            move |r| {
                let _ = tx.send(r);
            }
        }),
    );
    drop(tx);

    let responses: Vec<Response> = rx.iter().collect();
    assert_eq!(responses.len(), 3);
    let by_id = |id: &str| {
        responses.iter().find(|r| r.id() == id).unwrap_or_else(|| panic!("no response for {id}"))
    };
    assert_eq!(by_id("blocker").kind(), "ok");
    // The shared sweep was not cancelled by the hasty waiter...
    assert_eq!(by_id("leader").kind(), "ok", "{}", by_id("leader").to_json());
    // ...and the waiter's rejection is its own, typed, and names the
    // coalescing path.
    let hasty = by_id("hasty");
    assert_eq!(hasty.kind(), "deadline", "{}", hasty.to_json());
    assert!(hasty.to_json().contains("coalesced"), "{}", hasty.to_json());

    let c = server.shutdown();
    assert_eq!(c.coalesced, 1);
    assert_eq!(c.deadline_expired, 1);
    assert_eq!(c.completed, 2);
}
