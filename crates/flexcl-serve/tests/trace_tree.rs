//! End-to-end span-tree reconstruction: one served request must emit a
//! single rooted trace — `serve.request` at the root, the worker-side
//! `serve.exec` under it, and the pipeline phases (frontend parse, IR
//! lowering, the sweep and its children) hanging off that.
//!
//! This is its own integration-test binary because the tracer is
//! process-global: nothing else in this process may install one.

use flexcl_serve::json::{self, Json};
use flexcl_serve::server::ServerConfig;
use flexcl_serve::Server;
use std::collections::HashMap;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write` sink the test can read back after tracer shutdown.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buf lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[derive(Debug)]
struct Rec {
    id: u64,
    parent: u64,
    name: String,
}

fn parse_record(line: &str) -> Rec {
    let v = json::parse(line).unwrap_or_else(|e| panic!("bad trace line {line:?}: {e}"));
    let field = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or_else(|| panic!("no {k} in {line}"));
    Rec {
        id: field("id"),
        parent: field("parent"),
        name: v.get("name").and_then(Json::as_str).expect("name").to_string(),
    }
}

#[test]
fn one_request_emits_a_single_rooted_span_tree() {
    let sink = SharedBuf::default();
    assert!(
        flexcl_obs::trace::install(Box::new(sink.clone()), 1),
        "tracer already installed in this process"
    );

    let (server, _) = Server::start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("start");
    let resp = server.handle_frame(
        r#"{"id":"t1","src":"__kernel void vadd(__global float* a, __global float* b, __global float* c) { int i = get_global_id(0); c[i] = a[i] + b[i]; }","global":256}"#,
    );
    assert_eq!(resp.kind(), "ok", "sweep failed: {}", resp.to_json());
    server.shutdown();
    flexcl_obs::trace::shutdown();

    let bytes = sink.0.lock().expect("buf lock").clone();
    let text = String::from_utf8(bytes).expect("trace is utf-8");
    let recs: Vec<Rec> = text.lines().map(parse_record).collect();
    assert!(!recs.is_empty(), "no spans were emitted");
    assert_eq!(
        flexcl_obs::trace::dropped_counter().get(),
        0,
        "spans were dropped; the tree below would be partial"
    );

    let by_id: HashMap<u64, &Rec> = recs.iter().map(|r| (r.id, r)).collect();
    let roots: Vec<&&Rec> = by_id.values().filter(|r| r.parent == 0).collect();
    assert_eq!(roots.len(), 1, "expected one root, got {roots:?}");
    let root = roots[0];
    assert_eq!(root.name, "serve.request");

    // Every span's parent chain terminates at the root, with no orphans
    // (a parent id that was never emitted) and no cycles.
    for rec in &recs {
        let mut cur = rec;
        let mut hops = 0;
        while cur.parent != 0 {
            cur = by_id
                .get(&cur.parent)
                .unwrap_or_else(|| panic!("span {} ({}) has unknown parent {}", rec.id, rec.name, cur.parent));
            hops += 1;
            assert!(hops <= recs.len(), "parent cycle reaching {}", rec.name);
        }
        assert_eq!(cur.id, root.id, "span {} is rooted elsewhere", rec.name);
    }

    // The pipeline phases all appear, wired the way the docs claim:
    // request → exec → sweep, with per-phase children under the sweep.
    let find = |name: &str| -> &Rec {
        recs.iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("no `{name}` span in:\n{text}"))
    };
    let exec = find("serve.exec");
    assert_eq!(exec.parent, root.id);
    let sweep = find("dse.sweep");
    assert_eq!(sweep.parent, exec.id);
    for leaf in ["serve.cache_miss", "frontend.parse", "ir.lower"] {
        assert_eq!(find(leaf).parent, exec.id, "{leaf} not under serve.exec");
    }
    // Analysis work runs inside a (sampled) chunk span under the sweep:
    // dse.analysis → dse.chunk → dse.sweep, and profiling under analysis.
    let analysis = find("dse.analysis");
    let chunk = by_id[&analysis.parent];
    assert_eq!(chunk.name, "dse.chunk", "dse.analysis not inside a chunk");
    assert_eq!(chunk.parent, sweep.id);
    assert_eq!(by_id[&find("interp.profile").parent].name, "dse.analysis");
    find("sched.list");
    find("sched.sms");
}
