//! Crash-safety of the persistent result cache: the three failure
//! stories a long-running server must survive.
//!
//! 1. **Bit rot / torn writes** — a payload damaged on disk (simulated
//!    by `corrupt_entry_for_test`) is detected by checksum on the next
//!    read or at startup, quarantined for post-mortem, and served as a
//!    miss; garbage is never returned and startup never fails.
//! 2. **Crash mid-write** — the write path is temp-file + fsync +
//!    atomic rename, so a crash leaves either the complete old state or
//!    the complete new state plus possibly an orphaned `.tmp-*` file,
//!    which reopen removes.
//! 3. **Unbounded corpus** — the per-shard LRU cap evicts cold entries,
//!    so a serving process's cache memory and disk stay bounded.
//!
//! The end-to-end story — a `corrupt-cache` fault request damaging its
//! own fresh entry, and the *next* identical request recomputing through
//! quarantine instead of serving garbage — runs against a real `Server`.

use flexcl_serve::cache::{PersistentCache, SHARDS};
use flexcl_serve::protocol::Response;
use flexcl_serve::server::ServerConfig;
use flexcl_serve::Server;
use std::fs;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("flexcl-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

#[test]
fn corruption_is_quarantined_on_read_not_served() {
    let dir = tmpdir("read");
    let (c, _) = PersistentCache::open(&dir, 8).expect("open");
    c.put((7, 7), (70, 70), b"precious").expect("put");
    assert!(c.corrupt_entry_for_test((7, 7)), "entry must exist to corrupt");

    assert_eq!(c.get((7, 7)), None, "corrupt entries are a miss, never garbage");
    assert_eq!(c.stats.quarantined.load(std::sync::atomic::Ordering::Relaxed), 1);
    let quarantined = fs::read_dir(dir.join("quarantine")).expect("dir").count();
    assert_eq!(quarantined, 1, "the damaged record is kept for post-mortem");

    // The slot is reusable: a rewrite serves again.
    c.put((7, 7), (70, 70), b"rewritten").expect("put");
    assert_eq!(c.get((7, 7)).as_deref(), Some(&b"rewritten"[..]));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn startup_scan_quarantines_corruption_and_cleans_torn_writes() {
    let dir = tmpdir("startup");
    {
        let (c, _) = PersistentCache::open(&dir, 8).expect("open");
        c.put((1, 1), (10, 10), b"good").expect("put");
        c.put((2, 2), (20, 20), b"doomed").expect("put");
        c.corrupt_entry_for_test((2, 2));
    }
    // Simulate a crash mid-write: an orphaned temp file and a stray
    // half-record that was never renamed into a valid name.
    fs::write(dir.join("shard_00").join(".tmp-99"), b"half a reco").expect("write tmp");
    fs::write(dir.join("shard_03").join("nonsense.fc"), b"not a record").expect("write junk");

    let (c, report) = PersistentCache::open(&dir, 8).expect("reopen never fails on corruption");
    assert_eq!(report.loaded, 1, "only the intact entry is indexed");
    assert_eq!(report.quarantined, 2, "damaged + junk records quarantined");
    assert_eq!(report.cleaned_tmp, 1);
    assert_eq!(c.get((1, 1)).as_deref(), Some(&b"good"[..]));
    assert_eq!(c.get((2, 2)), None);
    assert!(!dir.join("shard_00").join(".tmp-99").exists());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn atomic_write_replaces_entries_without_a_torn_window() {
    let dir = tmpdir("atomic");
    let (c, _) = PersistentCache::open(&dir, 8).expect("open");
    c.put((5, 5), (50, 50), b"v1").expect("put");
    c.put((5, 5), (50, 50), b"v2-longer-than-v1").expect("overwrite");
    assert_eq!(c.get((5, 5)).as_deref(), Some(&b"v2-longer-than-v1"[..]));
    // No temp litter after successful writes.
    for s in 0..SHARDS {
        let shard = dir.join(format!("shard_{s:02x}"));
        for e in fs::read_dir(&shard).expect("dir") {
            let name = e.expect("entry").file_name();
            assert!(
                !name.to_string_lossy().starts_with(".tmp-"),
                "leftover temp {name:?}"
            );
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corpus_stays_bounded_by_the_lru_cap() {
    let dir = tmpdir("bound");
    let cap = 4;
    let (c, _) = PersistentCache::open(&dir, cap).expect("open");
    // 10× the cap, spread across all shards.
    for i in 0..(SHARDS as u64 * cap as u64 * 10) {
        c.put((i, i), (i % 7, i % 7), format!("payload-{i}").as_bytes()).expect("put");
    }
    assert!(c.len() <= SHARDS * cap, "{} entries exceed the bound", c.len());
    // Disk matches the index bound too.
    let on_disk: usize = (0..SHARDS)
        .map(|s| fs::read_dir(dir.join(format!("shard_{s:02x}"))).expect("dir").count())
        .sum();
    assert!(on_disk <= SHARDS * cap);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupting_request_cannot_poison_the_next_identical_request() {
    let dir = tmpdir("e2e");
    let (server, _) = Server::start(ServerConfig {
        workers: 1,
        cache_dir: Some(dir.clone()),
        enable_testhooks: true,
        ..ServerConfig::default()
    })
    .expect("start");

    const SRC: &str = "__kernel void vadd(__global float* a, __global float* b, \
                        __global float* c) { int i = get_global_id(0); c[i] = a[i] + b[i]; }";
    let src_json = SRC.replace('"', "\\\"");
    let attack = format!(
        r#"{{"id":"attack","src":"{src_json}","global":4096,"fault":"corrupt-cache"}}"#
    );
    let clean = format!(r#"{{"id":"clean","src":"{src_json}","global":4096}}"#);

    // The attacker computes fine, then damages its own persisted entry.
    let r1 = server.handle_frame(&attack);
    let Response::Ok { summary: s1, .. } = &r1 else { panic!("{}", r1.to_json()) };

    // The victim re-requests the same content: checksum catches the
    // damage, the entry is quarantined, and the answer is *recomputed* —
    // identical to the attacker's honest answer, served as a miss.
    let r2 = server.handle_frame(&clean);
    let Response::Ok { summary: s2, cache, .. } = &r2 else { panic!("{}", r2.to_json()) };
    assert_eq!(format!("{cache:?}"), "Miss", "corrupt entry must not serve as a hit");
    assert_eq!(s1, s2);

    // Third time: the recompute re-persisted a good entry, so now it hits.
    let r3 = server.handle_frame(&clean);
    let Response::Ok { summary: s3, cache, .. } = &r3 else { panic!("{}", r3.to_json()) };
    assert_eq!(format!("{cache:?}"), "Hit");
    assert_eq!(s2, s3);

    let cache_stats = server.cache().expect("cache");
    assert_eq!(cache_stats.stats.quarantined.load(std::sync::atomic::Ordering::Relaxed), 1);
    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
