//! Service-level robustness: one poisoned request cannot hurt its
//! neighbours, and every served answer is bit-identical to the offline
//! engine.
//!
//! The acceptance scenario from the issue: ≥ 8 concurrent well-formed
//! requests complete with results bit-identical to a direct
//! `explore_space` call, while interleaved panicking / fuel-starved /
//! over-deadline / malformed / cache-corrupting requests are each
//! rejected with their typed error kind. Admission control is exercised
//! separately with a one-slot queue.

use flexcl_core::config::SweepGrid;
use flexcl_core::{explore_space, DseOptions, Platform};
use flexcl_serve::protocol::Response;
use flexcl_serve::server::ServerConfig;
use flexcl_serve::{workload, Server};
use std::sync::Arc;

const VADD: &str = "__kernel void vadd(__global float* a, __global float* b, \
                     __global float* c) { int i = get_global_id(0); c[i] = a[i] + b[i]; }";

/// A second kernel shape so concurrent traffic is not all one
/// fingerprint.
const SCALE: &str = "__kernel void scale(__global float* a, float k) { \
                      int i = get_global_id(0); a[i] = a[i] * k; }";

fn request(id: &str, src: &str, global: u64, extra: &str) -> String {
    let src_json = src.replace('\\', "\\\\").replace('"', "\\\"");
    format!(r#"{{"id":"{id}","src":"{src_json}","global":{global}{extra}}}"#)
}

/// The offline reference digest for (src, global) over the standard
/// grid, computed through the same workload synthesis the server uses.
fn offline_best_cycles(src: &str, global: u64) -> (u64, f64) {
    let p = workload::prepare(src, None, (global, 1), Default::default()).expect("prepare");
    let r = explore_space(
        &p.func,
        &Platform::virtex7_adm7v3(),
        &p.workload,
        &SweepGrid::standard(),
        DseOptions::default(),
    )
    .expect("offline sweep");
    (r.points.len() as u64, r.best().expect("best").estimate.cycles)
}

#[test]
fn poisoned_requests_are_isolated_while_concurrent_clean_ones_complete() {
    let (server, _) = Server::start(ServerConfig {
        workers: 2,
        queue_cap: 64,
        degrade_at: usize::MAX, // pressure-free: this test is about isolation
        default_deadline_ms: 60_000,
        enable_testhooks: true,
        ..ServerConfig::default()
    })
    .expect("start");
    let server = Arc::new(server);

    // 10 well-formed requests (two kernel shapes) racing 5 poisoned ones.
    let mut handles = Vec::new();
    for i in 0..10 {
        let server = Arc::clone(&server);
        let (src, global) = if i % 2 == 0 { (VADD, 4096) } else { (SCALE, 2048) };
        handles.push(std::thread::spawn(move || {
            let frame = request(&format!("ok-{i}"), src, global, "");
            (i, server.handle_frame(&frame))
        }));
    }
    let poison = [
        ("panic", r#","fault":"panic""#),
        ("estimate-panic", r#","fault":"estimate-panic""#),
        ("fuel", r#","fault":"fuel""#),
        ("deadline", r#","deadline_ms":0"#),
        ("corrupt", r#","fault":"corrupt-cache""#),
    ];
    let mut poison_handles = Vec::new();
    for (tag, extra) in poison {
        let server = Arc::clone(&server);
        let frame = request(&format!("bad-{tag}"), VADD, 4096, extra);
        poison_handles.push(std::thread::spawn(move || (tag, server.handle_frame(&frame))));
    }
    // Malformed frames from the same firehose.
    let malformed = server.handle_frame(r#"{"id":"bad-json","src":"x","#);
    assert_eq!(malformed.kind(), "malformed");

    // Every clean request completes with the offline engine's bits.
    let vadd_ref = offline_best_cycles(VADD, 4096);
    let scale_ref = offline_best_cycles(SCALE, 2048);
    for h in handles {
        let (i, resp) = h.join().expect("client thread");
        let Response::Ok { summary, degraded, .. } = &resp else {
            panic!("clean request {i} failed: {}", resp.to_json());
        };
        assert_eq!(*degraded, 0);
        let (points, cycles) = if i % 2 == 0 { vadd_ref } else { scale_ref };
        assert_eq!(summary.points, points, "request {i}");
        let got = summary.best_cycles.expect("best");
        assert_eq!(got.to_bits(), cycles.to_bits(), "request {i}: {got} != {cycles}");
    }

    // Every poisoned request is rejected with its typed kind.
    for h in poison_handles {
        let (tag, resp) = h.join().expect("poison thread");
        match tag {
            "panic" => assert_eq!(resp.kind(), "panic", "{}", resp.to_json()),
            "fuel" => assert_eq!(resp.kind(), "resource-limit", "{}", resp.to_json()),
            "deadline" => assert_eq!(resp.kind(), "deadline", "{}", resp.to_json()),
            // One panicking candidate out of hundreds: the sweep still
            // completes (that is the point of chunk isolation).
            "estimate-panic" => assert_eq!(resp.kind(), "ok", "{}", resp.to_json()),
            // Corruption happens *after* a successful answer; the damage
            // shows up (and is quarantined) only on the next cache read.
            "corrupt" => assert_eq!(resp.kind(), "ok", "{}", resp.to_json()),
            _ => unreachable!(),
        }
    }

    let server = Arc::into_inner(server).expect("sole handle");
    let c = server.shutdown();
    assert_eq!(c.completed, 12, "10 clean + estimate-panic + corrupt");
    assert_eq!(c.deadline_expired, 1);
    assert_eq!(c.malformed, 1);
    assert_eq!(c.failed, 2, "panic + fuel");
    assert_eq!(c.shed, 0);
}

#[test]
fn served_results_are_bit_identical_to_offline_followups_hit_cache() {
    let dir = std::env::temp_dir()
        .join(format!("flexcl-serve-bitident-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (server, _) = Server::start(ServerConfig {
        workers: 1,
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("start");

    let first = server.handle_frame(&request("a", VADD, 4096, ""));
    let second = server.handle_frame(&request("b", VADD, 4096, ""));
    let (Response::Ok { summary: s1, cache: c1, .. }, Response::Ok { summary: s2, cache: c2, .. }) =
        (&first, &second)
    else {
        panic!("{} / {}", first.to_json(), second.to_json());
    };
    assert_eq!(format!("{c1:?}"), "Miss");
    assert_eq!(format!("{c2:?}"), "Hit");
    assert_eq!(s1, s2, "a cache hit must serve the very same digest");

    let (points, cycles) = offline_best_cycles(VADD, 4096);
    assert_eq!(s1.points, points);
    assert_eq!(s1.best_cycles.expect("best").to_bits(), cycles.to_bits());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_sheds_with_retry_hint_and_degrades_under_pressure() {
    // Zero workers draining… is impossible (workers ≥ 1), so saturate a
    // 1-slot queue with slow requests from many clients instead.
    let (server, _) = Server::start(ServerConfig {
        workers: 1,
        queue_cap: 2,
        degrade_at: 1, // every queued request degrades one rung per depth
        default_deadline_ms: 60_000,
        ..ServerConfig::default()
    })
    .expect("start");
    let server = Arc::new(server);

    // Unique sources defeat any caching; "fine" grid makes each compute
    // slow enough to pile the queue up on the 1-core container.
    let mut handles = Vec::new();
    for i in 0..12 {
        let server = Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            let src = format!(
                "__kernel void k{i}(__global float* a) {{ \
                  int i = get_global_id(0); a[i] = a[i] + {i}.0f; }}"
            );
            let frame = request(&format!("p-{i}"), &src, 1024, r#","grid":"fine""#);
            server.handle_frame(&frame)
        }));
    }
    let responses: Vec<Response> =
        handles.into_iter().map(|h| h.join().expect("client")).collect();

    let shed: Vec<&Response> = responses.iter().filter(|r| r.kind() == "overloaded").collect();
    let ok: Vec<&Response> = responses.iter().filter(|r| r.kind() == "ok").collect();
    assert!(!shed.is_empty(), "12 clients on a 2-slot queue must shed");
    assert!(!ok.is_empty(), "admitted requests must still complete");
    for r in &shed {
        let Response::Err { retry_after_ms, .. } = r else { unreachable!() };
        assert!(retry_after_ms.is_some(), "shed responses carry a retry hint");
    }
    // At least one admitted request saw queue depth ≥ degrade_at and got
    // the coarser grid, labeled as such.
    let degraded: Vec<_> = ok
        .iter()
        .filter_map(|r| match r {
            Response::Ok { degraded, grid_used, .. } if *degraded > 0 => Some(grid_used.clone()),
            _ => None,
        })
        .collect();
    // Shedding implies some request was admitted at depth ≥ 1 =
    // degrade_at, so at least one answer must be a recorded degradation.
    assert!(!degraded.is_empty(), "sheds without degradations cannot happen at degrade_at=1");
    assert!(
        degraded.iter().all(|g| g == "standard"),
        "fine degrades to standard, got {degraded:?}"
    );

    let server = Arc::into_inner(server).expect("sole handle");
    let c = server.shutdown();
    assert_eq!(c.shed as usize, shed.len());
    assert!(c.completed >= 1);
}
